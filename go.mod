module drain

go 1.22
