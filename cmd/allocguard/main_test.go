package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
BenchmarkStep/MidLoad/event-8         	      10	  52269863 ns/op	     95657 cycles/sec	     10454 ns/cycle	 1161164 B/op	      34 allocs/op
BenchmarkStep/MidLoad/dense-8         	      10	  49759290 ns/op	    100484 cycles/sec	      9952 ns/cycle	 1161062 B/op	      36 allocs/op
BenchmarkStepAllocs-8                 	       1	 103049153 ns/op	         0 allocs/cycle
PASS
`

func TestWithinBudgetPasses(t *testing.T) {
	budget := `{"budgets":{"BenchmarkStep/MidLoad/event":120,"BenchmarkStep/MidLoad/dense":120}}`
	var out strings.Builder
	if err := run([]byte(budget), strings.NewReader(sampleBench), &out); err != nil {
		t.Fatalf("within-budget run failed: %v", err)
	}
	if !strings.Contains(out.String(), "34 allocs/op within budget 120") {
		t.Errorf("missing pass report: %q", out.String())
	}
}

func TestExceededBudgetFails(t *testing.T) {
	budget := `{"budgets":{"BenchmarkStep/MidLoad/event":30,"BenchmarkStep/MidLoad/dense":30}}`
	var out strings.Builder
	err := run([]byte(budget), strings.NewReader(sampleBench), &out)
	if err == nil {
		t.Fatal("over-budget run passed")
	}
	// Both violations must be reported, in name order.
	msg := err.Error()
	di := strings.Index(msg, "dense: 36 allocs/op exceeds budget 30")
	ei := strings.Index(msg, "event: 34 allocs/op exceeds budget 30")
	if di < 0 || ei < 0 || di > ei {
		t.Errorf("violation report = %q", msg)
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	budget := `{"budgets":{"BenchmarkStep/Saturation/event":150}}`
	var out strings.Builder
	err := run([]byte(budget), strings.NewReader(sampleBench), &out)
	if err == nil || !strings.Contains(err.Error(), "missing from input") {
		t.Fatalf("missing budgeted benchmark not flagged: %v", err)
	}
}

func TestRejectsEmptyBudget(t *testing.T) {
	var out strings.Builder
	if err := run([]byte(`{}`), strings.NewReader(sampleBench), &out); err == nil {
		t.Fatal("empty budget accepted")
	}
	if err := run([]byte(`not json`), strings.NewReader(sampleBench), &out); err == nil {
		t.Fatal("corrupt budget accepted")
	}
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	got, err := parseAllocs(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkStep/MidLoad/event"] != 34 {
		t.Errorf("parsed = %+v", got)
	}
	if _, ok := got["BenchmarkStepAllocs"]; ok {
		t.Error("benchmark without allocs/op should be ignored")
	}
}
