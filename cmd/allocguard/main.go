// Command allocguard enforces the committed per-benchmark allocation
// budget: it reads `go test -bench -benchmem` output on stdin, extracts
// each benchmark's allocs/op, and fails when any budgeted benchmark
// exceeds its ceiling in alloc_budget.json — or is missing from the
// input, so a renamed benchmark cannot silently retire its budget.
//
// Allocation counts, unlike timings, are exact and machine-independent:
// the runtime counts every heap allocation, so the same binary produces
// the same allocs/op on a loaded CI runner and a quiet workstation.
// That makes them the one hot-path regression signal CI can gate on.
// The budgets are calibrated at -benchtime=10x (fixed iteration counts
// keep the per-op amortization of warm-up allocations stable) with
// roughly 3x headroom over the measured values; the pre-pooling
// simulator exceeded every one of them by two to three orders of
// magnitude.
//
// Usage: go test -bench=... -benchmem . | allocguard -budget alloc_budget.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// budgetFile is the alloc_budget.json schema: benchmark name (with
// sub-benchmark path, without the -GOMAXPROCS suffix) to the maximum
// permitted allocs/op.
type budgetFile struct {
	Comment string             `json:"comment,omitempty"`
	Budgets map[string]float64 `json:"budgets"`
}

func main() {
	budgetPath := flag.String("budget", "alloc_budget.json", "committed allocation budget file")
	flag.Parse()

	data, err := os.ReadFile(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(1)
	}
	if err := run(data, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "allocguard:", err)
		os.Exit(1)
	}
}

// run checks the benchmark stream against the budget document and
// reports every violation (not just the first).
func run(budget []byte, bench io.Reader, out io.Writer) error {
	var bf budgetFile
	if err := json.Unmarshal(budget, &bf); err != nil {
		return fmt.Errorf("budget file: %w", err)
	}
	if len(bf.Budgets) == 0 {
		return fmt.Errorf("budget file defines no budgets")
	}
	got, err := parseAllocs(bench)
	if err != nil {
		return err
	}
	var failures []string
	names := make([]string, 0, len(bf.Budgets))
	for name := range bf.Budgets {
		names = append(names, name)
	}
	// Deterministic report order regardless of map iteration.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		max := bf.Budgets[name]
		v, ok := got[name]
		switch {
		case !ok:
			failures = append(failures, fmt.Sprintf("%s: budgeted benchmark missing from input (renamed or not run?)", name))
		case v > max:
			failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op exceeds budget %.0f", name, v, max))
		default:
			fmt.Fprintf(out, "allocguard: %s: %.0f allocs/op within budget %.0f\n", name, v, max)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation budget exceeded:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// parseAllocs extracts allocs/op from benchstat-compatible lines,
// stripping the trailing -GOMAXPROCS decoration exactly as benchjson
// does. Benchmarks without an allocs/op column are ignored.
func parseAllocs(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
			continue
		}
		name := f[0]
		if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
			name = name[:i]
		}
		for i := 2; i+1 < len(f); i += 2 {
			if f[i+1] != "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			out[name] = v
		}
	}
	return out, sc.Err()
}
