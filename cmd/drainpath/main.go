// Command drainpath runs DRAIN's offline algorithm on a topology and
// prints the drain path and per-router turn tables (paper §III-B and
// Fig. 6).
//
//	drainpath -mesh 4x4
//	drainpath -mesh 8x8 -faults 8 -fault-seed 3 -alg search
//	drainpath -chiplets 4
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"drain/internal/drainpath"
	"drain/internal/topology"
)

func main() {
	mesh := flag.String("mesh", "4x4", "mesh dimensions WxH")
	faults := flag.Int("faults", 0, "random link failures")
	faultSeed := flag.Uint64("fault-seed", 1, "fault pattern seed")
	alg := flag.String("alg", "euler", "path algorithm: euler (Hierholzer) or search (Hawick-James style)")
	chiplets := flag.Int("chiplets", 0, "build a chiplet system of this many 2x2 chiplets instead of a mesh")
	turns := flag.Bool("turns", false, "print per-router turn tables")
	flag.Parse()

	var (
		g   *topology.Graph
		err error
	)
	if *chiplets > 0 {
		g, err = topology.NewChiplet(*chiplets, 2, 2)
	} else {
		var w, h int
		if _, serr := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); serr != nil {
			fatal(fmt.Errorf("bad -mesh %q: %v", *mesh, serr))
		}
		var m *topology.Mesh
		m, err = topology.NewMesh(w, h)
		if err == nil {
			g = m.Graph
		}
	}
	if err != nil {
		fatal(err)
	}
	if *faults > 0 {
		rng := rand.New(rand.NewPCG(*faultSeed, *faultSeed^0xb5297a4d))
		g, err = topology.RemoveRandomLinks(g, *faults, rng)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("topology: %d routers, %d bidirectional edges, %d unidirectional links, diameter %d\n",
		g.N(), len(g.Edges()), g.NumLinks(), g.Diameter())

	start := time.Now()
	var p *drainpath.Path
	switch *alg {
	case "euler":
		p, err = drainpath.FindEulerian(g)
	case "search":
		p, err = drainpath.FindCoveringCycle(g, 0)
	default:
		err = fmt.Errorf("unknown -alg %q", *alg)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if err := drainpath.Validate(g, p); err != nil {
		fatal(fmt.Errorf("internal error: produced path is invalid: %w", err))
	}
	fmt.Printf("drain path found in %v: %d links, covers all links, single cycle\n", elapsed, p.Len())
	fmt.Printf("path: %s\n", p)
	if *turns {
		fmt.Println("\nturn tables (input link -> output link per router):")
		tt := p.TurnTable(g)
		for r, tab := range tt {
			ins, outs := tab[0], tab[1]
			if len(ins) == 0 {
				continue
			}
			var b strings.Builder
			for i := range ins {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%v→%v", g.Link(ins[i]), g.Link(outs[i]))
			}
			fmt.Printf("  router %2d: %s\n", r, b.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainpath:", err)
	os.Exit(1)
}
