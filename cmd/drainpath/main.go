// Command drainpath runs DRAIN's offline algorithm on a topology and
// prints the drain path and per-router turn tables (paper §III-B and
// Fig. 6).
//
//	drainpath -mesh 4x4
//	drainpath -mesh 8x8 -faults 8 -fault-seed 3 -alg search
//	drainpath -chiplets 4
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"strings"
	"time"

	"drain/internal/drainpath"
	"drain/internal/topology"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program with its edges injected, so tests can drive
// flag parsing and golden-compare the output. Exit codes: 0 success,
// 1 runtime error, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drainpath", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mesh := fs.String("mesh", "4x4", "mesh dimensions WxH")
	faults := fs.Int("faults", 0, "random link failures")
	faultSeed := fs.Uint64("fault-seed", 1, "fault pattern seed")
	alg := fs.String("alg", "euler", "path algorithm: euler (Hierholzer) or search (Hawick-James style)")
	chiplets := fs.Int("chiplets", 0, "build a chiplet system of this many 2x2 chiplets instead of a mesh")
	turns := fs.Bool("turns", false, "print per-router turn tables")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "drainpath:", err)
		return 1
	}

	var (
		g   *topology.Graph
		err error
	)
	if *chiplets > 0 {
		g, err = topology.NewChiplet(*chiplets, 2, 2)
	} else {
		var w, h int
		if _, serr := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); serr != nil {
			return fail(fmt.Errorf("bad -mesh %q: %v", *mesh, serr))
		}
		var m *topology.Mesh
		m, err = topology.NewMesh(w, h)
		if err == nil {
			g = m.Graph
		}
	}
	if err != nil {
		return fail(err)
	}
	if *faults > 0 {
		rng := rand.New(rand.NewPCG(*faultSeed, *faultSeed^0xb5297a4d))
		g, err = topology.RemoveRandomLinks(g, *faults, rng)
		if err != nil {
			return fail(err)
		}
	}

	fmt.Fprintf(stdout, "topology: %d routers, %d bidirectional edges, %d unidirectional links, diameter %d\n",
		g.N(), len(g.Edges()), g.NumLinks(), g.Diameter())

	start := time.Now()
	var p *drainpath.Path
	switch *alg {
	case "euler":
		p, err = drainpath.FindEulerian(g)
	case "search":
		p, err = drainpath.FindCoveringCycle(g, 0)
	default:
		err = fmt.Errorf("unknown -alg %q", *alg)
	}
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)

	if err := drainpath.Validate(g, p); err != nil {
		return fail(fmt.Errorf("internal error: produced path is invalid: %w", err))
	}
	fmt.Fprintf(stdout, "drain path found in %v: %d links, covers all links, single cycle\n", elapsed, p.Len())
	fmt.Fprintf(stdout, "path: %s\n", p)
	if *turns {
		fmt.Fprintln(stdout, "\nturn tables (input link -> output link per router):")
		tt := p.TurnTable(g)
		for r, tab := range tt {
			ins, outs := tab[0], tab[1]
			if len(ins) == 0 {
				continue
			}
			var b strings.Builder
			for i := range ins {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%v→%v", g.Link(ins[i]), g.Link(outs[i]))
			}
			fmt.Fprintf(stdout, "  router %2d: %s\n", r, b.String())
		}
	}
	return 0
}
