package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// elapsedRe matches the only nondeterministic token in the output: the
// wall-clock time on the "drain path found in ..." line.
var elapsedRe = regexp.MustCompile(`found in [^:]+:`)

func normalize(out string) string {
	return elapsedRe.ReplaceAllString(out, "found in <elapsed>:")
}

// TestGoldenFaultyMesh runs the program against a small faulty mesh and
// compares the full (timing-normalized) output to a checked-in golden
// file. Regenerate with: go test ./cmd/drainpath -run Golden -update
func TestGoldenFaultyMesh(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-mesh", "4x4", "-faults", "2", "-fault-seed", "3", "-turns"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	got := normalize(stdout.String())

	golden := filepath.Join("testdata", "faulty_mesh_4x4.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The path must be deterministic run to run, not just against the
	// golden snapshot.
	var again bytes.Buffer
	if code := run([]string{"-mesh", "4x4", "-faults", "2", "-fault-seed", "3", "-turns"}, &again, &stderr); code != 0 {
		t.Fatalf("second run exit %d", code)
	}
	if normalize(again.String()) != got {
		t.Error("two identical invocations produced different output")
	}
}

// TestSmokeVariants exercises the other topology/algorithm flags enough
// to catch wiring regressions.
func TestSmokeVariants(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"plain mesh", []string{"-mesh", "3x3"}},
		{"search alg", []string{"-mesh", "4x4", "-faults", "1", "-alg", "search"}},
		{"chiplets", []string{"-chiplets", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			out := stdout.String()
			if !strings.Contains(out, "topology:") || !strings.Contains(out, "drain path found in") {
				t.Errorf("missing expected sections in output:\n%s", out)
			}
		})
	}
}

// TestFlagErrors pins the exit codes for usage and runtime errors.
func TestFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}

	stderr.Reset()
	if code := run([]string{"-mesh", "banana"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad mesh: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "bad -mesh") {
		t.Errorf("bad mesh error not reported: %q", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-mesh", "4x4", "-alg", "quantum"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad alg: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown -alg") {
		t.Errorf("bad alg error not reported: %q", stderr.String())
	}
}
