// Command drainsim runs one network simulation and prints its results.
//
// Synthetic traffic:
//
//	drainsim -scheme drain -mesh 8x8 -faults 4 -pattern uniform -rate 0.1
//
// Coherence workload:
//
//	drainsim -scheme drain -mesh 4x4 -workload canneal -ops 500
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"drain/internal/sim"
	"drain/internal/traffic"
	"drain/internal/workload"
)

func main() {
	scheme := flag.String("scheme", "drain", "deadlock-freedom scheme: none, ideal, escape, spin, drain, updown, dor")
	mesh := flag.String("mesh", "8x8", "mesh dimensions WxH")
	faults := flag.Int("faults", 0, "random bidirectional link failures (connectivity preserved)")
	faultSeed := flag.Uint64("fault-seed", 1, "fault pattern seed")
	faultSchedule := flag.String("fault-schedule", "", "scheduled live link failures/recoveries, e.g. \"1000:fail:2-3,3000:recover:2-3\" (cycle:action:a-b, comma-separated)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	pattern := flag.String("pattern", "uniform", "synthetic traffic pattern")
	rate := flag.Float64("rate", 0.05, "offered load, packets/node/cycle")
	warmup := flag.Int64("warmup", 10_000, "warmup cycles")
	measure := flag.Int64("measure", 50_000, "measurement cycles")
	epoch := flag.Int64("epoch", 64*1024, "DRAIN drain epoch (cycles)")
	wl := flag.String("workload", "", "run a coherence workload instead of synthetic traffic")
	ops := flag.Int64("ops", 500, "memory operations per core for -workload runs")
	maxCycles := flag.Int64("max-cycles", 5_000_000, "cycle budget for -workload runs")
	tracePath := flag.String("trace", "", "write a per-packet CSV trace to this file")
	sweep := flag.String("sweep", "", "comma-separated offered loads for a latency/throughput sweep (overrides -rate)")
	shards := flag.Int("shards", 0, "run the sharded parallel engine with this many shards (0 = serial event engine; results are identical for any value)")
	rngMode := flag.String("rng-mode", "exact", "synthetic-traffic RNG discipline: exact (byte-reproducible) or counter (statistically equivalent, much faster at low load)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		atExit = append(atExit, pprof.StopCPUProfile)
	}
	if *memProfile != "" {
		path := *memProfile
		atExit = append(atExit, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "drainsim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "drainsim:", err)
			}
		})
	}
	defer runAtExit()

	sch, err := sim.ParseScheme(*scheme)
	if err != nil {
		fatal(err)
	}
	var w, h int
	if _, err := fmt.Sscanf(strings.ToLower(*mesh), "%dx%d", &w, &h); err != nil {
		fatal(fmt.Errorf("bad -mesh %q: %v", *mesh, err))
	}
	sched, err := sim.ParseFaultSchedule(*faultSchedule)
	if err != nil {
		fatal(err)
	}
	mode, err := traffic.ParseRNGMode(*rngMode)
	if err != nil {
		fatal(fmt.Errorf("bad -rng-mode: %v", err))
	}
	p := sim.Params{
		Width: w, Height: h,
		Faults: *faults, FaultSeed: *faultSeed,
		Scheme: sch, Epoch: *epoch, Seed: *seed,
		Shards:        *shards,
		FaultSchedule: sched,
		RNGMode:       mode,
	}
	if *wl != "" {
		p.Classes = 3
		p.InjectCap = 16
	}
	r, err := sim.Build(p)
	if err != nil {
		fatal(err)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r.Trace = f
	}
	fmt.Printf("topology: %dx%d mesh, %d faults, %d routers, %d links, diameter %d\n",
		w, h, *faults, r.Graph.N(), r.Graph.NumLinks(), r.Graph.Diameter())
	fmt.Printf("scheme: %v (VNets=%d, VCs/VNet=%d)\n",
		sch, r.Net.Config().VNets, r.Net.Config().VCsPerVN)

	if *wl != "" {
		prof, err := workload.Get(*wl)
		if err != nil {
			fatal(err)
		}
		res, err := r.RunApp(prof, *ops, *maxCycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("workload %s: completed=%v runtime=%d cycles\n", prof, res.Completed, res.Runtime)
		fmt.Printf("packet latency: avg=%.1f p99=%d\n", res.AvgLatency, res.P99Latency)
		fmt.Printf("protocol: issued=%d completed=%d hits=%d misses=%d messages=%d\n",
			res.Protocol.OpsIssued, res.Protocol.OpsCompleted,
			res.Protocol.Hits, res.Protocol.Misses, res.Protocol.MsgsSent)
		if res.Drains > 0 {
			fmt.Printf("drains: %d\n", res.Drains)
		}
		if res.Spins > 0 {
			fmt.Printf("spins: %d\n", res.Spins)
		}
		if res.Deadlocked {
			fmt.Printf("DEADLOCKED at cycle %d\n", res.DeadlockCycle)
		}
		return
	}

	if *sweep != "" {
		var rates []float64
		for _, s := range strings.Split(*sweep, ",") {
			var v float64
			if _, err := fmt.Sscan(strings.TrimSpace(s), &v); err != nil {
				fatal(fmt.Errorf("bad -sweep entry %q: %v", s, err))
			}
			rates = append(rates, v)
		}
		curve, err := sim.LoadSweep(p, *pattern, rates, *warmup, *measure)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%10s %10s %12s %8s\n", "offered", "accepted", "avg latency", "p99")
		for _, pt := range curve {
			fmt.Printf("%10.3f %10.4f %12.1f %8d\n", pt.Offered, pt.Accepted, pt.AvgLat, pt.P99Lat)
		}
		fmt.Printf("saturation throughput: %.4f packets/node/cycle\n", curve.Saturation())
		return
	}

	pat, err := traffic.ByName(*pattern, r.Graph.N(), w)
	if err != nil {
		fatal(err)
	}
	res, err := r.RunSynthetic(pat, *rate, *warmup, *measure)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("traffic: %s at %.3f packets/node/cycle\n", pat.Name(), *rate)
	fmt.Printf("rng: %v mode, %d cycles fast-forwarded\n", res.RNGMode, res.FastForwarded)
	fmt.Printf("accepted: %.4f packets/node/cycle\n", res.Accepted)
	fmt.Printf("latency: avg=%.1f p99=%d cycles\n", res.AvgLatency, res.P99Latency)
	fmt.Printf("hops: avg=%.2f, misroutes/1k packets: %.1f\n", res.AvgHops, res.MisroutesPerK)
	if res.Deadlocked {
		fmt.Printf("DEADLOCKED at cycle %d\n", res.DeadlockCycle)
	}
	if r.Drain != nil {
		st := r.Drain.Stats()
		fmt.Printf("drains: %d (%d full), %d packet-hops forced, %d drain-ejections\n",
			st.Drains, st.FullDrains, st.PacketsMoved, st.Ejections)
	}
	if r.Spin != nil {
		st := r.Spin.Stats()
		fmt.Printf("spins: %d detections, %d spins, %d probes\n", st.Detections, st.Spins, st.Probes)
	}
	if len(r.FaultReports) > 0 {
		var rerouted, dropped int
		for _, rep := range r.FaultReports {
			rerouted += rep.Rerouted
			dropped += rep.Dropped
		}
		fmt.Printf("reconfigurations: %d (%d packets rerouted, %d dropped)\n",
			len(r.FaultReports), rerouted, dropped)
	}
}

// atExit holds profile-flushing hooks; fatal runs them before exiting
// (os.Exit skips deferred calls) and main defers runAtExit for the
// normal-return path.
var atExit []func()

func runAtExit() {
	for i := len(atExit) - 1; i >= 0; i-- {
		atExit[i]()
	}
	atExit = nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "drainsim:", err)
	runAtExit()
	os.Exit(1)
}
