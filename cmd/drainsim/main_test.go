package main

import "testing"

func TestParseScheme(t *testing.T) {
	cases := map[string]bool{
		"none": true, "ideal": true, "escape": true, "escape-vc": true,
		"spin": true, "drain": true, "updown": true,
		"": false, "DRAIN": false, "turnmodel": false,
	}
	for in, ok := range cases {
		_, err := parseScheme(in)
		if ok && err != nil {
			t.Errorf("parseScheme(%q): %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("parseScheme(%q) accepted", in)
		}
	}
	// escape and escape-vc must agree.
	a, _ := parseScheme("escape")
	b, _ := parseScheme("escape-vc")
	if a != b {
		t.Error("escape aliases disagree")
	}
}
