package main

import (
	"strings"
	"testing"

	"drain/internal/sim"
	"drain/internal/traffic"
)

// The scheme vocabulary lives in sim.ParseScheme; this pins the CLI's
// view of it (including the dor scheme and the escape alias).
func TestParseScheme(t *testing.T) {
	cases := map[string]bool{
		"none": true, "ideal": true, "escape": true, "escape-vc": true,
		"spin": true, "drain": true, "updown": true, "dor": true,
		"": false, "DRAIN": false, "turnmodel": false,
	}
	for in, ok := range cases {
		_, err := sim.ParseScheme(in)
		if ok && err != nil {
			t.Errorf("ParseScheme(%q): %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("ParseScheme(%q) accepted", in)
		}
	}
	// escape and escape-vc must agree.
	a, _ := sim.ParseScheme("escape")
	b, _ := sim.ParseScheme("escape-vc")
	if a != b {
		t.Error("escape aliases disagree")
	}
	// Every scheme's String form must round-trip through ParseScheme.
	for _, sch := range []sim.Scheme{
		sim.SchemeNone, sim.SchemeIdeal, sim.SchemeEscapeVC, sim.SchemeSPIN,
		sim.SchemeDRAIN, sim.SchemeUpDown, sim.SchemeDoR,
	} {
		got, err := sim.ParseScheme(sch.String())
		if err != nil || got != sch {
			t.Errorf("round-trip %v: got %v, err %v", sch, got, err)
		}
	}
}

// The -rng-mode vocabulary lives in traffic.ParseRNGMode; this pins the
// CLI's view of it, including the flag's default and the requirement
// that a bad value's error teaches the accepted modes.
func TestParseRNGModeFlagVocabulary(t *testing.T) {
	for in, want := range map[string]traffic.RNGMode{
		"exact":   traffic.RNGExact,
		"counter": traffic.RNGCounter,
		"":        traffic.RNGExact, // flag default
	} {
		got, err := traffic.ParseRNGMode(in)
		if err != nil || got != want {
			t.Errorf("ParseRNGMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	_, err := traffic.ParseRNGMode("precise")
	if err == nil {
		t.Fatal("ParseRNGMode accepted an unknown mode")
	}
	for _, mode := range []string{"exact", "counter"} {
		if !strings.Contains(err.Error(), mode) {
			t.Errorf("error %q does not list accepted mode %q", err, mode)
		}
	}
}
