package main

import (
	"testing"

	"drain/internal/sim"
)

// The scheme vocabulary lives in sim.ParseScheme; this pins the CLI's
// view of it (including the dor scheme and the escape alias).
func TestParseScheme(t *testing.T) {
	cases := map[string]bool{
		"none": true, "ideal": true, "escape": true, "escape-vc": true,
		"spin": true, "drain": true, "updown": true, "dor": true,
		"": false, "DRAIN": false, "turnmodel": false,
	}
	for in, ok := range cases {
		_, err := sim.ParseScheme(in)
		if ok && err != nil {
			t.Errorf("ParseScheme(%q): %v", in, err)
		}
		if !ok && err == nil {
			t.Errorf("ParseScheme(%q) accepted", in)
		}
	}
	// escape and escape-vc must agree.
	a, _ := sim.ParseScheme("escape")
	b, _ := sim.ParseScheme("escape-vc")
	if a != b {
		t.Error("escape aliases disagree")
	}
	// Every scheme's String form must round-trip through ParseScheme.
	for _, sch := range []sim.Scheme{
		sim.SchemeNone, sim.SchemeIdeal, sim.SchemeEscapeVC, sim.SchemeSPIN,
		sim.SchemeDRAIN, sim.SchemeUpDown, sim.SchemeDoR,
	} {
		got, err := sim.ParseScheme(sch.String())
		if err != nil || got != sch {
			t.Errorf("round-trip %v: got %v, err %v", sch, got, err)
		}
	}
}
