package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src/nondet"

// update regenerates the golden JSON report:
//
//	go test ./cmd/drainvet -run TestRunJSONGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestRunReportsFixtureFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "./a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nondet] time.Now is nondeterministic") {
		t.Errorf("missing time.Now diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "a.go:") {
		t.Errorf("diagnostics not in file:line form:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "-json", "./a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var rep struct {
		Schema   string           `json:"schema"`
		Findings []map[string]any `json:"findings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("output is not the JSON envelope: %v\n%s", err, stdout.String())
	}
	if rep.Schema != jsonSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, jsonSchema)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("JSON output has no findings")
	}
	if a, _ := rep.Findings[0]["analyzer"].(string); a == "" {
		t.Errorf("finding missing analyzer field: %v", rep.Findings[0])
	}
	for _, f := range rep.Findings {
		if file, _ := f["file"].(string); filepath.IsAbs(file) {
			t.Errorf("finding path %q is absolute; the report must be checkout-independent", file)
		}
	}
}

// TestRunJSONGolden pins the -json report byte-for-byte against a
// committed golden file: sorted order, relative slash paths, schema
// field. Regenerate with -update after an intentional change (and bump
// jsonSchema if the shape changed).
func TestRunJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "-json", "./a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	golden := filepath.Join("testdata", "nondet.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("-json output drifted from %s (regenerate with -update if intentional):\ngot:\n%s\nwant:\n%s", golden, stdout.Bytes(), want)
	}
}

func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// stats is outside the deterministic set; nothing should fire.
	code := run([]string{"-C", "../..", "./internal/stats"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

func TestAnalyzerToggle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "-nondet=false", "./a"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code with nondet disabled = %d, want 0; stdout: %s", code, stdout.String())
	}
}
