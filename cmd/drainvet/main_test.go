package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const fixtureDir = "../../internal/lint/testdata/src/nondet"

func TestRunReportsFixtureFindings(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "./a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "[nondet] time.Now is nondeterministic") {
		t.Errorf("missing time.Now diagnostic in output:\n%s", out)
	}
	if !strings.Contains(out, "a.go:") {
		t.Errorf("diagnostics not in file:line form:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "-json", "./a"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, stderr.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output is empty")
	}
	if a, _ := findings[0]["analyzer"].(string); a == "" {
		t.Errorf("finding missing analyzer field: %v", findings[0])
	}
}

func TestRunCleanPackage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// stats is outside the deterministic set; nothing should fire.
	code := run([]string{"-C", "../..", "./internal/stats"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stdout: %s stderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed diagnostics:\n%s", stdout.String())
	}
}

func TestAnalyzerToggle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtureDir, "-detpkgs", "a", "-nondet=false", "./a"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code with nondet disabled = %d, want 0; stdout: %s", code, stdout.String())
	}
}
