// Command drainvet runs the simulator's custom static analysis (see
// internal/lint): eight analyzers that enforce the determinism,
// hot-path allocation, cancellation, parallel-engine and cache-key
// invariants the DRAIN evaluation depends on. It is wired into
// `make check` and CI; a finding fails the build.
//
// Usage:
//
//	drainvet [flags] [packages]
//
// Packages default to ./... . Findings print as
//
//	file:line: [analyzer] message
//
// With -json the output is a stable envelope consumed by the CI
// artifact upload:
//
//	{"schema": "drainvet/2", "findings": [...]}
//
// Findings are sorted by (file, line, column, analyzer, message) and
// their file paths are relative to the resolved working directory (the
// -C argument) whenever they fall under it, so the report is
// byte-reproducible across checkouts. The schema field versions the
// shape: consumers reject reports they do not understand instead of
// misparsing them.
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"drain/internal/lint"
)

// jsonSchema identifies the -json output shape. Bump it when the
// envelope or the per-finding fields change incompatibly.
const jsonSchema = "drainvet/2"

// report is the -json envelope.
type report struct {
	Schema   string         `json:"schema"`
	Findings []lint.Finding `json:"findings"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("drainvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir      = fs.String("C", "", "change to `dir` before resolving package patterns")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		detPkgs  = fs.String("detpkgs", "", "comma-separated import-path suffixes overriding the deterministic-package scope (maprange/nondet)")
		hotRoots = fs.String("hotroots", "", "comma-separated hot-path root overrides, e.g. internal/noc.Network.Step")
	)
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg := lint.DefaultConfig()
	if *detPkgs != "" {
		cfg.DeterministicPkgs = splitList(*detPkgs)
	}
	if *hotRoots != "" {
		cfg.HotRoots = splitList(*hotRoots)
	}
	var names []string
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			names = append(names, a.Name)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(stderr, "drainvet: every analyzer is disabled")
		return 2
	}

	pkgs, err := lint.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "drainvet: %v\n", err)
		return 2
	}
	findings := lint.Analyze(cfg, pkgs, names...)
	if *jsonOut {
		if findings == nil {
			findings = []lint.Finding{}
		}
		relativizeFindings(*dir, findings)
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{Schema: jsonSchema, Findings: findings}); err != nil {
			fmt.Fprintf(stderr, "drainvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "drainvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// relativizeFindings rewrites finding paths relative to the resolved
// working directory (slash-separated) so the JSON report does not bake
// in the absolute checkout path. Paths outside dir — and the synthetic
// "go build" pseudo-file escapecheck uses for build failures — are left
// alone.
func relativizeFindings(dir string, findings []lint.Finding) {
	if dir == "" {
		dir = "."
	}
	base, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i, f := range findings {
		if !filepath.IsAbs(f.File) {
			continue
		}
		rel, err := filepath.Rel(base, f.File)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		findings[i].File = filepath.ToSlash(rel)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
