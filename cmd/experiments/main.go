// Command experiments regenerates the DRAIN paper's tables and figures.
//
// Usage:
//
//	experiments -fig all -scale quick
//	experiments -fig fig10,fig11 -scale full -seed 7 -out results/
//
// Each figure's data is printed as markdown and, with -out, also written
// to <out>/<fig>.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"drain/internal/experiments"
	"drain/internal/sim"
	"drain/internal/traffic"
)

// main defers to run so the profile-flushing defers fire before the
// process exits (os.Exit would skip them).
func main() {
	os.Exit(run())
}

func run() int {
	fig := flag.String("fig", "all", "comma-separated experiment IDs (fig3..fig15, headline) or 'all'")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Uint64("seed", 1, "base random seed")
	out := flag.String("out", "", "directory to write per-figure markdown files (optional)")
	jsonOut := flag.String("json", "", "also write machine-readable results to this JSON file")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for independent simulation runs (result tables are identical for any value)")
	shards := flag.Int("shards", 0, "intra-run parallelism: shard every simulation's network across this many workers (0 = serial; result tables are identical for any value)")
	rngMode := flag.String("rng-mode", "exact", "synthetic-traffic RNG discipline: exact (byte-reproducible) or counter (statistically equivalent, much faster at low load; changes result tables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	experiments.SetParallelism(*parallel)
	sim.SetDefaultShards(*shards)
	mode, err := traffic.ParseRNGMode(*rngMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: bad -rng-mode: %v\n", err)
		return 2
	}
	sim.SetDefaultRNGMode(mode)

	// Ctrl-C / SIGTERM cancels the in-flight sweep: the context reaches
	// every simulation step loop, so long full-scale runs stop within
	// noc.CancelCheckEvery cycles instead of burning cores.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}()
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.Quick
	case "full":
		sc = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		return 2
	}

	var ids []string
	if *fig == "all" {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*fig, ",")
	}

	type jsonEntry struct {
		ID      string              `json:"id"`
		Title   string              `json:"title"`
		Paper   string              `json:"paper"`
		Scale   string              `json:"scale"`
		Seed    uint64              `json:"seed"`
		Elapsed string              `json:"elapsed"`
		Tables  []experiments.Table `json:"tables"`
	}
	var jsonEntries []jsonEntry

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		tables, err := e.Run(ctx, sc, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", id, err)
			failed++
			if ctx.Err() != nil {
				return 1 // interrupted: later figures would fail the same way
			}
			continue
		}
		jsonEntries = append(jsonEntries, jsonEntry{
			ID: e.ID, Title: e.Title, Paper: e.Paper,
			Scale: sc.String(), Seed: *seed,
			Elapsed: time.Since(start).Round(time.Millisecond).String(),
			Tables:  tables,
		})
		var b strings.Builder
		b.WriteString(experiments.RenderFigure(e, tables))
		fmt.Fprintf(&b, "_(scale=%v, seed=%d, took %v)_\n", sc, *seed, time.Since(start).Round(time.Millisecond))
		fmt.Println(b.String())
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
			path := filepath.Join(*out, id+".md")
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				return 1
			}
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(jsonEntries, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			return 1
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
