package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: drain
cpu: some cpu
BenchmarkStep/LowLoad/event-8         	     100	    527816 ns/op	      2074 ns/cycle	    482210 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/LowLoad/dense-8         	      60	    903210 ns/op	      3515 ns/cycle	    284500 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/Saturation/event-8      	      12	  48100000 ns/op	      9620 ns/cycle	    103950 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/Saturation/dense-8      	      12	  46500000 ns/op	      9300 ns/cycle	    107527 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkParallelSweep-8              	       5	 250000000 ns/op
PASS
ok  	drain	10.2s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkStep/LowLoad/event" || b.Iterations != 100 {
		t.Fatalf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 527816, "ns/cycle": 2074, "cycles/sec": 482210, "B/op": 0, "allocs/op": 0,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	if got := doc.Benchmarks[4].Name; got != "BenchmarkParallelSweep" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got)
	}
	if len(doc.EventVsDense) != 2 {
		t.Fatalf("comparisons = %v, want 2 load points", doc.EventVsDense)
	}
	low := doc.EventVsDense["BenchmarkStep/LowLoad"]
	if low.DenseNsPerCycle != 3515 || low.EventNsPerCycle != 2074 {
		t.Fatalf("LowLoad comparison = %+v", low)
	}
	if low.Speedup < 1.69 || low.Speedup > 1.70 {
		t.Errorf("LowLoad speedup = %v, want 3515/2074", low.Speedup)
	}
	sat := doc.EventVsDense["BenchmarkStep/Saturation"]
	if sat.Speedup >= 1 {
		// The sample encodes a slight saturation regression; the ratio
		// must reflect it rather than clamp.
		t.Errorf("Saturation speedup = %v, want <1", sat.Speedup)
	}
	if doc.ParallelScaling != nil {
		t.Errorf("no shards=N variants, yet ParallelScaling = %v", doc.ParallelScaling)
	}
}

const shardedSample = `BenchmarkStepSharded/MidLoad/shards=1-8 	       1	 9000000000 ns/op	  22500000 ns/cycle	        44 cycles/sec
BenchmarkStepSharded/MidLoad/shards=2-8 	       1	 8000000000 ns/op	  20000000 ns/cycle	        50 cycles/sec
BenchmarkStepSharded/MidLoad/shards=8-8 	       1	12000000000 ns/op	  30000000 ns/cycle	        33 cycles/sec
BenchmarkStepSharded/NoBase/shards=4-8  	       1	 1000000000 ns/op	   2500000 ns/cycle	       400 cycles/sec
PASS
`

func TestParseShardScaling(t *testing.T) {
	doc, err := parse(strings.NewReader(shardedSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.ParallelScaling) != 1 {
		t.Fatalf("ParallelScaling groups = %v, want only the group with a shards=1 baseline", doc.ParallelScaling)
	}
	pts := doc.ParallelScaling["BenchmarkStepSharded/MidLoad"]
	if len(pts) != 3 {
		t.Fatalf("MidLoad points = %+v, want 3", pts)
	}
	for i, want := range []ShardPoint{
		{Shards: 1, NsPerCycle: 22500000, SpeedupVsSerial: 1},
		{Shards: 2, NsPerCycle: 20000000, SpeedupVsSerial: 1.125},
		{Shards: 8, NsPerCycle: 30000000, SpeedupVsSerial: 0.75},
	} {
		if pts[i] != want {
			t.Errorf("point %d = %+v, want %+v", i, pts[i], want)
		}
	}
}

const rngSample = `BenchmarkStepRNG/LowLoad/rng=exact-8   	     200	    400000 ns/op	      2000 ns/cycle	    500000 cycles/sec
BenchmarkStepRNG/LowLoad/rng=counter-8 	     800	    100000 ns/op	       500 ns/cycle	   2000000 cycles/sec
BenchmarkFig11RNG/rng=exact-8          	       2	 600000000 ns/op	        12 rows
BenchmarkFig11RNG/rng=counter-8        	       6	 200000000 ns/op	        12 rows
BenchmarkStepRNG/Orphan/rng=counter-8  	     100	    300000 ns/op	      1500 ns/cycle
PASS
`

func TestParseRNGComparison(t *testing.T) {
	doc, err := parse(strings.NewReader(rngSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.FastVsExact) != 2 {
		t.Fatalf("fast_vs_exact = %v, want the LowLoad and Fig11 pairs (no Orphan)", doc.FastVsExact)
	}
	low := doc.FastVsExact["BenchmarkStepRNG/LowLoad"]
	// Steady-state pairs compare on ns/cycle, not ns/op.
	if low.Unit != "ns/cycle" || low.ExactNs != 2000 || low.FastNs != 500 || low.Speedup != 4 {
		t.Errorf("LowLoad comparison = %+v", low)
	}
	fig := doc.FastVsExact["BenchmarkFig11RNG"]
	// Whole-experiment pairs have no ns/cycle and fall back to ns/op.
	if fig.Unit != "ns/op" || fig.ExactNs != 600000000 || fig.FastNs != 200000000 || fig.Speedup != 3 {
		t.Errorf("Fig11 comparison = %+v", fig)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkX notanumber 5 ns/op\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 || doc.EventVsDense != nil {
		t.Fatalf("garbage parsed into %+v", doc)
	}
}

// merge must append new SHAs, replace re-runs of the same SHA in
// place, and fold a pre-history document (bare entry at top level)
// into history[0].
func TestMergeHistory(t *testing.T) {
	e1 := Entry{SHA: "aaa", Date: "2026-08-01", Benchmarks: []Benchmark{{Name: "B1", Iterations: 1}}}
	doc, err := merge(nil, e1)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 1 || doc.History[0].SHA != "aaa" {
		t.Fatalf("fresh merge = %+v", doc)
	}

	prev, _ := json.Marshal(doc)
	e2 := Entry{SHA: "bbb", Date: "2026-08-07", Benchmarks: []Benchmark{{Name: "B2", Iterations: 2}}}
	doc, err = merge(prev, e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 2 || doc.History[0].SHA != "aaa" || doc.History[1].SHA != "bbb" {
		t.Fatalf("append merge = %+v", doc)
	}

	prev, _ = json.Marshal(doc)
	e2b := Entry{SHA: "bbb", Date: "2026-08-08", Benchmarks: []Benchmark{{Name: "B2", Iterations: 3}}}
	doc, err = merge(prev, e2b)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 2 || doc.History[1].Date != "2026-08-08" || doc.History[1].Benchmarks[0].Iterations != 3 {
		t.Fatalf("same-SHA merge did not replace: %+v", doc)
	}
}

func TestMergeFoldsLegacyDocument(t *testing.T) {
	legacy := `{"benchmarks":[{"name":"BenchmarkStep/LowLoad/event","iterations":100,"metrics":{"ns/cycle":2074}}],"notes":["old run"]}`
	doc, err := merge([]byte(legacy), Entry{SHA: "ccc", Benchmarks: []Benchmark{{Name: "B3"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.History) != 2 {
		t.Fatalf("history = %+v, want legacy + new", doc.History)
	}
	if doc.History[0].SHA != "" || len(doc.History[0].Benchmarks) != 1 || doc.History[0].Notes[0] != "old run" {
		t.Fatalf("legacy fold = %+v", doc.History[0])
	}
	if doc.History[1].SHA != "ccc" {
		t.Fatalf("new entry = %+v", doc.History[1])
	}
}

// merge must pair the busy-cycle load points of the incoming entry
// against the most recent entry of a different SHA — including when the
// incoming entry replaces its own earlier run.
func TestMergeComputesBusyCycle(t *testing.T) {
	mk := func(sha string, ns, allocs, bytes float64) Entry {
		return Entry{SHA: sha, Benchmarks: []Benchmark{{
			Name:       "BenchmarkStep/MidLoad/event",
			Iterations: 100,
			Metrics:    map[string]float64{"ns/cycle": ns, "allocs/op": allocs, "B/op": bytes},
		}}}
	}
	doc, err := merge(nil, mk("aaa", 13000, 32000, 4.0e6))
	if err != nil {
		t.Fatal(err)
	}
	if doc.History[0].BusyCycle != nil {
		t.Fatalf("first entry has nothing to compare against: %+v", doc.History[0].BusyCycle)
	}
	prev, _ := json.Marshal(doc)
	doc, err = merge(prev, mk("bbb", 6500, 3200, 1.0e6))
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := doc.History[1].BusyCycle["BenchmarkStep/MidLoad/event"]
	if !ok {
		t.Fatalf("busy_cycle missing: %+v", doc.History[1])
	}
	if bc.Unit != "ns/cycle" || bc.PrevNs != 13000 || bc.Ns != 6500 || bc.Speedup != 2 {
		t.Errorf("time pairing = %+v", bc)
	}
	if bc.PrevAllocs != 32000 || bc.Allocs != 3200 || bc.AllocsRatio != 10 {
		t.Errorf("alloc pairing = %+v", bc)
	}
	// Re-benching bbb must still pair against aaa, not against itself.
	prev, _ = json.Marshal(doc)
	doc, err = merge(prev, mk("bbb", 13000, 32000, 4.0e6))
	if err != nil {
		t.Fatal(err)
	}
	if bc := doc.History[1].BusyCycle["BenchmarkStep/MidLoad/event"]; bc.Speedup != 1 || bc.PrevNs != 13000 {
		t.Errorf("same-SHA re-merge pairing = %+v", bc)
	}
}

func TestMergeRejectsCorruptPrev(t *testing.T) {
	if _, err := merge([]byte("{not json"), Entry{}); err == nil {
		t.Fatal("corrupt previous file accepted")
	}
}
