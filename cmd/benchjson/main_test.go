package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: drain
cpu: some cpu
BenchmarkStep/LowLoad/event-8         	     100	    527816 ns/op	      2074 ns/cycle	    482210 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/LowLoad/dense-8         	      60	    903210 ns/op	      3515 ns/cycle	    284500 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/Saturation/event-8      	      12	  48100000 ns/op	      9620 ns/cycle	    103950 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkStep/Saturation/dense-8      	      12	  46500000 ns/op	      9300 ns/cycle	    107527 cycles/sec	       0 B/op	       0 allocs/op
BenchmarkParallelSweep-8              	       5	 250000000 ns/op
PASS
ok  	drain	10.2s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkStep/LowLoad/event" || b.Iterations != 100 {
		t.Fatalf("first benchmark = %+v", b)
	}
	for unit, want := range map[string]float64{
		"ns/op": 527816, "ns/cycle": 2074, "cycles/sec": 482210, "B/op": 0, "allocs/op": 0,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	if got := doc.Benchmarks[4].Name; got != "BenchmarkParallelSweep" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", got)
	}
	if len(doc.EventVsDense) != 2 {
		t.Fatalf("comparisons = %v, want 2 load points", doc.EventVsDense)
	}
	low := doc.EventVsDense["BenchmarkStep/LowLoad"]
	if low.DenseNsPerCycle != 3515 || low.EventNsPerCycle != 2074 {
		t.Fatalf("LowLoad comparison = %+v", low)
	}
	if low.Speedup < 1.69 || low.Speedup > 1.70 {
		t.Errorf("LowLoad speedup = %v, want 3515/2074", low.Speedup)
	}
	sat := doc.EventVsDense["BenchmarkStep/Saturation"]
	if sat.Speedup >= 1 {
		// The sample encodes a slight saturation regression; the ratio
		// must reflect it rather than clamp.
		t.Errorf("Saturation speedup = %v, want <1", sat.Speedup)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	doc, err := parse(strings.NewReader("hello\nBenchmarkX notanumber 5 ns/op\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 || doc.EventVsDense != nil {
		t.Fatalf("garbage parsed into %+v", doc)
	}
}
