// Command benchjson converts `go test -bench` output (benchstat-
// compatible text, read from stdin) into a machine-readable JSON
// summary. For every benchmark it records the iteration count and each
// reported metric (ns/op, ns/cycle, cycles/sec, B/op, allocs/op, ...);
// for BenchmarkStep's load-point sub-benchmarks it additionally pairs
// the event- and dense-engine variants and computes the event-core
// speedup at each load point. `make bench` pipes through it to produce
// BENCH_noc.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Comparison pairs the two engine variants of one load point.
type Comparison struct {
	DenseNsPerCycle float64 `json:"dense_ns_per_cycle"`
	EventNsPerCycle float64 `json:"event_ns_per_cycle"`
	// Speedup is dense/event wall-clock per simulated cycle: >1 means
	// the event core is faster at this load point.
	Speedup float64 `json:"speedup"`
}

// Output is the BENCH_noc.json document.
type Output struct {
	Benchmarks   []Benchmark           `json:"benchmarks"`
	EventVsDense map[string]Comparison `json:"event_vs_dense,omitempty"`
	Notes        []string              `json:"notes,omitempty"`
}

type noteList []string

func (n *noteList) String() string     { return strings.Join(*n, "; ") }
func (n *noteList) Set(s string) error { *n = append(*n, s); return nil }

func main() {
	var notes noteList
	flag.Var(&notes, "note", "free-text note to embed in the output (repeatable)")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Notes = notes

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads benchstat-compatible benchmark text: lines of the form
//
//	BenchmarkName-8  <iters>  <value> <unit>  <value> <unit> ...
//
// Non-benchmark lines (goos/goarch headers, PASS/ok trailers) pass
// through unparsed.
func parse(r io.Reader) (*Output, error) {
	doc := &Output{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := f[0]
		// Strip the trailing -GOMAXPROCS decoration from the last path
		// element.
		if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
			name = name[:i]
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[f[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	doc.EventVsDense = compare(doc.Benchmarks)
	return doc, nil
}

// compare pairs ".../event" and ".../dense" variants that share a
// parent name and report ns/cycle.
func compare(bs []Benchmark) map[string]Comparison {
	type pair struct{ event, dense float64 }
	pairs := map[string]*pair{}
	for _, b := range bs {
		i := strings.LastIndexByte(b.Name, '/')
		if i < 0 {
			continue
		}
		parent, variant := b.Name[:i], b.Name[i+1:]
		v, ok := b.Metrics["ns/cycle"]
		if !ok {
			continue
		}
		p := pairs[parent]
		if p == nil {
			p = &pair{}
			pairs[parent] = p
		}
		switch variant {
		case "event":
			p.event = v
		case "dense":
			p.dense = v
		}
	}
	out := map[string]Comparison{}
	for parent, p := range pairs {
		if p.event <= 0 || p.dense <= 0 {
			continue
		}
		out[parent] = Comparison{
			DenseNsPerCycle: p.dense,
			EventNsPerCycle: p.event,
			Speedup:         p.dense / p.event,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
