// Command benchjson converts `go test -bench` output (benchstat-
// compatible text, read from stdin) into a machine-readable JSON
// history. For every benchmark it records the iteration count and each
// reported metric (ns/op, ns/cycle, cycles/sec, B/op, allocs/op, ...);
// for BenchmarkStep's load-point sub-benchmarks it pairs the event- and
// dense-engine variants and computes the event-core speedup at each
// load point, for BenchmarkStepSharded's shards=N variants it computes
// each shard count's speedup over the serial shards=1 run, and for
// rng=exact/rng=counter variant pairs (BenchmarkStepRNG,
// BenchmarkFig11RNG) it computes the counter-mode speedup over exact.
//
// The output document is an append-only `history` array keyed by git
// SHA + date: if -out already exists, the new entry is appended (or
// replaces an existing entry with the same SHA, so re-running a bench
// at one commit is idempotent) instead of discarding prior runs.
// Pre-history documents (a bare entry at top level) are folded in as
// the first history element. `make bench` pipes through it to produce
// BENCH_noc.json.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Comparison pairs the two engine variants of one load point.
type Comparison struct {
	DenseNsPerCycle float64 `json:"dense_ns_per_cycle"`
	EventNsPerCycle float64 `json:"event_ns_per_cycle"`
	// Speedup is dense/event wall-clock per simulated cycle: >1 means
	// the event core is faster at this load point.
	Speedup float64 `json:"speedup"`
}

// ShardPoint is one shard count of a sharded-step benchmark group.
type ShardPoint struct {
	Shards     int     `json:"shards"`
	NsPerCycle float64 `json:"ns_per_cycle"`
	// SpeedupVsSerial is the shards=1 wall-clock per simulated cycle
	// divided by this point's: >1 means the sharded run is faster.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// RNGComparison pairs the exact- and counter-mode variants of one
// benchmark. The unit records what was compared: ns/cycle for steady-
// state loops (BenchmarkStepRNG), ns/op for whole-experiment runs
// (BenchmarkFig11RNG).
type RNGComparison struct {
	ExactNs float64 `json:"exact_ns"`
	FastNs  float64 `json:"fast_ns"`
	Unit    string  `json:"unit"`
	// Speedup is exact/counter wall clock: >1 means the counter mode is
	// faster at this point.
	Speedup float64 `json:"speedup"`
}

// BusyCyclePoint pairs one hot benchmark's headline metrics in this run
// against the previous recorded run: the busy-cycle cost before and
// after whatever the commit changed. Unlike the same-binary ratios
// (event_vs_dense, fast_vs_exact), this is a cross-binary — possibly
// cross-machine — comparison, so treat the time speedup as indicative
// and the allocation columns (which the runtime counts exactly) as the
// hard numbers.
type BusyCyclePoint struct {
	Unit   string  `json:"unit"` // ns/cycle for Step points, ns/op for fig11
	PrevNs float64 `json:"prev_ns"`
	Ns     float64 `json:"ns"`
	// Speedup is prev/now wall clock: >1 means this run is faster.
	Speedup     float64 `json:"speedup"`
	PrevAllocs  float64 `json:"prev_allocs_per_op"`
	Allocs      float64 `json:"allocs_per_op"`
	AllocsRatio float64 `json:"allocs_ratio"` // prev/now; >1 means fewer allocations now
	PrevBytes   float64 `json:"prev_bytes_per_op"`
	Bytes       float64 `json:"bytes_per_op"`
}

// Entry is one benchmark run, keyed by the commit it measured.
type Entry struct {
	SHA             string                    `json:"sha,omitempty"`
	Date            string                    `json:"date,omitempty"`
	Benchmarks      []Benchmark               `json:"benchmarks"`
	EventVsDense    map[string]Comparison     `json:"event_vs_dense,omitempty"`
	ParallelScaling map[string][]ShardPoint   `json:"parallel_scaling,omitempty"`
	FastVsExact     map[string]RNGComparison  `json:"fast_vs_exact,omitempty"`
	BusyCycle       map[string]BusyCyclePoint `json:"busy_cycle,omitempty"`
	Notes           []string                  `json:"notes,omitempty"`
}

// Output is the BENCH_noc.json document: every recorded run, oldest
// first.
type Output struct {
	History []Entry `json:"history"`
}

type noteList []string

func (n *noteList) String() string     { return strings.Join(*n, "; ") }
func (n *noteList) Set(s string) error { *n = append(*n, s); return nil }

func main() {
	var notes noteList
	flag.Var(&notes, "note", "free-text note to embed in the new entry (repeatable)")
	out := flag.String("out", "", "output file (default stdout); an existing history there is kept and appended to")
	sha := flag.String("sha", "", "git commit the run measured (history key)")
	date := flag.String("date", "", "run date, YYYY-MM-DD")
	flag.Parse()

	entry, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	entry.SHA = *sha
	entry.Date = *date
	entry.Notes = notes

	var prev []byte
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			prev = data
		}
	}
	doc, err := merge(prev, *entry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// merge appends entry to the history found in prev (the prior contents
// of the output file; nil or empty means none). A pre-history document
// — a bare entry at top level, as benchjson wrote before the history
// format — becomes the first element. An existing entry with the same
// SHA is replaced in place so re-benching one commit never duplicates.
func merge(prev []byte, entry Entry) (*Output, error) {
	doc := &Output{}
	if len(prev) > 0 {
		if err := json.Unmarshal(prev, doc); err != nil {
			return nil, fmt.Errorf("existing output file: %w", err)
		}
		if doc.History == nil {
			var legacy Entry
			if err := json.Unmarshal(prev, &legacy); err != nil {
				return nil, fmt.Errorf("existing output file: %w", err)
			}
			if legacy.Benchmarks != nil {
				doc.History = []Entry{legacy}
			}
		}
	}
	// Pair the busy-cycle load points against the most recent run of a
	// DIFFERENT commit, so re-benching one commit still compares against
	// its predecessor rather than itself.
	for i := len(doc.History) - 1; i >= 0; i-- {
		if doc.History[i].SHA != entry.SHA {
			entry.BusyCycle = compareBusy(&doc.History[i], &entry)
			break
		}
	}
	for i := range doc.History {
		if entry.SHA != "" && doc.History[i].SHA == entry.SHA {
			doc.History[i] = entry
			return doc, nil
		}
	}
	doc.History = append(doc.History, entry)
	return doc, nil
}

// busyCycleNames are the load points the busy-cycle comparison tracks:
// the event-engine Step points across the load sweep plus the
// whole-experiment fig11 run.
var busyCycleNames = []string{
	"BenchmarkStep/LowLoad/event",
	"BenchmarkStep/MidLoad/event",
	"BenchmarkStep/Saturation/event",
	"BenchmarkFig11RNG/rng=exact",
}

// compareBusy pairs cur's busy-cycle load points against prev's.
func compareBusy(prev, cur *Entry) map[string]BusyCyclePoint {
	find := func(e *Entry, name string) *Benchmark {
		for i := range e.Benchmarks {
			if e.Benchmarks[i].Name == name {
				return &e.Benchmarks[i]
			}
		}
		return nil
	}
	out := map[string]BusyCyclePoint{}
	for _, name := range busyCycleNames {
		pb, cb := find(prev, name), find(cur, name)
		if pb == nil || cb == nil {
			continue
		}
		unit := "ns/cycle"
		pv, pok := pb.Metrics[unit]
		cv, cok := cb.Metrics[unit]
		if !pok || !cok {
			unit = "ns/op"
			pv, pok = pb.Metrics[unit]
			cv, cok = cb.Metrics[unit]
		}
		if !pok || !cok || pv <= 0 || cv <= 0 {
			continue
		}
		pt := BusyCyclePoint{
			Unit: unit, PrevNs: pv, Ns: cv, Speedup: pv / cv,
			PrevAllocs: pb.Metrics["allocs/op"], Allocs: cb.Metrics["allocs/op"],
			PrevBytes: pb.Metrics["B/op"], Bytes: cb.Metrics["B/op"],
		}
		if pt.Allocs > 0 {
			pt.AllocsRatio = pt.PrevAllocs / pt.Allocs
		}
		out[name] = pt
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// parse reads benchstat-compatible benchmark text: lines of the form
//
//	BenchmarkName-8  <iters>  <value> <unit>  <value> <unit> ...
//
// Non-benchmark lines (goos/goarch headers, PASS/ok trailers) pass
// through unparsed.
func parse(r io.Reader) (*Entry, error) {
	e := &Entry{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		name := f[0]
		// Strip the trailing -GOMAXPROCS decoration from the last path
		// element.
		if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/') {
			name = name[:i]
		}
		b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[f[i+1]] = v
		}
		e.Benchmarks = append(e.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	e.EventVsDense = compare(e.Benchmarks)
	e.ParallelScaling = compareShards(e.Benchmarks)
	e.FastVsExact = compareRNG(e.Benchmarks)
	return e, nil
}

// compare pairs ".../event" and ".../dense" variants that share a
// parent name and report ns/cycle.
func compare(bs []Benchmark) map[string]Comparison {
	type pair struct{ event, dense float64 }
	pairs := map[string]*pair{}
	for _, b := range bs {
		i := strings.LastIndexByte(b.Name, '/')
		if i < 0 {
			continue
		}
		parent, variant := b.Name[:i], b.Name[i+1:]
		v, ok := b.Metrics["ns/cycle"]
		if !ok {
			continue
		}
		p := pairs[parent]
		if p == nil {
			p = &pair{}
			pairs[parent] = p
		}
		switch variant {
		case "event":
			p.event = v
		case "dense":
			p.dense = v
		}
	}
	out := map[string]Comparison{}
	for parent, p := range pairs {
		if p.event <= 0 || p.dense <= 0 {
			continue
		}
		out[parent] = Comparison{
			DenseNsPerCycle: p.dense,
			EventNsPerCycle: p.event,
			Speedup:         p.dense / p.event,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// compareRNG pairs ".../rng=exact" and ".../rng=counter" variants that
// share a parent name. Steady-state pairs compare on ns/cycle; whole-
// experiment pairs (no ns/cycle metric) fall back to ns/op. A pair
// whose variants report different units is dropped rather than
// compared across units.
func compareRNG(bs []Benchmark) map[string]RNGComparison {
	type point struct {
		v    float64
		unit string
	}
	type pair struct{ exact, counter point }
	pairs := map[string]*pair{}
	for _, b := range bs {
		i := strings.LastIndexByte(b.Name, '/')
		if i < 0 || !strings.HasPrefix(b.Name[i+1:], "rng=") {
			continue
		}
		pt := point{unit: "ns/cycle"}
		var ok bool
		if pt.v, ok = b.Metrics["ns/cycle"]; !ok {
			pt.unit = "ns/op"
			if pt.v, ok = b.Metrics["ns/op"]; !ok {
				continue
			}
		}
		p := pairs[b.Name[:i]]
		if p == nil {
			p = &pair{}
			pairs[b.Name[:i]] = p
		}
		switch b.Name[i+1+len("rng="):] {
		case "exact":
			p.exact = pt
		case "counter":
			p.counter = pt
		}
	}
	out := map[string]RNGComparison{}
	for parent, p := range pairs {
		if p.exact.v <= 0 || p.counter.v <= 0 || p.exact.unit != p.counter.unit {
			continue
		}
		out[parent] = RNGComparison{
			ExactNs: p.exact.v,
			FastNs:  p.counter.v,
			Unit:    p.exact.unit,
			Speedup: p.exact.v / p.counter.v,
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// compareShards groups ".../shards=N" variants by parent name and
// computes each shard count's speedup over that parent's shards=1 run.
// Groups without a shards=1 baseline are dropped.
func compareShards(bs []Benchmark) map[string][]ShardPoint {
	groups := map[string][]ShardPoint{}
	for _, b := range bs {
		i := strings.LastIndexByte(b.Name, '/')
		if i < 0 || !strings.HasPrefix(b.Name[i+1:], "shards=") {
			continue
		}
		n, err := strconv.Atoi(b.Name[i+1+len("shards="):])
		if err != nil || n <= 0 {
			continue
		}
		v, ok := b.Metrics["ns/cycle"]
		if !ok || v <= 0 {
			continue
		}
		parent := b.Name[:i]
		groups[parent] = append(groups[parent], ShardPoint{Shards: n, NsPerCycle: v})
	}
	out := map[string][]ShardPoint{}
	for parent, pts := range groups {
		var serial float64
		for _, p := range pts {
			if p.Shards == 1 {
				serial = p.NsPerCycle
			}
		}
		if serial <= 0 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Shards < pts[j].Shards })
		for i := range pts {
			pts[i].SpeedupVsSerial = serial / pts[i].NsPerCycle
		}
		out[parent] = pts
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
