package main

import (
	"bufio"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeAndGracefulShutdown builds the real binary, serves one job
// over HTTP, then sends SIGTERM and requires a clean drain to exit 0.
func TestServeAndGracefulShutdown(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "drainserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill()

	// First stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := strings.TrimSpace(line[i+len(marker):])

	// Drain the rest of stdout in the background so the child never
	// blocks on a full pipe, and keep it for the shutdown assertions.
	rest := make(chan string, 1)
	go func() {
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text())
			b.WriteByte('\n')
		}
		rest <- b.String()
	}()

	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hz.StatusCode)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"fig":"fig6"}`))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status %d: %s", resp.StatusCode, body)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Wait for stdout EOF (the child exiting closes the pipe) BEFORE
	// calling Wait: Wait closes the read side and would race the
	// scanner goroutine out of the final log lines.
	var tail string
	select {
	case tail = <-rest:
	case <-time.After(30 * time.Second):
		t.Fatal("stdout not closed within 30s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM: %v (want exit 0)", err)
	}
	if !strings.Contains(tail, "drainserved: stopped") {
		t.Fatalf("shutdown log missing 'stopped':\n%s", tail)
	}
}

// TestBadFlags pins the usage exit code.
func TestBadFlags(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if code := run([]string{"-no-such-flag"}, devnull, devnull); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}
