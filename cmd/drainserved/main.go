// Command drainserved serves the DRAIN simulator over HTTP: POST
// figure or sweep jobs to /v1/jobs and get back the same deterministic
// tables the CLIs print, with identical requests answered from a
// content-addressed cache. See internal/server for the API.
//
// Usage:
//
//	drainserved -addr :8080 -workers 2 -queue 64
//
// SIGINT/SIGTERM triggers a graceful drain: in-flight and queued jobs
// finish, new submissions get 503, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"drain/internal/experiments"
	"drain/internal/server"
	"drain/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("drainserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	queue := fs.Int("queue", 64, "bounded job queue depth (beyond it, 429 + Retry-After)")
	workers := fs.Int("workers", 2, "concurrent simulation jobs")
	jobTimeout := fs.Duration("job-timeout", 5*time.Minute, "per-job execution timeout")
	cacheEntries := fs.Int("cache-entries", 1024, "content-addressed result cache capacity")
	parallel := fs.Int("parallel", 1, "experiment-pool workers per job (experiments.SetParallelism)")
	shards := fs.Int("shards", 0, "default intra-run shard count for the parallel engine (0 = serial; per-sweep \"shards\" overrides; results are identical for any value)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "max time to finish jobs after SIGTERM before aborting them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	experiments.SetParallelism(*parallel)
	sim.SetDefaultShards(*shards)

	s := server.New(server.Config{
		QueueDepth:   *queue,
		Workers:      *workers,
		JobTimeout:   *jobTimeout,
		CacheEntries: *cacheEntries,
		Shards:       *shards,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "drainserved: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler()}

	// The "listening on" line is the startup handshake: scripts (and the
	// smoke test) parse it to learn the bound port.
	fmt.Fprintf(stdout, "drainserved listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "drainserved: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "drainserved: draining")
	// Stop accepting connections, then finish queued + in-flight jobs.
	// If they exceed the drain budget, abort them via ForceStop so the
	// process still exits cleanly.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drained := make(chan struct{})
	go func() {
		s.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-shutCtx.Done():
		fmt.Fprintln(stderr, "drainserved: drain timeout, aborting in-flight jobs")
		s.ForceStop()
		<-drained
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "drainserved: shutdown: %v\n", err)
	}
	fmt.Fprintln(stdout, "drainserved: stopped")
	return 0
}
