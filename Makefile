GO ?= go
# bench pipes `go test` through tee; bash + pipefail keeps a failing
# bench run from silently producing stale artifacts (dash would report
# tee's exit status instead).
SHELL := /bin/bash

.PHONY: check build vet lint test-race test-allocs bench bench-all fuzz results clean

## check: build + vet + drainvet + race tests + the hot-path allocation
## guard.
# The race run uses -short (race instrumentation makes the simulator ~10x
# slower); the allocation guard needs a separate non-race run because the
# detector's bookkeeping allocations would trip it (TestStepAllocs skips
# itself under race).
check: build vet lint test-race test-allocs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repo's own static analyzers over the whole module — the
## syntactic four (maprange, nondet, hotalloc, ctxflow) plus the
## dataflow four (shardsafe, serialrng, keycomplete, escapecheck); see
## internal/lint and DESIGN.md §10/§13.
lint:
	$(GO) run ./cmd/drainvet ./...

test-race:
	$(GO) test -race -short ./...

test-allocs:
	$(GO) test -run 'TestStepAllocs|TestRunAllocsPerDeliveredPacket|TestGoldenCounters' -count=1 . ./internal/sim

## bench: run the hot-path benchmarks (BenchmarkStep's event/dense load
## points, BenchmarkStepSharded's shards=N scaling on the 64x64 mesh,
## plus BenchmarkStepRNG's and BenchmarkFig11RNG's rng=exact/rng=counter
## pairs), keeping the raw benchstat-compatible text in BENCH_noc.txt
## and appending a machine-readable entry (ns/cycle, cycles/sec, allocs,
## event-vs-dense, shards-vs-serial and fast-vs-exact speedups) to the
## history array in BENCH_noc.json, keyed by git SHA + date — prior runs
## are kept, and re-benching the same commit replaces its entry. Feed
## BENCH_noc.txt files from two builds to benchstat for A/B comparisons;
## the event/dense and exact/counter sub-benchmarks give same-binary
## comparisons immune to machine drift.
bench:
	set -o pipefail; $(GO) test -bench='BenchmarkStep|BenchmarkFig11RNG' -benchmem -run=^$$ -count=1 . | tee BENCH_noc.txt
	$(GO) run ./cmd/benchjson -out BENCH_noc.json \
		-sha "$$(git rev-parse --short HEAD)$$(git diff --quiet HEAD -- . ':!BENCH_noc.json' ':!BENCH_noc.txt' || echo -dirty)" \
		-date "$$(date -u +%F)" \
		-note "event-vs-dense speedups are same-binary, same-run ratios of BenchmarkStep's engine sub-benchmarks (see DESIGN.md 'Event-driven core' for the measurement protocol)" \
		-note "shards-vs-serial speedups compare BenchmarkStepSharded's parallel-engine shard counts against shards=1 on the same binary; they depend on available CPUs (see DESIGN.md 'Sharded parallel engine')" \
		-note "fast-vs-exact speedups compare the counter-based RNG mode against exact mode on the same binary, interleaved runs; the win is concentrated at idle-dominated loads where fast-forward windows open (see DESIGN.md 'Counter-based RNG mode')" \
		< BENCH_noc.txt

## bench-all: every benchmark, including the full experiment
## reproductions (slow; minutes to hours depending on scale).
bench-all:
	$(GO) test -bench=. -benchmem -run=^$$ .

## fuzz: short native-fuzz smoke over the noc invariant properties and
## the dense-vs-event engine byte-identity differential.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConservation -fuzztime=$(FUZZTIME) ./internal/noc
	$(GO) test -run=^$$ -fuzz=FuzzDrainRotation -fuzztime=$(FUZZTIME) ./internal/noc
	$(GO) test -run=^$$ -fuzz=FuzzDenseVsEvent -fuzztime=$(FUZZTIME) ./internal/noc

## results: regenerate the quick-scale markdown tables under results/.
results:
	$(GO) run ./cmd/experiments -fig all -scale quick -out results

clean:
	$(GO) clean ./...
