GO ?= go

.PHONY: check build vet test-race test-allocs bench results clean

## check: build + vet + race tests + the hot-path allocation guard.
# The race run uses -short (race instrumentation makes the simulator ~10x
# slower); the allocation guard needs a separate non-race run because the
# detector's bookkeeping allocations would trip it (TestStepAllocs skips
# itself under race).
check: build vet test-race test-allocs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test-race:
	$(GO) test -race -short ./...

test-allocs:
	$(GO) test -run 'TestStepAllocs|TestGoldenCounters' -count=1 . ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## results: regenerate the quick-scale markdown tables under results/.
results:
	$(GO) run ./cmd/experiments -fig all -scale quick -out results

clean:
	$(GO) clean ./...
