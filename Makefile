GO ?= go

.PHONY: check build vet lint test-race test-allocs bench fuzz results clean

## check: build + vet + drainvet + race tests + the hot-path allocation
## guard.
# The race run uses -short (race instrumentation makes the simulator ~10x
# slower); the allocation guard needs a separate non-race run because the
# detector's bookkeeping allocations would trip it (TestStepAllocs skips
# itself under race).
check: build vet lint test-race test-allocs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: the repo's own static analyzers (maprange, nondet, hotalloc,
## ctxflow) over the whole module; see internal/lint and DESIGN.md.
lint:
	$(GO) run ./cmd/drainvet ./...

test-race:
	$(GO) test -race -short ./...

test-allocs:
	$(GO) test -run 'TestStepAllocs|TestGoldenCounters' -count=1 . ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

## fuzz: short native-fuzz smoke over the noc invariant properties.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzConservation -fuzztime=$(FUZZTIME) ./internal/noc
	$(GO) test -run=^$$ -fuzz=FuzzDrainRotation -fuzztime=$(FUZZTIME) ./internal/noc

## results: regenerate the quick-scale markdown tables under results/.
results:
	$(GO) run ./cmd/experiments -fig all -scale quick -out results

clean:
	$(GO) clean ./...
