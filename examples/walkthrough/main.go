// Walkthrough reproduces the paper's Fig. 8 step by step: a 3x3 mesh
// with a faulty link between routers 2 and 5, two planted deadlock
// cycles, and a single drain window that forces every deadlocked packet
// one hop along the drain path — breaking both cycles.
package main

import (
	"context"
	"fmt"
	"log"

	"drain/internal/experiments"
)

func main() {
	fmt.Println("DRAIN walk-through (paper Fig. 8)")
	fmt.Println("topology: 3x3 mesh, link 2-5 faulty")
	fmt.Print(`
    6 - 7 - 8
    |   |   |
    3 - 4   5
    |   |   |
    0 - 1 - 2   (edge 4-5 present; edge 2-5 removed)
`)
	e, ok := experiments.ByID("fig8")
	if !ok {
		log.Fatal("fig8 experiment not registered")
	}
	tables, err := e.Run(context.Background(), experiments.Quick, 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Println(t.Markdown())
	}
	fmt.Println("Two cycles of four packets each were planted so that every packet's only")
	fmt.Println("minimal next hop was held by the next packet — a textbook routing deadlock.")
	fmt.Println("The drain window forced all of them one hop along the statically computed")
	fmt.Println("drain path; misrouted packets then re-routed and every packet was delivered.")
}
