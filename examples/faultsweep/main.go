// Faultsweep demonstrates DRAIN's fault-tolerance story (paper §II-D):
// as links fail over a chip's lifetime, the offline algorithm recomputes
// the drain path for each new irregular topology and the network keeps
// running with unrestricted adaptive routing — no routing-restriction
// reconfiguration needed.
package main

import (
	"fmt"
	"log"

	"drain"
)

func main() {
	fmt.Println("8x8 mesh aging: random link failures accumulate; DRAIN recomputes its")
	fmt.Println("drain path after each failure and keeps the network deadlock-free.")
	fmt.Println()
	fmt.Printf("%7s %12s %12s %12s %10s\n", "faults", "drain links", "accepted", "avg latency", "p99")
	for _, faults := range []int{0, 2, 4, 8, 12} {
		path, err := drain.ComputeDrainPath(8, 8, faults, 42)
		if err != nil {
			log.Fatal(err)
		}
		res, err := drain.Run(drain.Config{
			Width: 8, Height: 8,
			Faults: faults, FaultSeed: 42,
			Scheme:  drain.DRAIN,
			Pattern: "uniform", Rate: 0.10,
			Warmup: 5_000, Measure: 20_000,
			Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d %12d %12.4f %12.1f %10d\n",
			faults, len(path.Hops), res.Accepted, res.AvgLatency, res.P99Latency)
	}
	fmt.Println("\nEach row is a progressively more irregular topology; the drain path always")
	fmt.Println("exists (a connected network with bidirectional links and U-turns always has")
	fmt.Println("a cycle covering all links, paper §III-A) and performance degrades gracefully")
	fmt.Println("with the lost bandwidth rather than with routing restrictions.")
}
