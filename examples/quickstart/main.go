// Quickstart: compare the three deadlock-freedom schemes on a faulty
// 8x8 mesh under uniform random traffic, and print the drain path DRAIN
// computed for the irregular topology.
package main

import (
	"fmt"
	"log"

	"drain"
)

func main() {
	const (
		faults = 4
		rate   = 0.10
	)
	fmt.Printf("8x8 mesh, %d random link failures, uniform random traffic at %.2f packets/node/cycle\n\n",
		faults, rate)

	fmt.Printf("%-10s %10s %12s %8s %8s\n", "scheme", "accepted", "avg latency", "p99", "drains")
	for _, s := range []drain.Scheme{drain.EscapeVC, drain.SPIN, drain.DRAIN} {
		res, err := drain.Run(drain.Config{
			Width: 8, Height: 8,
			Faults: faults, FaultSeed: 7,
			Scheme:  s,
			Pattern: "uniform", Rate: rate,
			Warmup: 5_000, Measure: 20_000,
			Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %10.4f %12.1f %8d %8d\n",
			s, res.Accepted, res.AvgLatency, res.P99Latency, res.Drains)
	}

	// The offline algorithm (paper §III-B): one cycle covering every
	// unidirectional link of the irregular topology.
	path, err := drain.ComputeDrainPath(8, 8, faults, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndrain path: a single cycle over all %d unidirectional links\n", len(path.Hops))
	fmt.Print("first 10 hops: ")
	for i := 0; i < 10 && i < len(path.Hops); i++ {
		fmt.Printf("%d→%d ", path.Hops[i][0], path.Hops[i][1])
	}
	fmt.Println("…")
}
