// Coherence demonstrates protocol-level deadlock freedom without
// virtual networks: a MESI-coherent 16-core system whose request,
// forward and response messages all share ONE virtual network, kept live
// by DRAIN's periodic drains — versus the conventional 3-virtual-network
// provisioning.
package main

import (
	"fmt"
	"log"

	"drain"
)

func main() {
	const workload = "canneal"
	fmt.Printf("MESI-coherent 4x4 system running %q (paper's most network-intensive PARSEC workload)\n\n", workload)

	type cfg struct {
		name   string
		scheme drain.Scheme
		vnets  int
		vcs    int
	}
	for _, c := range []cfg{
		{"escape VCs, 3 virtual networks", drain.EscapeVC, 3, 2},
		{"SPIN,       3 virtual networks", drain.SPIN, 3, 2},
		{"DRAIN,      1 virtual network ", drain.DRAIN, 1, 2},
	} {
		res, err := drain.Run(drain.Config{
			Width: 4, Height: 4,
			Scheme: c.scheme, VNets: c.vnets, VCsPerVN: c.vcs,
			Workload:  workload,
			OpsTarget: 400, MaxCycles: 2_000_000,
			Epoch: 8192, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "completed"
		if !res.Completed {
			status = "DID NOT COMPLETE"
		}
		fmt.Printf("%s: %s in %7d cycles, avg packet latency %6.1f, p99 %4d",
			c.name, status, res.Runtime, res.AvgLatency, res.P99Latency)
		if res.Drains > 0 {
			fmt.Printf(", %d drains", res.Drains)
		}
		if res.Spins > 0 {
			fmt.Printf(", %d spins", res.Spins)
		}
		fmt.Println()
	}

	fmt.Println("\nDRAIN runs the same coherent workload on one third of the VC buffering:")
	fmt.Println("requests, forwards and responses share a single virtual network, and the")
	fmt.Println("periodic drain guarantees any protocol-level dependency cycle is broken")
	fmt.Println("(paper §III-D2) — no per-class virtual networks required.")
}
