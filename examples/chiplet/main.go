// Chiplet demonstrates the paper's §VI "Heterogeneous Systems" use case:
// several independently designed chiplet meshes joined by an interposer
// ring. Composing individually deadlock-free networks is not deadlock-
// free, but DRAIN makes the composition safe with fully adaptive routing
// and no extra virtual channels — the offline algorithm finds a drain
// path over the whole composed topology.
package main

import (
	"fmt"
	"log"

	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
)

func main() {
	const chiplets = 4
	g, err := topology.NewChiplet(chiplets, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chiplet system: %d chiplets (2x2 each) + %d interposer routers = %d routers, %d links, diameter %d\n",
		chiplets, chiplets, g.N(), g.NumLinks(), g.Diameter())

	r, err := sim.BuildOn(g, nil, sim.Params{
		Scheme: sim.SchemeDRAIN,
		Epoch:  4096,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drain path: single cycle over all %d links (computed offline)\n\n", r.Drain.Path().Len())

	for _, rate := range []float64{0.02, 0.05, 0.10} {
		// Fresh runner per load point.
		rr, err := sim.BuildOn(g, nil, sim.Params{Scheme: sim.SchemeDRAIN, Epoch: 4096, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := rr.RunSynthetic(traffic.UniformRandom{N: g.N()}, rate, 2_000, 20_000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offered %.2f: accepted %.4f, avg latency %6.1f, p99 %4d, drains %d\n",
			rate, res.Accepted, res.AvgLatency, res.P99Latency, rr.Drain.Stats().Drains)
	}

	fmt.Println("\nCross-chiplet traffic routes fully adaptively through the interposer with")
	fmt.Println("no inter-vendor turn restrictions; the periodic drain guarantees any")
	fmt.Println("deadlock spanning chiplet and interposer networks is removed.")
}
