package drain

// End-to-end integration tests over the public facade: every scheme, on
// regular and faulty topologies, for synthetic and coherent workloads.
// These are the "does the whole system hang together" checks; module
// behaviour is covered by the internal packages' suites.

import (
	"testing"
)

func TestAllSchemesDeliverSyntheticTraffic(t *testing.T) {
	for _, s := range []Scheme{Ideal, EscapeVC, SPIN, DRAIN, UpDown} {
		for _, faults := range []int{0, 3} {
			res, err := Run(Config{
				Width: 4, Height: 4,
				Faults: faults, FaultSeed: 11,
				Scheme:  s,
				Pattern: "uniform", Rate: 0.05,
				Warmup: 1000, Measure: 4000,
				Epoch: 2000, Seed: 1,
			})
			if err != nil {
				t.Fatalf("%v/faults=%d: %v", s, faults, err)
			}
			if res.Accepted < 0.035 {
				t.Errorf("%v/faults=%d: accepted %.3f at offered 0.05", s, faults, res.Accepted)
			}
			if res.Deadlocked {
				t.Errorf("%v/faults=%d: deadlocked", s, faults)
			}
		}
	}
}

func TestSchemeOrderingAtSaturation(t *testing.T) {
	// The paper's central performance result: escape VCs saturate below
	// SPIN and DRAIN, which match each other.
	sat := map[Scheme]float64{}
	for _, s := range []Scheme{EscapeVC, SPIN, DRAIN} {
		res, err := Run(Config{
			Width: 8, Height: 8,
			Scheme:  s,
			Pattern: "uniform", Rate: 0.45,
			Warmup: 1000, Measure: 4000,
			Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		sat[s] = res.Accepted
	}
	if !(sat[EscapeVC] < sat[SPIN]) {
		t.Errorf("escape (%.3f) should saturate below SPIN (%.3f)", sat[EscapeVC], sat[SPIN])
	}
	diff := sat[SPIN] - sat[DRAIN]
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Errorf("DRAIN (%.3f) should match SPIN (%.3f)", sat[DRAIN], sat[SPIN])
	}
}

func TestAllPatternsRun(t *testing.T) {
	for _, pat := range []string{"uniform", "transpose", "bitcomp", "shuffle", "hotspot"} {
		res, err := Run(Config{
			Width: 4, Height: 4, Scheme: DRAIN,
			Pattern: pat, Rate: 0.03,
			Warmup: 500, Measure: 2000,
			Epoch: 2000, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
		if res.Accepted <= 0 {
			t.Errorf("%s: nothing delivered", pat)
		}
	}
}

func TestEveryWorkloadRunsUnderDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("workload sweep is slow")
	}
	for _, wl := range Workloads() {
		res, err := Run(Config{
			Width: 4, Height: 4, Scheme: DRAIN,
			Workload:  wl,
			OpsTarget: 100, MaxCycles: 1_000_000,
			Epoch: 4096, Seed: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if !res.Completed {
			t.Errorf("%s did not complete", wl)
		}
	}
}

func TestFaultyCoherentSystemEndToEnd(t *testing.T) {
	// The paper's full story in one run: irregular faulty topology, one
	// virtual network, MESI coherence, drains keeping it all live.
	res, err := Run(Config{
		Width: 4, Height: 4,
		Faults: 5, FaultSeed: 23,
		Scheme: DRAIN, VNets: 1, VCsPerVN: 2,
		Workload:  "canneal",
		OpsTarget: 400, MaxCycles: 2_000_000,
		Epoch: 512, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("faulty 1-VN coherent run did not complete")
	}
	if res.Drains == 0 {
		t.Error("no drains over a long coherent run")
	}
}

func TestDeterminismAcrossFacade(t *testing.T) {
	run := func() Result {
		res, err := Run(Config{
			Width: 4, Height: 4, Faults: 2, FaultSeed: 5,
			Scheme: DRAIN, Pattern: "transpose", Rate: 0.08,
			Warmup: 500, Measure: 2500, Epoch: 1000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same seeds diverged:\n%+v\n%+v", a, b)
	}
}
