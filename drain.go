// Package drain is a from-scratch reproduction of DRAIN — Deadlock
// Removal for Arbitrary Irregular Networks (HPCA 2020) — as a Go library:
// a cycle-accurate network-on-chip simulator, the DRAIN subactive
// deadlock-removal mechanism, its proactive (escape VCs) and reactive
// (SPIN) baselines, a MESI coherence substrate, synthetic and
// application workloads, a DSENT-style power/area model, and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// This file is the public facade: the types and entry points an
// application needs to run simulations. The building blocks live in
// internal packages (see DESIGN.md for the inventory):
//
//   - internal/topology  — meshes, irregular/faulty graphs, chiplets
//   - internal/drainpath — the offline drain-path algorithm (§III-B)
//   - internal/noc       — the VC-router network simulator
//   - internal/core      — the DRAIN controller (§III-C)
//   - internal/spinrec   — the SPIN baseline and recovery oracle
//   - internal/coherence — the MESI directory protocol
//   - internal/workload  — PARSEC / SPLASH-2 / Ligra profiles
//   - internal/power     — the analytical power and area model
//   - internal/experiments — one runner per paper figure/table
//
// # Quickstart
//
//	res, err := drain.Run(drain.Config{
//		Width: 8, Height: 8, Faults: 4,
//		Scheme:  drain.DRAIN,
//		Pattern: "uniform", Rate: 0.1,
//	})
//
// See examples/ for runnable programs.
package drain

import (
	"context"
	"fmt"

	"drain/internal/drainpath"
	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
	"drain/internal/workload"
)

// Scheme selects the deadlock-freedom mechanism.
type Scheme = sim.Scheme

// Schemes (re-exported from the simulation driver).
const (
	// None runs unprotected fully adaptive routing (deadlocks possible).
	None = sim.SchemeNone
	// Ideal is fully adaptive routing with zero-cost oracle recovery.
	Ideal = sim.SchemeIdeal
	// EscapeVC is the proactive baseline (turn-restricted escape VCs).
	EscapeVC = sim.SchemeEscapeVC
	// SPIN is the reactive baseline (timeout detection + spins).
	SPIN = sim.SchemeSPIN
	// DRAIN is the paper's subactive mechanism (periodic drains).
	DRAIN = sim.SchemeDRAIN
	// UpDown routes everything with turn-restricted up*/down*.
	UpDown = sim.SchemeUpDown
)

// Config describes one simulation run.
type Config struct {
	// Width×Height mesh with Faults random bidirectional link failures
	// (connectivity preserved; FaultSeed picks the pattern).
	Width, Height int
	Faults        int
	FaultSeed     uint64

	Scheme Scheme

	// VNets and VCsPerVN override the scheme defaults when nonzero.
	VNets, VCsPerVN int

	// Epoch is DRAIN's drain period in cycles (default 64K).
	Epoch int64

	// Synthetic traffic: Pattern ("uniform", "transpose", "bitcomp",
	// "shuffle", "hotspot") at Rate packets/node/cycle for
	// Warmup+Measure cycles.
	Pattern string
	Rate    float64
	Warmup  int64
	Measure int64

	// Workload switches to a closed-loop coherence run of the named
	// application profile ("canneal", "pagerank", …) with OpsTarget
	// memory operations per core.
	Workload  string
	OpsTarget int64
	MaxCycles int64

	Seed uint64
}

// Result is the outcome of a Run.
type Result struct {
	// Synthetic metrics (Pattern runs).
	Accepted      float64
	AvgHops       float64
	MisroutesPerK float64

	// Shared metrics.
	AvgLatency float64
	P99Latency int64
	Deadlocked bool

	// Application metrics (Workload runs).
	Completed bool
	Runtime   int64

	// Scheme activity.
	Drains int64
	Spins  int64
}

// Run executes one simulation described by cfg. It cannot be
// interrupted; long runs should use RunContext.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes one simulation described by cfg, aborting with
// ctx.Err() if ctx is cancelled mid-run (checked every
// noc.CancelCheckEvery simulated cycles).
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	p := sim.Params{
		Width: cfg.Width, Height: cfg.Height,
		Faults: cfg.Faults, FaultSeed: cfg.FaultSeed,
		Scheme: cfg.Scheme,
		VNets:  cfg.VNets, VCsPerVN: cfg.VCsPerVN,
		Epoch: cfg.Epoch,
		Seed:  cfg.Seed,
	}
	if cfg.Workload != "" {
		p.Classes = 3
		p.InjectCap = 16
	}
	r, err := sim.Build(p)
	if err != nil {
		return Result{}, err
	}
	if cfg.Workload != "" {
		prof, err := workload.Get(cfg.Workload)
		if err != nil {
			return Result{}, err
		}
		ops := cfg.OpsTarget
		if ops <= 0 {
			ops = 500
		}
		maxC := cfg.MaxCycles
		if maxC <= 0 {
			maxC = 5_000_000
		}
		res, err := r.RunAppContext(ctx, prof, ops, maxC)
		if err != nil {
			return Result{}, err
		}
		return Result{
			AvgLatency: res.AvgLatency,
			P99Latency: res.P99Latency,
			Deadlocked: res.Deadlocked,
			Completed:  res.Completed,
			Runtime:    res.Runtime,
			Drains:     res.Drains,
			Spins:      res.Spins,
		}, nil
	}
	patName := cfg.Pattern
	if patName == "" {
		patName = "uniform"
	}
	pat, err := traffic.ByName(patName, r.Graph.N(), cfg.Width)
	if err != nil {
		return Result{}, err
	}
	warm, meas := cfg.Warmup, cfg.Measure
	if warm <= 0 {
		warm = 10_000
	}
	if meas <= 0 {
		meas = 50_000
	}
	rate := cfg.Rate
	if rate <= 0 {
		rate = 0.05
	}
	res, err := r.RunSyntheticContext(ctx, pat, rate, warm, meas)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Accepted:      res.Accepted,
		AvgHops:       res.AvgHops,
		MisroutesPerK: res.MisroutesPerK,
		AvgLatency:    res.AvgLatency,
		P99Latency:    res.P99Latency,
		Deadlocked:    res.Deadlocked,
	}
	if r.Drain != nil {
		out.Drains = r.Drain.Stats().Drains
	}
	if r.Spin != nil {
		out.Spins = r.Spin.Stats().Spins
	}
	return out, nil
}

// DrainPath holds the offline algorithm's output for a topology: the
// cyclic link sequence every drained packet follows.
type DrainPath struct {
	// Hops is the cyclic sequence of (from, to) router pairs; entry i+1
	// starts at the router entry i ends at, and the last wraps to the
	// first.
	Hops [][2]int
}

// ComputeDrainPath runs the offline drain-path algorithm (paper §III-B)
// on a Width×Height mesh with the given fault count and pattern seed,
// and returns the covering cycle.
func ComputeDrainPath(width, height, faults int, faultSeed uint64) (DrainPath, error) {
	r, err := sim.Build(sim.Params{
		Width: width, Height: height,
		Faults: faults, FaultSeed: faultSeed,
		Scheme: DRAIN,
	})
	if err != nil {
		return DrainPath{}, err
	}
	return pathFor(r.Graph)
}

// ComputeDrainPathOn runs the offline algorithm on an arbitrary
// connected topology given as bidirectional edges over n routers.
func ComputeDrainPathOn(n int, edges [][2]int) (DrainPath, error) {
	es := make([]topology.Edge, len(edges))
	for i, e := range edges {
		es[i] = topology.Edge{A: e[0], B: e[1]}
	}
	g, err := topology.New(n, es)
	if err != nil {
		return DrainPath{}, err
	}
	if !g.Connected() {
		return DrainPath{}, fmt.Errorf("drain: topology is disconnected")
	}
	return pathFor(g)
}

func pathFor(g *topology.Graph) (DrainPath, error) {
	p, err := drainpath.FindEulerian(g)
	if err != nil {
		return DrainPath{}, err
	}
	out := DrainPath{Hops: make([][2]int, 0, p.Len())}
	for _, l := range p.Seq {
		out.Hops = append(out.Hops, [2]int{l.From, l.To})
	}
	return out, nil
}

// Workloads returns the available application profile names.
func Workloads() []string { return workload.Names() }
