package experiments

import (
	"context"
	"fmt"

	"drain/internal/core"
	"drain/internal/drainpath"
	"drain/internal/noc"
	"drain/internal/power"
	"drain/internal/routing"
	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig5",
		Title: "up*/down* vs. ideal deadlock-free fully adaptive routing",
		Paper: "up*/down* has higher low-load latency at every fault count and lower " +
			"saturation throughput, with the two converging as faults increase (faults " +
			"cut everyone's bandwidth).",
		Run: fig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Drain paths computed by the offline algorithm",
		Paper: "A single cycle covering every unidirectional link exists for both the " +
			"irregular (faulty) and the regular topology.",
		Run: fig6,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Walk-through: one drain hop breaks two deadlock cycles",
		Paper: "All deadlocked packets are forced one hop along the drain path; some " +
			"misroute, the cycles break, and every packet then reaches its destination.",
		Run: fig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Router area and static power, normalized to escape VCs",
		Paper: "DRAIN ≈72% area and ≈77% static-power reduction vs escape VCs; SPIN " +
			"carries ~15% control overhead over a plain router.",
		Run: fig9,
	})
}

func fig5(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	faults := []int{0, 4, 8, 12}
	warm, meas := int64(1000), int64(4000)
	patterns := 1
	if sc == Full {
		faults = []int{0, 1, 4, 8, 12}
		warm, meas = 10_000, 50_000
		patterns = 10
	}
	t := Table{
		ID:      "fig5",
		Title:   "8x8 mesh, uniform random: up*/down* vs ideal",
		Columns: []string{"faults", "up*/down* low-load lat", "ideal low-load lat", "lat gap", "up*/down* saturation", "ideal saturation"},
	}
	// One job per (fault count, pattern, scheme, load point): each is an
	// independent (build, run, measure) triple. Aggregation below stays
	// serial and index-ordered so the float sums — and thus the rendered
	// table — are identical for every worker count.
	schemes := []sim.Scheme{sim.SchemeUpDown, sim.SchemeIdeal}
	loads := []struct {
		rate   float64
		metric func(sim.SyntheticResult) float64
	}{
		{0.02, func(r sim.SyntheticResult) float64 { return r.AvgLatency }},
		{0.45, func(r sim.SyntheticResult) float64 { return r.Accepted }},
	}
	perScheme := len(loads)
	perPattern := len(schemes) * perScheme
	perFault := patterns * perPattern
	metrics := make([]float64, len(faults)*perFault)
	err := ForEachConfigContext(ctx, len(metrics), func(i int) error {
		li := i % perScheme
		si := i / perScheme % len(schemes)
		pi := i / perPattern % patterns
		fi := i / perFault
		fs := seed + uint64(pi)*6151
		r, err := sim.Build(sim.Params{Width: 8, Height: 8, Faults: faults[fi], FaultSeed: fs, Scheme: schemes[si], Seed: seed})
		if err != nil {
			return err
		}
		res, err := r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 64}, loads[li].rate, warm, meas)
		if err != nil {
			return err
		}
		metrics[i] = loads[li].metric(res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, f := range faults {
		var udLat, idLat, udSat, idSat float64
		for pi := 0; pi < patterns; pi++ {
			base := fi*perFault + pi*perPattern
			udLat += metrics[base]
			udSat += metrics[base+1]
			idLat += metrics[base+perScheme]
			idSat += metrics[base+perScheme+1]
		}
		n := float64(patterns)
		udLat, idLat, udSat, idSat = udLat/n, idLat/n, udSat/n, idSat/n
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", f), f1(udLat), f1(idLat),
			pct(udLat/idLat - 1), f3(udSat), f3(idSat),
		})
	}
	t.Notes = append(t.Notes,
		"Our up*/down* adaptively picks among all legal minimal next hops, a stronger "+
			"baseline than the paper's, so the fault-free gap is smaller than the paper's 19%.")
	return []Table{t}, nil
}

func fig6(_ context.Context, _ Scale, _ uint64) ([]Table, error) {
	irregular, err := topology.MustMesh(3, 3).WithoutEdge(2, 5)
	if err != nil {
		return nil, err
	}
	regular := topology.MustMesh(4, 4).Graph
	t := Table{
		ID:      "fig6",
		Title:   "Offline drain-path construction",
		Columns: []string{"topology", "links", "algorithm", "path length", "valid"},
	}
	cases := []struct {
		name string
		g    *topology.Graph
	}{
		{"irregular 3x3 (edge 2-5 faulty)", irregular},
		{"regular 4x4", regular},
	}
	algs := []struct {
		name string
		find func(*topology.Graph) (*drainpath.Path, error)
	}{
		{"hawick-james search", func(g *topology.Graph) (*drainpath.Path, error) { return drainpath.FindCoveringCycle(g, 0) }},
		{"hierholzer", drainpath.FindEulerian},
	}
	for _, c := range cases {
		for _, alg := range algs {
			algName, find := alg.name, alg.find
			p, err := find(c.g)
			if err != nil {
				return nil, err
			}
			valid := "yes"
			if err := drainpath.Validate(c.g, p); err != nil {
				valid = err.Error()
			}
			t.Rows = append(t.Rows, []string{
				c.name, fmt.Sprintf("%d", c.g.NumLinks()), algName,
				fmt.Sprintf("%d", p.Len()), valid,
			})
		}
	}
	p, _ := drainpath.FindEulerian(irregular)
	t.Notes = append(t.Notes, "Irregular 3x3 drain path: "+p.String())
	return []Table{t}, nil
}

// fig8 reconstructs the paper's walk-through: a 3x3 mesh with the link
// between routers 2 and 5 faulty, two planted deadlock cycles, one drain
// hop, and full delivery afterwards.
func fig8(ctx context.Context, _ Scale, _ uint64) ([]Table, error) {
	g, err := topology.MustMesh(3, 3).WithoutEdge(2, 5)
	if err != nil {
		return nil, err
	}
	net, err := noc.New(noc.Config{
		Graph: g, VNets: 1, VCsPerVN: 1, Classes: 1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.AdaptiveMinimal,
		DerouteAfter:  -1, // strict minimal: keep the planted cycles blocked
		Seed:          1,
	})
	if err != nil {
		return nil, err
	}
	// Two deadlock cycles in the style of the paper's Fig. 8. Each
	// packet's destination is chosen so its *unique* minimal next hop is
	// the buffer held by the next packet in the cycle (the faulty 2-5
	// link makes several of these choices unique):
	//   cycle A: buffers 0→1, 1→4, 4→3, 3→0 (lower-left square)
	//   cycle B: buffers 7→4, 4→5, 5→8, 8→7 (upper-right square)
	type plant struct{ from, to, dst int }
	plants := []plant{
		{0, 1, 7}, {1, 4, 3}, {4, 3, 0}, {3, 0, 2}, // cycle A
		{7, 4, 5}, {4, 5, 8}, {5, 8, 6}, {8, 7, 1}, // cycle B
	}
	pkts := make([]*noc.Packet, 0, len(plants))
	for _, pl := range plants {
		p, err := net.PlacePacket(pl.from, pl.to, pl.dst, 0)
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, p)
	}
	if !net.HasDeadlock(noc.LivenessOpts{}) {
		return nil, fmt.Errorf("fig8: planted scenario is not deadlocked")
	}
	ctl, err := core.New(net, core.Config{Epoch: 8, PreDrain: 1, DrainWindow: 1})
	if err != nil {
		return nil, err
	}
	before := make([]int, len(pkts))
	for i, p := range pkts {
		before[i] = p.At()
	}
	// Run until the first drain fires, then observe. This loop has no
	// cycle bound (the drain epoch decides when it ends), so the ctx is
	// the only way out if configuration ever breaks the drain trigger.
	for ctl.Stats().Drains == 0 {
		if err := net.StepContext(ctx); err != nil {
			return nil, err
		}
		if err := ctl.Tick(); err != nil {
			return nil, err
		}
	}
	t := Table{
		ID:      "fig8",
		Title:   "Packet positions across the first drain window (3x3 mesh, link 2-5 faulty)",
		Columns: []string{"packet", "dst", "before drain", "after drain", "moved closer?"},
	}
	tab := net.Table()
	for i, p := range pkts {
		closer := "misrouted"
		if p.EjectedAt > 0 {
			closer = "ejected"
		} else if tab.Dist(p.At(), p.Dst) < tab.Dist(before[i], p.Dst) {
			closer = "yes"
		}
		after := fmt.Sprintf("%d", p.At())
		if p.EjectedAt > 0 {
			after = "delivered"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("P%d", i), fmt.Sprintf("%d", p.Dst),
			fmt.Sprintf("%d", before[i]), after, closer,
		})
	}
	deadAfter := net.HasDeadlock(noc.LivenessOpts{})
	// Let the network finish delivering everything (more drains allowed).
	delivered := 0
	for cyc := 0; cyc < 2000 && delivered < len(pkts); cyc++ {
		if err := net.StepContext(ctx); err != nil {
			return nil, err
		}
		if err := ctl.Tick(); err != nil {
			return nil, err
		}
		for r := 0; r < g.N(); r++ {
			for p := net.PopEjected(r, 0); p != nil; p = net.PopEjected(r, 0) {
				delivered++
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Deadlock present after one drain hop: %v (paper: one hop broke both cycles; "+
			"some scenarios need more).", deadAfter),
		fmt.Sprintf("All %d of %d deadlocked packets were eventually delivered.", delivered, len(pkts)))
	return []Table{t}, nil
}

func fig9(_ context.Context, _ Scale, _ uint64) ([]Table, error) {
	params := power.DefaultParams()
	configs := []struct {
		name string
		rc   power.RouterConfig
	}{
		{"escape VCs (3VN x 2VC)", power.RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeEscapeVC}},
		{"SPIN (3VN x 1VC, +ctrl)", power.RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeSPIN}},
		{"DRAIN (1VN x 1VC, +turn-table)", power.RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeDRAIN}},
	}
	base := power.Area(configs[0].rc, params).Total()
	basePow := power.StaticPower(configs[0].rc, params).Total()
	t := Table{
		ID:      "fig9",
		Title:   "Router area and static power (normalized to escape VCs)",
		Columns: []string{"scheme", "area", "area (norm)", "static power (mW)", "power (norm)"},
	}
	for _, c := range configs {
		a := power.Area(c.rc, params).Total()
		p := power.StaticPower(c.rc, params).Total()
		t.Rows = append(t.Rows, []string{
			c.name, f1(a), f3(a / base), f2(p), f3(p / basePow),
		})
	}
	d := configs[2].rc
	t.Notes = append(t.Notes,
		fmt.Sprintf("DRAIN reduction vs escape VCs: area %s, static power %s (paper: ~72%% and ~77%%).",
			pct(1-power.Area(d, params).Total()/base),
			pct(1-power.StaticPower(d, params).Total()/basePow)))

	// Paper §V-A closing remark: protocols needing more virtual networks
	// (MOESI: six) make DRAIN's savings even greater.
	moesi := Table{
		ID:      "fig9",
		Title:   "Extension: MOESI-class protocols (6 virtual networks)",
		Columns: []string{"scheme", "area (norm)", "static power (norm)"},
	}
	moesiEsc := power.RouterConfig{Ports: 5, VNets: 6, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeEscapeVC}
	moesiSpin := power.RouterConfig{Ports: 5, VNets: 6, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeSPIN}
	mBase := power.Area(moesiEsc, params).Total()
	mBasePow := power.StaticPower(moesiEsc, params).Total()
	for _, c := range []struct {
		name string
		rc   power.RouterConfig
	}{
		{"escape VCs (6VN x 2VC)", moesiEsc},
		{"SPIN (6VN x 1VC, +ctrl)", moesiSpin},
		{"DRAIN (1VN x 1VC, +turn-table)", d},
	} {
		moesi.Rows = append(moesi.Rows, []string{
			c.name,
			f3(power.Area(c.rc, params).Total() / mBase),
			f3(power.StaticPower(c.rc, params).Total() / mBasePow),
		})
	}
	moesi.Notes = append(moesi.Notes,
		fmt.Sprintf("DRAIN reduction vs 6-VN escape VCs: area %s, static power %s — larger than MESI's, as the paper predicts.",
			pct(1-power.Area(d, params).Total()/mBase),
			pct(1-power.StaticPower(d, params).Total()/mBasePow)))
	return []Table{t, moesi}, nil
}
