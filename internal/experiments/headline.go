package experiments

import (
	"context"

	"drain/internal/power"
	"drain/internal/sim"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "headline",
		Title: "Abstract headline numbers",
		Paper: "DRAIN saves 26.73% packet latency vs. proactive schemes in the presence " +
			"of faults, and 77.6% power vs. reactive schemes.",
		Run: headline,
	})
}

func headline(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	// Latency saving vs. the proactive baseline (escape VCs) under
	// faults: synthetic low-load latency averaged across fault counts
	// and patterns (the proactive penalty is the turn-restricted escape
	// routing's non-minimal paths).
	faults := []int{4, 8, 12}
	patterns := 2
	warm, meas := int64(1000), int64(4000)
	if sc == Full {
		patterns = 10
		warm, meas = 10_000, 50_000
	}
	// One job per (fault count, pattern, scheme); the averages are summed
	// serially afterwards in fixed index order so the result is identical
	// for every worker count.
	schemes := []sim.Scheme{sim.SchemeEscapeVC, sim.SchemeDRAIN}
	perPattern := len(schemes)
	perFault := patterns * perPattern
	lats := make([]float64, len(faults)*perFault)
	err := ForEachConfigContext(ctx, len(lats), func(i int) error {
		si := i % perPattern
		pi := i / perPattern % patterns
		fi := i / perFault
		fs := seed + uint64(pi)*6151
		r, err := sim.Build(sim.Params{Width: 8, Height: 8, Faults: faults[fi], FaultSeed: fs, Scheme: schemes[si], Seed: seed})
		if err != nil {
			return err
		}
		// Moderate load: restrictions hurt most when the network
		// is loaded but escape VCs are not yet saturated.
		res, err := r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 64}, 0.10, warm, meas)
		if err != nil {
			return err
		}
		lats[i] = res.AvgLatency
		return nil
	})
	if err != nil {
		return nil, err
	}
	var escLat, drainLat float64
	n := 0
	for fi := range faults {
		for pi := 0; pi < patterns; pi++ {
			escLat += lats[fi*perFault+pi*perPattern]
			drainLat += lats[fi*perFault+pi*perPattern+1]
			n++
		}
	}
	latSaving := 1 - (drainLat/float64(n))/(escLat/float64(n))

	// Power saving vs. the reactive baseline (SPIN): total router static
	// power of the performance-comparison configurations (SPIN: 3 VNets
	// to be protocol-safe; DRAIN: 1 VNet).
	params := power.DefaultParams()
	spinRC := power.RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeSPIN}
	drainRC := power.RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeDRAIN}
	powSaving := 1 - power.StaticPower(drainRC, params).Total()/power.StaticPower(spinRC, params).Total()

	t := Table{
		ID:      "headline",
		Title:   "Reproduced headline claims",
		Columns: []string{"claim", "paper", "measured"},
		Rows: [][]string{
			{"packet latency saving vs proactive (faulty networks)", "26.73%", pct(latSaving)},
			{"router power saving vs reactive", "77.6%", pct(powSaving)},
		},
	}
	return []Table{t}, nil
}
