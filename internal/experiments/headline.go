package experiments

import (
	"drain/internal/power"
	"drain/internal/sim"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "headline",
		Title: "Abstract headline numbers",
		Paper: "DRAIN saves 26.73% packet latency vs. proactive schemes in the presence " +
			"of faults, and 77.6% power vs. reactive schemes.",
		Run: headline,
	})
}

func headline(sc Scale, seed uint64) ([]Table, error) {
	// Latency saving vs. the proactive baseline (escape VCs) under
	// faults: synthetic low-load latency averaged across fault counts
	// and patterns (the proactive penalty is the turn-restricted escape
	// routing's non-minimal paths).
	faults := []int{4, 8, 12}
	patterns := 2
	warm, meas := int64(1000), int64(4000)
	if sc == Full {
		patterns = 10
		warm, meas = 10_000, 50_000
	}
	var escLat, drainLat float64
	n := 0
	for _, f := range faults {
		for pi := 0; pi < patterns; pi++ {
			fs := seed + uint64(pi)*6151
			for _, s := range []sim.Scheme{sim.SchemeEscapeVC, sim.SchemeDRAIN} {
				r, err := sim.Build(sim.Params{Width: 8, Height: 8, Faults: f, FaultSeed: fs, Scheme: s, Seed: seed})
				if err != nil {
					return nil, err
				}
				// Moderate load: restrictions hurt most when the network
				// is loaded but escape VCs are not yet saturated.
				res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.10, warm, meas)
				if err != nil {
					return nil, err
				}
				if s == sim.SchemeEscapeVC {
					escLat += res.AvgLatency
				} else {
					drainLat += res.AvgLatency
				}
			}
			n++
		}
	}
	latSaving := 1 - (drainLat/float64(n))/(escLat/float64(n))

	// Power saving vs. the reactive baseline (SPIN): total router static
	// power of the performance-comparison configurations (SPIN: 3 VNets
	// to be protocol-safe; DRAIN: 1 VNet).
	params := power.DefaultParams()
	spinRC := power.RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeSPIN}
	drainRC := power.RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: power.SchemeDRAIN}
	powSaving := 1 - power.StaticPower(drainRC, params).Total()/power.StaticPower(spinRC, params).Total()

	t := Table{
		ID:      "headline",
		Title:   "Reproduced headline claims",
		Columns: []string{"claim", "paper", "measured"},
		Rows: [][]string{
			{"packet latency saving vs proactive (faulty networks)", "26.73%", pct(latSaving)},
			{"router power saving vs reactive", "77.6%", pct(powSaving)},
		},
	}
	return []Table{t}, nil
}
