package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "disc",
		Title: "§VI discussion: DRAIN on chiplet and random topologies",
		Paper: "DRAIN allows arbitrary vendor topologies to be composed and random " +
			"low-radix topologies to route fully adaptively without escape-VC " +
			"routing restrictions or extra buffering.",
		Run: disc,
	})
}

// disc runs DRAIN and the up*/down*-escape baseline on the discussion
// section's topology classes: a chiplet composition and low-radix random
// regular graphs.
func disc(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	warm, meas := int64(1000), int64(5000)
	trials := 2
	if sc == Full {
		warm, meas = 10_000, 50_000
		trials = 5
	}
	type topoCase struct {
		name string
		make func(trial int) (*topology.Graph, error)
	}
	cases := []topoCase{
		{"chiplet 4x(2x2)+interposer", func(int) (*topology.Graph, error) {
			return topology.NewChiplet(4, 2, 2)
		}},
		{"random 3-regular, 16 routers", func(trial int) (*topology.Graph, error) {
			rng := rand.New(rand.NewPCG(seed+uint64(trial)*7919, 0x0dec))
			return topology.NewRandomRegular(16, 3, rng)
		}},
		{"random 4-regular, 32 routers", func(trial int) (*topology.Graph, error) {
			rng := rand.New(rand.NewPCG(seed+uint64(trial)*104729, 0x0dec))
			return topology.NewRandomRegular(32, 4, rng)
		}},
	}
	t := Table{
		ID:      "disc",
		Title:   "Low-load latency and saturation on irregular-by-design topologies",
		Columns: []string{"topology", "scheme", "low-load latency", "saturation throughput"},
	}
	// One job per (topology case, scheme, trial); each job builds its own
	// topology instance from the trial-keyed RNG, so jobs stay independent.
	schemes := []sim.Scheme{sim.SchemeEscapeVC, sim.SchemeDRAIN}
	type discCell struct{ lat, sat float64 }
	perScheme := trials
	perCase := len(schemes) * perScheme
	cells := make([]discCell, len(cases)*perCase)
	err := ForEachConfigContext(ctx, len(cells), func(i int) error {
		trial := i % perScheme
		si := i / perScheme % len(schemes)
		ci := i / perCase
		g, err := cases[ci].make(trial)
		if err != nil {
			return err
		}
		run := func(rate float64) (sim.SyntheticResult, error) {
			// BuildOn with a non-mesh graph: the escape-vc scheme
			// falls back to up*/down* escape routing automatically.
			r, err := sim.BuildOn(g, nil, sim.Params{
				Scheme: schemes[si],
				Epoch:  4096,
				Seed:   seed + uint64(trial),
			})
			if err != nil {
				return sim.SyntheticResult{}, err
			}
			return r.RunSyntheticContext(ctx, traffic.UniformRandom{N: g.N()}, rate, warm, meas)
		}
		low, err := run(0.02)
		if err != nil {
			return err
		}
		high, err := run(0.45)
		if err != nil {
			return err
		}
		cells[i] = discCell{lat: low.AvgLatency, sat: high.Accepted}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		for si, s := range schemes {
			var lat, sat float64
			for trial := 0; trial < trials; trial++ {
				cell := cells[ci*perCase+si*perScheme+trial]
				lat += cell.lat
				sat += cell.sat
			}
			t.Rows = append(t.Rows, []string{
				c.name, s.String(),
				f1(lat / float64(trials)), f3(sat / float64(trials)),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Averaged over %d topology instances; DRAIN routes fully adaptively on "+
			"every topology while the baseline's escape VC is restricted to up*/down*.", trials))
	return []Table{t}, nil
}
