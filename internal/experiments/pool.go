package experiments

import (
	"context"
	"sync"
	"sync/atomic"
)

// The experiment harness parallelizes at the granularity of independent
// simulation runs: every (topology, fault pattern, scheme, seed) cell of
// a figure is a pure function of its own parameters — each run builds its
// own Network with its own RNG — so the only coordination needed is
// collecting results by index. All aggregation (averaging, normalizing,
// rendering) stays serial and ordered, which makes the output byte-
// identical for every worker count.

// parallelism is the worker count ForEachConfig fans runs across.
// Access through SetParallelism/Parallelism; the default 1 keeps the
// harness strictly serial (tests and library users opt in explicitly,
// cmd/experiments sets it from -parallel).
var parallelism atomic.Int32

func init() { parallelism.Store(1) }

// SetParallelism sets the number of worker goroutines ForEachConfig uses.
// Values below 1 are treated as 1. Safe to call between figure runs; the
// result tables do not depend on the value.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int32(n))
}

// Parallelism returns the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// ForEachConfig runs fn(i) for every i in [0, n) across the configured
// number of workers. fn must be independent across indices (each call
// builds its own simulation state) and should write its result into an
// index-addressed slot; ForEachConfig provides no other result channel.
//
// Error semantics are deterministic: the error with the lowest index is
// returned regardless of worker count or completion order. With
// parallelism 1 the calls run strictly serially, in order, stopping at
// the first error — exactly the seed implementation's loop shape.
func ForEachConfig(n int, fn func(i int) error) error {
	return ForEachConfigContext(context.Background(), n, fn)
}

// ForEachConfigContext is ForEachConfig with cancellation: once ctx is
// done no new index is dispatched, and after all in-flight calls return
// the context error is reported (unless an earlier real error takes
// precedence under the lowest-index rule). fn should itself observe ctx
// (e.g. via sim's *Context runners) so in-flight runs also stop
// promptly; ForEachConfigContext never abandons a running fn, so when
// it returns no worker goroutine is left behind.
func ForEachConfigContext(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
