// Package experiments regenerates every table and figure of the DRAIN
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// experiment is a pure function of (Scale, seed) producing markdown-
// renderable tables; cmd/experiments and the root benchmarks drive them.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Scale selects the experiment size.
type Scale int

// Scales.
const (
	// Quick is CI/bench scale: smaller meshes, shorter windows, fewer
	// seeds. Minutes for the full registry.
	Quick Scale = iota
	// Full approximates the paper's scale (8×8 meshes, long windows,
	// 10 fault patterns); expect hours for the full registry.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Table is one regenerated result table (a figure's data series).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry the paper-expected shape and any scale caveats.
	Notes []string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Experiment is one registry entry.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the original figure/table shows and the
	// shape a successful reproduction must exhibit.
	Paper string
	// Run regenerates the experiment's tables. It is a pure function of
	// (sc, seed) — ctx only cancels: an undisturbed context yields
	// byte-identical tables for any worker count, and a cancelled one
	// makes Run return a cancellation error promptly (bounded by
	// noc.CancelCheckEvery simulated cycles per in-flight run).
	Run func(ctx context.Context, sc Scale, seed uint64) ([]Table, error)
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RenderFigure renders one experiment's regenerated tables exactly as
// cmd/experiments prints them (heading, paper expectation, tables).
// Deliberately excluded: wall-clock timings and anything else non-
// deterministic, so the output is byte-identical for the same
// (experiment, scale, seed) wherever it is produced — the property the
// serving layer's content-addressed result cache relies on. Callers
// wanting the CLI's timing trailer append it themselves.
func RenderFigure(e Experiment, tables []Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", e.ID, e.Title)
	fmt.Fprintf(&b, "Paper: %s\n\n", e.Paper)
	for _, t := range tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	return b.String()
}

// f1, f2, f3 format floats at fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// pct renders a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
