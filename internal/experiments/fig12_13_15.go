package experiments

import (
	"context"
	"fmt"

	"drain/internal/sim"
	"drain/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Ligra workloads: packet latency and runtime, normalized to escape VCs",
		Paper: "DRAIN and SPIN have similar average packet latency; DRAIN VN1-VC2 shows " +
			"higher packet latency (1/3 the VCs) but application runtime is unharmed.",
		Run: fig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "PARSEC/SPLASH-2 workloads: packet latency and runtime, normalized to escape VCs",
		Paper: "Same shape as Fig. 12 on the 4x4 system.",
		Run:   fig13,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "99th-percentile packet latency",
		Paper: "Despite 64K epochs, tail latency stays close to SPIN's; only the VN1-VC2 " +
			"configuration on memory-intensive workloads shows a modest p99 increase.",
		Run: fig15,
	})
}

// appConfig is one scheme/provisioning point in Figs. 12-13.
type appConfig struct {
	name   string
	scheme sim.Scheme
	vnets  int
	vcs    int
}

func appConfigs() []appConfig {
	return []appConfig{
		{"escape-vc (VN3,VC2)", sim.SchemeEscapeVC, 3, 2},
		{"spin (VN3,VC2)", sim.SchemeSPIN, 3, 2},
		{"drain (VN3,VC2)", sim.SchemeDRAIN, 3, 2},
		{"drain (VN1,VC6)", sim.SchemeDRAIN, 1, 6},
		{"drain (VN1,VC2)", sim.SchemeDRAIN, 1, 2},
	}
}

// appMatrix runs the Fig. 12/13 configuration grid for one suite.
func appMatrix(ctx context.Context, sc Scale, seed uint64, suite string, w, h int) ([]Table, error) {
	profiles := workload.Suite(suite)
	faultsList := []int{0, 8}
	ops := int64(200)
	maxCycles := int64(600_000)
	epoch := int64(8192)
	if sc == Quick {
		// Quick scale shrinks Ligra's 8x8 system to 4x4, trims the
		// workload list, and caps faults at 4: eight faults on a 4x4
		// leaves near-tree connectivity, far harsher relative damage
		// than the paper's 8 faults on an 8x8. Shapes are preserved.
		w, h = 4, 4
		faultsList = []int{0, 4}
		if len(profiles) > 3 {
			profiles = profiles[:3]
		}
	} else {
		ops, maxCycles, epoch = 1000, 5_000_000, 65_536
	}
	// One job per (fault count, workload, config). The normalization to the
	// escape-vc baseline (config 0) is a serial pass over the collected
	// results, so it is independent of worker count. The "did not complete"
	// check stays inside the job: ForEachConfig returns the lowest-index
	// error, which matches the error the serial loop would have hit first.
	cfgs := appConfigs()
	type appCell struct {
		lat     float64
		runtime float64
	}
	perProf := len(cfgs)
	perFault := len(profiles) * perProf
	cells := make([]appCell, len(faultsList)*perFault)
	err := ForEachConfigContext(ctx, len(cells), func(i int) error {
		ci := i % perProf
		wi := i / perProf % len(profiles)
		fi := i / perFault
		c, prof, faults := cfgs[ci], profiles[wi], faultsList[fi]
		r, err := sim.Build(sim.Params{
			Width: w, Height: h,
			Faults: faults, FaultSeed: seed + 31,
			Scheme: c.scheme, Classes: 3,
			VNets: c.vnets, VCsPerVN: c.vcs,
			Epoch: epoch, InjectCap: 16,
			Seed: seed,
		})
		if err != nil {
			return err
		}
		res, err := r.RunAppContext(ctx, prof, ops, maxCycles)
		if err != nil {
			return err
		}
		if !res.Completed {
			return fmt.Errorf("%s/%s with %d faults did not complete in %d cycles",
				c.name, prof.Name, faults, maxCycles)
		}
		cells[i] = appCell{lat: res.AvgLatency, runtime: float64(res.Runtime)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tables []Table
	for fi, faults := range faultsList {
		lat := Table{
			ID:      tableIDForSuite(suite),
			Title:   fmt.Sprintf("%s avg packet latency (normalized to escape-vc), %dx%d, %d faults", suite, w, h, faults),
			Columns: []string{"workload"},
		}
		run := Table{
			ID:      tableIDForSuite(suite),
			Title:   fmt.Sprintf("%s runtime (normalized to escape-vc), %dx%d, %d faults", suite, w, h, faults),
			Columns: []string{"workload"},
		}
		for _, c := range cfgs {
			lat.Columns = append(lat.Columns, c.name)
			run.Columns = append(run.Columns, c.name)
		}
		for wi, prof := range profiles {
			latRow := []string{prof.Name}
			runRow := []string{prof.Name}
			base := cells[fi*perFault+wi*perProf] // escape-vc baseline
			for ci := range cfgs {
				cell := cells[fi*perFault+wi*perProf+ci]
				latRow = append(latRow, f2(cell.lat/base.lat))
				runRow = append(runRow, f2(cell.runtime/base.runtime))
			}
			lat.Rows = append(lat.Rows, latRow)
			run.Rows = append(run.Rows, runRow)
		}
		if sc == Quick && suite == "ligra" {
			lat.Notes = append(lat.Notes, "Quick scale: 4x4 system and first 3 workloads (paper: 8x8, 6 workloads).")
		}
		tables = append(tables, lat, run)
	}
	return tables, nil
}

func tableIDForSuite(suite string) string {
	if suite == "ligra" {
		return "fig12"
	}
	return "fig13"
}

func fig12(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	return appMatrix(ctx, sc, seed, "ligra", 8, 8)
}

func fig13(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	parsec, err := appMatrix(ctx, sc, seed, "parsec", 4, 4)
	if err != nil {
		return nil, err
	}
	if sc == Quick {
		return parsec, nil
	}
	splash, err := appMatrix(ctx, sc, seed, "splash2", 4, 4)
	if err != nil {
		return nil, err
	}
	return append(parsec, splash...), nil
}

func fig15(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	profiles := []string{"pagerank", "canneal", "bfs"}
	w, h := 4, 4
	ops := int64(200)
	maxCycles := int64(600_000)
	epoch := int64(8192)
	if sc == Full {
		profiles = []string{"pagerank", "bfs", "components", "canneal", "fluidanimate", "radix"}
		ops, maxCycles, epoch = 1000, 5_000_000, 65_536
	}
	t := Table{
		ID:      "fig15",
		Title:   "p99 packet latency (cycles), 0 faults",
		Columns: []string{"workload"},
	}
	cfgs := appConfigs()
	for _, c := range cfgs {
		t.Columns = append(t.Columns, c.name)
	}
	// One job per (workload, config).
	p99 := make([]int64, len(profiles)*len(cfgs))
	err := ForEachConfigContext(ctx, len(p99), func(i int) error {
		ci := i % len(cfgs)
		wi := i / len(cfgs)
		c := cfgs[ci]
		r, err := sim.Build(sim.Params{
			Width: w, Height: h, Scheme: c.scheme, Classes: 3,
			VNets: c.vnets, VCsPerVN: c.vcs,
			Epoch: epoch, InjectCap: 16, Seed: seed,
		})
		if err != nil {
			return err
		}
		res, err := r.RunAppContext(ctx, workload.MustGet(profiles[wi]), ops, maxCycles)
		if err != nil {
			return err
		}
		p99[i] = res.P99Latency
		return nil
	})
	if err != nil {
		return nil, err
	}
	for wi, name := range profiles {
		row := []string{name}
		for ci := range cfgs {
			row = append(row, fmt.Sprintf("%d", p99[wi*len(cfgs)+ci]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
