package experiments

import (
	"fmt"

	"drain/internal/sim"
	"drain/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Ligra workloads: packet latency and runtime, normalized to escape VCs",
		Paper: "DRAIN and SPIN have similar average packet latency; DRAIN VN1-VC2 shows " +
			"higher packet latency (1/3 the VCs) but application runtime is unharmed.",
		Run: fig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "PARSEC/SPLASH-2 workloads: packet latency and runtime, normalized to escape VCs",
		Paper: "Same shape as Fig. 12 on the 4x4 system.",
		Run:   fig13,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "99th-percentile packet latency",
		Paper: "Despite 64K epochs, tail latency stays close to SPIN's; only the VN1-VC2 " +
			"configuration on memory-intensive workloads shows a modest p99 increase.",
		Run: fig15,
	})
}

// appConfig is one scheme/provisioning point in Figs. 12-13.
type appConfig struct {
	name   string
	scheme sim.Scheme
	vnets  int
	vcs    int
}

func appConfigs() []appConfig {
	return []appConfig{
		{"escape-vc (VN3,VC2)", sim.SchemeEscapeVC, 3, 2},
		{"spin (VN3,VC2)", sim.SchemeSPIN, 3, 2},
		{"drain (VN3,VC2)", sim.SchemeDRAIN, 3, 2},
		{"drain (VN1,VC6)", sim.SchemeDRAIN, 1, 6},
		{"drain (VN1,VC2)", sim.SchemeDRAIN, 1, 2},
	}
}

// appMatrix runs the Fig. 12/13 configuration grid for one suite.
func appMatrix(sc Scale, seed uint64, suite string, w, h int) ([]Table, error) {
	profiles := workload.Suite(suite)
	faultsList := []int{0, 8}
	ops := int64(200)
	maxCycles := int64(600_000)
	epoch := int64(8192)
	if sc == Quick {
		// Quick scale shrinks Ligra's 8x8 system to 4x4, trims the
		// workload list, and caps faults at 4: eight faults on a 4x4
		// leaves near-tree connectivity, far harsher relative damage
		// than the paper's 8 faults on an 8x8. Shapes are preserved.
		w, h = 4, 4
		faultsList = []int{0, 4}
		if len(profiles) > 3 {
			profiles = profiles[:3]
		}
	} else {
		ops, maxCycles, epoch = 1000, 5_000_000, 65_536
	}
	var tables []Table
	for _, faults := range faultsList {
		lat := Table{
			ID:      tableIDForSuite(suite),
			Title:   fmt.Sprintf("%s avg packet latency (normalized to escape-vc), %dx%d, %d faults", suite, w, h, faults),
			Columns: []string{"workload"},
		}
		run := Table{
			ID:      tableIDForSuite(suite),
			Title:   fmt.Sprintf("%s runtime (normalized to escape-vc), %dx%d, %d faults", suite, w, h, faults),
			Columns: []string{"workload"},
		}
		for _, c := range appConfigs() {
			lat.Columns = append(lat.Columns, c.name)
			run.Columns = append(run.Columns, c.name)
		}
		for _, prof := range profiles {
			latRow := []string{prof.Name}
			runRow := []string{prof.Name}
			var baseLat, baseRun float64
			for i, c := range appConfigs() {
				r, err := sim.Build(sim.Params{
					Width: w, Height: h,
					Faults: faults, FaultSeed: seed + 31,
					Scheme: c.scheme, Classes: 3,
					VNets: c.vnets, VCsPerVN: c.vcs,
					Epoch: epoch, InjectCap: 16,
					Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				res, err := r.RunApp(prof, ops, maxCycles)
				if err != nil {
					return nil, err
				}
				if !res.Completed {
					return nil, fmt.Errorf("%s/%s with %d faults did not complete in %d cycles",
						c.name, prof.Name, faults, maxCycles)
				}
				if i == 0 {
					baseLat, baseRun = res.AvgLatency, float64(res.Runtime)
				}
				latRow = append(latRow, f2(res.AvgLatency/baseLat))
				runRow = append(runRow, f2(float64(res.Runtime)/baseRun))
			}
			lat.Rows = append(lat.Rows, latRow)
			run.Rows = append(run.Rows, runRow)
		}
		if sc == Quick && suite == "ligra" {
			lat.Notes = append(lat.Notes, "Quick scale: 4x4 system and first 3 workloads (paper: 8x8, 6 workloads).")
		}
		tables = append(tables, lat, run)
	}
	return tables, nil
}

func tableIDForSuite(suite string) string {
	if suite == "ligra" {
		return "fig12"
	}
	return "fig13"
}

func fig12(sc Scale, seed uint64) ([]Table, error) {
	return appMatrix(sc, seed, "ligra", 8, 8)
}

func fig13(sc Scale, seed uint64) ([]Table, error) {
	parsec, err := appMatrix(sc, seed, "parsec", 4, 4)
	if err != nil {
		return nil, err
	}
	if sc == Quick {
		return parsec, nil
	}
	splash, err := appMatrix(sc, seed, "splash2", 4, 4)
	if err != nil {
		return nil, err
	}
	return append(parsec, splash...), nil
}

func fig15(sc Scale, seed uint64) ([]Table, error) {
	profiles := []string{"pagerank", "canneal", "bfs"}
	w, h := 4, 4
	ops := int64(200)
	maxCycles := int64(600_000)
	epoch := int64(8192)
	if sc == Full {
		profiles = []string{"pagerank", "bfs", "components", "canneal", "fluidanimate", "radix"}
		ops, maxCycles, epoch = 1000, 5_000_000, 65_536
	}
	t := Table{
		ID:      "fig15",
		Title:   "p99 packet latency (cycles), 0 faults",
		Columns: []string{"workload"},
	}
	for _, c := range appConfigs() {
		t.Columns = append(t.Columns, c.name)
	}
	for _, name := range profiles {
		prof := workload.MustGet(name)
		row := []string{name}
		for _, c := range appConfigs() {
			r, err := sim.Build(sim.Params{
				Width: w, Height: h, Scheme: c.scheme, Classes: 3,
				VNets: c.vnets, VCsPerVN: c.vcs,
				Epoch: epoch, InjectCap: 16, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			res, err := r.RunApp(prof, ops, maxCycles)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", res.P99Latency))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}
