package experiments

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3", "fig4", "fig5", "fig6", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"headline", "disc", "reconfig",
	}
	for _, id := range want {
		e, ok := ByID(id)
		if !ok {
			t.Errorf("experiment %s not registered", id)
			continue
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d entries, want %d", got, len(want))
	}
	// All() sorted by ID.
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Error("All() not sorted")
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{
		ID:      "figX",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"note"},
	}
	md := tb.Markdown()
	for _, frag := range []string{"### figX", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, md)
		}
	}
}

// Cheap experiments run fully in tests; the expensive ones are covered
// by the benchmark harness.
func TestCheapExperiments(t *testing.T) {
	for _, id := range []string{"fig6", "fig8", "fig9"} {
		e, _ := ByID(id)
		tables, err := e.Run(context.Background(), Quick, 1)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
				t.Errorf("%s: empty table %q", id, tb.Title)
			}
			for _, r := range tb.Rows {
				if len(r) != len(tb.Columns) {
					t.Errorf("%s: row width %d != %d columns", id, len(r), len(tb.Columns))
				}
			}
		}
	}
}

func TestFig4WasteDominates(t *testing.T) {
	e, _ := ByID("fig4")
	tables, err := e.Run(context.Background(), Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		// Columns: workload, active, wasted, wasted share (e.g. "91.1%").
		share := row[3]
		if len(share) < 2 || share[len(share)-1] != '%' {
			t.Fatalf("bad share cell %q", share)
		}
		var v float64
		if _, err := fmtSscan(share[:len(share)-1], &v); err != nil {
			t.Fatal(err)
		}
		if v < 50 {
			t.Errorf("%s wastes only %s; paper expects waste to dominate", row[0], share)
		}
	}
}

// fmtSscan parses a float cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestFig9MOESIExtension(t *testing.T) {
	e, _ := ByID("fig9")
	tables, err := e.Run(context.Background(), Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig9 returns %d tables, want 2 (MESI + MOESI)", len(tables))
	}
	// DRAIN's normalized area under MOESI must be below its MESI value.
	mesiDrain := tables[0].Rows[2][2]
	moesiDrain := tables[1].Rows[2][1]
	if !(moesiDrain < mesiDrain) {
		t.Errorf("MOESI norm %s not below MESI norm %s", moesiDrain, mesiDrain)
	}
}

func TestFig9Ratios(t *testing.T) {
	e, _ := ByID("fig9")
	tables, err := e.Run(context.Background(), Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("fig9 rows = %d", len(rows))
	}
	// Normalized area column: escape = 1.000, drain smallest.
	if rows[0][2] != "1.000" {
		t.Errorf("escape norm area = %s", rows[0][2])
	}
	if !(rows[2][2] < rows[1][2] && rows[1][2] < rows[0][2]) {
		t.Errorf("area ordering wrong: %v", rows)
	}
}

func TestFig8Walkthrough(t *testing.T) {
	e, _ := ByID("fig8")
	tables, err := e.Run(context.Background(), Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if len(tb.Rows) != 8 {
		t.Fatalf("walkthrough rows = %d, want 8 packets", len(tb.Rows))
	}
	// Every planted packet must have been delivered eventually.
	foundDelivery := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "8 of 8") {
			foundDelivery = true
		}
	}
	if !foundDelivery {
		t.Errorf("walkthrough did not deliver all packets: %v", tb.Notes)
	}
}
