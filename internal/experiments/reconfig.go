package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "reconfig",
		Title: "Live fault injection and drain-path reconfiguration (DBR-style)",
		Paper: "DRAIN's substrate tolerates topology changes at runtime: when links " +
			"fail mid-run the routing candidates and the drain cycle are recomputed " +
			"online over the surviving subgraph, in-flight packets are rerouted or " +
			"dropped, and traffic keeps flowing — the dynamic-reconfiguration " +
			"counterpart (cf. DBR) to the paper's static fault sweeps.",
		Run: reconfig,
	})
}

// Reconfiguration timeline (absolute cycles): a burst of k link failures
// at reconfigFailAt, full recovery at reconfigRestoreAt, observed in
// four equal measurement windows — steady state, the transition right
// after the failure burst, the degraded steady state, and post-recovery.
const (
	reconfigWindow    = int64(1000)
	reconfigFailAt    = int64(2000)
	reconfigRestoreAt = int64(4000)
)

// burstSchedule picks k distinct links whose joint removal keeps g
// connected (drawing from the removable-edge set after each pick) and
// schedules them all to fail at failAt and recover at restoreAt.
func burstSchedule(g *topology.Graph, k int, failAt, restoreAt int64, rng *rand.Rand) ([]sim.FaultEvent, error) {
	cur := g
	evs := make([]sim.FaultEvent, 0, 2*k)
	failed := make([]topology.Edge, 0, k)
	for i := 0; i < k; i++ {
		cands := topology.RemovableEdges(cur)
		if len(cands) == 0 {
			return nil, fmt.Errorf("cannot fail %d links without disconnecting the topology", k)
		}
		e := cands[rng.IntN(len(cands))]
		var err error
		cur, err = cur.WithoutEdge(e.A, e.B)
		if err != nil {
			return nil, err
		}
		failed = append(failed, e)
		evs = append(evs, sim.FaultEvent{Cycle: failAt, A: e.A, B: e.B, Fail: true})
	}
	for _, e := range failed {
		evs = append(evs, sim.FaultEvent{Cycle: restoreAt, A: e.A, B: e.B, Fail: false})
	}
	return evs, nil
}

// reconfig measures how the network rides through live reconfigurations
// as the failure-burst size grows: latency in each timeline window, the
// delivery ratio during the transition, and the fate of the packets the
// failures touched. The fault schedules are generated from the base
// seed, so the figure regenerates deterministically.
func reconfig(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	bursts := []int{1, 2, 4}
	trials := 1
	if sc == Full {
		bursts = []int{1, 2, 4, 8}
		trials = 3
	}
	schemes := []sim.Scheme{sim.SchemeDRAIN, sim.SchemeEscapeVC}
	const rate = 0.10

	type cell struct {
		steady, transition, degraded, recovered float64 // window avg latency
		delivery                                float64 // transition accepted/offered
		rerouted, dropped, reconfigs            int64
	}
	perScheme := trials
	perBurst := len(schemes) * perScheme
	cells := make([]cell, len(bursts)*perBurst)
	err := ForEachConfigContext(ctx, len(cells), func(i int) error {
		trial := i % perScheme
		si := i / perScheme % len(schemes)
		bi := i / perBurst
		k := bursts[bi]

		p := sim.Params{Width: 8, Height: 8, Scheme: schemes[si], Epoch: 1024,
			Seed: seed + uint64(trial)*7919}
		g, mesh, err := p.BuildGraph()
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewPCG(seed^(uint64(k)*0x9e3779b9), uint64(trial)*0x0dbc30+0xfa1175))
		p.FaultSchedule, err = burstSchedule(g, k, reconfigFailAt, reconfigRestoreAt, rng)
		if err != nil {
			return err
		}
		r, err := sim.BuildOn(g, mesh, p)
		if err != nil {
			return err
		}
		defer r.Close()
		pat := traffic.UniformRandom{N: g.N()}
		// Four back-to-back measurement windows over one live network;
		// the runner keeps its clock, so the absolute schedule cycles
		// land inside the windows they bracket.
		steady, err := r.RunSyntheticContext(ctx, pat, rate, reconfigFailAt-reconfigWindow, reconfigWindow)
		if err != nil {
			return err
		}
		transition, err := r.RunSyntheticContext(ctx, pat, rate, 0, reconfigWindow)
		if err != nil {
			return err
		}
		degraded, err := r.RunSyntheticContext(ctx, pat, rate, 0, reconfigRestoreAt-reconfigFailAt-reconfigWindow)
		if err != nil {
			return err
		}
		recovered, err := r.RunSyntheticContext(ctx, pat, rate, 0, reconfigWindow)
		if err != nil {
			return err
		}
		cells[i] = cell{
			steady:     steady.AvgLatency,
			transition: transition.AvgLatency,
			degraded:   degraded.AvgLatency,
			recovered:  recovered.AvgLatency,
			delivery:   transition.Accepted / rate,
			rerouted:   recovered.Counters.FaultReroutes,
			dropped:    recovered.Counters.FaultDrops,
			reconfigs:  recovered.Counters.Reconfigs,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := Table{
		ID:    "reconfig",
		Title: "Latency and delivery through a live failure burst (8x8 mesh, uniform 0.10)",
		Columns: []string{"failed links", "scheme", "steady lat", "transition lat",
			"degraded lat", "recovered lat", "transition delivery", "rerouted", "dropped"},
	}
	for bi, k := range bursts {
		for si, s := range schemes {
			var c cell
			for trial := 0; trial < trials; trial++ {
				x := cells[bi*perBurst+si*perScheme+trial]
				c.steady += x.steady
				c.transition += x.transition
				c.degraded += x.degraded
				c.recovered += x.recovered
				c.delivery += x.delivery
				c.rerouted += x.rerouted
				c.dropped += x.dropped
				c.reconfigs += x.reconfigs
			}
			n := float64(trials)
			if c.reconfigs != int64(2*trials) {
				return nil, fmt.Errorf("reconfig: k=%d %v: %d reconfigurations over %d trials, want %d",
					k, s, c.reconfigs, trials, 2*trials)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", k), s.String(),
				f1(c.steady / n), f1(c.transition / n), f1(c.degraded / n), f1(c.recovered / n),
				pct(c.delivery / n),
				fmt.Sprintf("%.1f", float64(c.rerouted)/n),
				fmt.Sprintf("%.1f", float64(c.dropped)/n),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("All k links fail at cycle %d (one reconfiguration) and recover at cycle %d "+
			"(a second); every row saw exactly two reconfigurations per trial. Windows of %d cycles "+
			"measure steady state, the post-failure transition, the degraded network and "+
			"post-recovery. Rerouted packets were evacuated off failed links; dropped packets "+
			"were cut on the wire or had no free buffer. Averaged over %d trial schedule(s) "+
			"derived from the base seed.",
			reconfigFailAt, reconfigRestoreAt, reconfigWindow, trials))
	return []Table{t}, nil
}
