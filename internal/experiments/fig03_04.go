package experiments

import (
	"context"
	"fmt"

	"drain/internal/power"
	"drain/internal/sim"
	"drain/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig3",
		Title: "Deadlock likelihood for PARSEC workloads as links are removed",
		Paper: "Unprotected fully adaptive routing: no deadlocks with 0 links removed; " +
			"deadlocks appear first for canneal (highest injection) around 4 removed links " +
			"and become more common as more links are removed. Extra VCs delay but do not " +
			"prevent deadlock.",
		Run: fig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Active vs. wasted power of virtual networks",
		Paper: "The vast majority of virtual-network power is wasted (static power burned " +
			"while no packet of that VN is in flight).",
		Run: fig4,
	})
}

func fig3(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	w, h := 4, 4
	linksRemoved := []int{0, 2, 4, 6, 8}
	runs := 3
	maxCycles := int64(25_000)
	mshrs := 8 // raises pressure on the small quick system (see DESIGN.md)
	if sc == Full {
		w, h = 8, 8
		linksRemoved = []int{0, 2, 4, 6, 8, 10, 12}
		runs = 5
		maxCycles = 200_000
		mshrs = 8
	}
	// One job per (VC count, workload, fault count, run): every cell-run
	// is an independent simulation, so the whole figure fans out at once.
	vcsList := []int{1, 4}
	profs := workload.Parsec5()
	perCell := runs
	perLR := len(linksRemoved) * perCell
	perProf := len(profs) * perLR
	deadlocked := make([]bool, len(vcsList)*perProf)
	err := ForEachConfigContext(ctx, len(deadlocked), func(i int) error {
		run := i % perCell
		li := i / perCell % len(linksRemoved)
		wi := i / perLR % len(profs)
		vi := i / perProf
		r, err := sim.Build(sim.Params{
			Width: w, Height: h,
			Faults: linksRemoved[li], FaultSeed: seed + uint64(run)*7919,
			Scheme:    sim.SchemeNone,
			Classes:   3,
			VNets:     3,
			VCsPerVN:  vcsList[vi],
			InjectCap: 16,
			MSHRs:     mshrs,
			// Strictly minimal adaptive: the deadlock-prone
			// substrate whose failures this figure measures.
			DerouteAfter: -1,
			Seed:         seed + uint64(run)*104729,
		})
		if err != nil {
			return err
		}
		res, err := r.RunAppContext(ctx, profs[wi], 0, maxCycles)
		if err != nil {
			return err
		}
		deadlocked[i] = res.Deadlocked
		return nil
	})
	if err != nil {
		return nil, err
	}
	var tables []Table
	for vi, vcs := range vcsList {
		t := Table{
			ID:      "fig3",
			Title:   fmt.Sprintf("%% of runs deadlocked, %d VC/VNet, %dx%d mesh, unprotected adaptive routing", vcs, w, h),
			Columns: []string{"workload"},
		}
		for _, lr := range linksRemoved {
			t.Columns = append(t.Columns, fmt.Sprintf("%d links", lr))
		}
		for wi, prof := range profs {
			row := []string{prof.Name}
			for li := range linksRemoved {
				count := 0
				for run := 0; run < runs; run++ {
					if deadlocked[vi*perProf+wi*perLR+li*perCell+run] {
						count++
					}
				}
				row = append(row, pct(float64(count)/float64(runs)))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("%d runs per cell, %d-cycle horizon, scale=%v.", runs, maxCycles, sc))
		tables = append(tables, t)
	}
	return tables, nil
}

func fig4(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	w, h := 4, 4
	ops := int64(300)
	maxCycles := int64(400_000)
	if sc == Full {
		ops, maxCycles = 2000, 4_000_000
	}
	t := Table{
		ID:      "fig4",
		Title:   "Per-virtual-network power on the escape-VC baseline (3 VNets)",
		Columns: []string{"workload", "active (mW)", "wasted (mW)", "wasted share"},
	}
	params := power.DefaultParams()
	for _, prof := range workload.Parsec5() {
		r, err := sim.Build(sim.Params{
			Width: w, Height: h, Scheme: sim.SchemeEscapeVC,
			Classes: 3, InjectCap: 16, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		res, err := r.RunAppContext(ctx, prof, ops, maxCycles)
		if err != nil {
			return nil, err
		}
		rc := power.RouterConfig{
			Ports: r.PortsPerRouter(), VNets: 3, VCsPerVN: 2,
			FlitBits: 128, BufDepth: 5, Scheme: power.SchemeEscapeVC,
		}
		vp := power.PerVNPower(res.Counters, rc, params, res.Runtime, r.Graph.N(), 1.0)
		var act, waste float64
		for _, v := range vp {
			act += v.ActiveMW
			waste += v.WastedMW
		}
		t.Rows = append(t.Rows, []string{
			prof.Name, f2(act), f2(waste), pct(waste / (act + waste)),
		})
	}
	t.Notes = append(t.Notes, "Paper expectation: wasted share dominates for every workload.")
	return []Table{t}, nil
}
