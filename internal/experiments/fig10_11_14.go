package experiments

import (
	"context"
	"fmt"

	"drain/internal/sim"
	"drain/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Saturation throughput vs. faults (uniform random and transpose)",
		Paper: "Escape VCs yield the lowest throughput at every fault count. DRAIN matches " +
			"SPIN on uniform random and is at most slightly lower on transpose. All schemes " +
			"degrade as faults remove bandwidth.",
		Run: fig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Low-load packet latency vs. faults (uniform random and transpose)",
		Paper: "DRAIN matches SPIN; both beat escape VCs (whose turn-restricted escape " +
			"routing stretches paths). Latency rises with faults for every scheme.",
		Run: fig11,
	})
	register(Experiment{
		ID:    "fig14",
		Title: "Epoch sensitivity: low-load latency and saturation vs. drain epoch",
		Paper: "A 16-cycle epoch continuously flushes the network (terrible latency and " +
			"throughput); both metrics improve monotonically toward the 64K-cycle epoch.",
		Run: fig14,
	})
}

// synthMatrix runs the three schemes across fault counts for one traffic
// pattern and rate, averaging over fault patterns.
func synthMatrix(ctx context.Context, sc Scale, seed uint64, patName string, rate float64, metric func(sim.SyntheticResult) float64) (Table, error) {
	faults := []int{0, 4, 12}
	warm, meas := int64(1000), int64(4000)
	patterns := 2
	if sc == Full {
		faults = []int{0, 1, 4, 8, 12}
		warm, meas = 10_000, 50_000
		patterns = 10
	}
	schemes := []sim.Scheme{sim.SchemeEscapeVC, sim.SchemeSPIN, sim.SchemeDRAIN}
	t := Table{Columns: []string{"faults", "escape-vc", "spin", "drain"}}
	// One job per (fault count, scheme, fault pattern); averaging happens
	// serially afterwards in fixed index order.
	perScheme := patterns
	perFault := len(schemes) * perScheme
	metrics := make([]float64, len(faults)*perFault)
	err := ForEachConfigContext(ctx, len(metrics), func(i int) error {
		pi := i % perScheme
		si := i / perScheme % len(schemes)
		fi := i / perFault
		r, err := sim.Build(sim.Params{
			Width: 8, Height: 8, Faults: faults[fi], FaultSeed: seed + uint64(pi)*6151,
			Scheme: schemes[si], Seed: seed,
		})
		if err != nil {
			return err
		}
		pat, err := traffic.ByName(patName, 64, 8)
		if err != nil {
			return err
		}
		res, err := r.RunSyntheticContext(ctx, pat, rate, warm, meas)
		if err != nil {
			return err
		}
		metrics[i] = metric(res)
		return nil
	})
	if err != nil {
		return t, err
	}
	for fi, f := range faults {
		row := []string{fmt.Sprintf("%d", f)}
		for si := range schemes {
			sum := 0.0
			for pi := 0; pi < patterns; pi++ {
				sum += metrics[fi*perFault+si*perScheme+pi]
			}
			row = append(row, f3(sum/float64(patterns)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func fig10(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	var tables []Table
	for _, pat := range []string{"uniform", "transpose"} {
		t, err := synthMatrix(ctx, sc, seed, pat, 0.45,
			func(r sim.SyntheticResult) float64 { return r.Accepted })
		if err != nil {
			return nil, err
		}
		t.ID = "fig10"
		t.Title = "Saturation throughput (packets/node/cycle), " + pat + ", 8x8"
		tables = append(tables, t)
	}
	return tables, nil
}

func fig11(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	var tables []Table
	for _, pat := range []string{"uniform", "transpose"} {
		t, err := synthMatrix(ctx, sc, seed, pat, 0.02,
			func(r sim.SyntheticResult) float64 { return r.AvgLatency })
		if err != nil {
			return nil, err
		}
		t.ID = "fig11"
		t.Title = "Low-load average packet latency (cycles), " + pat + ", 8x8"
		tables = append(tables, t)
	}
	return tables, nil
}

func fig14(ctx context.Context, sc Scale, seed uint64) ([]Table, error) {
	epochs := []int64{16, 256, 4096, 65536}
	warm, meas := int64(1000), int64(5000)
	if sc == Full {
		epochs = []int64{16, 64, 256, 1024, 4096, 16384, 65536}
		warm, meas = 10_000, 100_000
	}
	t := Table{
		ID:      "fig14",
		Title:   "DRAIN epoch sweep, uniform random, 8x8",
		Columns: []string{"epoch (cycles)", "low-load latency", "saturation throughput"},
	}
	// One job per (epoch, load point).
	rates := []float64{0.02, 0.45}
	metrics := make([]float64, len(epochs)*len(rates))
	err := ForEachConfigContext(ctx, len(metrics), func(i int) error {
		ri := i % len(rates)
		ei := i / len(rates)
		r, err := sim.Build(sim.Params{Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Epoch: epochs[ei], Seed: seed})
		if err != nil {
			return err
		}
		res, err := r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 64}, rates[ri], warm, meas)
		if err != nil {
			return err
		}
		if ri == 0 {
			metrics[i] = res.AvgLatency
		} else {
			metrics[i] = res.Accepted
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ei, e := range epochs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", e), f1(metrics[ei*len(rates)]), f3(metrics[ei*len(rates)+1]),
		})
	}
	t.Notes = append(t.Notes, "Paper Fig. 14: latency falls and throughput rises monotonically with epoch.")
	return []Table{t}, nil
}
