package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// withParallelism runs fn with the given worker count and restores the
// previous setting afterwards (the package-level value is shared).
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	defer SetParallelism(prev)
	fn()
}

func TestForEachConfigCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 37
		hits := make([]atomic.Int32, n)
		withParallelism(t, workers, func() {
			if err := ForEachConfig(n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("workers=%d: index %d called %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachConfigZeroAndNegative(t *testing.T) {
	called := false
	for _, n := range []int{0, -3} {
		if err := ForEachConfig(n, func(int) error { called = true; return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if called {
		t.Error("fn called for n <= 0")
	}
}

// TestForEachConfigLowestError verifies the deterministic error contract:
// whichever worker count runs the jobs, the returned error is the one
// with the lowest index — the same error the serial loop stops at.
func TestForEachConfigLowestError(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		withParallelism(t, workers, func() {
			err := ForEachConfig(50, func(i int) error {
				if i == 13 || i == 31 {
					return fmt.Errorf("job %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "job 13 failed" {
				t.Errorf("workers=%d: got %v, want lowest-index error from job 13", workers, err)
			}
		})
	}
}

func TestSetParallelismClamps(t *testing.T) {
	prev := Parallelism()
	defer SetParallelism(prev)
	SetParallelism(0)
	if got := Parallelism(); got != 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(0), want 1", got)
	}
	SetParallelism(-5)
	if got := Parallelism(); got != 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(-5), want 1", got)
	}
}

// TestForEachConfigSerialStopsEarly checks the parallelism-1 fast path
// keeps the seed loop shape: later jobs never run once one fails.
func TestForEachConfigSerialStopsEarly(t *testing.T) {
	var calls int
	boom := errors.New("boom")
	withParallelism(t, 1, func() {
		err := ForEachConfig(10, func(i int) error {
			calls++
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	})
	if calls != 4 {
		t.Errorf("serial run made %d calls after failure at index 3, want 4", calls)
	}
}

// TestForEachConfigContextCancel proves a cancelled fan-out returns
// promptly, dispatches no further indices, and leaves no worker
// goroutine behind.
func TestForEachConfigContextCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		withParallelism(t, workers, func() {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			var calls atomic.Int32
			const n = 10_000
			done := make(chan error, 1)
			go func() {
				done <- ForEachConfigContext(ctx, n, func(i int) error {
					calls.Add(1)
					if calls.Load() == 5 {
						cancel()
					}
					// Simulate work that itself observes ctx, as sim runs do.
					select {
					case <-ctx.Done():
						return ctx.Err()
					case <-time.After(time.Millisecond):
						return nil
					}
				})
			}()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("workers=%d: cancelled fan-out did not return", workers)
			}
			if got := calls.Load(); got >= n {
				t.Errorf("workers=%d: all %d indices ran despite cancellation", workers, got)
			}
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
				time.Sleep(5 * time.Millisecond)
			}
			if got := runtime.NumGoroutine(); got > base {
				t.Errorf("workers=%d: %d goroutines after cancel, baseline %d", workers, got, base)
			}
			cancel()
		})
	}
}

// renderTables renders an experiment's tables the way cmd/experiments
// writes them, minus the timing line.
func renderTables(tables []Table) string {
	var b strings.Builder
	for i := range tables {
		b.WriteString(tables[i].Markdown())
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelDeterminism runs a real figure with 1 worker and with 8
// and requires byte-identical rendered markdown: every simulation owns
// its RNG, results land in index-addressed slots, and aggregation is a
// serial ordered pass, so worker count must be invisible in the output.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig14 twice")
	}
	e, ok := ByID("fig14")
	if !ok {
		t.Fatal("fig14 not registered")
	}
	var serial, fanned string
	withParallelism(t, 1, func() {
		tables, err := e.Run(context.Background(), Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		serial = renderTables(tables)
	})
	withParallelism(t, 8, func() {
		tables, err := e.Run(context.Background(), Quick, 1)
		if err != nil {
			t.Fatal(err)
		}
		fanned = renderTables(tables)
	})
	if serial != fanned {
		t.Errorf("fig14 output differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, fanned)
	}
}
