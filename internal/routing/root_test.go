package routing

import (
	"testing"

	"drain/internal/topology"
)

func TestNewTableWithRootValidation(t *testing.T) {
	g := topology.MustMesh(3, 3).Graph
	if _, err := NewTableWithRoot(g, nil, -1); err == nil {
		t.Error("negative root accepted")
	}
	if _, err := NewTableWithRoot(g, nil, 9); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := NewTableWithRoot(g, nil, 4); err != nil {
		t.Errorf("center root rejected: %v", err)
	}
}

func TestUpDownLegalForEveryRoot(t *testing.T) {
	// up*/down* must reach all pairs regardless of root placement.
	g := topology.MustMesh(4, 4).Graph
	for root := 0; root < g.N(); root += 5 {
		tab, err := NewTableWithRoot(g, nil, root)
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		for src := 0; src < g.N(); src++ {
			for dst := 0; dst < g.N(); dst++ {
				if src == dst {
					continue
				}
				if tab.UpDownDist(src, false, dst) < 0 {
					t.Fatalf("root %d: %d cannot reach %d", root, src, dst)
				}
			}
		}
	}
}

func TestRootChangesOrdering(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	a, err := NewTableWithRoot(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTableWithRoot(g, nil, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Edge 0-1: toward 0 is up under root 0, down under root 15.
	if !a.IsUp(1, 0) {
		t.Error("root 0: 1→0 should be up")
	}
	if b.IsUp(1, 0) {
		t.Error("root 15: 1→0 should be down")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		AdaptiveMinimal: "adaptive", XY: "xy", UpDown: "updown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestAllOutputsIncludesUTurnNeighbors(t *testing.T) {
	// AllOutputs from a degree-2 router lists both links, marking only
	// the distance-reducing one productive.
	g := topology.MustMesh(3, 1).Graph
	tab, err := NewTable(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands := tab.AllOutputs(1, 2)
	if len(cands) != 2 {
		t.Fatalf("AllOutputs = %d candidates, want 2", len(cands))
	}
	prod := 0
	for _, c := range cands {
		if c.Productive {
			prod++
			if g.Link(c.LinkID).To != 2 {
				t.Error("productive candidate does not reduce distance")
			}
		}
	}
	if prod != 1 {
		t.Errorf("%d productive candidates, want 1", prod)
	}
	if got := tab.AllOutputs(2, 2); len(got) != 0 {
		t.Error("AllOutputs at destination should be empty")
	}
}
