package routing

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/topology"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, ^seed)) }

func newTable(t *testing.T, g *topology.Graph, m *topology.Mesh) *Table {
	t.Helper()
	tab, err := NewTable(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestXYRoutesExactlyOnePort(t *testing.T) {
	m := topology.MustMesh(4, 4)
	tab := newTable(t, m.Graph, m)
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			if src == dst {
				continue
			}
			// Walk the XY route; it must be minimal and terminate.
			at, hops := src, 0
			for at != dst {
				cands := tab.Candidates(XY, at, dst, false)
				if len(cands) != 1 {
					t.Fatalf("XY at %d→%d: %d candidates, want 1", at, dst, len(cands))
				}
				at = m.Link(cands[0].LinkID).To
				if hops++; hops > m.N() {
					t.Fatalf("XY route %d→%d does not terminate", src, dst)
				}
			}
			if want := tab.Dist(src, dst); hops != want {
				t.Fatalf("XY route %d→%d took %d hops, want %d", src, dst, hops, want)
			}
		}
	}
}

func TestXYIsXFirst(t *testing.T) {
	m := topology.MustMesh(4, 4)
	tab := newTable(t, m.Graph, m)
	// From (0,0) to (2,2) the first hop must be +X.
	src, dst := m.RouterAt(0, 0), m.RouterAt(2, 2)
	cands := tab.Candidates(XY, src, dst, false)
	if len(cands) != 1 {
		t.Fatal("want one candidate")
	}
	if to := m.Link(cands[0].LinkID).To; to != m.RouterAt(1, 0) {
		t.Errorf("first hop goes to %d, want +X neighbor %d", to, m.RouterAt(1, 0))
	}
}

func TestAdaptiveMinimalIsProductiveAndComplete(t *testing.T) {
	m := topology.MustMesh(4, 4)
	tab := newTable(t, m.Graph, m)
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			if src == dst {
				continue
			}
			cands := tab.Candidates(AdaptiveMinimal, src, dst, false)
			if len(cands) == 0 {
				t.Fatalf("no adaptive candidates %d→%d", src, dst)
			}
			sx, sy := m.XY(src)
			dx, dy := m.XY(dst)
			wantCount := 0
			if sx != dx {
				wantCount++
			}
			if sy != dy {
				wantCount++
			}
			if len(cands) != wantCount {
				t.Fatalf("%d→%d: %d candidates, want %d", src, dst, len(cands), wantCount)
			}
			for _, c := range cands {
				nb := m.Link(c.LinkID).To
				if tab.Dist(nb, dst) != tab.Dist(src, dst)-1 {
					t.Fatalf("%d→%d: candidate via %d is not minimal", src, dst, nb)
				}
				if !c.Productive {
					t.Fatalf("%d→%d: minimal candidate marked unproductive", src, dst)
				}
			}
		}
	}
}

func TestCandidatesAtDestinationEmpty(t *testing.T) {
	m := topology.MustMesh(3, 3)
	tab := newTable(t, m.Graph, m)
	for _, k := range []Kind{AdaptiveMinimal, XY, UpDown} {
		if got := tab.Candidates(k, 4, 4, false); len(got) != 0 {
			t.Errorf("%v at destination returned %d candidates", k, len(got))
		}
	}
}

// walkUpDown follows up*/down* candidates (first candidate each step) and
// verifies the no-up-after-down invariant along the way.
func walkUpDown(t *testing.T, tab *Table, g *topology.Graph, src, dst int) int {
	t.Helper()
	at, phase, hops := src, false, 0
	for at != dst {
		cands := tab.Candidates(UpDown, at, dst, phase)
		if len(cands) == 0 {
			t.Fatalf("up*/down* stuck at %d (phase %v) heading to %d", at, phase, dst)
		}
		c := cands[0]
		to := g.Link(c.LinkID).To
		if phase && tab.IsUp(at, to) {
			t.Fatalf("up link %d→%d taken after down", at, to)
		}
		at, phase = to, c.DownPhase
		if hops++; hops > 4*g.N() {
			t.Fatalf("up*/down* route %d→%d does not terminate", src, dst)
		}
	}
	return hops
}

func TestUpDownReachesAllPairs(t *testing.T) {
	m := topology.MustMesh(4, 4)
	tab := newTable(t, m.Graph, m)
	for src := 0; src < m.N(); src++ {
		for dst := 0; dst < m.N(); dst++ {
			if src == dst {
				continue
			}
			hops := walkUpDown(t, tab, m.Graph, src, dst)
			if want := tab.UpDownDist(src, false, dst); hops != want {
				t.Fatalf("%d→%d: walked %d hops, table says %d", src, dst, hops, want)
			}
			if hops < tab.Dist(src, dst) {
				t.Fatalf("%d→%d: up*/down* beat BFS distance", src, dst)
			}
		}
	}
}

func TestUpDownIsNonMinimalSomewhere(t *testing.T) {
	// The paper's Fig. 5 premise: up*/down* forces non-minimal routes on
	// faulty topologies. (On a fault-free mesh with a corner root the
	// levels equal Manhattan distance, so routes happen to stay minimal.)
	rng := testRNG(5)
	base := topology.MustMesh(8, 8).Graph
	stretched := 0
	for trial := 0; trial < 5; trial++ {
		g, err := topology.RemoveRandomLinks(base, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		tab := newTable(t, g, nil)
		for src := 0; src < g.N(); src++ {
			for dst := 0; dst < g.N(); dst++ {
				if src == dst {
					continue
				}
				if tab.UpDownDist(src, false, dst) > tab.Dist(src, dst) {
					stretched++
				}
			}
		}
	}
	if stretched == 0 {
		t.Error("up*/down* on faulty 8x8 meshes should stretch some routes")
	}
}

func TestUpDownOnFaultyTopologies(t *testing.T) {
	rng := testRNG(11)
	base := topology.MustMesh(8, 8).Graph
	for _, faults := range []int{1, 4, 8, 12} {
		g, err := topology.RemoveRandomLinks(base, faults, rng)
		if err != nil {
			t.Fatal(err)
		}
		tab := newTable(t, g, nil)
		for src := 0; src < g.N(); src += 7 {
			for dst := 0; dst < g.N(); dst += 5 {
				if src != dst {
					walkUpDown(t, tab, g, src, dst)
				}
			}
		}
	}
}

func TestNewTableRejectsDisconnected(t *testing.T) {
	g := topology.MustNew(4, []topology.Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if _, err := NewTable(g, nil); err == nil {
		t.Error("expected error for disconnected topology")
	}
}

func TestEveryLinkHasExactlyOneDirection(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	tab := newTable(t, g, nil)
	for _, e := range g.Edges() {
		upAB := tab.IsUp(e.A, e.B)
		upBA := tab.IsUp(e.B, e.A)
		if upAB == upBA {
			t.Fatalf("edge %v: both directions classified the same", e)
		}
	}
}

// Property: adaptive minimal walks on random connected graphs always
// terminate in exactly Dist(src,dst) hops regardless of tie-breaking.
func TestAdaptiveWalkProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := testRNG(seed)
		g, err := topology.NewRandomConnected(n, 6, rng)
		if err != nil {
			return false
		}
		tab, err := NewTable(g, nil)
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			src, dst := rng.IntN(n), rng.IntN(n)
			at, hops := src, 0
			for at != dst {
				cands := tab.Candidates(AdaptiveMinimal, at, dst, false)
				if len(cands) == 0 {
					return false
				}
				at = g.Link(cands[rng.IntN(len(cands))].LinkID).To
				hops++
			}
			if hops != tab.Dist(src, dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: up*/down* walks on random graphs terminate and never violate
// the phase rule.
func TestUpDownWalkProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := testRNG(seed)
		g, err := topology.NewRandomConnected(n, 4, rng)
		if err != nil {
			return false
		}
		tab, err := NewTable(g, nil)
		if err != nil {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			src, dst := rng.IntN(n), rng.IntN(n)
			at, phase, hops := src, false, 0
			for at != dst {
				cands := tab.Candidates(UpDown, at, dst, phase)
				if len(cands) == 0 {
					return false
				}
				c := cands[rng.IntN(len(cands))]
				to := g.Link(c.LinkID).To
				if phase && tab.IsUp(at, to) {
					return false
				}
				at, phase = to, c.DownPhase
				if hops++; hops > 4*n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
