// Package routing implements the routing algorithms used by the DRAIN
// paper's evaluation (Table II): dimension-order (XY) routing on regular
// meshes, fully adaptive minimal routing on arbitrary graphs, and
// topology-agnostic up*/down* routing for irregular/faulty networks.
//
// All algorithms are table-driven: NewTable precomputes the per-
// destination structures once per topology (the paper recomputes routing
// state offline whenever a fault occurs), and Candidates answers per-hop
// queries without allocation.
package routing

import (
	"fmt"
	"sort"

	"drain/internal/topology"
)

// Kind selects a routing algorithm.
type Kind int

const (
	// AdaptiveMinimal routes over any output that strictly reduces the
	// BFS hop distance to the destination ("fully adaptive random" in the
	// paper once the caller randomizes among candidates).
	AdaptiveMinimal Kind = iota
	// XY is dimension-order routing on a 2D mesh: X fully, then Y.
	// Deadlock-free on fault-free meshes; unusable with faults.
	XY
	// UpDown is up*/down* routing over a BFS spanning tree: a route may
	// never take an "up" link after a "down" link. Deadlock-free on any
	// connected topology, at the cost of non-minimal paths.
	UpDown
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case AdaptiveMinimal:
		return "adaptive"
	case XY:
		return "xy"
	case UpDown:
		return "updown"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Candidate is one legal output for a packet at a router.
type Candidate struct {
	LinkID int // outgoing unidirectional link to take
	// DownPhase is the packet's up*/down* phase after taking this link
	// (true once any down link has been taken). Meaningless for other
	// algorithms; preserved as-is.
	DownPhase bool
	// Productive reports whether the hop strictly reduces the true BFS
	// distance to the destination (used for misroute accounting).
	Productive bool
}

// Table holds precomputed routing state for one topology.
//
// Routing is static per topology, so every candidate set a simulation can
// ask for is materialized once at construction time. Candidates and
// AllOutputs return those shared slices directly: callers MUST treat them
// as read-only and MUST NOT append to, re-sort, or otherwise mutate them
// (doing so would corrupt the answer for every later query). Copy first
// if a mutable view is needed.
type Table struct {
	g    *topology.Graph
	mesh *topology.Mesh // nil unless XY requested

	dist [][]int // dist[r][dst] BFS hop distance

	// up*/down* state. level/order define link direction; distUD[dst]
	// is indexed [router*2 + phase] where phase 1 means "has gone down".
	udRoot  int
	udOrder []int
	distUD  [][]int

	// Immutable candidate tables, indexed [at*N+dst]. All are backed by
	// shared arenas sliced per (at, dst) pair; empty sets are nil.
	adaptive   [][]Candidate    // AdaptiveMinimal (phase-independent)
	xy         [][]Candidate    // XY; nil unless mesh was provided
	upDown     [2][][]Candidate // UpDown, by downPhase
	allOut     [][]Candidate    // every output, neighbor order
	allOutProd [][]Candidate    // every output, productive entries first
}

// NewTable precomputes routing state for g. mesh may be nil; it is
// required only to answer XY queries. up*/down* numbering is rooted at
// router 0 over a BFS spanning tree.
func NewTable(g *topology.Graph, mesh *topology.Mesh) (*Table, error) {
	return NewTableWithRoot(g, mesh, 0)
}

// NewTableWithRoot is NewTable with an explicit up*/down* root router.
// Root placement determines how much up*/down* stretches routes and how
// badly traffic concentrates around the root (classic Autonet-style
// numbering picks an arbitrary root; the paper's Fig. 5 gap follows).
func NewTableWithRoot(g *topology.Graph, mesh *topology.Mesh, root int) (*Table, error) {
	if !g.Connected() {
		return nil, fmt.Errorf("routing: topology is disconnected")
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("routing: up*/down* root %d out of range", root)
	}
	t := &Table{g: g, mesh: mesh, dist: g.AllPairsDist(), udRoot: root}
	if err := t.buildUpDown(); err != nil {
		return nil, err
	}
	t.buildCandidateTables()
	return t, nil
}

// NewTableRemapped builds routing state over the active subgraph (the
// topology with currently-failed links removed) but expresses every
// candidate's LinkID in full's link-ID space, so a network whose dense
// per-link arrays were sized for the full topology can swap the table in
// mid-run without renumbering anything.
//
// active must have the same routers as full and an edge set that is a
// subset of full's. Distances, up*/down* numbering and Productive flags
// are all computed over active — failed links simply do not appear in
// any candidate set, including the AllOutputs deroute sets. XY is not
// built (it is illegal on faulted meshes anyway): Graph() returns
// active.
func NewTableRemapped(active, full *topology.Graph, root int) (*Table, error) {
	if active.N() != full.N() {
		return nil, fmt.Errorf("routing: active subgraph has %d routers, full graph %d", active.N(), full.N())
	}
	t, err := NewTableWithRoot(active, nil, root)
	if err != nil {
		return nil, err
	}
	remap := func(tab [][]Candidate) error {
		// Cells partition their shared arena (no overlap), so this touches
		// each materialized candidate exactly once.
		for _, cell := range tab {
			for i := range cell {
				l := active.Link(cell[i].LinkID)
				id, ok := full.LinkID(l.From, l.To)
				if !ok {
					return fmt.Errorf("routing: active link %v is not part of the full graph", l)
				}
				cell[i].LinkID = id
			}
		}
		return nil
	}
	for _, tab := range [][][]Candidate{t.adaptive, t.upDown[0], t.upDown[1], t.allOut, t.allOutProd} {
		if err := remap(tab); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Dist returns the BFS hop distance from r to dst.
func (t *Table) Dist(r, dst int) int { return t.dist[r][dst] }

// Graph returns the topology the table was built for.
func (t *Table) Graph() *topology.Graph { return t.g }

// buildUpDown assigns the up*/down* ordering and distance tables.
func (t *Table) buildUpDown() error {
	g := t.g
	// BFS levels from the root; "up" goes toward the root: a link u→v is
	// up iff (level[v], v) < (level[u], u) lexicographically, so every
	// link has exactly one direction.
	level := g.BFSDist(t.udRoot)
	t.udOrder = make([]int, g.N())
	// Dense rank: routers sorted by (level, id).
	byRank := make([]int, g.N())
	for i := range byRank {
		byRank[i] = i
	}
	sort.Slice(byRank, func(a, b int) bool {
		if level[byRank[a]] != level[byRank[b]] {
			return level[byRank[a]] < level[byRank[b]]
		}
		return byRank[a] < byRank[b]
	})
	for rank, r := range byRank {
		t.udOrder[r] = rank
	}

	// distUD[dst][router*2+phase]: minimum legal hops from (router,phase)
	// to dst. Computed per destination by BFS over the reversed
	// phase-product graph.
	t.distUD = make([][]int, g.N())
	// Reverse adjacency: for state (v, pv), which states (u, pu) step to it?
	// (u,0) --up--> (v,0); (u,0) --down--> (v,1); (u,1) --down--> (v,1).
	for dst := 0; dst < g.N(); dst++ {
		d := make([]int, g.N()*2)
		for i := range d {
			d[i] = -1
		}
		queue := make([]int, 0, g.N()*2)
		d[dst*2+0], d[dst*2+1] = 0, 0
		queue = append(queue, dst*2+0, dst*2+1)
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			v, pv := s/2, s%2
			for _, u := range g.Neighbors(v) {
				up := t.IsUp(u, v)
				var preds []int
				if pv == 0 {
					if up {
						preds = []int{u*2 + 0}
					}
				} else {
					if !up { // u→v is a down link
						preds = []int{u*2 + 0, u*2 + 1}
					}
				}
				for _, p := range preds {
					if d[p] < 0 {
						d[p] = d[s] + 1
						queue = append(queue, p)
					}
				}
			}
		}
		// Reachability check: phase-0 state of every router must reach dst.
		for r := 0; r < g.N(); r++ {
			if d[r*2+0] < 0 && r != dst {
				return fmt.Errorf("routing: up*/down* cannot reach %d from %d", dst, r)
			}
		}
		t.distUD[dst] = d
	}
	return nil
}

// IsUp reports whether the link from→to travels "up" (toward the
// spanning-tree root) under the table's up*/down* ordering.
func (t *Table) IsUp(from, to int) bool { return t.udOrder[to] < t.udOrder[from] }

// UpDownDist returns the minimum number of legal up*/down* hops from r
// (in the given phase) to dst, or -1 if unreachable in that phase.
func (t *Table) UpDownDist(r int, downPhase bool, dst int) int {
	ph := 0
	if downPhase {
		ph = 1
	}
	return t.distUD[dst][r*2+ph]
}

// AllOutputs returns every outgoing link of router `at` as a candidate
// (including U-turns — the paper's assumption 3 permits every turn),
// with Productive computed against the BFS distance. This is the
// "fully adaptive" candidate set: an unrestricted-routing packet that
// has stalled may deroute over any output (misrouting is legal; DRAIN's
// full drains guard against livelock).
//
// The returned slice is shared and read-only: it aliases the table's
// precomputed state and must not be modified or appended to.
func (t *Table) AllOutputs(at, dst int) []Candidate {
	return t.allOut[at*t.g.N()+dst]
}

// AllOutputsPreferProductive is AllOutputs with the productive candidates
// ordered first (the liveness analysis follows the first blocked target,
// so forced rotations should track desired moves). Same read-only
// contract as AllOutputs.
func (t *Table) AllOutputsPreferProductive(at, dst int) []Candidate {
	return t.allOutProd[at*t.g.N()+dst]
}

// Candidates returns the legal next-hop candidates for a packet at router
// `at` heading to dst under algorithm k. downPhase is the packet's
// current up*/down* phase; for AdaptiveMinimal and XY it is ignored and
// the returned candidates carry DownPhase=false (the phase is meaningless
// outside up*/down* and is never consumed for such packets). At the
// destination router it returns no candidates — the caller ejects
// instead.
//
// The returned slice is shared and read-only: it aliases the table's
// precomputed state and must not be modified or appended to.
func (t *Table) Candidates(k Kind, at, dst int, downPhase bool) []Candidate {
	i := at*t.g.N() + dst
	switch k {
	case AdaptiveMinimal:
		return t.adaptive[i]
	case XY:
		if t.xy == nil {
			return nil
		}
		return t.xy[i]
	case UpDown:
		if downPhase {
			return t.upDown[1][i]
		}
		return t.upDown[0][i]
	}
	return nil
}

// buildCandidateTables materializes every candidate set once. Each table
// is generated through the per-pair algorithm below and frozen into a
// shared arena so later queries are allocation-free lookups.
func (t *Table) buildCandidateTables() {
	n := t.g.N()
	build := func(gen func(buf []Candidate, at, dst int) []Candidate) [][]Candidate {
		out := make([][]Candidate, n*n)
		var arena []Candidate // one backing array for the whole table
		var scratch []Candidate
		total := 0
		for at := 0; at < n; at++ {
			for dst := 0; dst < n; dst++ {
				scratch = gen(scratch[:0], at, dst)
				total += len(scratch)
			}
		}
		arena = make([]Candidate, 0, total)
		for at := 0; at < n; at++ {
			for dst := 0; dst < n; dst++ {
				scratch = gen(scratch[:0], at, dst)
				if len(scratch) == 0 {
					continue
				}
				start := len(arena)
				arena = append(arena, scratch...)
				out[at*n+dst] = arena[start:len(arena):len(arena)]
			}
		}
		return out
	}
	t.adaptive = build(t.appendAdaptive)
	if t.mesh != nil {
		t.xy = build(t.appendXY)
	}
	t.upDown[0] = build(func(buf []Candidate, at, dst int) []Candidate {
		return t.appendUpDown(buf, at, dst, false)
	})
	t.upDown[1] = build(func(buf []Candidate, at, dst int) []Candidate {
		return t.appendUpDown(buf, at, dst, true)
	})
	t.allOut = build(t.appendAllOutputs)
	t.allOutProd = build(func(buf []Candidate, at, dst int) []Candidate {
		all := t.allOut[at*t.g.N()+dst]
		for _, c := range all {
			if c.Productive {
				buf = append(buf, c)
			}
		}
		for _, c := range all {
			if !c.Productive {
				buf = append(buf, c)
			}
		}
		return buf
	})
}

// appendAllOutputs generates the AllOutputs set for one (at, dst) pair.
func (t *Table) appendAllOutputs(buf []Candidate, at, dst int) []Candidate {
	if at == dst {
		return buf
	}
	cur := t.dist[at][dst]
	for _, nb := range t.g.Neighbors(at) {
		id, _ := t.g.LinkID(at, nb)
		buf = append(buf, Candidate{LinkID: id, Productive: t.dist[nb][dst] < cur})
	}
	return buf
}

// appendAdaptive generates the minimal fully adaptive set for one pair.
func (t *Table) appendAdaptive(buf []Candidate, at, dst int) []Candidate {
	if at == dst {
		return buf
	}
	cur := t.dist[at][dst]
	for _, nb := range t.g.Neighbors(at) {
		if t.dist[nb][dst] < cur {
			id, _ := t.g.LinkID(at, nb)
			buf = append(buf, Candidate{LinkID: id, Productive: true})
		}
	}
	return buf
}

// appendXY generates the dimension-order hop for one pair.
func (t *Table) appendXY(buf []Candidate, at, dst int) []Candidate {
	if at == dst {
		return buf
	}
	m := t.mesh
	x, y := m.XY(at)
	dx, dy := m.XY(dst)
	var next int
	switch {
	case x < dx:
		next = m.RouterAt(x+1, y)
	case x > dx:
		next = m.RouterAt(x-1, y)
	case y < dy:
		next = m.RouterAt(x, y+1)
	default:
		next = m.RouterAt(x, y-1)
	}
	if id, ok := t.g.LinkID(at, next); ok {
		buf = append(buf, Candidate{LinkID: id, Productive: true})
	}
	return buf
}

// appendUpDown generates the legal up*/down* hops for one pair and phase.
func (t *Table) appendUpDown(buf []Candidate, at, dst int, downPhase bool) []Candidate {
	if at == dst {
		return buf
	}
	cur := t.UpDownDist(at, downPhase, dst)
	if cur < 0 {
		return buf
	}
	for _, nb := range t.g.Neighbors(at) {
		up := t.IsUp(at, nb)
		if downPhase && up {
			continue // an up turn after going down is illegal
		}
		nextPhase := downPhase || !up
		if t.UpDownDist(nb, nextPhase, dst) == cur-1 {
			id, _ := t.g.LinkID(at, nb)
			buf = append(buf, Candidate{
				LinkID:     id,
				DownPhase:  nextPhase,
				Productive: t.dist[nb][dst] < t.dist[at][dst],
			})
		}
	}
	return buf
}
