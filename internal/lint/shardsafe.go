package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runShardSafe computes the write-set of every function statically
// reachable from the parallel-phase roots (the sharded engine's
// land-arrive, land-free, plan and inject phases, plus any function
// marked //drain:parallelphase) and flags writes that leave the running
// goroutine's frame without landing in declared staging state. The
// sharded engine's byte-identity argument says every parallel-phase
// write is either partitioned by owner (destination router, shard) or
// staged into per-shard buffers drained serially; this analyzer turns
// that prose into a checked classification:
//
//   - writes to local variables (including struct values and arrays on
//     the frame) are always fine;
//   - writes to package-level variables are findings — shared mutable
//     state has no owner;
//   - field writes, element writes and pointer-dereference writes that
//     escape the frame are resolved to the named type (and field) that
//     owns the memory; the write is legal only if that type or field is
//     declared staging/partitioned state via a reasoned //drain:staged
//     directive, placed on the type declaration or on the specific
//     field;
//   - channel sends are findings — phases synchronize only at barriers.
//
// A //drain:staged directive is a claim reviewed by a human: the reason
// string must say why concurrent shard writes to that state cannot race
// or reorder observably (per-shard instance, router-partitioned index
// ranges, cross-shard staging drained in deterministic order, ...).
// Dynamic calls are not followed (the engine-seam convention; see
// hotalloc); the phase functions dispatch statically.
func runShardSafe(c *Config, pkgs []*Package) []Finding {
	idx := buildFuncIndex(pkgs)
	roots := idx.rootsOf(c.ParallelPhaseRoots, dirParallelphase)
	if len(roots) == 0 {
		return nil
	}
	staged := buildStagedIndex(pkgs)
	var out []Finding
	for _, fn := range idx.reachable(roots, nil) {
		d := idx[fn]
		if !d.pkg.Target {
			continue
		}
		out = append(out, checkPhaseWrites(d.pkg, fn, d.decl, staged)...)
	}
	return out
}

// stagedIndex records which named types and struct fields are declared
// staging/partitioned state.
type stagedIndex struct {
	types  map[types.Object]bool // type name objects (*types.TypeName)
	fields map[types.Object]bool // field objects (*types.Var)
}

// ok reports whether a write to field fieldObj of named type owner is
// covered by a //drain:staged declaration.
func (si stagedIndex) ok(owner *types.Named, fieldObj types.Object) bool {
	if owner != nil && si.types[owner.Obj()] {
		return true
	}
	return fieldObj != nil && si.fields[fieldObj]
}

// buildStagedIndex scans every loaded file for //drain:staged directives
// on type declarations and struct fields.
func buildStagedIndex(pkgs []*Package) stagedIndex {
	si := stagedIndex{types: map[types.Object]bool{}, fields: map[types.Object]bool{}}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			dirs, _ := p.parseDirectives(f)
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if p.typeHas(dirs, gd, ts, dirStaged) {
						if obj := p.objectOf(ts.Name); obj != nil {
							si.types[obj] = true
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, fld := range st.Fields.List {
						if !p.fieldHas(dirs, fld, dirStaged) {
							continue
						}
						for _, nm := range fld.Names {
							if obj := p.objectOf(nm); obj != nil {
								si.fields[obj] = true
							}
						}
					}
				}
			}
		}
	}
	return si
}

// checkPhaseWrites scans one parallel-phase-reachable function body.
func checkPhaseWrites(p *Package, fn *types.Func, decl *ast.FuncDecl, staged stagedIndex) []Finding {
	var out []Finding
	name := fn.Name()
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if node.Tok == token.DEFINE {
					continue // new local
				}
				out = append(out, classifyWrite(p, name, lhs, staged)...)
			}
		case *ast.IncDecStmt:
			out = append(out, classifyWrite(p, name, node.X, staged)...)
		case *ast.SendStmt:
			out = append(out, p.finding("shardsafe", node,
				"%s is parallel-phase reachable: channel send from a phase body (phases synchronize only at barriers)", name))
		case *ast.RangeStmt:
			if node.Tok == token.ASSIGN {
				if node.Key != nil {
					out = append(out, classifyWrite(p, name, node.Key, staged)...)
				}
				if node.Value != nil {
					out = append(out, classifyWrite(p, name, node.Value, staged)...)
				}
			}
		}
		return true
	})
	return out
}

// classifyWrite decides whether a single lvalue write stays inside the
// running goroutine's frame or lands in declared staging state, and
// reports a finding otherwise.
func classifyWrite(p *Package, fnName string, lhs ast.Expr, staged stagedIndex) []Finding {
	lhs = ast.Unparen(lhs)
	switch e := lhs.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return nil
		}
		obj := p.objectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		if isPackageLevel(v) {
			return []Finding{p.finding("shardsafe", lhs,
				"%s is parallel-phase reachable: write to package-level variable %s (shared state with no shard owner)", fnName, e.Name)}
		}
		return nil // local (or parameter): confined to this goroutine's frame
	case *ast.SelectorExpr:
		return classifyFieldWrite(p, fnName, e, staged)
	case *ast.IndexExpr:
		// Element write: the backing store is what matters. An index into
		// a local slice variable is the arena discipline (the slice header
		// was handed to this goroutine); an index into a field resolves
		// like a field write of that field.
		return classifyWrite(p, fnName, e.X, staged)
	case *ast.StarExpr:
		if named := namedPointee(p.typeOf(e.X)); named != nil {
			if staged.ok(named, nil) {
				return nil
			}
			return []Finding{p.finding("shardsafe", lhs,
				"%s is parallel-phase reachable: write through *%s, which is not declared staging state (//drain:staged <reason> on the type, or move the write to a serial phase)", fnName, named.Obj().Name())}
		}
		return []Finding{p.finding("shardsafe", lhs,
			"%s is parallel-phase reachable: write through an unclassifiable pointer", fnName)}
	case *ast.SliceExpr:
		return classifyWrite(p, fnName, e.X, staged)
	}
	return []Finding{p.finding("shardsafe", lhs,
		"%s is parallel-phase reachable: write to an unclassifiable lvalue", fnName)}
}

// classifyFieldWrite resolves a selector write x.f = v.
func classifyFieldWrite(p *Package, fnName string, e *ast.SelectorExpr, staged stagedIndex) []Finding {
	sel := p.Info.Selections[e]
	if sel == nil {
		// Qualified identifier pkg.Var.
		if obj, ok := p.objectOf(e.Sel).(*types.Var); ok && isPackageLevel(obj) {
			return []Finding{p.finding("shardsafe", e,
				"%s is parallel-phase reachable: write to package-level variable %s.%s (shared state with no shard owner)", fnName, exprString(e.X), e.Sel.Name)}
		}
		return nil
	}
	if sel.Kind() != types.FieldVal {
		return nil
	}
	// A write to a field of a struct VALUE rooted at a local variable
	// never leaves the frame; any pointer hop on the way down does.
	if localValueChain(p, e.X) {
		return nil
	}
	owner := namedPointee(sel.Recv())
	if staged.ok(owner, sel.Obj()) {
		return nil
	}
	ownerName := "?"
	if owner != nil {
		ownerName = owner.Obj().Name()
	}
	return []Finding{p.finding("shardsafe", e,
		"%s is parallel-phase reachable: write to %s.%s, which is neither shard-local nor declared staging state (//drain:staged <reason> on the field or type, or move the write to a serial phase)", fnName, ownerName, e.Sel.Name)}
}

// localValueChain reports whether expr is a chain of value-typed
// selectors/array indexes rooted at a non-package-level, value-typed
// variable — i.e. storage that provably lives in this function's frame.
func localValueChain(p *Package, expr ast.Expr) bool {
	for {
		expr = ast.Unparen(expr)
		switch v := expr.(type) {
		case *ast.Ident:
			obj, ok := p.objectOf(v).(*types.Var)
			if !ok || isPackageLevel(obj) {
				return false
			}
			return !escapesFrame(obj.Type())
		case *ast.SelectorExpr:
			sel := p.Info.Selections[v]
			if sel == nil || sel.Kind() != types.FieldVal || escapesFrame(sel.Recv()) {
				return false
			}
			expr = v.X
		case *ast.IndexExpr:
			t := p.typeOf(v.X)
			if t == nil {
				return false
			}
			if _, ok := t.Underlying().(*types.Array); !ok {
				return false // slice/map backing store is heap memory
			}
			expr = v.X
		default:
			return false
		}
	}
}

// escapesFrame reports whether a value of type t references storage
// outside the holding variable itself (pointer, slice, map, channel —
// anything a write could reach shared memory through).
func escapesFrame(t types.Type) bool {
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	}
	return false
}

// namedPointee unwraps pointers and aliases to the named type, or nil.
func namedPointee(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// isPackageLevel reports whether v is a package-scoped variable.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// exprString renders a short expression for diagnostics.
func exprString(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}
