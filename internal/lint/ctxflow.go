package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// runCtxFlow enforces the cancellation conventions PR 2 established
// (ctx-first APIs, StepContext polling every CancelCheckEvery cycles):
//
//  1. An exported Run*/ForEach* entry point must take context.Context as
//     its first parameter, or have a sibling <name>Context in the same
//     package that does (the compatibility-wrapper pattern:
//     RunSynthetic → RunSyntheticContext).
//  2. No struct may store a context.Context in a field. Contexts are
//     call-scoped; a stored ctx outlives its request and silently stops
//     cancelling. The one legitimate shape — a queue/message carrier
//     moving a request ctx between goroutines — must be annotated
//     //drain:ctxcarrier <reason>.
//  3. Inside a function that takes a ctx, a loop that advances the
//     simulation (calls something named Step/StepContext/Tick) must
//     mention that ctx somewhere in its body: a cycle-bounded loop that
//     never consults ctx.Done()/StepContext runs to completion no matter
//     how long ago the caller cancelled.
func runCtxFlow(c *Config, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		// Sibling lookup is package-wide: a *Context variant may live in
		// a different file than its wrapper.
		decls := map[string]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					decls[declKey(fd)] = fd
				}
			}
		}
		for _, f := range p.Files {
			dirs, bad := p.parseDirectives(f)
			out = append(out, bad...) // malformed directives, reported module-wide
			for _, d := range f.Decls {
				switch node := d.(type) {
				case *ast.FuncDecl:
					out = append(out, p.checkEntryPoint(node, decls)...)
					out = append(out, p.checkSimLoops(node)...)
				case *ast.GenDecl:
					out = append(out, p.checkCtxFields(node, dirs)...)
				}
			}
		}
	}
	return out
}

// declKey is "RecvType.Name" or "Name", for sibling lookup within a file.
func declKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// firstParamIsCtx reports whether the declaration's first parameter is a
// context.Context.
func (p *Package) firstParamIsCtx(fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	t := p.typeOf(fd.Type.Params.List[0].Type)
	return t != nil && isContextType(t)
}

// checkEntryPoint enforces rule 1 on exported Run*/ForEach* functions.
func (p *Package) checkEntryPoint(fd *ast.FuncDecl, decls map[string]*ast.FuncDecl) []Finding {
	name := fd.Name.Name
	if !ast.IsExported(name) || fd.Body == nil {
		return nil
	}
	if !strings.HasPrefix(name, "Run") && !strings.HasPrefix(name, "ForEach") {
		return nil
	}
	if p.firstParamIsCtx(fd) {
		return nil
	}
	if strings.HasSuffix(name, "Context") {
		return []Finding{p.finding("ctxflow", fd.Name,
			"%s must take context.Context as its first parameter", name)}
	}
	key := declKey(fd) + "Context"
	if sibling, ok := decls[key]; ok && p.firstParamIsCtx(sibling) {
		return nil // compatibility wrapper over the ctx-first variant
	}
	return []Finding{p.finding("ctxflow", fd.Name,
		"exported entry point %s is not cancellable: take context.Context as the first parameter, or provide a %sContext sibling and delegate to it", name, name)}
}

// checkCtxFields enforces rule 2 on struct type declarations.
func (p *Package) checkCtxFields(decl *ast.GenDecl, dirs fileDirectives) []Finding {
	var out []Finding
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			t := p.typeOf(field.Type)
			if t == nil || !isContextType(t) {
				continue
			}
			if dirs.at(dirCtxcarrier, p.Fset.Position(field.Pos()).Line) {
				continue
			}
			out = append(out, p.finding("ctxflow", field,
				"struct %s stores a context.Context; contexts are call-scoped — pass ctx as a parameter (queue/message carriers may annotate //drain:ctxcarrier <reason>)", ts.Name.Name))
		}
	}
	return out
}

// simAdvanceNames are the calls that advance simulated time.
var simAdvanceNames = map[string]bool{"Step": true, "StepContext": true, "Tick": true}

// checkSimLoops enforces rule 3: simulation-advancing loops inside a
// ctx-taking function must consult that ctx.
func (p *Package) checkSimLoops(fd *ast.FuncDecl) []Finding {
	ctxObjs := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if t := p.typeOf(field.Type); t != nil && isContextType(t) {
				for _, id := range field.Names {
					if obj := p.objectOf(id); obj != nil {
						ctxObjs[obj] = true
					}
				}
			}
		}
	}
	if len(ctxObjs) == 0 || fd.Body == nil {
		return nil
	}
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		advances, consultsCtx := false, false
		ast.Inspect(body, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && simAdvanceNames[sel.Sel.Name] {
					advances = true
				}
				if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok && simAdvanceNames[id.Name] {
					advances = true
				}
			case *ast.Ident:
				if ctxObjs[p.objectOf(node)] {
					consultsCtx = true
				}
			}
			return true
		})
		if advances && !consultsCtx {
			out = append(out, p.finding("ctxflow", n,
				"%s takes a context but this simulation loop never consults it; call StepContext(ctx) or check ctx.Done() (poll interval: noc.CancelCheckEvery)", fd.Name.Name))
			return false // don't double-report nested loops
		}
		return true
	})
	return out
}
