package lint

import (
	"go/ast"
	"go/types"
)

// runMapRange flags `for range` over a map in the deterministic packages.
// Go randomizes map iteration order per run, so any map-order loop that
// feeds output, state mutation, or RNG consumption diverges between runs
// with the same seed.
//
// Two shapes are allowed without a directive:
//
//   - collect-then-sort: the loop body's only effect is appending the
//     key and/or value to a local slice (optionally behind a call-free
//     guard), and that slice is later passed to a sort function in the
//     same function body before any other use. Sorting erases the
//     iteration order, so the result is deterministic.
//   - //drain:orderfree <reason> on or directly above the loop, for
//     iterations that are provably order-insensitive (e.g. a pure
//     min/max reduction with a total tie-break).
func runMapRange(c *Config, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !p.Target || !c.isDeterministic(p.ImportPath) {
			continue
		}
		for _, f := range p.Files {
			dirs, bad := p.parseDirectives(f)
			out = append(out, bad...)
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.typeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				line := p.Fset.Position(rng.Pos()).Line
				if dirs.at(dirOrderfree, line) {
					return true
				}
				if p.isCollectThenSort(f, rng) {
					return true
				}
				out = append(out, p.finding("maprange", rng,
					"iteration over map %s has randomized order; collect+sort the keys, or annotate with //drain:orderfree <reason> if provably order-insensitive", p.typeStr(t)))
				return true
			})
		}
	}
	return out
}

// typeStr renders a type relative to the package under analysis, so
// same-package names print without a qualifier.
func (p *Package) typeStr(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(p.Types))
}

// isCollectThenSort recognizes the canonical deterministic idiom:
//
//	for k, v := range m {
//	    if <call-free guard> {        // optional
//	        s = append(s, k)          // or v; s is a local slice
//	    }
//	}
//	sort.X(s...) / slices.Sort(s)     // later in the same function
func (p *Package) isCollectThenSort(file *ast.File, rng *ast.RangeStmt) bool {
	stmt := singleStmt(rng.Body.List)
	if ifs, ok := stmt.(*ast.IfStmt); ok {
		if ifs.Else != nil || ifs.Init != nil || hasCallOrAssign(ifs.Cond) {
			return false
		}
		stmt = singleStmt(ifs.Body.List)
	}
	assign, ok := stmt.(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	slice := p.objectOf(lhs)
	if slice == nil {
		return false
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if obj := p.objectOf(fn); obj != nil {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return false // shadowed append
		}
	}
	if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || p.objectOf(base) != slice {
		return false
	}
	// The appended element must be the range key or value variable.
	elem, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok {
		return false
	}
	elemObj := p.objectOf(elem)
	if elemObj == nil || (elemObj != p.rangeVar(rng.Key) && elemObj != p.rangeVar(rng.Value)) {
		return false
	}
	// A sort of the collected slice must follow the loop.
	return p.sortedAfter(file, rng, slice)
}

// rangeVar resolves a range clause variable to its object.
func (p *Package) rangeVar(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.objectOf(id)
}

// singleStmt returns the sole statement of a block, or nil.
func singleStmt(list []ast.Stmt) ast.Stmt {
	if len(list) != 1 {
		return nil
	}
	return list[0]
}

// hasCallOrAssign reports whether the expression contains a call or a
// function literal (either could be order-dependently side-effecting).
func hasCallOrAssign(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.CallExpr, *ast.FuncLit:
			found = true
		}
		return !found
	})
	return found
}

// sortFuncs are the recognized sorters (package selector → functions).
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether slice is passed, after the range loop, to a
// recognized sort function within the same enclosing function body.
func (p *Package) sortedAfter(file *ast.File, rng *ast.RangeStmt, slice types.Object) bool {
	var enclosing ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= rng.Pos() && rng.End() <= n.End() {
				enclosing = n // innermost wins: keep descending
			}
		}
		return true
	})
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := p.objectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		fns, ok := sortFuncs[pkgName.Imported().Path()]
		if !ok || !fns[sel.Sel.Name] {
			return true
		}
		if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && p.objectOf(arg) == slice {
			found = true
		}
		return !found
	})
	return found
}
