package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	// Target marks packages matched by the requested patterns (as
	// opposed to dependencies pulled in for type information). Findings
	// are only reported in target packages.
	Target bool
	// Std marks standard-library dependencies; their ASTs are discarded
	// after type-checking.
	Std bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load discovers the packages matching patterns (relative to dir) with
// `go list -deps`, parses them, and type-checks them bottom-up with a
// purely standard-library pipeline. Standard-library dependencies are
// checked with IgnoreFuncBodies (only their exported shape matters);
// everything else keeps its ASTs and full type info for analysis.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	byPath := map[string]*types.Package{}
	var out []*Package
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = types.Unsafe
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Target:     !lp.DepOnly,
			Std:        lp.Standard,
			Fset:       fset,
		}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(lp.Dir, name), err)
			}
			p.Files = append(p.Files, f)
		}
		conf := types.Config{
			Importer:         mapImporter(byPath),
			IgnoreFuncBodies: lp.Standard,
			FakeImportC:      true,
			Error:            func(error) {}, // collect via the returned error
		}
		if !lp.Standard {
			p.Info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
			}
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, p.Files, p.Info)
		if err != nil && !lp.Standard {
			return nil, fmt.Errorf("lint: typecheck %s: %w", lp.ImportPath, err)
		}
		byPath[lp.ImportPath] = tpkg
		p.Types = tpkg
		if lp.Standard {
			p.Files = nil // free: only the export shape is needed
		}
		out = append(out, p)
	}
	var kept []*Package
	for _, p := range out {
		if !p.Std {
			kept = append(kept, p)
		}
	}
	return kept, nil
}

// mapImporter resolves imports from already-checked packages. `go list
// -deps` emits dependencies before dependents, so every import is
// present by the time it is needed.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok && p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not loaded (go list order violated?)", path)
}

// goList shells out to the go tool for package discovery — the one
// responsibility go/ast cannot cover. CGO is disabled so the standard
// library resolves to its pure-Go fallbacks, which the source
// type-checker can handle.
func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Imports,Standard,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
