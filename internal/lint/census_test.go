package lint

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// censusMarker is the machine-readable directive tally DESIGN.md §10
// carries. TestDirectiveCensus pins the module's real directive counts
// against it, so a new suppression cannot land without the design doc
// acknowledging it (and a removed one cannot leave the doc stale).
var censusMarker = regexp.MustCompile(`<!-- drainvet-directive-census:([^>]*)-->`)

// TestDirectiveCensus scans every non-testdata .go file in the module
// for //drain: directive comments and compares the per-kind tally with
// the census marker in DESIGN.md §10.
func TestDirectiveCensus(t *testing.T) {
	root := moduleRoot(t)

	got := map[string]int{}
	for _, k := range DirectiveKinds {
		got[k] = 0
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// testdata holds the analyzers' own fixtures (deliberately full
			// of directives); hidden dirs hold no Go sources of ours.
			if name := d.Name(); name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, dirPrefix) {
					continue
				}
				kind, _, _ := strings.Cut(strings.TrimPrefix(c.Text, dirPrefix), " ")
				if knownDirective(kind) {
					got[kind]++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk module: %v", err)
	}

	want := parseCensusMarker(t, root)
	for _, k := range DirectiveKinds {
		w, ok := want[k]
		if !ok {
			t.Errorf("DESIGN.md census marker is missing kind %q (module has %d); add %s=%d", k, got[k], k, got[k])
			continue
		}
		if got[k] != w {
			t.Errorf("directive census drift for %s: module has %d, DESIGN.md §10 says %d — update the marker (and the surrounding prose) to match the audited set", k, got[k], w)
		}
	}
	for k := range want {
		if !knownDirective(k) {
			t.Errorf("DESIGN.md census marker names unknown directive kind %q (known: %s)", k, strings.Join(DirectiveKinds, ", "))
		}
	}
}

// parseCensusMarker extracts the kind=count pairs from DESIGN.md.
func parseCensusMarker(t *testing.T, root string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	m := censusMarker.FindSubmatch(data)
	if m == nil {
		t.Fatal("DESIGN.md has no drainvet-directive-census marker (expected in §10)")
	}
	out := map[string]int{}
	for _, field := range strings.Fields(string(m[1])) {
		kind, countStr, ok := strings.Cut(field, "=")
		if !ok {
			t.Fatalf("malformed census entry %q (want kind=count)", field)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil {
			t.Fatalf("malformed census count in %q: %v", field, err)
		}
		out[kind] = n
	}
	return out
}

// moduleRoot resolves the enclosing module's root directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}
