package lint

import (
	"go/ast"
	"strings"
)

// Directive kinds.
const (
	dirHotpath    = "hotpath"
	dirColdpath   = "coldpath"
	dirOrderfree  = "orderfree"
	dirCtxcarrier = "ctxcarrier"
)

const dirPrefix = "//drain:"

// directive is one parsed //drain: comment.
type directive struct {
	kind   string
	reason string
	line   int // line the comment sits on
}

// fileDirectives indexes a file's //drain: comments by line.
type fileDirectives struct {
	byLine map[int][]directive
}

// parseDirectives scans every comment in the file. Malformed directives
// (unknown kind, missing reason) are reported as findings against the
// given analyzer name ("drainvet" when run from the driver) so a typoed
// or bare suppression never silently disables a check.
func (p *Package) parseDirectives(f *ast.File) (fileDirectives, []Finding) {
	d := fileDirectives{byLine: map[int][]directive{}}
	var bad []Finding
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, dirPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, dirPrefix)
			kind, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			line := p.Fset.Position(c.Pos()).Line
			switch kind {
			case dirHotpath, dirColdpath, dirOrderfree, dirCtxcarrier:
				if reason == "" {
					bad = append(bad, p.finding("directive", c,
						"//drain:%s requires a reason: //drain:%s <why this is sound>", kind, kind))
					continue
				}
				d.byLine[line] = append(d.byLine[line], directive{kind: kind, reason: reason, line: line})
			default:
				bad = append(bad, p.finding("directive", c,
					"unknown directive %q (known: hotpath, coldpath, orderfree, ctxcarrier)", dirPrefix+kind))
			}
		}
	}
	return d, bad
}

// at reports whether a directive of the given kind is attached to a node
// starting on the given line: on the same line (trailing comment) or on
// any of the three lines directly above it (inside a doc comment block).
func (d fileDirectives) at(kind string, line int) bool {
	for l := line; l >= line-3 && l >= 1; l-- {
		for _, dir := range d.byLine[l] {
			if dir.kind == kind {
				return true
			}
		}
	}
	return false
}

// funcHas reports whether fn carries the directive (with a reason)
// anywhere in its doc comment block or on its declaration line.
func (p *Package) funcHas(d fileDirectives, fn *ast.FuncDecl, kind string) bool {
	start := p.Fset.Position(fn.Pos()).Line
	if fn.Doc != nil {
		start = p.Fset.Position(fn.Doc.Pos()).Line
	}
	end := p.Fset.Position(fn.Name.Pos()).Line
	for l := start; l <= end; l++ {
		for _, dir := range d.byLine[l] {
			if dir.kind == kind {
				return true
			}
		}
	}
	return false
}
