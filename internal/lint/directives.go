package lint

import (
	"go/ast"
	"strings"
)

// Directive kinds.
const (
	dirHotpath        = "hotpath"
	dirColdpath       = "coldpath"
	dirOrderfree      = "orderfree"
	dirCtxcarrier     = "ctxcarrier"
	dirParallelphase  = "parallelphase"
	dirStaged         = "staged"
	dirCachekeyExempt = "cachekey-exempt"
)

// DirectiveKinds lists every directive the analyzers accept, in the
// order they are documented. The parse switch, the DESIGN.md directive
// census (TestDirectiveCensus) and the docs all derive from this one
// list, so a new directive cannot be added without showing up in each.
var DirectiveKinds = []string{
	dirHotpath, dirColdpath, dirOrderfree, dirCtxcarrier,
	dirParallelphase, dirStaged, dirCachekeyExempt,
}

const dirPrefix = "//drain:"

// directive is one parsed //drain: comment.
type directive struct {
	kind   string
	reason string
	line   int // line the comment sits on
}

// fileDirectives indexes a file's //drain: comments by line.
type fileDirectives struct {
	byLine map[int][]directive
}

// parseDirectives scans every comment in the file. Malformed directives
// (unknown kind, missing reason) are reported as findings against the
// given analyzer name ("drainvet" when run from the driver) so a typoed
// or bare suppression never silently disables a check.
func (p *Package) parseDirectives(f *ast.File) (fileDirectives, []Finding) {
	d := fileDirectives{byLine: map[int][]directive{}}
	var bad []Finding
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, dirPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, dirPrefix)
			kind, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			line := p.Fset.Position(c.Pos()).Line
			if !knownDirective(kind) {
				bad = append(bad, p.finding("directive", c,
					"unknown directive %q (known: %s)", dirPrefix+kind, strings.Join(DirectiveKinds, ", ")))
				continue
			}
			if reason == "" {
				bad = append(bad, p.finding("directive", c,
					"//drain:%s requires a reason: //drain:%s <why this is sound>", kind, kind))
				continue
			}
			d.byLine[line] = append(d.byLine[line], directive{kind: kind, reason: reason, line: line})
		}
	}
	return d, bad
}

// at reports whether a directive of the given kind is attached to a node
// starting on the given line: on the same line (trailing comment) or on
// any of the three lines directly above it (inside a doc comment block).
func (d fileDirectives) at(kind string, line int) bool {
	for l := line; l >= line-3 && l >= 1; l-- {
		for _, dir := range d.byLine[l] {
			if dir.kind == kind {
				return true
			}
		}
	}
	return false
}

// knownDirective reports whether kind is in the directive vocabulary.
func knownDirective(kind string) bool {
	for _, k := range DirectiveKinds {
		if k == kind {
			return true
		}
	}
	return false
}

// hasInRange reports whether a directive of the given kind sits on any
// line in [start, end].
func (d fileDirectives) hasInRange(kind string, start, end int) bool {
	for l := start; l <= end; l++ {
		for _, dir := range d.byLine[l] {
			if dir.kind == kind {
				return true
			}
		}
	}
	return false
}

// funcHas reports whether fn carries the directive (with a reason)
// anywhere in its doc comment block or on its declaration line.
func (p *Package) funcHas(d fileDirectives, fn *ast.FuncDecl, kind string) bool {
	start := p.Fset.Position(fn.Pos()).Line
	if fn.Doc != nil {
		start = p.Fset.Position(fn.Doc.Pos()).Line
	}
	return d.hasInRange(kind, start, p.Fset.Position(fn.Name.Pos()).Line)
}

// typeHas reports whether the type declaration carries the directive
// anywhere in its doc comment block or on its name line.
func (p *Package) typeHas(d fileDirectives, gd *ast.GenDecl, ts *ast.TypeSpec, kind string) bool {
	start := p.Fset.Position(ts.Pos()).Line
	if ts.Doc != nil {
		start = p.Fset.Position(ts.Doc.Pos()).Line
	} else if gd != nil && gd.Doc != nil && len(gd.Specs) == 1 {
		start = p.Fset.Position(gd.Doc.Pos()).Line
	}
	return d.hasInRange(kind, start, p.Fset.Position(ts.Name.Pos()).Line)
}

// fieldHas reports whether a struct field carries the directive in its
// doc comment block, on its own line, or in its trailing comment.
func (p *Package) fieldHas(d fileDirectives, f *ast.Field, kind string) bool {
	start := p.Fset.Position(f.Pos()).Line
	if f.Doc != nil {
		start = p.Fset.Position(f.Doc.Pos()).Line
	}
	end := p.Fset.Position(f.End()).Line
	if f.Comment != nil {
		end = p.Fset.Position(f.Comment.End()).Line
	}
	return d.hasInRange(kind, start, end)
}
