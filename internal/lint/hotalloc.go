package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runHotAlloc turns the TestStepAllocs runtime guard (0 allocs/cycle in
// steady state) into a compile-time diagnostic that names the exact
// line. It computes the set of functions statically reachable from the
// hot-path roots (noc.Network.Step/StepContext plus any function marked
// //drain:hotpath) by walking the go/types call graph across the whole
// module, then flags allocation-introducing constructs inside them:
//
//   - calls into package fmt, and string concatenation
//   - make/new, slice/map composite literals, map inserts
//   - &T{...} (escaping composite literal) and concrete→interface
//     conversions at call sites or assignments (boxing)
//   - append whose destination is not a scratch slice (a parameter, a
//     struct field, or a local derived from one via s[:0]/append)
//   - escaping function literals and method values (closure allocation)
//   - go statements
//   - direct construction of a pool-owned type (Config.PooledTypes):
//     &T{...} or new(T) bypasses the type's free-list, so it gets a
//     pool-specific diagnostic pointing at the sanctioned constructor
//
// Functions marked //drain:coldpath <reason> are pruned from the walk:
// the escape hatch for amortized-growth and failure paths that cannot
// run in steady state. Dynamic calls (func values, interface methods)
// are not followed — keep hot-path dispatch static.
func runHotAlloc(c *Config, pkgs []*Package) []Finding {
	idx := buildFuncIndex(pkgs)
	hot := idx.reachable(idx.rootsOf(c.HotRoots, dirHotpath), pruneColdpath)
	var out []Finding
	for _, fn := range hot {
		d := idx[fn]
		if !d.pkg.Target {
			continue
		}
		out = append(out, checkHotFunc(c, d.pkg, fn, d.decl)...)
	}
	return out
}

// pruneColdpath excludes //drain:coldpath functions from a reachability
// walk.
func pruneColdpath(d declInfo) bool {
	return d.pkg.funcHas(d.dirs, d.decl, dirColdpath)
}

// checkHotFunc scans one hot function body for allocation sources.
func checkHotFunc(c *Config, p *Package, fn *types.Func, decl *ast.FuncDecl) []Finding {
	var out []Finding
	scratch := scratchVars(p, decl)
	parents := parentMap(decl)
	name := fn.Name()

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			out = append(out, checkHotCall(c, p, name, node, scratch)...)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(p.typeOf(node)) {
				out = append(out, p.finding("hotalloc", node,
					"%s is hot-path reachable: string concatenation allocates", name))
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && isStringType(p.typeOf(node.Lhs[0])) {
				out = append(out, p.finding("hotalloc", node,
					"%s is hot-path reachable: string concatenation allocates", name))
			}
			out = append(out, checkBoxingAssign(p, name, node)...)
			out = append(out, checkMapInsert(p, name, node)...)
		case *ast.CompositeLit:
			t := p.typeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				out = append(out, p.finding("hotalloc", node,
					"%s is hot-path reachable: slice literal allocates", name))
			case *types.Map:
				out = append(out, p.finding("hotalloc", node,
					"%s is hot-path reachable: map literal allocates", name))
			default:
				if u, ok := parents[node].(*ast.UnaryExpr); ok && u.Op == token.AND {
					if isPooledType(c, t) {
						out = append(out, p.finding("hotalloc", node,
							"%s is hot-path reachable: &%s{...} bypasses the %s free-list pool (acquire through its pool constructor; the pool's coldpath miss is the only sanctioned allocation site)", name, p.typeStr(t), p.typeStr(t)))
					} else {
						out = append(out, p.finding("hotalloc", node,
							"%s is hot-path reachable: &%s{...} escapes to the heap", name, p.typeStr(t)))
					}
				}
			}
		case *ast.FuncLit:
			if funcLitEscapes(node, parents) {
				out = append(out, p.finding("hotalloc", node,
					"%s is hot-path reachable: escaping func literal allocates its closure", name))
			}
		case *ast.GoStmt:
			out = append(out, p.finding("hotalloc", node,
				"%s is hot-path reachable: go statement allocates a goroutine", name))
		case *ast.SelectorExpr:
			// Method value (bound method not immediately called).
			if mfn, ok := p.objectOf(node.Sel).(*types.Func); ok && mfn.Type().(*types.Signature).Recv() != nil {
				if call, ok := parents[node].(*ast.CallExpr); !ok || call.Fun != ast.Node(node) {
					out = append(out, p.finding("hotalloc", node,
						"%s is hot-path reachable: method value %s allocates its bound closure", name, node.Sel.Name))
				}
			}
		}
		return true
	})
	return out
}

// checkHotCall handles builtins (make/new/append), fmt, and boxing at
// call sites.
func checkHotCall(c *Config, p *Package, name string, call *ast.CallExpr, scratch map[types.Object]bool) []Finding {
	var out []Finding
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, isBuiltin := p.objectOf(fun).(*types.Builtin); isBuiltin || p.objectOf(fun) == nil {
			switch fun.Name {
			case "make":
				out = append(out, p.finding("hotalloc", call,
					"%s is hot-path reachable: make allocates (pre-size in the constructor or reuse scratch; mark amortized growth //drain:coldpath)", name))
			case "new":
				if len(call.Args) == 1 && isPooledType(c, p.typeOf(call.Args[0])) {
					out = append(out, p.finding("hotalloc", call,
						"%s is hot-path reachable: new(%s) bypasses the %s free-list pool (acquire through its pool constructor; the pool's coldpath miss is the only sanctioned allocation site)", name, p.typeStr(p.typeOf(call.Args[0])), p.typeStr(p.typeOf(call.Args[0]))))
				} else {
					out = append(out, p.finding("hotalloc", call,
						"%s is hot-path reachable: new allocates", name))
				}
			case "append":
				if len(call.Args) > 0 && !isScratchExpr(p, call.Args[0], scratch) {
					out = append(out, p.finding("hotalloc", call,
						"%s is hot-path reachable: append to non-scratch slice may allocate (grow a reused field/parameter buffer instead)", name))
				}
			case "panic":
				// Terminal; the simulation is over anyway.
			}
			return out
		}
	}
	callee := p.calleeOf(call)
	if callee == nil || callee.Pkg() == nil {
		return out
	}
	if callee.Pkg().Path() == "fmt" {
		out = append(out, p.finding("hotalloc", call,
			"%s is hot-path reachable: fmt.%s allocates (format off the hot path)", name, callee.Name()))
		return out
	}
	// Concrete→interface conversion at the call site boxes the argument.
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return out
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(p, pt, arg) {
			out = append(out, p.finding("hotalloc", arg,
				"%s is hot-path reachable: passing %s as interface %s boxes the value", name, p.typeStr(p.typeOf(arg)), p.typeStr(pt)))
		}
	}
	return out
}

// checkBoxingAssign flags concrete→interface assignments.
func checkBoxingAssign(p *Package, name string, assign *ast.AssignStmt) []Finding {
	var out []Finding
	if len(assign.Lhs) != len(assign.Rhs) || assign.Tok == token.DEFINE {
		return out
	}
	for i, lhs := range assign.Lhs {
		lt := p.typeOf(lhs)
		if lt == nil {
			continue
		}
		if boxes(p, lt, assign.Rhs[i]) {
			out = append(out, p.finding("hotalloc", assign.Rhs[i],
				"%s is hot-path reachable: assigning %s into interface %s boxes the value", name, p.typeStr(p.typeOf(assign.Rhs[i])), p.typeStr(lt)))
		}
	}
	return out
}

// checkMapInsert flags assignments through a map index (may allocate or
// grow the map).
func checkMapInsert(p *Package, name string, assign *ast.AssignStmt) []Finding {
	var out []Finding
	for _, lhs := range assign.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := p.typeOf(idx.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				out = append(out, p.finding("hotalloc", lhs,
					"%s is hot-path reachable: map insert may allocate", name))
			}
		}
	}
	return out
}

// boxes reports whether assigning/passing expr into target type performs
// an interface conversion of a concrete value.
func boxes(p *Package, target types.Type, expr ast.Expr) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	at := p.typeOf(expr)
	if at == nil || types.IsInterface(at) {
		return false
	}
	if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// scratchVars computes the function's scratch slice set: slice-typed
// parameters (caller-provided buffers), plus locals derived from a
// scratch expression via slicing or append. Struct-field selectors are
// scratch by definition (fields persist across cycles). Runs to a small
// fixpoint to handle later-derived locals.
func scratchVars(p *Package, decl *ast.FuncDecl) map[types.Object]bool {
	scratch := map[types.Object]bool{}
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			for _, id := range field.Names {
				obj := p.objectOf(id)
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					scratch[obj] = true
				}
			}
		}
	}
	for i := 0; i < 5; i++ {
		changed := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for j, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.objectOf(id)
				if obj == nil || scratch[obj] {
					continue
				}
				if isScratchExpr(p, assign.Rhs[j], scratch) {
					scratch[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return scratch
}

// isScratchExpr reports whether e denotes a reused buffer: a struct
// field selector, a known scratch variable, a slice of one, or an append
// to one.
func isScratchExpr(p *Package, e ast.Expr, scratch map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return scratch[p.objectOf(e)]
	case *ast.SelectorExpr:
		// A field selector: the backing array lives beyond this call.
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return true
		}
		return false
	case *ast.SliceExpr:
		return isScratchExpr(p, e.X, scratch)
	case *ast.IndexExpr:
		// Element of a persistent container (e.g. n.injQ[r][class]).
		return isScratchExpr(p, e.X, scratch)
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && fn.Name == "append" && len(e.Args) > 0 {
			if obj := p.objectOf(fn); obj == nil || isBuiltinObj(obj) {
				return isScratchExpr(p, e.Args[0], scratch)
			}
		}
		return false
	}
	return false
}

func isBuiltinObj(o types.Object) bool {
	_, ok := o.(*types.Builtin)
	return ok
}

// isPooledType reports whether t names a type listed in
// Config.PooledTypes ("pkgsuffix.Type" spec syntax, same matching rule
// as HotRoots' package suffixes).
func isPooledType(c *Config, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for _, spec := range c.PooledTypes {
		i := strings.LastIndex(spec, ".")
		if i < 0 || spec[i+1:] != obj.Name() {
			continue
		}
		if pkg := spec[:i]; path == pkg || strings.HasSuffix(path, "/"+pkg) {
			return true
		}
	}
	return false
}

// parentMap records each node's parent within the declaration.
func parentMap(decl *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// funcLitEscapes reports whether a function literal leaves the enclosing
// frame: anything but (a) being assigned to a local variable or (b)
// being called immediately (including via defer). Non-escaping literals
// are stack-allocated by the compiler, so only escaping ones are flagged.
func funcLitEscapes(lit *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	var node ast.Node = lit
	parent := parents[node]
	for {
		paren, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		node = paren
		parent = parents[node]
	}
	switch parent := parent.(type) {
	case *ast.AssignStmt:
		for _, rhs := range parent.Rhs {
			if ast.Unparen(rhs) == ast.Expr(lit) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		return ast.Unparen(parent.Fun) != ast.Expr(lit) // escapes when passed as an argument
	}
	return true
}
