// Package a exercises the serialrng analyzer: no RNG draw — std rand
// call or declared draw primitive — may be reachable from a
// //drain:parallelphase root. Draws belong on the serial commit path.
package a

import "math/rand/v2"

type gen struct {
	rng *rand.Rand
	seq uint64
}

// draw is this fixture's declared RNG draw primitive; the test config
// lists it in Config.RNGDrawFuncs (the production analogue is the
// traffic generator's counter-stream sampler).
func (g *gen) draw() uint64 {
	g.seq++
	return g.seq * 0x9e3779b97f4a7c15
}

//drain:parallelphase fixture root: models one shard's inject phase
func (g *gen) inject(n int) int {
	v := g.rng.IntN(n)     // want `\[serialrng\] inject is parallel-phase reachable: rand.IntN draws randomness`
	v += int(g.draw() % 7) // want `\[serialrng\] inject is parallel-phase reachable: draw is a declared RNG draw primitive`
	g.plan(n)
	return v
}

// plan is reached transitively from the root: its draws are findings
// too.
func (g *gen) plan(n int) {
	if rand.Uint64()%2 == 0 { // want `\[serialrng\] plan is parallel-phase reachable: rand.Uint64 draws randomness`
		g.seq = uint64(n)
	}
}

// commit runs on the serial path (not a parallel-phase root): draws
// here are legal.
func commit(g *gen, n int) int { return g.rng.IntN(n) + int(g.draw()) }
