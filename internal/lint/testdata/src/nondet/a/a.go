// Package a exercises the nondet analyzer: wall clock, environment and
// global rand are forbidden in deterministic packages; explicitly seeded
// generators are the sanctioned path.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func stamp() int64 {
	return time.Now().Unix() // want `\[nondet\] time.Now is nondeterministic`
}

func took(start time.Time) time.Duration {
	return time.Since(start) // want `\[nondet\] time.Since is nondeterministic`
}

func envTweak() string {
	return os.Getenv("DRAIN_DEBUG") // want `\[nondet\] os.Getenv is nondeterministic`
}

func globalDraw() int {
	return rand.Intn(10) // want `\[nondet\] math/rand.Intn draws from the process-global generator`
}

func globalDrawV2() uint64 {
	return randv2.Uint64() // want `\[nondet\] math/rand/v2.Uint64 draws from the process-global generator`
}

func globalShuffle(xs []int) {
	randv2.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `\[nondet\] math/rand/v2.Shuffle`
}

// Explicitly seeded generators are the convention; methods on them are
// fine.
func seeded(seed uint64) float64 {
	rng := randv2.New(randv2.NewPCG(seed, seed^0x9e37))
	return rng.Float64()
}

func seededV1(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(4)
}

// Pure time arithmetic on supplied values is fine.
func elapsed(start, now int64) int64 { return now - start }
