// Package a exercises the shardsafe analyzer: functions reachable from
// a //drain:parallelphase root may write only frame-local storage or
// state declared staging/partitioned via //drain:staged.
package a

// total is shared mutable state with no shard owner.
var total int

type network struct {
	credits int
}

// arena is declared staging state: writes anywhere inside it are legal
// from a parallel phase.
//
//drain:staged fixture: per-shard arena, one instance per worker goroutine
type arena struct {
	slots []int
}

type counters struct {
	//drain:staged fixture: router-partitioned; shard s writes only its own index range
	occ []int

	flits int
}

type shard struct {
	id    int
	ar    arena
	stats counters
	net   *network
	done  chan int
}

//drain:parallelphase fixture root: models one shard's plan phase
func (s *shard) phase(n *network) {
	var tmp [4]int
	tmp[s.id&3] = 1 // ok: array on the frame
	var c counters
	c.flits = 1           // ok: struct value on the frame
	s.ar.slots[s.id] = 1  // ok: staged type
	s.stats.occ[s.id] = 1 // ok: staged field
	s.stats.flits++       // want `\[shardsafe\] phase is parallel-phase reachable: write to counters.flits, which is neither shard-local nor declared staging state`
	s.net.credits = 0     // want `\[shardsafe\] phase is parallel-phase reachable: write to network.credits, which is neither shard-local nor declared staging state`
	total++               // want `\[shardsafe\] phase is parallel-phase reachable: write to package-level variable total \(shared state with no shard owner\)`
	*n = network{}        // want `\[shardsafe\] phase is parallel-phase reachable: write through \*network, which is not declared staging state`
	s.done <- 1           // want `\[shardsafe\] phase is parallel-phase reachable: channel send from a phase body \(phases synchronize only at barriers\)`
	s.helper()
}

// helper is reached transitively from the root: its writes are
// classified too.
func (s *shard) helper() {
	s.net.credits++ // want `\[shardsafe\] helper is parallel-phase reachable: write to network.credits, which is neither shard-local nor declared staging state`
}

// idle is not parallel-phase reachable: writes here are fine.
func idle(n *network) { n.credits = 9 }
