// Package a exercises the maprange analyzer: map iteration in a
// deterministic package must be collect-then-sorted, directive-annotated
// as order-free, or it is a finding.
package a

import (
	"sort"

	"slices"
)

// keys is the canonical allowed idiom: collect, then sort.
func keys(m map[string]int) []string {
	out := []string{}
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// guarded collection with a call-free condition is still allowed.
func trueKeys(m map[int]bool) []int {
	picked := []int{}
	for k, v := range m {
		if v {
			picked = append(picked, k)
		}
	}
	slices.Sort(picked)
	return picked
}

// values collected then sorted with a comparator are allowed.
func sortedVals(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// An annotated order-insensitive reduction is allowed.
func sum(m map[string]int) int {
	total := 0
	//drain:orderfree integer addition is commutative over any visit order
	for _, v := range m {
		total += v
	}
	return total
}

// Feeding output directly from map order is the core violation.
func emit(m map[int]string, sink func(string)) {
	for _, s := range m { // want `\[maprange\] iteration over map map\[int\]string has randomized order`
		sink(s)
	}
}

// Collecting without ever sorting does not launder the order.
func collectNoSort(m map[int]string) []string {
	var out []string
	for _, s := range m { // want `\[maprange\] iteration over map`
		out = append(out, s)
	}
	return out
}

// A guard with a call is not provably order-insensitive.
func guardedCall(m map[int]string, keep func(string) bool) []string {
	var out []string
	for _, s := range m { // want `\[maprange\] iteration over map`
		if keep(s) {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
