// Package a exercises the hotalloc analyzer: functions reachable from a
// //drain:hotpath root must not introduce allocations; //drain:coldpath
// prunes amortized paths from the walk.
package a

import "fmt"

type pair struct{ x, y int }

type sink interface{ accept(v any) }

type engine struct {
	scratch []int
	m       map[int]int
	name    string
	pairs   []pair
}

//drain:hotpath fixture root: models the per-cycle step
func (e *engine) step(s sink, n int) {
	buf := e.scratch[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, i) // ok: scratch-derived local
	}
	e.scratch = buf
	e.pairs = append(e.pairs, pair{n, n}) // ok: field append, value literal
	e.hot(n)
	e.box(s, n)
	e.amortized()
}

func (e *engine) hot(n int) {
	s := fmt.Sprintf("%d", n) // want `\[hotalloc\] hot is hot-path reachable: fmt.Sprintf allocates`
	e.name = e.name + s       // want `\[hotalloc\] hot is hot-path reachable: string concatenation allocates`
	xs := make([]int, 0, n)   // want `\[hotalloc\] hot is hot-path reachable: make allocates`
	xs = append(xs, n)        // want `\[hotalloc\] hot is hot-path reachable: append to non-scratch slice`
	e.m[n] = n                // want `\[hotalloc\] hot is hot-path reachable: map insert may allocate`
	ys := []int{n}            // want `\[hotalloc\] hot is hot-path reachable: slice literal allocates`
	_, _ = xs, ys
}

func (e *engine) box(s sink, n int) {
	s.accept(n)      // want `\[hotalloc\] box is hot-path reachable: passing int as interface any boxes the value`
	p := &pair{n, n} // want `\[hotalloc\] box is hot-path reachable: &pair\{...\} escapes to the heap`
	go e.hot(p.x)    // want `\[hotalloc\] box is hot-path reachable: go statement allocates a goroutine`
	h := e.hot       // want `\[hotalloc\] box is hot-path reachable: method value hot allocates its bound closure`
	h(n)
	f := func() int { return n } // ok: non-escaping literal, called locally
	_ = f()
}

// Amortized growth is pruned from the walk with a written reason.
//
//drain:coldpath fixture: amortized growth, cannot run in steady state
func (e *engine) amortized() {
	e.scratch = append(make([]int, 0, 64), e.scratch...)
}

// Live reconfiguration is a between-steps entry point: it runs
// mid-simulation, so the handlers it reaches must stay alloc-free even
// though they are not reachable from the per-cycle step root.
//
//drain:hotpath fixture root: models the between-steps reconfig entry
func (e *engine) reconfigure(down []bool) {
	for l := range down {
		if down[l] {
			e.onLinkFail(l)
		}
	}
}

func (e *engine) onLinkFail(l int) {
	e.scratch = append(e.scratch, l) // ok: reused field buffer
	dropped := map[int]bool{l: true} // want `\[hotalloc\] onLinkFail is hot-path reachable: map literal allocates`
	_ = dropped
}

// reschedule models the traffic generator's emit-then-reschedule hot
// loop: after emitting the head packet it computes the next arrival and
// re-inserts itself, so everything it reaches must stay alloc-free.
//
//drain:hotpath fixture root: models the generator reschedule path
func (e *engine) reschedule(now int) {
	e.scratch = append(e.scratch, now) // ok: reused field buffer
	e.emit(now + 1)
}

func (e *engine) emit(t int) {
	e.name = fmt.Sprint(t) // want `\[hotalloc\] emit is hot-path reachable: fmt.Sprint allocates`
}

// token models a pool-owned type (cfg.PooledTypes lists a.token): hot
// code must acquire tokens through the pool, never construct directly.
type token struct{ id int }

type pool struct{ free []*token }

//drain:hotpath fixture root: models the pool's acquire path
func (pl *pool) acquire(n int) *token {
	if k := len(pl.free); k > 0 {
		t := pl.free[k-1]
		pl.free = pl.free[:k-1]
		return t
	}
	return pl.miss(n)
}

//drain:coldpath fixture: the pool's one sanctioned allocation site
func (pl *pool) miss(n int) *token {
	return &token{id: n}
}

//drain:hotpath fixture root: models a driver constructing around the pool
func bypass(n int) *token {
	t := &token{id: n} // want `\[hotalloc\] bypass is hot-path reachable: &token\{...\} bypasses the token free-list pool`
	u := new(token)    // want `\[hotalloc\] bypass is hot-path reachable: new\(token\) bypasses the token free-list pool`
	u.id = t.id
	return u
}

// idle is never reached from the root: allocations here are fine.
func idle(n int) []int {
	return make([]int, n)
}
