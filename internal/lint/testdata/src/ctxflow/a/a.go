// Package a exercises the ctxflow analyzer: ctx-first entry points,
// no stored contexts, and simulation loops that consult their ctx.
package a

import "context"

type machine struct{ cycle int }

func (m *machine) Step() { m.cycle++ }

// RunLoop steps with a cancellation check: the right shape.
func RunLoop(ctx context.Context, m *machine, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.Step()
	}
	return nil
}

// RunBad takes a ctx but its stepping loop never consults it.
func RunBad(ctx context.Context, m *machine, n int) {
	for i := 0; i < n; i++ { // want `\[ctxflow\] RunBad takes a context but this simulation loop never consults it`
		m.Step()
	}
}

// RunFine is the compatibility-wrapper pattern: allowed because the
// ctx-first sibling exists.
func RunFine(m *machine, n int) { _ = RunFineContext(context.Background(), m, n) }

// RunFineContext is the cancellable variant.
func RunFineContext(ctx context.Context, m *machine, n int) error {
	return RunLoop(ctx, m, n)
}

// RunOrphan has neither a ctx parameter nor a *Context sibling.
func RunOrphan(m *machine) { // want `\[ctxflow\] exported entry point RunOrphan is not cancellable`
	m.Step()
}

// ForEachItem fans work out with no way to stop it.
func ForEachItem(n int, f func(int)) { // want `\[ctxflow\] exported entry point ForEachItem is not cancellable`
	for i := 0; i < n; i++ {
		f(i)
	}
}

// badCarrier stores a context with no annotation.
type badCarrier struct {
	ctx context.Context // want `\[ctxflow\] struct badCarrier stores a context.Context`
	v   int
}

// okCarrier is the annotated queue-element shape.
type okCarrier struct {
	//drain:ctxcarrier fixture: queue element carrying the submitter's ctx across the worker channel
	ctx context.Context
	v   int
}

// A directive without a reason is itself a finding.
//
//drain:orderfree
// want:-1 `\[directive\] //drain:orderfree requires a reason`
func sumAll(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func use(b badCarrier, o okCarrier) (context.Context, context.Context) { return b.ctx, o.ctx }
