// Package a exercises the escapecheck analyzer, which cross-checks the
// compiler's escape analysis (go build -gcflags=-m=2) against hotalloc
// in both directions. The //go:noinline directives keep the compiler
// from re-attributing an inlined callee's escape diagnostics to the
// call-site line, so each want anchors deterministically.
package a

var sink []int

//drain:hotpath fixture root: models the per-cycle step
func step(n int) int {
	p := escaper(n)
	sink = grow(sink)
	if sink == nil {
		_ = setup()
	}
	return *p
}

// escaper returns the address of a local. hotalloc's construct list has
// no rule for plain address-of-ident, but the compiler moves v to the
// heap — exactly the gap the forward check exists to catch.
//
//go:noinline
func escaper(n int) *int {
	v := n + 1 // want `\[escapecheck\] escaper is hot-path reachable: compiler escape analysis reports "moved to heap: v" on a line hotalloc does not flag`
	return &v
}

// grow allocates via make on a line hotalloc already flags: the
// compiler seeing the same site is agreement, not a second finding, so
// there is no want here.
//
//go:noinline
func grow(xs []int) []int {
	ys := make([]int, len(xs)+1)
	copy(ys, xs)
	return ys
}

// setup is genuinely reachable from the root, so its coldpath directive
// is live (it prunes setup's heap escape from the hot walk) — no
// finding.
//
//drain:coldpath fixture: one-time lazy setup off the steady-state path
//
//go:noinline
func setup() *int {
	v := 9
	return &v
}

// orphan carries a coldpath directive but no hot root reaches it even
// without pruning: the directive suppresses nothing and is stale.
//
//drain:coldpath fixture: claims amortized work but nothing hot calls it
//
//go:noinline
func orphan() *int { // want `\[escapecheck\] stale //drain:coldpath on orphan: no hot root reaches it even without pruning`
	v := 3
	return &v
}
