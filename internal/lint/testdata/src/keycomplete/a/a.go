// Package a exercises the keycomplete analyzer: every field of a
// cache-key struct must be serialized into the preimage or excluded
// with json:"-" plus a reasoned //drain:cachekey-exempt, and every
// exported request field must be consumed by canonicalization.
package a

// Meta is embedded-and-excluded below without a directive.
type Meta struct {
	Note string `json:"note"`
}

// Params is the fixture's cache-key preimage struct (Config.KeyStructs).
type Params struct {
	Width int   `json:"width"` // ok: serialized, in-key
	Seed  int64 `json:"seed"`  // ok: serialized, in-key

	// Shards only changes how fast a run computes, never what it
	// computes, so it is deliberately outside the key.
	//
	//drain:cachekey-exempt fixture: execution speed knob; results are byte-identical at every shard count
	Shards int `json:"-"` // ok: excluded with a reasoned directive

	// Epoch claims exemption but is serialized anyway: a stale directive.
	//
	//drain:cachekey-exempt fixture: stale claim, the field is in the encoding
	Epoch int64 `json:"epoch"` // want `\[keycomplete\] Params.Epoch carries //drain:cachekey-exempt but IS serialized into the cache-key preimage`

	Debug bool `json:"-"` // want `\[keycomplete\] Params.Debug is excluded from the cache key \(json:"-"\) without a //drain:cachekey-exempt <reason> directive`

	scratch []int // want `\[keycomplete\] Params.scratch is unexported, so encoding/json never puts it in the cache-key preimage without a //drain:cachekey-exempt <reason> directive`

	//drain:cachekey-exempt fixture: derived lookup table, rebuilt from Width on load
	cache []int // ok: unexported with a reasoned directive

	Meta `json:"-"` // want `\[keycomplete\] Params embeds a field excluded from the cache key \(json:"-"\) without a //drain:cachekey-exempt <reason> directive`
}

// Request is the fixture's request struct (Config.RequestStructs):
// exported fields must be read somewhere in this package.
type Request struct {
	Width  int    `json:"width,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
	Legacy string `json:"legacy,omitempty"` // want `\[keycomplete\] Request.Legacy is never read in package a`
}

// Canonicalize consumes Width and Seed; Legacy never flows anywhere.
func (r Request) Canonicalize() Params {
	return Params{Width: r.Width, Seed: r.Seed}
}
