package lint

// runSerialRNG proves the property the sharded engine's byte-identity
// rests on: no RNG draw is reachable from a parallel-phase function.
// Every randomized decision — arbitration draws via the network's
// seeded *rand.Rand, the traffic generator's PCG stream, the
// counter-mode derived-stream reseed — must execute on the stepping
// goroutine in the serial commit order, or the draw sequence (and with
// it every downstream byte) would depend on shard count and phase
// interleaving.
//
// The walk is the same static-call BFS the other effect analyzers use,
// from the configured ParallelPhaseRoots plus //drain:parallelphase
// functions. A call whose static callee lives in an RNG package
// (math/rand, math/rand/v2, crypto/rand — free functions and methods on
// their types, including rand.Source interface methods) is a finding,
// as is a call matching Config.RNGDrawFuncs, the repo's own draw
// primitives (the counter-stream sampler and the emit-time reseed).
// There is deliberately no suppression directive: a draw inside a
// parallel phase is never sound, so the only fix is moving the draw to
// a serial phase or removing the root.
func runSerialRNG(c *Config, pkgs []*Package) []Finding {
	idx := buildFuncIndex(pkgs)
	roots := idx.rootsOf(c.ParallelPhaseRoots, dirParallelphase)
	if len(roots) == 0 {
		return nil
	}
	rngPkgs := map[string]bool{
		"math/rand":    true,
		"math/rand/v2": true,
		"crypto/rand":  true,
	}
	var out []Finding
	for _, fn := range idx.reachable(roots, nil) {
		d := idx[fn]
		if !d.pkg.Target {
			continue
		}
		name := fn.Name()
		for _, f := range callSites(d) {
			callee := f.callee
			if callee.Pkg() != nil && rngPkgs[callee.Pkg().Path()] {
				out = append(out, d.pkg.finding("serialrng", f.node,
					"%s is parallel-phase reachable: %s.%s draws randomness (draws must stay on the serial commit path to keep the sequence shard-count independent)",
					name, callee.Pkg().Name(), callee.Name()))
				continue
			}
			for _, spec := range c.RNGDrawFuncs {
				if matchesRoot(origin(callee), spec) {
					out = append(out, d.pkg.finding("serialrng", f.node,
						"%s is parallel-phase reachable: %s is a declared RNG draw primitive (draws must stay on the serial commit path)",
						name, callee.Name()))
					break
				}
			}
		}
	}
	return out
}
