package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the reachability substrate shared by the effect analyzers
// (hotalloc, shardsafe, serialrng, escapecheck): a module-wide index from
// function objects to their declarations, root matching against
// "pkgsuffix.Type.Method" specs and //drain: directives, and a BFS over
// static call edges. Dynamic calls (func values, interface methods) are
// not followed anywhere — the repo's convention is that hot and
// parallel-phase dispatch stays static, with the engine seam's dynamic
// edges re-rooted explicitly via directives.

// declInfo ties a function object to its declaration, package and the
// declaring file's directives.
type declInfo struct {
	decl *ast.FuncDecl
	pkg  *Package
	dirs fileDirectives
}

// funcIndex maps every module function object to its declaration.
type funcIndex map[*types.Func]declInfo

// buildFuncIndex indexes every function declared in the loaded packages.
func buildFuncIndex(pkgs []*Package) funcIndex {
	idx := funcIndex{}
	for _, p := range pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			dirs, _ := p.parseDirectives(f) // bad directives reported by maprange/ctxflow
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = declInfo{decl: fd, pkg: p, dirs: dirs}
				}
			}
		}
	}
	return idx
}

// origin unwraps generic instantiations to the declared function.
func origin(fn *types.Func) *types.Func { return fn.Origin() }

// matchesRoot reports whether fn matches a root spec of the form
// "pkgsuffix.Type.Method" or "pkgsuffix.Func".
func matchesRoot(fn *types.Func, spec string) bool {
	full := fn.Pkg().Path() + "."
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		full += named.Obj().Name() + "."
	}
	full += fn.Name()
	return full == spec || strings.HasSuffix(full, "/"+spec)
}

// rootsOf collects the functions matching any of the specs, plus every
// function carrying the given directive kind (skipped when dirKind is
// empty).
func (idx funcIndex) rootsOf(specs []string, dirKind string) []*types.Func {
	var roots []*types.Func
	for fn, d := range idx {
		matched := false
		for _, spec := range specs {
			if matchesRoot(fn, spec) {
				matched = true
				break
			}
		}
		if !matched && dirKind != "" && d.pkg.funcHas(d.dirs, d.decl, dirKind) {
			matched = true
		}
		if matched {
			roots = append(roots, fn)
		}
	}
	return roots
}

// reachable runs a BFS from the seed functions over static call edges
// and returns every visited function with a known body, ordered by
// declaration position (deterministic regardless of map iteration).
// Functions for which prune returns true are excluded entirely: their
// bodies are not scanned and their callees not followed.
func (idx funcIndex) reachable(seeds []*types.Func, prune func(declInfo) bool) []*types.Func {
	seen := map[*types.Func]bool{}
	var work []*types.Func
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] {
			seen[fn] = true
			work = append(work, fn)
		}
	}
	for _, fn := range seeds {
		add(fn)
	}
	var visited []*types.Func
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		d, ok := idx[fn]
		if !ok || d.decl.Body == nil {
			continue
		}
		if prune != nil && prune(d) {
			continue
		}
		visited = append(visited, fn)
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := d.pkg.calleeOf(call); callee != nil {
				add(origin(callee))
			}
			return true
		})
	}
	sort.Slice(visited, func(i, j int) bool {
		return idx[visited[i]].decl.Pos() < idx[visited[j]].decl.Pos()
	})
	return visited
}

// callSite is one statically resolved call inside a function body.
type callSite struct {
	node   *ast.CallExpr
	callee *types.Func
}

// callSites lists a declaration's statically resolvable calls in source
// order.
func callSites(d declInfo) []callSite {
	var out []callSite
	if d.decl.Body == nil {
		return nil
	}
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := d.pkg.calleeOf(call); callee != nil {
				out = append(out, callSite{node: call, callee: callee})
			}
		}
		return true
	})
	return out
}

// matchesTypeSpec reports whether a type's import path and name match a
// "pkgsuffix.TypeName" spec.
func matchesTypeSpec(importPath, typeName, spec string) bool {
	i := strings.LastIndex(spec, ".")
	if i < 0 {
		return false
	}
	pkg, name := spec[:i], spec[i+1:]
	if name != typeName {
		return false
	}
	return importPath == pkg || strings.HasSuffix(importPath, "/"+pkg)
}
