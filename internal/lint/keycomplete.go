package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// runKeyComplete audits the cache-key surface field by field. The
// server answers identical requests from cache by content address: the
// SHA-256 of a canonical struct's JSON encoding. That scheme is only
// sound if every field of the key structs is deliberately classified —
// either it is serialized into the preimage (it changes what a run
// computes) or it is excluded with `json:"-"` AND carries a reasoned
// //drain:cachekey-exempt directive (it changes only how fast the run
// computes, like the shard count). The analyzer enforces:
//
//   - Config.KeyStructs (sim.Params, server.canonical): an exported
//     field without a `json:"-"` tag is in-key — fine. A `json:"-"`
//     field without the directive is a finding (an undocumented
//     exclusion is exactly how a result-changing knob silently escapes
//     the key). An unexported field is invisible to encoding/json and
//     needs the directive too. A directive on a field that IS
//     serialized is a stale claim and also a finding.
//   - Config.RequestStructs (server.Request): every exported field must
//     be read somewhere in its declaring package — a request field no
//     canonicalization path consumes can never flow into the key, so
//     two requests differing in it would collide.
//
// Adding a field to sim.Params without deciding its cache-key fate is
// therefore a build failure, which is the point.
func runKeyComplete(c *Config, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !p.Target || p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			dirs, _ := p.parseDirectives(f)
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					if matchesAnyTypeSpec(p.ImportPath, ts.Name.Name, c.KeyStructs) {
						out = append(out, checkKeyStruct(p, ts.Name.Name, st, dirs)...)
					}
					if matchesAnyTypeSpec(p.ImportPath, ts.Name.Name, c.RequestStructs) {
						out = append(out, checkRequestStruct(p, ts.Name.Name, st)...)
					}
				}
			}
		}
	}
	return out
}

func matchesAnyTypeSpec(importPath, typeName string, specs []string) bool {
	for _, s := range specs {
		if matchesTypeSpec(importPath, typeName, s) {
			return true
		}
	}
	return false
}

// jsonExcluded reports whether a field's json tag is exactly "-"
// (excluded from encoding; `json:"-,"` names the field "-" instead).
func jsonExcluded(f *ast.Field) bool {
	if f.Tag == nil {
		return false
	}
	tag := reflect.StructTag(strings.Trim(f.Tag.Value, "`")).Get("json")
	name, _, _ := strings.Cut(tag, ",")
	return name == "-" && tag != "-,"
}

// checkKeyStruct classifies every field of a cache-key preimage struct.
func checkKeyStruct(p *Package, typeName string, st *ast.StructType, dirs fileDirectives) []Finding {
	var out []Finding
	for _, f := range st.Fields.List {
		exempt := p.fieldHas(dirs, f, dirCachekeyExempt)
		excluded := jsonExcluded(f)
		names := f.Names
		if len(names) == 0 {
			// Embedded field: serialized inline unless tagged away.
			if excluded && !exempt {
				out = append(out, p.finding("keycomplete", f,
					"%s embeds a field excluded from the cache key (json:\"-\") without a //drain:cachekey-exempt <reason> directive", typeName))
			}
			continue
		}
		for _, nm := range names {
			serialized := ast.IsExported(nm.Name) && !excluded
			switch {
			case serialized && exempt:
				out = append(out, p.finding("keycomplete", nm,
					"%s.%s carries //drain:cachekey-exempt but IS serialized into the cache-key preimage (stale or contradictory directive: drop it or tag the field json:\"-\")", typeName, nm.Name))
			case !serialized && !exempt:
				why := "is excluded from the cache key (json:\"-\")"
				if !ast.IsExported(nm.Name) {
					why = "is unexported, so encoding/json never puts it in the cache-key preimage"
				}
				out = append(out, p.finding("keycomplete", nm,
					"%s.%s %s without a //drain:cachekey-exempt <reason> directive: decide whether it changes results (serialize it) or only performance (keep it out, with the reason written down)", typeName, nm.Name, why))
			}
		}
	}
	return out
}

// checkRequestStruct requires every exported field of a request struct
// to be consumed somewhere in its declaring package.
func checkRequestStruct(p *Package, typeName string, st *ast.StructType) []Finding {
	fieldObjs := map[types.Object]*ast.Ident{}
	for _, f := range st.Fields.List {
		for _, nm := range f.Names {
			if !ast.IsExported(nm.Name) {
				continue
			}
			if obj := p.objectOf(nm); obj != nil {
				fieldObjs[obj] = nm
			}
		}
	}
	if len(fieldObjs) == 0 {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := p.Info.Uses[id]; obj != nil {
				delete(fieldObjs, obj)
			}
			return true
		})
	}
	var out []Finding
	for _, nm := range fieldObjs {
		out = append(out, p.finding("keycomplete", nm,
			"%s.%s is never read in package %s: it cannot flow into the canonical form or the cache key, so requests differing only in it would collide (consume it during canonicalization or remove it)", typeName, nm.Name, p.Types.Name()))
	}
	SortFindings(out)
	return out
}
