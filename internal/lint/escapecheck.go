package lint

import (
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// runEscapeCheck cross-checks the compiler's escape analysis
// (go build -gcflags=-m=2) against hotalloc's syntactic verdicts, in
// both directions:
//
//   - Forward: a value the compiler heap-escapes ("moved to heap" /
//     "escapes to heap") inside a hot-path-reachable function, on a line
//     hotalloc did NOT flag, is a finding — an allocation the syntactic
//     scan's construct list missed (escaping address-of-local, a
//     conversion the compiler couldn't devirtualize, ...). String
//     constants are skipped: a literal's "escape" is static rodata, not
//     a per-call allocation.
//   - Backward: a //drain:coldpath directive on a function that is not
//     reachable from any hot root even WITHOUT coldpath pruning is
//     stale — it suppresses nothing and would silently mask a future
//     real edge, so it must be removed (or the root set fixed).
//
// The hot set is the same walk hotalloc uses (HotRoots plus
// //drain:hotpath, pruned at //drain:coldpath); the compiler run covers
// exactly the target packages that contain hot functions. The analyzer
// shells out to the already-required go toolchain and parses its
// diagnostics, keeping the no-external-dependency rule intact.
func runEscapeCheck(c *Config, pkgs []*Package) []Finding {
	idx := buildFuncIndex(pkgs)
	seeds := idx.rootsOf(c.HotRoots, dirHotpath)
	hot := idx.reachable(seeds, pruneColdpath)
	full := idx.reachable(seeds, nil)

	var out []Finding
	out = append(out, staleColdpaths(idx, full)...)

	// Line spans of hot functions in target packages, and the package
	// set to compile.
	type span struct {
		start, end int
		fn         string
	}
	spans := map[string][]span{} // file -> spans
	pkgSet := map[string]*Package{}
	// Lines calling a //drain:coldpath function: the compiler inlines
	// small coldpath callees into hot callers and re-attributes their
	// escapes to the call-site line, so a diagnostic there is the
	// already-suppressed coldpath allocation, not a new hot one.
	coldCall := map[string]bool{}
	for _, fn := range hot {
		d := idx[fn]
		if !d.pkg.Target {
			continue
		}
		pos := d.pkg.Fset.Position(d.decl.Pos())
		end := d.pkg.Fset.Position(d.decl.End())
		spans[pos.Filename] = append(spans[pos.Filename], span{start: pos.Line, end: end.Line, fn: fn.Name()})
		pkgSet[d.pkg.ImportPath] = d.pkg
		for _, cs := range callSites(d) {
			if cd, ok := idx[origin(cs.callee)]; ok && pruneColdpath(cd) {
				cp := d.pkg.Fset.Position(cs.node.Pos())
				coldCall[cp.Filename+":"+strconv.Itoa(cp.Line)] = true
			}
		}
	}
	if len(pkgSet) == 0 {
		return out
	}

	// Lines hotalloc already reports; the compiler seeing the same site
	// is agreement, not a new finding.
	flagged := map[string]bool{}
	for _, f := range runHotAlloc(c, pkgs) {
		flagged[f.File+":"+strconv.Itoa(f.Line)] = true
	}

	diags, err := compilerEscapes(pkgSet)
	if err != nil {
		// A failing build under a loader that just type-checked the same
		// tree is an operational problem worth surfacing as a finding
		// rather than silently passing.
		return append(out, Finding{File: "go build", Analyzer: "escapecheck",
			Message: fmt.Sprintf("compiler escape analysis failed: %v", err)})
	}
	seen := map[string]bool{}
	for _, dg := range diags {
		ss := spans[dg.file]
		if ss == nil {
			continue
		}
		for _, s := range ss {
			if dg.line < s.start || dg.line > s.end {
				continue
			}
			key := dg.file + ":" + strconv.Itoa(dg.line)
			if flagged[key] || coldCall[key] || seen[key+dg.msg] {
				break
			}
			seen[key+dg.msg] = true
			out = append(out, Finding{
				Pos:      dg.pos(),
				File:     dg.file,
				Line:     dg.line,
				Col:      dg.col,
				Analyzer: "escapecheck",
				Message: fmt.Sprintf("%s is hot-path reachable: compiler escape analysis reports %q on a line hotalloc does not flag (keep the value on the stack, or mark the function //drain:coldpath with a reason)",
					s.fn, dg.msg),
			})
			break
		}
	}
	SortFindings(out)
	return out
}

// staleColdpaths flags //drain:coldpath directives on functions the
// unpruned hot walk never reaches.
func staleColdpaths(idx funcIndex, full []*types.Func) []Finding {
	inFull := map[*types.Func]bool{}
	for _, fn := range full {
		inFull[fn] = true
	}
	var out []Finding
	for fn, d := range idx {
		if !d.pkg.Target || !d.pkg.funcHas(d.dirs, d.decl, dirColdpath) {
			continue
		}
		if !inFull[fn] {
			out = append(out, d.pkg.finding("escapecheck", d.decl.Name,
				"stale //drain:coldpath on %s: no hot root reaches it even without pruning, so the directive suppresses nothing (remove it, or re-root the hot walk)", fn.Name()))
		}
	}
	SortFindings(out)
	return out
}

// escDiag is one parsed compiler escape diagnostic.
type escDiag struct {
	file string
	line int
	col  int
	msg  string
}

func (d escDiag) pos() (p token.Position) {
	p.Filename, p.Line, p.Column = d.file, d.line, d.col
	return
}

// compilerEscapes runs go build -gcflags=-m=2 over the packages and
// returns the heap-escape diagnostics with file paths made absolute.
// The compiler prints paths either relative to the module root or
// relative to the package directory (as "./file.go"); the "# pkgpath"
// headers between diagnostic blocks disambiguate which package the
// relative form belongs to. Flow-explanation headers (lines ending in
// ":", followed by indented detail) are skipped: the bare -m=1 verdict
// line always accompanies them, so each escape is counted once. The
// build cache replays compiler diagnostics, so warm runs are cheap.
func compilerEscapes(pkgSet map[string]*Package) ([]escDiag, error) {
	var paths []string
	var buildDir string
	for path, p := range pkgSet {
		paths = append(paths, path)
		buildDir = p.Dir
	}
	sort.Strings(paths)

	envCmd := exec.Command("go", "env", "GOMOD")
	envCmd.Dir = buildDir
	gomod, err := envCmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(gomod)))
	args := append([]string{"build", "-gcflags=-m=2"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = buildDir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2: %v\n%s", err, stderr.String())
	}
	var out []escDiag
	curDir := root
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "# ") {
			if p, ok := pkgSet[strings.TrimSpace(line[2:])]; ok {
				curDir = p.Dir
			} else {
				curDir = root
			}
			continue
		}
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue // -m=2 flow explanations
		}
		file, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		lineStr, rest, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		colStr, msg, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		msg = strings.TrimSpace(msg)
		if strings.HasSuffix(msg, ":") {
			continue // flow header; the bare verdict line follows
		}
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		if strings.HasPrefix(msg, `"`) {
			continue // string constant: rodata, not a per-call allocation
		}
		ln, err1 := strconv.Atoi(lineStr)
		cl, err2 := strconv.Atoi(colStr)
		if err1 != nil || err2 != nil {
			continue
		}
		if file == "<autogenerated>" {
			continue
		}
		switch {
		case filepath.IsAbs(file):
		case strings.HasPrefix(file, "./") || strings.HasPrefix(file, "../"):
			file = filepath.Join(curDir, file)
		default:
			file = filepath.Join(root, file)
		}
		out = append(out, escDiag{file: file, line: ln, col: cl, msg: msg})
	}
	return out, nil
}
