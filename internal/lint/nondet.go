package lint

import (
	"go/ast"
	"go/types"
)

// forbiddenFuncs maps package path → function name → replacement advice.
// These are ambient-nondeterminism sources: each one makes two runs with
// the same seed diverge (wall clock, process environment, or the
// process-seeded global rand).
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":   "take the simulated cycle (noc.Network.Cycle) or accept a timestamp parameter",
		"Since": "derive durations from simulated cycles",
		"Until": "derive durations from simulated cycles",
	},
	"os": {
		"Getenv":    "thread configuration through Config/Params structs",
		"LookupEnv": "thread configuration through Config/Params structs",
		"Environ":   "thread configuration through Config/Params structs",
	},
}

// randConstructors are the allowed math/rand entry points: constructors
// that force the caller to supply an explicit seed or source. Everything
// else at package level draws from the process-global generator.
var randConstructors = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewSource": true, "NewZipf": true,
}

// runNondet forbids wall-clock reads, environment reads, and global
// math/rand draws in the deterministic packages. The repository
// convention (internal/traffic, internal/topology) is that all
// randomness flows through an explicitly seeded *rand.Rand constructed
// via rand.New(rand.NewPCG(seed, ...)) and passed as a parameter.
func runNondet(c *Config, pkgs []*Package) []Finding {
	var out []Finding
	for _, p := range pkgs {
		if !p.Target || !c.isDeterministic(p.ImportPath) {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := p.objectOf(sel.Sel).(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Package-level functions only: methods (e.g. seeded
				// (*rand.Rand).IntN) are the sanctioned path.
				if fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				path, name := fn.Pkg().Path(), fn.Name()
				if advice, bad := forbiddenFuncs[path][name]; bad {
					out = append(out, p.finding("nondet", sel,
						"%s.%s is nondeterministic across runs; %s", path, name, advice))
					return true
				}
				if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
					out = append(out, p.finding("nondet", sel,
						"%s.%s draws from the process-global generator; use an explicitly seeded *rand.Rand parameter (rand.New(rand.NewPCG(seed, ...)))", path, name))
				}
				return true
			})
		}
	}
	return out
}
