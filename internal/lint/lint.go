// Package lint implements drainvet, the simulator's custom static
// analysis. Eight analyzers enforce, at build time, the invariants the
// evaluation depends on at run time.
//
// The syntactic four (PR 4):
//
//   - maprange: no order-dependent iteration over maps in the
//     deterministic packages (Go randomizes map order per run; anything
//     feeding output or state mutation from it diverges across runs).
//   - nondet: no ambient nondeterminism (wall clock, environment,
//     process-seeded global rand) in the deterministic packages; all
//     randomness flows through an explicitly seeded *rand.Rand.
//   - hotalloc: no allocation-introducing constructs in functions
//     reachable from the per-cycle hot path (noc.Network.Step); the
//     compile-time complement of the TestStepAllocs runtime guard.
//   - ctxflow: long-running entry points are cancellable — Run*/ForEach*
//     take a context.Context first (or have a *Context sibling), no
//     context is stored in a struct field, and simulation loops inside
//     ctx-taking functions actually consult their ctx.
//
// The dataflow/effects four (this PR; DESIGN.md §13):
//
//   - shardsafe: the write-set of every function reachable from the
//     sharded engine's parallel phases stays inside the goroutine's
//     frame or lands in //drain:staged state (the byte-identity
//     partition argument, checked).
//   - serialrng: no RNG draw is reachable from a parallel phase; draws
//     stay on the serial commit path, keeping the draw sequence
//     shard-count independent.
//   - keycomplete: every field of the cache-key structs (sim.Params,
//     server.canonical) is classified — serialized into the key or
//     `json:"-"` plus //drain:cachekey-exempt — and every server
//     Request field is consumed by canonicalization.
//   - escapecheck: go build -gcflags=-m=2 output cross-checked against
//     hotalloc (compiler-found hot-path escapes hotalloc missed, and
//     stale //drain:coldpath directives).
//
// The package is deliberately built on the standard library only
// (go/ast, go/parser, go/types, `go list` for discovery, the go
// toolchain itself for escapecheck): the module has no external
// dependencies and must stay that way.
//
// # Directives
//
// A small set of comment directives refines the analysis. Every
// suppression requires a written reason; bare directives are themselves
// reported as violations.
//
//	//drain:hotpath <reason>        on a function: extra hot-path root
//	//drain:coldpath <reason>       on a function: excluded from the
//	                                hot-path walk (amortized or failure
//	                                paths that cannot run in steady
//	                                state)
//	//drain:orderfree <reason>      on a map-range statement: iteration
//	                                is provably order-insensitive
//	//drain:ctxcarrier <reason>     on a context.Context struct field:
//	                                the struct is a queue/message
//	                                carrier moving a request-scoped ctx
//	                                between goroutines
//	//drain:parallelphase <reason>  on a function: extra parallel-phase
//	                                root for shardsafe/serialrng
//	//drain:staged <reason>         on a type or struct field: staging
//	                                or partitioned state parallel phases
//	                                may write (the reason must say why
//	                                concurrent shard writes cannot race
//	                                or reorder observably)
//	//drain:cachekey-exempt <reason> on a struct field of a cache-key
//	                                struct: excluded from the key
//	                                because it changes only performance,
//	                                never results
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check. Run receives every loaded package (the
// hot-path analyzer follows calls across packages) and reports findings
// only in target packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(c *Config, pkgs []*Package) []Finding
}

// Analyzers returns all eight analyzers in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "maprange",
			Doc:  "order-dependent map iteration in deterministic packages",
			Run:  runMapRange,
		},
		{
			Name: "nondet",
			Doc:  "ambient nondeterminism (clock, env, global rand) in deterministic packages",
			Run:  runNondet,
		},
		{
			Name: "hotalloc",
			Doc:  "allocation-introducing constructs reachable from the per-cycle hot path",
			Run:  runHotAlloc,
		},
		{
			Name: "ctxflow",
			Doc:  "cancellation hygiene: ctx-first entry points, no stored ctx, loops consult ctx",
			Run:  runCtxFlow,
		},
		{
			Name: "shardsafe",
			Doc:  "parallel-phase write-sets confined to shard-local or //drain:staged state",
			Run:  runShardSafe,
		},
		{
			Name: "serialrng",
			Doc:  "no RNG draw reachable from a parallel phase (draws stay on the serial commit path)",
			Run:  runSerialRNG,
		},
		{
			Name: "keycomplete",
			Doc:  "cache-key structs fully classified; request fields all consumed by canonicalization",
			Run:  runKeyComplete,
		},
		{
			Name: "escapecheck",
			Doc:  "compiler escape analysis cross-checked against hotalloc, and stale coldpath directives",
			Run:  runEscapeCheck,
		},
	}
}

// Config scopes the analyzers.
type Config struct {
	// DeterministicPkgs lists import-path suffixes of the packages whose
	// event ordering must be bit-reproducible; maprange and nondet apply
	// only inside them.
	DeterministicPkgs []string
	// HotRoots names the hot-path roots as "pkgsuffix.Type.Method" or
	// "pkgsuffix.Func"; //drain:hotpath directives add more.
	HotRoots []string
	// ParallelPhaseRoots names the functions that run concurrently on the
	// sharded engine's worker pool (same spec syntax as HotRoots);
	// //drain:parallelphase directives add more. shardsafe and serialrng
	// analyze everything statically reachable from them.
	ParallelPhaseRoots []string
	// RNGDrawFuncs names the repo's own randomness-drawing primitives
	// beyond the rand packages themselves (the counter-stream sampler,
	// the emit-time reseed); serialrng treats a call to any of them as a
	// draw.
	RNGDrawFuncs []string
	// KeyStructs names the structs ("pkgsuffix.Type") whose JSON encoding
	// is a cache-key preimage; keycomplete requires every field to be
	// serialized or //drain:cachekey-exempt.
	KeyStructs []string
	// RequestStructs names the wire-request structs whose every exported
	// field must be consumed in the declaring package.
	RequestStructs []string
	// PooledTypes names struct types ("pkgsuffix.Type") owned by a
	// deterministic free-list pool. hotalloc flags any direct heap
	// construction of one (&T{...} or new(T)) in hot-reachable code with
	// a pool-specific diagnostic: the pool's constructor is the only
	// sanctioned acquisition path, and its miss path is the only
	// sanctioned allocation site (marked //drain:coldpath).
	PooledTypes []string
}

// DefaultConfig returns the repository's production scope.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"internal/noc",
			"internal/sim",
			"internal/coherence",
			"internal/experiments",
			"internal/routing",
			"internal/spinrec",
		},
		HotRoots: []string{
			"internal/noc.Network.Step",
			"internal/noc.Network.StepContext",
			// Event-core entry points the synthetic driver hits between
			// Steps: the idle fast-forward pair, the per-iteration hint,
			// and the dirty-list ejection sink.
			"internal/noc.Network.NextWorkCycle",
			"internal/noc.Network.SkipIdle",
			"internal/noc.Network.DiscardEjected",
			"internal/traffic.Generator.SkipQuiet",
			// Counter-mode schedule maintenance: one reschedule per
			// injection (gap sampling + heap sift) must stay alloc-free.
			// Generator.Tick itself cannot be a root — emit creates
			// packets by design — so the fast path is rooted here.
			"internal/traffic.Generator.reschedule",
			// Live reconfiguration runs mid-simulation between Steps; the
			// overlay swap, flight drops and buffer evacuations must not
			// allocate (the routing-table rebuild happens outside, in sim).
			"internal/noc.Network.Reconfigure",
			// The packet pool's acquire/release pair: every packet a run
			// creates flows through these, so they must stay alloc-free
			// except for the pool's own coldpath miss (allocPacket) and
			// the free-list's amortized append growth.
			"internal/noc.Network.NewPacket",
			"internal/noc.Network.ReleasePacket",
		},
		// The four phase bodies the sharded engine fans across its worker
		// pool (parallel.go runShardPhase); everything else the engine does
		// — commits, wakes, reduces — runs on the stepping goroutine.
		ParallelPhaseRoots: []string{
			"internal/noc.parallelEngine.landArrivals",
			"internal/noc.parallelEngine.applyUpFrees",
			"internal/noc.parallelEngine.planShard",
			"internal/noc.parallelEngine.injectShard",
		},
		// The traffic generator's draw primitives: the per-packet gap
		// sampler, the counter-stream draw, and emit (which reseeds the
		// derived stream in counter mode and draws destinations in both).
		RNGDrawFuncs: []string{
			"internal/traffic.Generator.gapAfter",
			"internal/traffic.Generator.counterDraw",
			"internal/traffic.Generator.emit",
			"internal/traffic.Generator.reschedule",
		},
		// The two structs whose JSON encodings feed the server's SHA-256
		// content address (request.go Key).
		KeyStructs: []string{
			"internal/sim.Params",
			"internal/server.canonical",
		},
		RequestStructs: []string{
			"internal/server.Request",
		},
		// Packets are pool-owned (internal/noc/pool.go): acquisition goes
		// through Network.NewPacket, and the only heap allocation is the
		// pool's coldpath miss. A bare &Packet{...} or new(Packet) in hot
		// code reintroduces exactly the per-packet churn the pool removes.
		PooledTypes: []string{
			"internal/noc.Packet",
		},
	}
}

// isDeterministic reports whether the import path is in scope for
// maprange and nondet.
func (c *Config) isDeterministic(importPath string) bool {
	for _, s := range c.DeterministicPkgs {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Analyze runs the given analyzers (all four when names is empty) and
// returns the findings sorted by position.
func Analyze(c *Config, pkgs []*Package, names ...string) []Finding {
	enabled := map[string]bool{}
	for _, n := range names {
		enabled[n] = true
	}
	var out []Finding
	for _, a := range Analyzers() {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		out = append(out, a.Run(c, pkgs)...)
	}
	SortFindings(out)
	// Several analyzers parse directives per file; malformed-directive
	// findings would repeat. Keep one of each.
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// SortFindings orders findings by file, line, column, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// finding builds a Finding at the given node.
func (p *Package) finding(analyzer string, node ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(node.Pos())
	return Finding{
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// typeOf is Info.TypeOf with a nil guard.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// objectOf resolves an identifier to its object (Uses or Defs).
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// pkgFuncOf resolves a call expression's static callee, or nil for
// dynamic calls (func values, interface methods resolve to the interface
// method object which has no body here).
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.objectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.objectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
