// Package lint implements drainvet, the simulator's custom static
// analysis. Four analyzers enforce, at build time, the invariants the
// evaluation depends on at run time:
//
//   - maprange: no order-dependent iteration over maps in the
//     deterministic packages (Go randomizes map order per run; anything
//     feeding output or state mutation from it diverges across runs).
//   - nondet: no ambient nondeterminism (wall clock, environment,
//     process-seeded global rand) in the deterministic packages; all
//     randomness flows through an explicitly seeded *rand.Rand.
//   - hotalloc: no allocation-introducing constructs in functions
//     reachable from the per-cycle hot path (noc.Network.Step); the
//     compile-time complement of the TestStepAllocs runtime guard.
//   - ctxflow: long-running entry points are cancellable — Run*/ForEach*
//     take a context.Context first (or have a *Context sibling), no
//     context is stored in a struct field, and simulation loops inside
//     ctx-taking functions actually consult their ctx.
//
// The package is deliberately built on the standard library only
// (go/ast, go/parser, go/types, `go list` for discovery): the module has
// no external dependencies and must stay that way.
//
// # Directives
//
// A small set of comment directives refines the analysis. Every
// suppression requires a written reason; bare directives are themselves
// reported as violations.
//
//	//drain:hotpath <reason>    on a function: extra hot-path root
//	//drain:coldpath <reason>   on a function: excluded from the
//	                            hot-path walk (amortized or failure
//	                            paths that cannot run in steady state)
//	//drain:orderfree <reason>  on a map-range statement: iteration is
//	                            provably order-insensitive
//	//drain:ctxcarrier <reason> on a context.Context struct field: the
//	                            struct is a queue/message carrier moving
//	                            a request-scoped ctx between goroutines
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the canonical "file:line: [analyzer] message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Analyzer, f.Message)
}

// Analyzer is one named check. Run receives every loaded package (the
// hot-path analyzer follows calls across packages) and reports findings
// only in target packages.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(c *Config, pkgs []*Package) []Finding
}

// Analyzers returns all four analyzers in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		{
			Name: "maprange",
			Doc:  "order-dependent map iteration in deterministic packages",
			Run:  runMapRange,
		},
		{
			Name: "nondet",
			Doc:  "ambient nondeterminism (clock, env, global rand) in deterministic packages",
			Run:  runNondet,
		},
		{
			Name: "hotalloc",
			Doc:  "allocation-introducing constructs reachable from the per-cycle hot path",
			Run:  runHotAlloc,
		},
		{
			Name: "ctxflow",
			Doc:  "cancellation hygiene: ctx-first entry points, no stored ctx, loops consult ctx",
			Run:  runCtxFlow,
		},
	}
}

// Config scopes the analyzers.
type Config struct {
	// DeterministicPkgs lists import-path suffixes of the packages whose
	// event ordering must be bit-reproducible; maprange and nondet apply
	// only inside them.
	DeterministicPkgs []string
	// HotRoots names the hot-path roots as "pkgsuffix.Type.Method" or
	// "pkgsuffix.Func"; //drain:hotpath directives add more.
	HotRoots []string
}

// DefaultConfig returns the repository's production scope.
func DefaultConfig() *Config {
	return &Config{
		DeterministicPkgs: []string{
			"internal/noc",
			"internal/sim",
			"internal/coherence",
			"internal/experiments",
			"internal/routing",
			"internal/spinrec",
		},
		HotRoots: []string{
			"internal/noc.Network.Step",
			"internal/noc.Network.StepContext",
			// Event-core entry points the synthetic driver hits between
			// Steps: the idle fast-forward pair, the per-iteration hint,
			// and the dirty-list ejection sink.
			"internal/noc.Network.NextWorkCycle",
			"internal/noc.Network.SkipIdle",
			"internal/noc.Network.DiscardEjected",
			"internal/traffic.Generator.SkipQuiet",
			// Counter-mode schedule maintenance: one reschedule per
			// injection (gap sampling + heap sift) must stay alloc-free.
			// Generator.Tick itself cannot be a root — emit creates
			// packets by design — so the fast path is rooted here.
			"internal/traffic.Generator.reschedule",
			// Live reconfiguration runs mid-simulation between Steps; the
			// overlay swap, flight drops and buffer evacuations must not
			// allocate (the routing-table rebuild happens outside, in sim).
			"internal/noc.Network.Reconfigure",
		},
	}
}

// isDeterministic reports whether the import path is in scope for
// maprange and nondet.
func (c *Config) isDeterministic(importPath string) bool {
	for _, s := range c.DeterministicPkgs {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Analyze runs the given analyzers (all four when names is empty) and
// returns the findings sorted by position.
func Analyze(c *Config, pkgs []*Package, names ...string) []Finding {
	enabled := map[string]bool{}
	for _, n := range names {
		enabled[n] = true
	}
	var out []Finding
	for _, a := range Analyzers() {
		if len(enabled) > 0 && !enabled[a.Name] {
			continue
		}
		out = append(out, a.Run(c, pkgs)...)
	}
	SortFindings(out)
	// Several analyzers parse directives per file; malformed-directive
	// findings would repeat. Keep one of each.
	dedup := out[:0]
	for i, f := range out {
		if i == 0 || f != out[i-1] {
			dedup = append(dedup, f)
		}
	}
	return dedup
}

// SortFindings orders findings by file, line, column, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// finding builds a Finding at the given node.
func (p *Package) finding(analyzer string, node ast.Node, format string, args ...any) Finding {
	pos := p.Fset.Position(node.Pos())
	return Finding{
		Pos:      pos,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// typeOf is Info.TypeOf with a nil guard.
func (p *Package) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// objectOf resolves an identifier to its object (Uses or Defs).
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	return p.Info.ObjectOf(id)
}

// pkgFuncOf resolves a call expression's static callee, or nil for
// dynamic calls (func values, interface methods resolve to the interface
// method object which has no body here).
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.objectOf(fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.objectOf(fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
