package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe parses expectation comments in fixtures:
//
//	// want `regex`        — a finding on this line must match regex
//	// want:-1 `regex`     — a finding one line above must match (for
//	                         findings that anchor on a comment line)
var wantRe = regexp.MustCompile("// want(:(-?[0-9]+))? `([^`]+)`")

type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

// TestFixtures runs each analyzer over its testdata package and checks
// the findings against the fixture's want comments, both directions:
// every want must be matched and every finding must be wanted.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := "testdata/src/" + a.Name
			pkgs, err := Load(dir, []string{"./a"})
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			if len(pkgs) == 0 {
				t.Fatal("fixture loaded no packages")
			}
			cfg := DefaultConfig()
			// Fixtures are not in the production deterministic set; put
			// them in scope explicitly. Hot roots come from //drain:hotpath
			// and parallel-phase roots from //drain:parallelphase, so those
			// analyzers self-root; the struct- and primitive-matching
			// configs must point at fixture declarations instead.
			cfg.DeterministicPkgs = []string{dir + "/a"}
			switch a.Name {
			case "hotalloc":
				cfg.PooledTypes = []string{"a.token"}
			case "serialrng":
				cfg.RNGDrawFuncs = []string{"a.gen.draw"}
			case "keycomplete":
				cfg.KeyStructs = []string{"a.Params"}
				cfg.RequestStructs = []string{"a.Request"}
			}
			findings := a.Run(cfg, pkgs)
			SortFindings(findings)

			wants := collectWants(t, pkgs)
			for _, f := range findings {
				msg := fmt.Sprintf("[%s] %s", f.Analyzer, f.Message)
				ok := false
				for _, w := range wants {
					if w.line == f.Line && !w.matched && w.re.MatchString(msg) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding at %s:%d: %s", f.File, f.Line, msg)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("want at line %d not reported: %s", w.line, w.re)
				}
			}
		})
	}
}

// collectWants scans the fixture package's comments for expectations.
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		if !p.Target {
			continue
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := p.Fset.Position(c.Pos()).Line
					if m[2] != "" {
						off, err := strconv.Atoi(m[2])
						if err != nil {
							t.Fatalf("bad want offset %q", m[2])
						}
						line += off
					}
					re, err := regexp.Compile(m[3])
					if err != nil {
						t.Fatalf("bad want regex %q: %v", m[3], err)
					}
					wants = append(wants, &want{line: line, re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}
	return wants
}

// TestFindingString pins the canonical diagnostic format the Makefile
// and CI grep for.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/noc/step.go", Line: 42, Analyzer: "hotalloc", Message: "boom"}
	if got, wantStr := f.String(), "internal/noc/step.go:42: [hotalloc] boom"; got != wantStr {
		t.Fatalf("String() = %q, want %q", got, wantStr)
	}
}

// TestDirectiveValidation: unknown directives are findings, so a typo
// can never silently disable a check.
func TestDirectiveValidation(t *testing.T) {
	pkgs, err := Load("testdata/src/ctxflow", []string{"./a"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	findings := Analyze(cfg, pkgs, "ctxflow")
	sawBare := false
	for _, f := range findings {
		if f.Analyzer == "directive" && strings.Contains(f.Message, "requires a reason") {
			sawBare = true
		}
	}
	if !sawBare {
		t.Error("bare //drain:orderfree directive was not reported")
	}
}
