package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean runs every analyzer over the real module tree and
// asserts zero findings. This is the tier-1 guarantee that the
// deterministic packages stay free of nondeterminism, hot-path
// allocations, unordered map iteration and uncancellable entry points.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; skipped in -short")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	root := filepath.Dir(gomod)

	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	findings := Analyze(DefaultConfig(), pkgs)
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Logf("%d finding(s): fix the code or annotate with a reasoned //drain: directive", len(findings))
	}
}
