package lint

import (
	"os"
	"testing"
	"time"
)

// TestRepoIsClean runs every analyzer over the real module tree and
// asserts zero findings. This is the tier-1 guarantee that the
// deterministic packages stay free of nondeterminism, hot-path
// allocations, unordered map iteration and uncancellable entry points,
// and that the parallel-engine and cache-key contracts (shardsafe,
// serialrng, keycomplete, escapecheck) hold module-wide.
//
// Each analyzer runs separately under a wall-clock budget
// (DRAINVET_ANALYZER_BUDGET, a time.Duration, default 120s) so a
// quadratic blow-up in one analyzer surfaces as that analyzer's
// failure, not as an opaque package-test timeout.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow; skipped in -short")
	}
	budget := 120 * time.Second
	if s := os.Getenv("DRAINVET_ANALYZER_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("DRAINVET_ANALYZER_BUDGET: %v", err)
		}
		budget = d
	}

	root := moduleRoot(t)
	loadStart := time.Now()
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	t.Logf("load+typecheck: %v", time.Since(loadStart))

	cfg := DefaultConfig()
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			start := time.Now()
			findings := a.Run(cfg, pkgs)
			elapsed := time.Since(start)
			t.Logf("%s: %d finding(s) in %v", a.Name, len(findings), elapsed)
			for _, f := range findings {
				t.Errorf("%s", f.String())
			}
			if len(findings) > 0 {
				t.Logf("fix the code or annotate with a reasoned //drain: directive")
			}
			if elapsed > budget {
				t.Errorf("%s took %v, over the %v per-analyzer budget (set DRAINVET_ANALYZER_BUDGET to override)", a.Name, elapsed, budget)
			}
		})
	}
}
