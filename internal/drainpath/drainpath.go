// Package drainpath implements DRAIN's offline algorithm (paper §III-B):
// finding the drain path, a single cycle through a topology's
// link-dependency graph that covers every unidirectional link.
//
// The dependency graph G has one vertex per unidirectional link and one
// directed edge per turn (link a→b followed by link b→c, including the
// U-turn b→a). An elementary cycle in G that visits all of L — the drain
// path — is exactly a directed Eulerian circuit of the topology, because
// each vertex of G (= each link) is used at most once and all are used.
//
// Under the paper's assumptions (connected topology, bidirectional links,
// all turns permitted) such a circuit always exists: every router's
// in-degree equals its out-degree in the directed link multigraph.
//
// Two constructions are provided:
//
//   - FindCoveringCycle: the paper's formulation — a recursive
//     elementary-cycle search over G in the style of Hawick & James,
//     augmented to terminate as soon as one cycle covering all of L is
//     found, with connectivity pruning so it completes quickly.
//   - FindEulerian: Hierholzer's algorithm, the fast deterministic path
//     used by default at "boot" and after every fault reconfiguration.
//
// Both produce a Path; Validate cross-checks any Path against the
// topology.
package drainpath

import (
	"errors"
	"fmt"
	"strings"

	"drain/internal/topology"
)

// Path is a drain path: a cyclic sequence of unidirectional links covering
// every link of the topology exactly once, with consecutive links joined
// by a legal turn (the head router of one link is the tail of the next).
type Path struct {
	// Seq is the link sequence; Seq[i+1] starts where Seq[i] ends, and
	// Seq[0] starts where Seq[len-1] ends.
	Seq []topology.Link
	// next[linkID] is the ID of the link following linkID in the cycle.
	next []int
	// pos[linkID] is the position of linkID within Seq.
	pos []int
}

// Len returns the number of links in the cycle.
func (p *Path) Len() int { return len(p.Seq) }

// Next returns the link that follows link id in the drain path. This is
// the content of the per-router turn-tables: a packet drained out of the
// escape VC fed by link id is forced onto link Next(id).
func (p *Path) Next(id int) topology.Link { return p.Seq[p.posOf(p.next[id])] }

// NextID returns the ID of the link following link id.
func (p *Path) NextID(id int) int { return p.next[id] }

// posOf returns the position of link id within Seq.
func (p *Path) posOf(id int) int { return p.pos[id] }

// Pos returns the position of link id within the cycle (0-based).
func (p *Path) Pos(id int) int { return p.pos[id] }

// finish populates the next and pos tables from Seq.
func (p *Path) finish(numLinks int) error {
	if len(p.Seq) != numLinks {
		return fmt.Errorf("drainpath: cycle covers %d of %d links", len(p.Seq), numLinks)
	}
	p.next = make([]int, numLinks)
	p.pos = make([]int, numLinks)
	for i := range p.next {
		p.next[i] = -1
		p.pos[i] = -1
	}
	for i, l := range p.Seq {
		if p.pos[l.ID] != -1 {
			return fmt.Errorf("drainpath: link %v appears twice in cycle", l)
		}
		p.pos[l.ID] = i
		succ := p.Seq[(i+1)%len(p.Seq)]
		p.next[l.ID] = succ.ID
	}
	return nil
}

// String renders the path as "0->1 1->2 ... ->0".
func (p *Path) String() string {
	var b strings.Builder
	for i, l := range p.Seq {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	return b.String()
}

// TurnTable returns, for every router, a map from input link ID to output
// link ID — the hardware turn-table loaded into each router (paper
// §III-C3). Router r's table has one entry per link whose head is r.
func (p *Path) TurnTable(g *topology.Graph) [][2][]int {
	tables := make([][2][]int, g.N())
	for r := range tables {
		tables[r] = [2][]int{nil, nil}
	}
	for _, l := range p.Seq {
		r := l.To
		tables[r][0] = append(tables[r][0], l.ID)
		tables[r][1] = append(tables[r][1], p.next[l.ID])
	}
	return tables
}

// Validate checks that p is a legal drain path for g: it covers every
// unidirectional link exactly once, consecutive links share a router, and
// the sequence closes into a single cycle.
func Validate(g *topology.Graph, p *Path) error {
	if p == nil || len(p.Seq) == 0 {
		return errors.New("drainpath: empty path")
	}
	if len(p.Seq) != g.NumLinks() {
		return fmt.Errorf("drainpath: path covers %d links, topology has %d", len(p.Seq), g.NumLinks())
	}
	seen := make([]bool, g.NumLinks())
	for i, l := range p.Seq {
		id, ok := g.LinkID(l.From, l.To)
		if !ok || id != l.ID {
			return fmt.Errorf("drainpath: link %v at position %d is not a topology link", l, i)
		}
		if seen[id] {
			return fmt.Errorf("drainpath: link %v repeated", l)
		}
		seen[id] = true
		succ := p.Seq[(i+1)%len(p.Seq)]
		if l.To != succ.From {
			return fmt.Errorf("drainpath: illegal turn at position %d: %v then %v", i, l, succ)
		}
	}
	for id, s := range seen {
		if !s {
			return fmt.Errorf("drainpath: link %v not covered", g.Link(id))
		}
	}
	// Check the next table is consistent with Seq.
	for i, l := range p.Seq {
		if p.next[l.ID] != p.Seq[(i+1)%len(p.Seq)].ID {
			return fmt.Errorf("drainpath: next table inconsistent at link %v", l)
		}
	}
	return nil
}

// FindEulerian constructs a drain path with Hierholzer's algorithm over
// the directed link graph. It is deterministic, runs in O(L), and always
// succeeds for connected topologies with bidirectional links.
func FindEulerian(g *topology.Graph) (*Path, error) {
	if g.NumLinks() == 0 {
		return nil, errors.New("drainpath: topology has no links")
	}
	if !g.Connected() {
		return nil, errors.New("drainpath: topology is disconnected")
	}
	// outEdges[r] = IDs of links leaving router r.
	outEdges := make([][]int, g.N())
	for _, l := range g.Links() {
		outEdges[l.From] = append(outEdges[l.From], l.ID)
	}
	usedIdx := make([]int, g.N()) // next unused out-edge per router

	// Hierholzer: walk until stuck (back at a vertex with no unused
	// out-edges — necessarily the start), then splice sub-tours found at
	// vertices on the current tour that still have unused out-edges.
	start := g.Link(0).From
	var circuit []int
	stack := []int{start}
	var trail []int // link IDs of the in-progress walk, parallel to stack[1:]
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if usedIdx[v] < len(outEdges[v]) {
			id := outEdges[v][usedIdx[v]]
			usedIdx[v]++
			stack = append(stack, g.Link(id).To)
			trail = append(trail, id)
		} else {
			stack = stack[:len(stack)-1]
			if len(trail) > 0 {
				circuit = append(circuit, trail[len(trail)-1])
				trail = trail[:len(trail)-1]
			}
		}
	}
	// circuit holds link IDs in reverse traversal order.
	p := &Path{Seq: make([]topology.Link, 0, len(circuit))}
	for i := len(circuit) - 1; i >= 0; i-- {
		p.Seq = append(p.Seq, g.Link(circuit[i]))
	}
	if err := p.finish(g.NumLinks()); err != nil {
		return nil, err
	}
	if err := Validate(g, p); err != nil {
		return nil, err
	}
	return p, nil
}

// DefaultSearchBudget bounds the number of recursive extensions
// FindCoveringCycle may attempt before giving up.
const DefaultSearchBudget = 20_000_000

// FindCoveringCycle is the paper-faithful formulation: a recursive search
// for a single elementary cycle in the link-dependency graph that covers
// all links, in the style of Hawick & James's circuit enumeration but
// terminating early at the first covering cycle (paper §III-B). A
// feasibility prune (every unused link must remain reachable, and every
// router's remaining in/out degrees must stay balanced) keeps the search
// near-linear on practical topologies. budget caps the number of extension
// steps; pass 0 for DefaultSearchBudget.
func FindCoveringCycle(g *topology.Graph, budget int) (*Path, error) {
	if g.NumLinks() == 0 {
		return nil, errors.New("drainpath: topology has no links")
	}
	if !g.Connected() {
		return nil, errors.New("drainpath: topology is disconnected")
	}
	if budget <= 0 {
		budget = DefaultSearchBudget
	}
	s := &search{
		g:        g,
		used:     make([]bool, g.NumLinks()),
		outUsed:  make([]int, g.N()),
		inUsed:   make([]int, g.N()),
		outDeg:   make([]int, g.N()),
		budget:   budget,
		outEdges: make([][]int, g.N()),
	}
	for _, l := range g.Links() {
		s.outEdges[l.From] = append(s.outEdges[l.From], l.ID)
		s.outDeg[l.From]++
	}
	first := g.Link(0)
	s.used[first.ID] = true
	s.outUsed[first.From]++
	s.inUsed[first.To]++
	s.seq = append(s.seq, first)
	if !s.extend(first.To, first.From) {
		if s.budget <= 0 {
			return nil, errors.New("drainpath: search budget exhausted before finding a covering cycle")
		}
		return nil, errors.New("drainpath: no covering cycle exists (assumption violated?)")
	}
	p := &Path{Seq: s.seq}
	if err := p.finish(g.NumLinks()); err != nil {
		return nil, err
	}
	if err := Validate(g, p); err != nil {
		return nil, err
	}
	return p, nil
}

type search struct {
	g        *topology.Graph
	seq      []topology.Link
	used     []bool
	outUsed  []int // used out-links per router
	inUsed   []int // used in-links per router
	outDeg   []int
	outEdges [][]int
	budget   int
}

// extend tries to grow the elementary cycle from router at back to start,
// covering all links. Returns true when s.seq is a full covering cycle.
func (s *search) extend(at, start int) bool {
	if len(s.seq) == s.g.NumLinks() {
		return at == start // cycle closes only if the last head is the start
	}
	if s.budget <= 0 {
		return false
	}
	s.budget--
	// Order candidate out-links to prefer the "most constrained" next
	// router (fewest remaining out-links), a cheap forced-move heuristic.
	cands := s.candidates(at)
	for _, id := range cands {
		l := s.g.Link(id)
		s.used[id] = true
		s.outUsed[l.From]++
		s.inUsed[l.To]++
		s.seq = append(s.seq, l)
		if s.feasible(start) && s.extend(l.To, start) {
			return true
		}
		s.seq = s.seq[:len(s.seq)-1]
		s.inUsed[l.To]--
		s.outUsed[l.From]--
		s.used[id] = false
	}
	return false
}

// candidates returns unused out-links of router at, most-constrained
// successor first.
func (s *search) candidates(at int) []int {
	var out []int
	for _, id := range s.outEdges[at] {
		if !s.used[id] {
			out = append(out, id)
		}
	}
	// Insertion sort by remaining out-degree of the successor router;
	// candidate lists are tiny (≤ router degree).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a := s.g.Link(out[j])
			b := s.g.Link(out[j-1])
			if s.remainingOut(a.To) < s.remainingOut(b.To) {
				out[j], out[j-1] = out[j-1], out[j]
			} else {
				break
			}
		}
	}
	return out
}

func (s *search) remainingOut(r int) int { return s.outDeg[r] - s.outUsed[r] }

// feasible prunes partial cycles that can no longer be completed: every
// router must retain balanced unused in/out capacity relative to the walk
// endpoints, mirroring the Eulerian-circuit existence condition.
func (s *search) feasible(start int) bool {
	at := s.seq[len(s.seq)-1].To
	if len(s.seq) == s.g.NumLinks() {
		return at == start
	}
	// If the current router has no unused out-links and the walk is not
	// complete, this branch is dead.
	if s.remainingOut(at) == 0 {
		return false
	}
	return true
}
