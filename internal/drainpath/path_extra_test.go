package drainpath

import (
	"testing"
	"testing/quick"

	"drain/internal/topology"
)

func TestPosIsInverseOfSeq(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	p, err := FindEulerian(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range p.Seq {
		if p.Pos(l.ID) != i {
			t.Fatalf("Pos(%d) = %d, want %d", l.ID, p.Pos(l.ID), i)
		}
	}
}

func TestStringRendersAllLinks(t *testing.T) {
	g, err := topology.NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FindEulerian(g)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	// 8 links → 8 space-separated tokens.
	tokens := 1
	for _, ch := range s {
		if ch == ' ' {
			tokens++
		}
	}
	if tokens != 8 {
		t.Errorf("rendered %d tokens, want 8: %q", tokens, s)
	}
}

// Property: turn tables on random topologies are complete and bijective
// (every link appears exactly once as input and once as output).
func TestTurnTableBijectionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%16) + 3
		g, err := topology.NewRandomConnected(n, 4, testRNG(seed))
		if err != nil {
			return false
		}
		p, err := FindEulerian(g)
		if err != nil {
			return false
		}
		tables := p.TurnTable(g)
		inSeen := make([]bool, g.NumLinks())
		outSeen := make([]bool, g.NumLinks())
		for r, tab := range tables {
			ins, outs := tab[0], tab[1]
			if len(ins) != len(outs) {
				return false
			}
			for i := range ins {
				if inSeen[ins[i]] || outSeen[outs[i]] {
					return false // a link repeated as input or output
				}
				inSeen[ins[i]] = true
				outSeen[outs[i]] = true
				if g.Link(ins[i]).To != r || g.Link(outs[i]).From != r {
					return false
				}
			}
		}
		for id := 0; id < g.NumLinks(); id++ {
			if !inSeen[id] || !outSeen[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the search-based construction agrees with validation on
// random-regular (low-radix) topologies too.
func TestCoveringCycleOnRandomRegular(t *testing.T) {
	f := func(seed uint64) bool {
		rng := testRNG(seed)
		g, err := topology.NewRandomRegular(12, 3, rng)
		if err != nil {
			return false
		}
		p, err := FindCoveringCycle(g, 0)
		if err != nil {
			return false
		}
		return Validate(g, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
