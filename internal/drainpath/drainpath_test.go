package drainpath

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/topology"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0xdeadbeef)) }

func TestFindEulerianOnMesh(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {4, 4}, {8, 8}, {5, 3}} {
		g := topology.MustMesh(dims[0], dims[1]).Graph
		p, err := FindEulerian(g)
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		if err := Validate(g, p); err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		if p.Len() != g.NumLinks() {
			t.Fatalf("%dx%d: path length %d, want %d", dims[0], dims[1], p.Len(), g.NumLinks())
		}
	}
}

func TestFindEulerianOnFaultyMesh(t *testing.T) {
	rng := testRNG(7)
	base := topology.MustMesh(8, 8).Graph
	for _, faults := range []int{1, 4, 8, 12} {
		g, err := topology.RemoveRandomLinks(base, faults, rng)
		if err != nil {
			t.Fatal(err)
		}
		p, err := FindEulerian(g)
		if err != nil {
			t.Fatalf("faults=%d: %v", faults, err)
		}
		if err := Validate(g, p); err != nil {
			t.Fatalf("faults=%d: %v", faults, err)
		}
	}
}

func TestFindCoveringCycleMatchesEulerOnSmallTopologies(t *testing.T) {
	cases := []*topology.Graph{
		topology.MustMesh(2, 2).Graph,
		topology.MustMesh(3, 3).Graph,
		topology.MustMesh(4, 4).Graph,
		mustRing(t, 6),
	}
	for i, g := range cases {
		p, err := FindCoveringCycle(g, 0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := Validate(g, p); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func mustRing(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFindCoveringCycleFigure6Topologies(t *testing.T) {
	// Paper Fig. 6 shows the algorithm's output on an irregular and a
	// regular topology; reproduce on a faulty 3x3 and a regular 4x4.
	g3, err := topology.MustMesh(3, 3).WithoutEdge(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*topology.Graph{g3, topology.MustMesh(4, 4).Graph} {
		p, err := FindCoveringCycle(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNextIsPermutationCycle(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	p, err := FindEulerian(g)
	if err != nil {
		t.Fatal(err)
	}
	// Following Next from link 0 must traverse every link once and return.
	seen := make(map[int]bool, g.NumLinks())
	id := p.Seq[0].ID
	for i := 0; i < g.NumLinks(); i++ {
		if seen[id] {
			t.Fatalf("link %d revisited after %d steps", id, i)
		}
		seen[id] = true
		nxt := p.Next(id)
		if nxt.From != g.Link(id).To {
			t.Fatalf("turn from %v to %v is not at a shared router", g.Link(id), nxt)
		}
		id = nxt.ID
	}
	if id != p.Seq[0].ID {
		t.Fatalf("cycle did not close: ended at %d", id)
	}
}

func TestTurnTable(t *testing.T) {
	g := topology.MustMesh(3, 3).Graph
	p, err := FindEulerian(g)
	if err != nil {
		t.Fatal(err)
	}
	tables := p.TurnTable(g)
	entries := 0
	for r, tab := range tables {
		ins, outs := tab[0], tab[1]
		if len(ins) != len(outs) {
			t.Fatalf("router %d: %d inputs vs %d outputs", r, len(ins), len(outs))
		}
		for i := range ins {
			in, out := g.Link(ins[i]), g.Link(outs[i])
			if in.To != r {
				t.Fatalf("router %d: input link %v does not end here", r, in)
			}
			if out.From != r {
				t.Fatalf("router %d: output link %v does not start here", r, out)
			}
			if p.NextID(in.ID) != out.ID {
				t.Fatalf("router %d: table disagrees with path", r)
			}
		}
		entries += len(ins)
	}
	if entries != g.NumLinks() {
		t.Fatalf("turn tables hold %d entries, want %d", entries, g.NumLinks())
	}
}

func TestValidateRejectsBadPaths(t *testing.T) {
	g := topology.MustMesh(2, 2).Graph
	p, err := FindEulerian(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(g, nil); err == nil {
		t.Error("nil path should fail")
	}
	short := &Path{Seq: p.Seq[:2]}
	if err := Validate(g, short); err == nil {
		t.Error("short path should fail")
	}
	// A path valid for one topology must fail on another.
	other := topology.MustMesh(3, 3).Graph
	if err := Validate(other, p); err == nil {
		t.Error("path for wrong topology should fail")
	}
}

func TestDisconnectedAndEmptyTopologies(t *testing.T) {
	lonely := topology.MustNew(1, nil)
	if _, err := FindEulerian(lonely); err == nil {
		t.Error("no-link topology should fail")
	}
	disc := topology.MustNew(4, []topology.Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if _, err := FindEulerian(disc); err == nil {
		t.Error("disconnected topology should fail")
	}
	if _, err := FindCoveringCycle(disc, 0); err == nil {
		t.Error("disconnected topology should fail for search too")
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	if _, err := FindCoveringCycle(g, 1); err == nil {
		t.Error("tiny budget should exhaust")
	}
}

// Property: both constructions produce valid drain paths on arbitrary
// random connected topologies, including after random fault injection.
func TestDrainPathProperty(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := int(nRaw%20) + 2
		extra := int(extraRaw % 15)
		g, err := topology.NewRandomConnected(n, extra, testRNG(seed))
		if err != nil {
			return false
		}
		pe, err := FindEulerian(g)
		if err != nil || Validate(g, pe) != nil {
			return false
		}
		ps, err := FindCoveringCycle(g, 0)
		if err != nil || Validate(g, ps) != nil {
			return false
		}
		return pe.Len() == g.NumLinks() && ps.Len() == g.NumLinks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the drain path visits every router at least once (needed for
// the protocol-level deadlock-freedom proof, paper §III-D2).
func TestDrainPathVisitsAllRouters(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g, err := topology.NewRandomConnected(n, 5, testRNG(seed))
		if err != nil {
			return false
		}
		p, err := FindEulerian(g)
		if err != nil {
			return false
		}
		visited := make([]bool, g.N())
		for _, l := range p.Seq {
			visited[l.From] = true
			visited[l.To] = true
		}
		for _, v := range visited {
			if !v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
