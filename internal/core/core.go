// Package core implements DRAIN itself (paper §III): the subactive
// deadlock-removal controller that periodically freezes credit
// allocation (pre-drain), forces every escape-VC packet one hop along a
// statically computed drain path (drain window), and occasionally runs a
// full drain as a livelock guard.
//
// The controller is the software model of the three microarchitectural
// additions in the paper's Fig. 7: the epoch register (when to drain),
// the credit freeze (pre-drain), and the per-router turn-table (where to
// drain, derived from the offline drain path of internal/drainpath).
package core

import (
	"fmt"

	"drain/internal/drainpath"
	"drain/internal/noc"
	"drain/internal/topology"
)

// PathAlgorithm selects how the offline drain path is computed.
type PathAlgorithm int

const (
	// PathEulerian uses Hierholzer's construction (fast default).
	PathEulerian PathAlgorithm = iota
	// PathSearch uses the paper's early-terminating elementary-cycle
	// search over the link-dependency graph.
	PathSearch
)

// Config parameterizes the DRAIN controller. Zero fields take the
// paper's defaults.
type Config struct {
	// Epoch is the number of cycles between drain windows (paper
	// default: 64K cycles; Fig. 14 sweeps 16…64K).
	Epoch int64
	// PreDrain is the credit-freeze length in cycles before each drain;
	// it must cover the largest packet's serialization so the network
	// quiesces (paper: 5 cycles = max packet size).
	PreDrain int
	// DrainWindow is the cycles charged for each forced hop (link
	// serialization of the drained packets).
	DrainWindow int
	// DrainHops is the number of forced hops per drain window. The paper
	// (footnote 3) finds 1 always best; >1 is exposed for the ablation.
	DrainHops int
	// FullDrainEvery runs a full drain every N drain windows (paper:
	// "once every N drain windows, for very large N").
	FullDrainEvery int
	// Algorithm selects the offline path construction.
	Algorithm PathAlgorithm
}

func (c *Config) setDefaults(maxFlits int) {
	if c.Epoch <= 0 {
		c.Epoch = 64 * 1024
	}
	if c.PreDrain <= 0 {
		c.PreDrain = maxFlits
	}
	if c.DrainWindow <= 0 {
		c.DrainWindow = maxFlits
	}
	if c.DrainHops <= 0 {
		c.DrainHops = 1
	}
	if c.FullDrainEvery <= 0 {
		c.FullDrainEvery = 1024
	}
}

// Stats reports controller activity.
type Stats struct {
	Drains       int64 // drain windows executed
	FullDrains   int64 // full drains executed
	PacketsMoved int64 // packet-hops forced by drains
	Ejections    int64 // packets ejected during drains
	FrozenCycles int64 // cycles the network spent frozen
}

// controller state machine phases.
type phase int

const (
	phaseRunning phase = iota
	phasePreDrain
	phaseDraining
)

// Controller drives DRAIN over a network. Call Tick exactly once per
// cycle, after Network.Step.
type Controller struct {
	cfg  Config
	net  *noc.Network
	path *drainpath.Path
	next []int // turn-table: next[linkID] = successor link

	phase       phase
	nextDrainAt int64
	phaseEndsAt int64
	drainCount  int64

	stats Stats
}

// New computes the drain path for the network's topology and returns a
// ready controller. The first drain window fires one epoch from now.
func New(net *noc.Network, cfg Config) (*Controller, error) {
	cfg.setDefaults(net.Config().MaxFlits)
	var (
		p   *drainpath.Path
		err error
	)
	switch cfg.Algorithm {
	case PathEulerian:
		p, err = drainpath.FindEulerian(net.Graph())
	case PathSearch:
		p, err = drainpath.FindCoveringCycle(net.Graph(), 0)
	default:
		err = fmt.Errorf("core: unknown path algorithm %d", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	g := net.Graph()
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = p.NextID(id)
	}
	return &Controller{
		cfg:         cfg,
		net:         net,
		path:        p,
		next:        next,
		nextDrainAt: net.Cycle() + cfg.Epoch,
	}, nil
}

// Path returns the drain path in use.
func (c *Controller) Path() *drainpath.Path { return c.path }

// Reconfigure recomputes the drain path online after a live topology
// change: active is the currently fault-free subgraph of the network's
// full topology (the same subgraph passed to noc.Network.Reconfigure).
// The new path is computed over active — a full rebuild, the correctness
// fallback; the path construction itself is already incremental-cheap
// (Hierholzer is linear in links) — and the turn-table is remapped into
// the full graph's link-ID space, with -1 for failed links. That is safe
// because failed links are empty at drain time: DrainRotate requires a
// quiesced network, evacuation cleared their buffers at the failure, and
// no grant ever targets them — so the rotation's nil-occupant skip never
// dereferences a -1 entry. The epoch schedule is unchanged: the next
// drain fires when it would have.
func (c *Controller) Reconfigure(active *topology.Graph) error {
	var (
		p   *drainpath.Path
		err error
	)
	switch c.cfg.Algorithm {
	case PathEulerian:
		p, err = drainpath.FindEulerian(active)
	case PathSearch:
		p, err = drainpath.FindCoveringCycle(active, 0)
	default:
		err = fmt.Errorf("core: unknown path algorithm %d", c.cfg.Algorithm)
	}
	if err != nil {
		return fmt.Errorf("core: drain path recomputation failed: %w", err)
	}
	full := c.net.Graph()
	for id := range c.next {
		c.next[id] = -1
	}
	for _, al := range active.Links() {
		fid, ok := full.LinkID(al.From, al.To)
		if !ok {
			return fmt.Errorf("core: active link %v is not part of the full topology", al)
		}
		sl := active.Link(p.NextID(al.ID))
		fsucc, ok := full.LinkID(sl.From, sl.To)
		if !ok {
			return fmt.Errorf("core: active link %v is not part of the full topology", sl)
		}
		c.next[fid] = fsucc
	}
	c.path = p
	return nil
}

// Stats returns a snapshot of controller activity.
func (c *Controller) Stats() Stats { return c.stats }

// Config returns the defaulted configuration.
func (c *Controller) Config() Config { return c.cfg }

// Draining reports whether the network is currently frozen by the
// controller (pre-drain or drain window in progress).
func (c *Controller) Draining() bool { return c.phase != phaseRunning }

// Tick advances the controller's epoch state machine by one cycle.
func (c *Controller) Tick() error {
	now := c.net.Cycle()
	switch c.phase {
	case phaseRunning:
		if now >= c.nextDrainAt {
			// Epoch register hit zero: freeze credits (pre-drain window).
			c.net.SetFrozen(true)
			c.phase = phasePreDrain
			c.phaseEndsAt = now + int64(c.cfg.PreDrain)
		}
	case phasePreDrain:
		if now < c.phaseEndsAt {
			c.stats.FrozenCycles++
			return nil
		}
		if c.net.InflightCount() > 0 {
			// A transfer longer than PreDrain is still landing; extend
			// the freeze rather than corrupt the rotation.
			c.stats.FrozenCycles++
			return nil
		}
		if err := c.drainNow(); err != nil {
			return err
		}
		c.phase = phaseDraining
		c.stats.FrozenCycles++
	case phaseDraining:
		if now >= c.phaseEndsAt {
			c.net.SetFrozen(false)
			c.phase = phaseRunning
			c.nextDrainAt = now + c.cfg.Epoch
			return nil
		}
		c.stats.FrozenCycles++
	}
	return nil
}

// NextWorkCycle returns the next cycle at which Tick could do anything
// observable: the scheduled drain while running, or the very next cycle
// during a freeze (frozen phases account FrozenCycles every tick, so no
// frozen cycle may be skipped). Drivers use it to bound idle
// fast-forward windows (see noc.Network.NextWorkCycle).
func (c *Controller) NextWorkCycle() int64 {
	if c.phase == phaseRunning {
		return c.nextDrainAt
	}
	return c.net.Cycle() + 1
}

// drainNow performs the rotation(s) for this drain window and sets the
// window's end time.
func (c *Controller) drainNow() error {
	c.drainCount++
	c.stats.Drains++
	c.net.Counters.Drains++
	hops := c.cfg.DrainHops
	full := c.drainCount%int64(c.cfg.FullDrainEvery) == 0
	if full {
		c.stats.FullDrains++
		c.net.Counters.FullDrains++
		hops = c.path.Len()
	}
	moved := 0
	for h := 0; h < hops; h++ {
		rep, err := c.net.DrainRotate(c.next)
		if err != nil {
			return fmt.Errorf("core: drain window failed: %w", err)
		}
		c.stats.PacketsMoved += int64(rep.Moved)
		c.stats.Ejections += int64(rep.Ejected)
		moved = rep.Moved
		if moved == 0 {
			break // escape VCs empty; no need to keep rotating
		}
	}
	// Charge serialization time for the forced hops actually performed.
	c.phaseEndsAt = c.net.Cycle() + int64(c.cfg.DrainWindow)
	if full {
		c.phaseEndsAt = c.net.Cycle() + int64(c.cfg.DrainWindow*c.path.Len())
	} else if c.cfg.DrainHops > 1 {
		c.phaseEndsAt = c.net.Cycle() + int64(c.cfg.DrainWindow*c.cfg.DrainHops)
	}
	return nil
}

// MinSafeEpoch returns a lower bound for the epoch so misrouted packets
// can reach their destinations between drains (paper §III-D3: no less
// than the expected worst-case packet latency, proportional to the
// network diameter).
func MinSafeEpoch(net *noc.Network) int64 {
	d := int64(net.Graph().Diameter())
	perHop := int64(net.Config().MaxFlits + net.Config().RouterLatency)
	return 2 * d * perHop
}
