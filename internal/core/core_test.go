package core

import (
	"testing"

	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/topology"
)

// drainNet builds a DRAIN-configured network: 1 VN, escape policy with an
// unrestricted escape VC, fully adaptive routing.
func drainNet(t *testing.T, g *topology.Graph, vcs int, seed uint64) *noc.Network {
	t.Helper()
	n, err := noc.New(noc.Config{
		Graph:         g,
		VNets:         1,
		VCsPerVN:      vcs,
		Classes:       1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.AdaptiveMinimal,
		DerouteAfter:  -1, // strict minimal: drains alone must resolve deadlocks
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestControllerDefaults(t *testing.T) {
	n := drainNet(t, topology.MustMesh(3, 3).Graph, 2, 1)
	c, err := New(n, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.Config()
	if cfg.Epoch != 64*1024 {
		t.Errorf("epoch = %d, want 64K", cfg.Epoch)
	}
	if cfg.PreDrain != n.Config().MaxFlits {
		t.Errorf("predrain = %d, want %d", cfg.PreDrain, n.Config().MaxFlits)
	}
	if cfg.DrainHops != 1 || cfg.FullDrainEvery != 1024 {
		t.Error("unexpected defaults")
	}
}

func TestBothPathAlgorithms(t *testing.T) {
	g := topology.MustMesh(3, 3).Graph
	for _, alg := range []PathAlgorithm{PathEulerian, PathSearch} {
		n := drainNet(t, g, 2, 2)
		c, err := New(n, Config{Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if c.Path().Len() != g.NumLinks() {
			t.Fatalf("alg %d: path misses links", alg)
		}
	}
	n := drainNet(t, g, 2, 2)
	if _, err := New(n, Config{Algorithm: PathAlgorithm(99)}); err == nil {
		t.Error("bad algorithm should fail")
	}
}

func TestEpochScheduling(t *testing.T) {
	n := drainNet(t, topology.MustMesh(3, 3).Graph, 2, 3)
	c, err := New(n, Config{Epoch: 100, PreDrain: 5, DrainWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	// 1000 cycles / (100 epoch + ~10 window) ≈ 9 drains.
	st := c.Stats()
	if st.Drains < 7 || st.Drains > 10 {
		t.Errorf("drains = %d, want ≈9", st.Drains)
	}
	if st.FrozenCycles == 0 {
		t.Error("no frozen cycles recorded")
	}
	if n.Frozen() && c.Draining() == false {
		t.Error("network left frozen outside a drain")
	}
}

func TestFullDrainScheduling(t *testing.T) {
	n := drainNet(t, topology.MustMesh(2, 2).Graph, 2, 4)
	c, err := New(n, Config{Epoch: 50, FullDrainEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Drains < 6 {
		t.Fatalf("too few drains: %d", st.Drains)
	}
	wantFull := st.Drains / 3
	if st.FullDrains < wantFull-1 || st.FullDrains > wantFull+1 {
		t.Errorf("full drains = %d, want ≈%d of %d", st.FullDrains, wantFull, st.Drains)
	}
}

// TestDrainResolvesSaturationDeadlock is the core end-to-end property:
// an unprotected adaptive network that deadlocks under saturation makes
// continuous forward progress once the DRAIN controller runs.
func TestDrainResolvesSaturationDeadlock(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	n := drainNet(t, g, 1, 5) // single VC: maximally deadlock-prone
	c, err := New(n, Config{Epoch: 200})
	if err != nil {
		t.Fatal(err)
	}
	dst := func(cyc, r int) int {
		d := (r*7 + cyc*13 + 5) % 16
		if d == r {
			d = (d + 1) % 16
		}
		return d
	}
	const horizon = 30000
	created, delivered := 0, 0
	lastDelivered, lastProgress := 0, 0
	for cyc := 0; cyc < horizon; cyc++ {
		for r := 0; r < 16; r++ {
			if n.CanInject(r, 0) && n.InjQueueLen(r, 0) < 4 {
				if n.Inject(n.NewPacket(r, dst(cyc, r), 0, 1)) {
					created++
				}
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 16; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
		if delivered > lastDelivered {
			lastDelivered, lastProgress = delivered, cyc
		}
		if cyc-lastProgress > 5000 {
			t.Fatalf("no delivery progress for 5000 cycles at cycle %d (delivered %d/%d)", cyc, delivered, created)
		}
	}
	if delivered < created/2 {
		t.Errorf("delivered only %d of %d packets", delivered, created)
	}
	if c.Stats().Drains == 0 {
		t.Error("controller never drained")
	}
}

// TestDrainResolvesDeadlockOnFaultyTopology exercises the paper's
// headline use case: irregular faulty topologies with fully adaptive
// routing.
func TestDrainResolvesDeadlockOnFaultyTopology(t *testing.T) {
	base := topology.MustMesh(4, 4).Graph
	g := base
	// Remove two specific edges to make the topology irregular.
	for _, e := range [][2]int{{5, 6}, {9, 13}} {
		var err error
		g, err = g.WithoutEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
	}
	n := drainNet(t, g, 1, 6)
	c, err := New(n, Config{Epoch: 300})
	if err != nil {
		t.Fatal(err)
	}
	created, delivered := 0, 0
	for cyc := 0; cyc < 20000; cyc++ {
		for r := 0; r < 16; r++ {
			d := (r*11 + cyc*3 + 7) % 16
			if d != r && n.InjQueueLen(r, 0) < 2 {
				if n.Inject(n.NewPacket(r, d, 0, 1)) {
					created++
				}
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 16; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
	}
	if delivered == 0 || delivered < created/2 {
		t.Errorf("delivered %d of %d on faulty topology", delivered, created)
	}
}

func TestMinSafeEpoch(t *testing.T) {
	n := drainNet(t, topology.MustMesh(8, 8).Graph, 2, 7)
	e := MinSafeEpoch(n)
	// Diameter 14, per-hop 6 → 168; twice that = 336.
	if e != 2*14*6 {
		t.Errorf("MinSafeEpoch = %d, want %d", e, 2*14*6)
	}
}

// TestDrainPreservesPackets: no packet is ever lost or duplicated across
// many drain windows under load.
func TestDrainPreservesPackets(t *testing.T) {
	g := topology.MustMesh(3, 3).Graph
	n := drainNet(t, g, 2, 8)
	c, err := New(n, Config{Epoch: 64}) // aggressive draining
	if err != nil {
		t.Fatal(err)
	}
	created, delivered := 0, 0
	seen := map[int64]bool{}
	for cyc := 0; cyc < 8000; cyc++ {
		if created < 500 {
			r := cyc % 9
			d := (cyc*5 + 3) % 9
			if d != r && n.Inject(n.NewPacket(r, d, 0, 5)) {
				created++
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 9; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				if seen[p.ID] {
					t.Fatalf("packet %d delivered twice", p.ID)
				}
				seen[p.ID] = true
				if p.Dst != r {
					t.Fatalf("packet %d misdelivered to %d (dst %d)", p.ID, r, p.Dst)
				}
				delivered++
			}
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cyc, err)
		}
	}
	if delivered != created {
		t.Errorf("delivered %d of %d with aggressive drains (in flight: %d)",
			delivered, created, n.InFlightPackets())
	}
}
