package core

import (
	"testing"

	"drain/internal/topology"
)

func TestDrainWindowChargesFreeze(t *testing.T) {
	n := drainNet(t, topology.MustMesh(3, 3).Graph, 2, 10)
	c, err := New(n, Config{Epoch: 50, PreDrain: 3, DrainWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Drive exactly through the first drain: the network must be frozen
	// for pre-drain + drain window and then released.
	frozenSpan := 0
	for i := 0; i < 200; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if n.Frozen() {
			frozenSpan++
		}
		if c.Stats().Drains == 1 && !n.Frozen() {
			break
		}
	}
	if c.Stats().Drains != 1 {
		t.Fatalf("drains = %d, want 1", c.Stats().Drains)
	}
	// PreDrain(3) + DrainWindow(4) ± scheduling boundaries.
	if frozenSpan < 6 || frozenSpan > 10 {
		t.Errorf("frozen for %d cycles, want ≈7", frozenSpan)
	}
	if n.Frozen() {
		t.Error("network left frozen after the window")
	}
}

func TestMultiHopDrainWindow(t *testing.T) {
	g := topology.MustMesh(3, 3).Graph
	n := drainNet(t, g, 2, 11)
	c, err := New(n, Config{Epoch: 100, DrainHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a packet in an escape buffer so the multi-hop drain has
	// something to move, and freeze the network so normal allocation
	// cannot deliver it before the window fires.
	p, err := n.PlacePacket(0, 1, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFrozen(true)
	for i := 0; i < 300 && c.Stats().Drains == 0; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Drains != 1 {
		t.Fatal("no drain happened")
	}
	// The packet moved up to 3 forced hops (fewer only if it ejected).
	if p.DrainHops == 0 && p.EjectedAt == 0 {
		t.Error("multi-hop drain moved nothing")
	}
	if st := c.Stats(); st.PacketsMoved == 0 && st.Ejections == 0 {
		t.Errorf("stats recorded no movement: %+v", st)
	}
}

func TestExtendedPreDrainWhenNotQuiesced(t *testing.T) {
	// A PreDrain shorter than the largest packet forces the controller
	// to extend the freeze instead of corrupting the rotation.
	g := topology.MustMesh(4, 1).Graph
	n := drainNet(t, g, 2, 12)
	c, err := New(n, Config{Epoch: 30, PreDrain: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Keep 5-flit packets flowing so a transfer is usually in flight
	// when the epoch expires.
	for i := 0; i < 2000; i++ {
		if i%3 == 0 {
			src := i % 4
			dst := (i + 2) % 4
			if src != dst && n.InjQueueLen(src, 0) < 2 {
				n.Inject(n.NewPacket(src, dst, 0, 5))
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err) // would be ErrNotQuiesced without the extension
		}
		for r := 0; r < 4; r++ {
			n.PopEjected(r, 0)
		}
	}
	if c.Stats().Drains == 0 {
		t.Error("no drains with a 30-cycle epoch")
	}
}

func TestPathSearchAlgorithmOnFaultyTopology(t *testing.T) {
	g, err := topology.MustMesh(4, 4).WithoutEdge(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	n := drainNet(t, g, 2, 13)
	c, err := New(n, Config{Algorithm: PathSearch})
	if err != nil {
		t.Fatal(err)
	}
	if c.Path().Len() != g.NumLinks() {
		t.Errorf("search path covers %d of %d links", c.Path().Len(), g.NumLinks())
	}
}

// TestNextWorkCycleTracksDrainSchedule pins the fast-forward hint the
// synthetic driver uses to bound idle windows: while running it is the
// scheduled drain, during a freeze it is the very next cycle (frozen
// ticks account stats every cycle, so none may be skipped), and it is
// never in the past.
func TestNextWorkCycleTracksDrainSchedule(t *testing.T) {
	n := drainNet(t, topology.MustMesh(3, 3).Graph, 2, 10)
	c, err := New(n, Config{Epoch: 50, PreDrain: 3, DrainWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NextWorkCycle(); got != 50 {
		t.Fatalf("fresh controller NextWorkCycle = %d, want first drain at 50", got)
	}
	sawFreeze := false
	for i := 0; i < 200; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		got := c.NextWorkCycle()
		if got <= n.Cycle() {
			t.Fatalf("cycle %d: NextWorkCycle = %d is not in the future", n.Cycle(), got)
		}
		if c.Draining() {
			sawFreeze = true
			if got != n.Cycle()+1 {
				t.Fatalf("cycle %d: frozen NextWorkCycle = %d, want %d", n.Cycle(), got, n.Cycle()+1)
			}
		}
		if c.Stats().Drains == 1 && !c.Draining() {
			// Back to running: the hint must be the next epoch boundary.
			if got != n.Cycle()+50 {
				t.Fatalf("post-drain NextWorkCycle = %d, want %d", got, n.Cycle()+50)
			}
			break
		}
	}
	if !sawFreeze {
		t.Fatal("drain window never opened")
	}
}
