package stats

import "testing"

// TestEmptySamplePinned pins the documented empty-sample contract: every
// summary of a Sample with no observations is exactly 0. A fully
// deadlocked simulation produces such samples, so these values flow
// straight into experiment tables.
func TestEmptySamplePinned(t *testing.T) {
	check := func(name string, s *Sample) {
		t.Helper()
		if got := s.Count(); got != 0 {
			t.Errorf("%s: Count = %d, want 0", name, got)
		}
		if got := s.Mean(); got != 0 {
			t.Errorf("%s: Mean = %v, want 0", name, got)
		}
		if got := s.Max(); got != 0 {
			t.Errorf("%s: Max = %d, want 0", name, got)
		}
		for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
			if got := s.Percentile(q); got != 0 {
				t.Errorf("%s: Percentile(%v) = %d, want 0", name, q, got)
			}
		}
		if got := s.P99(); got != 0 {
			t.Errorf("%s: P99 = %d, want 0", name, got)
		}
	}

	check("zero value", &Sample{})

	// Reset must restore the exact empty contract, including Max.
	var s Sample
	s.Add(42)
	s.Add(7)
	s.Reset()
	check("after Reset", &s)
}

// TestPercentileClampsQ pins the out-of-range-q behaviour on a
// non-empty sample: clamp to the nearest observation, never panic.
func TestPercentileClampsQ(t *testing.T) {
	var s Sample
	for _, v := range []int64{10, 20, 30} {
		s.Add(v)
	}
	if got := s.Percentile(-0.5); got != 10 {
		t.Errorf("Percentile(-0.5) = %d, want 10 (clamped to min)", got)
	}
	if got := s.Percentile(0); got != 10 {
		t.Errorf("Percentile(0) = %d, want 10 (clamped to min)", got)
	}
	if got := s.Percentile(5); got != 30 {
		t.Errorf("Percentile(5) = %d, want 30 (clamped to max)", got)
	}
}

// TestEmptyCurvePinned pins the empty-curve contract: all summaries 0.
func TestEmptyCurvePinned(t *testing.T) {
	var c Curve
	if got := c.Saturation(); got != 0 {
		t.Errorf("Saturation = %v, want 0", got)
	}
	if got := c.LowLoadLatency(); got != 0 {
		t.Errorf("LowLoadLatency = %v, want 0", got)
	}
	if got := c.SaturationOffered(6); got != 0 {
		t.Errorf("SaturationOffered = %v, want 0", got)
	}
}

// A single-point curve is its own low-load point, saturation plateau,
// and (trivially) saturation offered load.
func TestSinglePointCurve(t *testing.T) {
	c := Curve{{Offered: 0.05, Accepted: 0.048, AvgLat: 21, P99Lat: 40}}
	if got := c.Saturation(); got != 0.048 {
		t.Errorf("Saturation = %v, want 0.048", got)
	}
	if got := c.LowLoadLatency(); got != 21 {
		t.Errorf("LowLoadLatency = %v, want 21", got)
	}
	if got := c.SaturationOffered(6); got != 0.05 {
		t.Errorf("SaturationOffered = %v, want 0.05", got)
	}
}
