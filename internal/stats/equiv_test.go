package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	// Textbook values of Phi^-1.
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.999, 3.090232},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("NormalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestChiSquareCritical(t *testing.T) {
	// Against standard chi-square tables; Wilson–Hilferty is good to
	// well under 1% in this range.
	cases := []struct {
		df    int
		alpha float64
		want  float64
	}{
		{10, 0.05, 18.307},
		{10, 0.001, 29.588},
		{63, 0.001, 103.442},
		{100, 0.05, 124.342},
	}
	for _, c := range cases {
		got := ChiSquareCritical(c.df, c.alpha)
		if math.Abs(got-c.want)/c.want > 0.01 {
			t.Errorf("ChiSquareCritical(%d, %g) = %g, want ~%g", c.df, c.alpha, got, c.want)
		}
	}
}

func TestChiSquare(t *testing.T) {
	obs := []float64{10, 20, 30}
	exp := []float64{15, 15, 30}
	want := 25.0/15 + 25.0/15 // (10-15)^2/15 + (20-15)^2/15 + 0
	if got := ChiSquare(obs, exp); math.Abs(got-want) > 1e-12 {
		t.Errorf("ChiSquare = %g, want %g", got, want)
	}
	// Zero-expectation cells are skipped, not NaN.
	if got := ChiSquare([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("ChiSquare with exp=0 cell = %g, want 0", got)
	}
}

func TestTwoProportionZ(t *testing.T) {
	// Identical proportions: z = 0.
	if z := TwoProportionZ(50, 1000, 100, 2000); z != 0 {
		t.Errorf("equal proportions: z = %g, want 0", z)
	}
	// Clearly different proportions produce a decisive statistic.
	if z := TwoProportionZ(100, 1000, 200, 1000); math.Abs(z) < 5 {
		t.Errorf("10%% vs 20%%: |z| = %g, want > 5", math.Abs(z))
	}
	// Symmetry.
	if z1, z2 := TwoProportionZ(10, 100, 20, 100), TwoProportionZ(20, 100, 10, 100); z1 != -z2 {
		t.Errorf("z not antisymmetric: %g vs %g", z1, z2)
	}
}

func TestKSStatisticExact(t *testing.T) {
	// Disjoint supports: D = 1.
	if d := KSStatistic([]float64{1, 2, 3}, []float64{10, 11}); d != 1 {
		t.Errorf("disjoint: D = %g, want 1", d)
	}
	// Identical samples: D = 0.
	if d := KSStatistic([]float64{1, 2, 2, 3}, []float64{1, 2, 2, 3}); d != 0 {
		t.Errorf("identical: D = %g, want 0", d)
	}
	// Hand-computed: a={1,2}, b={2,3}. After value 1: |1/2-0|=1/2;
	// after 2: |1-1/2|=1/2; max is 1/2.
	if d := KSStatistic([]float64{1, 2}, []float64{2, 3}); d != 0.5 {
		t.Errorf("D = %g, want 0.5", d)
	}
}

// TestKSSameDistribution: two independent samples from one distribution
// stay under the alpha=0.001 threshold (deterministic seed, so this is
// a fixed computation, not a flaky draw).
func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	a := make([]float64, 4000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = rng.ExpFloat64()
	}
	for i := range b {
		b[i] = rng.ExpFloat64()
	}
	d := KSStatistic(a, b)
	crit := KSCritical(len(a), len(b), 0.001)
	if d >= crit {
		t.Errorf("same-distribution KS D = %g >= critical %g", d, crit)
	}
	// And a genuinely shifted distribution is caught.
	for i := range b {
		b[i] += 0.5
	}
	if d := KSStatistic(a, b); d < crit {
		t.Errorf("shifted-distribution KS D = %g < critical %g (should reject)", d, crit)
	}
}

// TestChiSquareUniformDraws: binned PCG uniforms pass at alpha=0.001
// against the flat expectation (deterministic seed).
func TestChiSquareUniformDraws(t *testing.T) {
	const bins, n = 32, 64_000
	rng := rand.New(rand.NewPCG(7, 9))
	obs := make([]float64, bins)
	for i := 0; i < n; i++ {
		obs[rng.IntN(bins)]++
	}
	exp := make([]float64, bins)
	for i := range exp {
		exp[i] = float64(n) / bins
	}
	x2 := ChiSquare(obs, exp)
	crit := ChiSquareCritical(bins-1, 0.001)
	if x2 >= crit {
		t.Errorf("uniform chi-square %g >= critical %g", x2, crit)
	}
}
