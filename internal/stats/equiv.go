package stats

import (
	"math"
	"sort"
)

// This file provides the hypothesis tests behind the RNG-mode
// equivalence suite: the counter-based generator (traffic.RNGCounter)
// promises the same injection *statistics* as exact mode, not the same
// draws, so its validation is statistical — chi-square on per-node
// injection counts, a two-proportion z-test on totals, and a
// Kolmogorov–Smirnov test on latency samples. All tests here are pure
// functions of their inputs; with the deterministic seeds the suite
// uses, a pass is a pass on every machine.

// ChiSquare returns Pearson's statistic sum((obs-exp)^2/exp) over the
// cells with positive expectation. Cells with exp <= 0 are skipped (an
// impossible cell that was in fact observed would otherwise divide by
// zero; callers choose binnings where that cannot happen).
func ChiSquare(obs, exp []float64) float64 {
	s := 0.0
	for i := range obs {
		if i >= len(exp) || exp[i] <= 0 {
			continue
		}
		d := obs[i] - exp[i]
		s += d * d / exp[i]
	}
	return s
}

// ChiSquareCritical returns the upper critical value of the chi-square
// distribution with df degrees of freedom at significance alpha (e.g.
// 0.001): the value exceeded with probability alpha under the null.
// It uses the Wilson–Hilferty cube approximation — chi2/df is
// approximately Normal(1-2/(9df), 2/(9df)) cubed — which is accurate
// to a fraction of a percent for df >= 3, plenty for test thresholds.
func ChiSquareCritical(df int, alpha float64) float64 {
	if df <= 0 {
		return 0
	}
	z := NormalQuantile(1 - alpha)
	d := float64(df)
	t := 1 - 2/(9*d) + z*math.Sqrt(2/(9*d))
	return d * t * t * t
}

// NormalQuantile returns the standard normal quantile Phi^-1(p) for
// p in (0,1), via the exact identity with the inverse error function.
func NormalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// TwoProportionZ returns the pooled two-proportion z statistic for
// observing k1 successes in n1 trials vs k2 in n2: the standard test
// that two Bernoulli processes share a rate. |z| above the
// NormalQuantile(1-alpha/2) threshold rejects equality at level alpha.
func TwoProportionZ(k1, n1, k2, n2 int64) float64 {
	if n1 <= 0 || n2 <= 0 {
		return 0
	}
	p1 := float64(k1) / float64(n1)
	p2 := float64(k2) / float64(n2)
	pool := float64(k1+k2) / float64(n1+n2)
	se := math.Sqrt(pool * (1 - pool) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return 0
	}
	return (p1 - p2) / se
}

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of a and b.
// The inputs need not be sorted (they are copied and sorted here); ties
// within and across samples are handled by advancing both CDFs past the
// tied value before measuring the gap. Returns 0 if either is empty.
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := float64(len(as)), float64(len(bs))
	var i, j int
	d := 0.0
	for i < len(as) && j < len(bs) {
		v := math.Min(as[i], bs[j])
		for i < len(as) && as[i] == v {
			i++
		}
		for j < len(bs) && bs[j] == v {
			j++
		}
		if g := math.Abs(float64(i)/na - float64(j)/nb); g > d {
			d = g
		}
	}
	return d
}

// KSCritical returns the two-sample KS rejection threshold at
// significance alpha via the asymptotic Smirnov formula
// c(alpha)*sqrt((n1+n2)/(n1*n2)), c(alpha) = sqrt(-ln(alpha/2)/2).
// Statistics above it reject "same distribution" at level alpha.
func KSCritical(n1, n2 int, alpha float64) float64 {
	if n1 <= 0 || n2 <= 0 {
		return 0
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n1+n2)/(float64(n1)*float64(n2)))
}
