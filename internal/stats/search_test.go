package stats

import (
	"math"
	"testing"
)

func TestSearchSaturationConverges(t *testing.T) {
	// Synthetic network model: accepts all traffic up to 0.23, plateaus
	// beyond.
	model := func(rate float64) (float64, error) {
		return math.Min(rate, 0.23), nil
	}
	got, err := SearchSaturation(0.01, 0.5, 0.95, 0.005, model)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance criterion min(rate,0.23) ≥ 0.95·rate holds up to
	// 0.23/0.95 ≈ 0.242.
	if got < 0.23 || got > 0.25 {
		t.Errorf("saturation = %.4f, want ≈0.242", got)
	}
}

func TestSearchSaturationValidation(t *testing.T) {
	ok := func(float64) (float64, error) { return 0, nil }
	cases := [][4]float64{
		{0, 0.5, 0.9, 0.01},   // lo ≤ 0
		{0.5, 0.1, 0.9, 0.01}, // hi ≤ lo
		{0.1, 0.5, 0, 0.01},   // accept ≤ 0
		{0.1, 0.5, 1.5, 0.01}, // accept > 1
		{0.1, 0.5, 0.9, 0},    // tol ≤ 0
	}
	for i, c := range cases {
		if _, err := SearchSaturation(c[0], c[1], c[2], c[3], ok); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSearchSaturationPropagatesErrors(t *testing.T) {
	bad := func(float64) (float64, error) { return 0, errInvalidSearch }
	if _, err := SearchSaturation(0.1, 0.5, 0.9, 0.01, bad); err == nil {
		t.Error("measurement error swallowed")
	}
}
