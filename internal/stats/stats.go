// Package stats provides the measurement primitives the evaluation
// harness uses: latency samples with exact percentiles, throughput
// windows, and load-sweep summaries.
//
// Empty inputs are defined, not errors: every summary of an empty
// Sample or Curve returns 0 (never NaN, never a panic). A fully
// deadlocked run ejects zero packets, so "no observations" is a real
// state the tables must render; 0 is the pinned encoding of it.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates scalar observations (latencies, hop counts).
type Sample struct {
	vals   []int64
	sorted bool
	sum    int64
	max    int64
}

// Add records one observation.
func (s *Sample) Add(v int64) {
	s.vals = append(s.vals, v)
	s.sorted = false
	s.sum += v
	if v > s.max {
		s.max = v
	}
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	return float64(s.sum) / float64(len(s.vals))
}

// Max returns the largest observation (0 with no observations).
func (s *Sample) Max() int64 { return s.max }

// Percentile returns the q-quantile (0 < q ≤ 1) using the
// nearest-rank method; 0 with no observations. A q outside (0, 1]
// clamps to the nearest observation rather than panicking.
func (s *Sample) Percentile(q float64) int64 {
	if len(s.vals) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.vals, func(i, j int) bool { return s.vals[i] < s.vals[j] })
		s.sorted = true
	}
	rank := int(math.Ceil(q*float64(len(s.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.vals) {
		rank = len(s.vals) - 1
	}
	return s.vals[rank]
}

// P99 is shorthand for the 99th percentile (paper Fig. 15).
func (s *Sample) P99() int64 { return s.Percentile(0.99) }

// Reset discards all observations.
func (s *Sample) Reset() { s.vals = s.vals[:0]; s.sorted = false; s.sum = 0; s.max = 0 }

// LoadPoint is one measurement on a latency/throughput curve.
type LoadPoint struct {
	Offered  float64 // offered load, packets/node/cycle
	Accepted float64 // accepted throughput, packets received/node/cycle
	AvgLat   float64 // mean packet network latency, cycles
	P99Lat   int64   // tail latency, cycles
}

// String formats a point for experiment tables.
func (p LoadPoint) String() string {
	return fmt.Sprintf("offered=%.3f accepted=%.3f lat=%.1f p99=%d", p.Offered, p.Accepted, p.AvgLat, p.P99Lat)
}

// Curve is a sweep of load points at increasing offered load.
type Curve []LoadPoint

// Saturation returns the accepted throughput at the highest offered load
// (the post-saturation plateau, the paper's "saturation throughput" in
// packets received/node/cycle); 0 for an empty curve.
func (c Curve) Saturation() float64 {
	best := 0.0
	for _, p := range c {
		if p.Accepted > best {
			best = p.Accepted
		}
	}
	return best
}

// LowLoadLatency returns the average latency of the lowest offered load
// point (the paper's "low-load latency"); 0 for an empty curve.
func (c Curve) LowLoadLatency() float64 {
	if len(c) == 0 {
		return 0
	}
	return c[0].AvgLat
}

// SearchSaturation binary-searches for the saturation offered load: the
// highest rate at which measure(rate) still accepts ≥ accept×rate. The
// callback runs a fresh simulation per probe; tol bounds the search
// interval. This is the textbook saturation-point method for
// latency/throughput studies (an alternative to the over-saturation
// plateau that Curve.Saturation reports).
func SearchSaturation(lo, hi, accept, tol float64, measure func(rate float64) (accepted float64, err error)) (float64, error) {
	if lo <= 0 || hi <= lo || accept <= 0 || accept > 1 || tol <= 0 {
		return 0, errInvalidSearch
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		acc, err := measure(mid)
		if err != nil {
			return 0, err
		}
		if acc >= accept*mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

var errInvalidSearch = fmt.Errorf("stats: invalid saturation search parameters")

// SaturationOffered estimates the offered load at which latency exceeds
// latFactor × the low-load latency (a conventional saturation-point
// definition); returns the highest swept load if never exceeded, and 0
// for an empty curve.
func (c Curve) SaturationOffered(latFactor float64) float64 {
	if len(c) == 0 {
		return 0
	}
	base := c[0].AvgLat
	for _, p := range c {
		if p.AvgLat > latFactor*base {
			return p.Offered
		}
	}
	return c[len(c)-1].Offered
}
