package stats

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Percentile(0.5) != 0 || s.Count() != 0 {
		t.Error("empty sample should report zeros")
	}
	for _, v := range []int64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.Count() != 5 {
		t.Errorf("count = %d", s.Count())
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
	if s.Max() != 5 {
		t.Errorf("max = %d, want 5", s.Max())
	}
	if got := s.Percentile(0.5); got != 3 {
		t.Errorf("median = %d, want 3", got)
	}
	if got := s.Percentile(1.0); got != 5 {
		t.Errorf("p100 = %d, want 5", got)
	}
	// Adding after a percentile query must still work (re-sort).
	s.Add(10)
	if got := s.Percentile(1.0); got != 10 {
		t.Errorf("p100 after add = %d, want 10", got)
	}
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("reset did not clear")
	}
}

func TestP99(t *testing.T) {
	var s Sample
	for i := int64(1); i <= 100; i++ {
		s.Add(i)
	}
	if got := s.P99(); got != 99 {
		t.Errorf("p99 = %d, want 99", got)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewPCG(seed, seed))
		var s Sample
		minV := int64(1 << 62)
		maxV := int64(-1 << 62)
		for i := 0; i < n; i++ {
			v := int64(rng.IntN(10000))
			s.Add(v)
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		p01 := s.Percentile(0.01)
		p50 := s.Percentile(0.5)
		p99 := s.Percentile(0.99)
		// Monotone, bounded by min/max.
		return p01 >= minV && p99 <= maxV && p01 <= p50 && p50 <= p99 && s.Max() == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCurveSummaries(t *testing.T) {
	c := Curve{
		{Offered: 0.02, Accepted: 0.02, AvgLat: 20},
		{Offered: 0.10, Accepted: 0.10, AvgLat: 24},
		{Offered: 0.20, Accepted: 0.19, AvgLat: 45},
		{Offered: 0.30, Accepted: 0.21, AvgLat: 300},
		{Offered: 0.40, Accepted: 0.215, AvgLat: 800},
	}
	if got := c.Saturation(); got != 0.215 {
		t.Errorf("saturation = %v", got)
	}
	if got := c.LowLoadLatency(); got != 20 {
		t.Errorf("low-load latency = %v", got)
	}
	if got := c.SaturationOffered(6); got != 0.30 {
		t.Errorf("saturation offered = %v, want 0.30", got)
	}
	if got := (Curve{}).Saturation(); got != 0 {
		t.Errorf("empty curve saturation = %v", got)
	}
	if got := (Curve{}).LowLoadLatency(); got != 0 {
		t.Errorf("empty curve low-load = %v", got)
	}
	if got := c.SaturationOffered(1000); got != 0.40 {
		t.Errorf("never-saturating sweep should return max offered, got %v", got)
	}
}
