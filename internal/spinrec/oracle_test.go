package spinrec

import (
	"testing"

	"drain/internal/noc"
	"drain/internal/topology"
)

func TestOracleDefaultPeriod(t *testing.T) {
	n := spinNet(t, topology.MustMesh(2, 2).Graph, 1, 1)
	o := NewOracle(n, 0, noc.LivenessOpts{})
	if o.period != 8 {
		t.Errorf("default period = %d, want 8", o.period)
	}
}

func TestOracleIdleIsFree(t *testing.T) {
	n := spinNet(t, topology.MustMesh(3, 3).Graph, 2, 2)
	o := NewOracle(n, 4, noc.LivenessOpts{})
	for i := 0; i < 200; i++ {
		n.Step()
		if err := o.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if o.Breaks != 0 {
		t.Errorf("oracle broke %d cycles in an empty network", o.Breaks)
	}
}

func TestSpinProbeDelayBeforeRotation(t *testing.T) {
	// After detection, the spin must wait the probe round-trip before
	// rotating (2 hops per cycle member at ProbeHopLatency).
	g, err := topology.NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	n := spinNet(t, g, 1, 3)
	// Plant the canonical ring deadlock directly.
	for r := 0; r < 6; r++ {
		if _, err := n.PlacePacket(r, (r+1)%6, (r+3)%6, 0); err != nil {
			t.Fatal(err)
		}
	}
	c := New(n, Config{Timeout: 50, ProbeHopLatency: 2})
	detectedAt, spunAt := int64(-1), int64(-1)
	for i := 0; i < 1000 && spunAt < 0; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if detectedAt < 0 && st.Detections > 0 {
			detectedAt = n.Cycle()
		}
		if st.Spins > 0 {
			spunAt = n.Cycle()
		}
	}
	if detectedAt < 0 || spunAt < 0 {
		t.Fatalf("detected=%d spun=%d", detectedAt, spunAt)
	}
	// 6-member cycle × 2 walks × 2 cycles/hop = 24 cycles of delay.
	if spunAt-detectedAt < 20 {
		t.Errorf("spin fired %d cycles after detection; probe delay not charged", spunAt-detectedAt)
	}
}

func TestSpinSkipsCheckWhenProgressing(t *testing.T) {
	// Ejections between checks suppress the (expensive) liveness sweep.
	m := topology.MustMesh(3, 3)
	n := spinNet(t, m.Graph, 2, 4)
	c := New(n, Config{Timeout: 32})
	for i := 0; i < 1000; i++ {
		if i%4 == 0 {
			src, dst := i%9, (i+4)%9
			if src != dst && n.InjQueueLen(src, 0) < 2 {
				n.Inject(n.NewPacket(src, dst, 0, 1))
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 9; r++ {
			n.PopEjected(r, 0)
		}
	}
	st := c.Stats()
	if st.Checks > 5 {
		t.Errorf("%d liveness sweeps despite continuous progress", st.Checks)
	}
	if st.Spins != 0 {
		t.Errorf("%d spurious spins", st.Spins)
	}
}

// TestOracleNextWorkCycle pins the oracle's fast-forward hint to its
// periodic check boundary.
func TestOracleNextWorkCycle(t *testing.T) {
	n := spinNet(t, topology.MustMesh(2, 2).Graph, 1, 3)
	o := NewOracle(n, 32, noc.LivenessOpts{})
	if got := o.NextWorkCycle(); got != 32 {
		t.Fatalf("fresh oracle NextWorkCycle = %d, want 32", got)
	}
	for n.Cycle() < 40 {
		n.Step()
		if err := o.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := o.NextWorkCycle(); got != 64 {
		t.Fatalf("after first sweep NextWorkCycle = %d, want 64", got)
	}
}
