// Package spinrec models SPIN (Parasar et al.), the reactive
// deadlock-recovery baseline the DRAIN paper compares against: deadlocks
// are detected at run time after a timeout, probes traverse and confirm
// the blocked cycle, and the routers involved then perform a coordinated
// one-hop "spin" of the cycle's packets.
//
// The hardware probe walk is modelled by the wait-for analysis in
// internal/noc (the probes' observable result is exactly "which cycle of
// buffers is blocked"), and its latency is charged explicitly: detection
// is only attempted every Timeout cycles, and a confirmed cycle spins
// only after a delay proportional to the cycle length (probe propagation
// plus the synchronization message, as in the SPIN paper). The modelled
// +15% control area/power overhead is charged in internal/power.
package spinrec

import (
	"drain/internal/noc"
)

// Config parameterizes the SPIN controller.
type Config struct {
	// Timeout is the stall time before a router suspects deadlock and
	// launches a probe (SPIN paper / DRAIN §V-B: 1024 cycles).
	Timeout int64
	// ProbeHopLatency is the per-hop latency of probe and move messages.
	ProbeHopLatency int64
	// EjectLiveByClass is passed to the liveness analysis: classes whose
	// ejection queues always drain eventually (protocol sinks). nil means
	// all classes sink.
	EjectLiveByClass []bool
}

func (c *Config) setDefaults() {
	if c.Timeout <= 0 {
		c.Timeout = 1024
	}
	if c.ProbeHopLatency <= 0 {
		c.ProbeHopLatency = 1
	}
}

// Stats reports SPIN activity.
type Stats struct {
	Detections int64 // confirmed deadlocks
	Spins      int64 // forced cycle rotations
	Probes     int64 // probe messages sent (modelled)
	Checks     int64 // detection sweeps performed
}

// Controller drives SPIN recovery over a network. Call Tick once per
// cycle after Network.Step.
type Controller struct {
	cfg Config
	net *noc.Network

	nextCheckAt int64
	// pending spin: the cycle confirmed by probes, executing after the
	// coordination delay.
	pending     []noc.VCRef
	pendingAt   int64
	lastEjected int64

	stats Stats
}

// New returns a SPIN controller for the network.
func New(net *noc.Network, cfg Config) *Controller {
	cfg.setDefaults()
	return &Controller{
		cfg:         cfg,
		net:         net,
		nextCheckAt: net.Cycle() + cfg.Timeout,
	}
}

// Stats returns a snapshot of controller activity.
func (c *Controller) Stats() Stats { return c.stats }

// Tick advances the detector/recovery state machine by one cycle.
func (c *Controller) Tick() error {
	now := c.net.Cycle()
	if c.pending != nil {
		if now < c.pendingAt {
			return nil
		}
		// Coordinated spin: re-extract the blocked cycle (packets may
		// have moved since the probe) and rotate it.
		refs := c.net.FindBlockedCycle(c.opts())
		if refs != nil {
			if err := c.net.RotateBlockedCycle(refs); err != nil {
				return err
			}
			c.stats.Spins++
		}
		c.pending = nil
		// Re-arm detection quickly: bursts of deadlocks need back-to-
		// back recoveries (DRAIN §III-D2 "burst of deadlocks").
		c.nextCheckAt = now + c.cfg.Timeout/4
		return nil
	}
	if now < c.nextCheckAt {
		return nil
	}
	c.nextCheckAt = now + c.cfg.Timeout
	// If packets ejected since the last check, the network is making
	// progress; timeout counters would have been reset. Cheap filter
	// before the full sweep.
	if ej := c.net.Counters.Ejected; ej != c.lastEjected {
		c.lastEjected = ej
		return nil
	}
	c.stats.Checks++
	refs := c.net.FindBlockedCycle(c.opts())
	if refs == nil {
		return nil
	}
	c.stats.Detections++
	// Probe walks the cycle, then a synchronization token walks it again.
	c.stats.Probes += int64(2 * len(refs))
	c.net.Counters.Probes += int64(2 * len(refs))
	c.pending = refs
	c.pendingAt = now + c.cfg.ProbeHopLatency*int64(2*len(refs))
	return nil
}

// NextWorkCycle returns the next cycle at which Tick could do anything
// observable: the scheduled spin while one is pending, otherwise the
// next detection sweep. Drivers use it to bound idle fast-forward
// windows (see noc.Network.NextWorkCycle).
func (c *Controller) NextWorkCycle() int64 {
	if c.pending != nil {
		return c.pendingAt
	}
	return c.nextCheckAt
}

func (c *Controller) opts() noc.LivenessOpts {
	return noc.LivenessOpts{EjectLiveByClass: c.cfg.EjectLiveByClass}
}

// Oracle is an idealized recovery scheme used for the paper's "ideal
// deadlock-free fully adaptive" baseline (Fig. 5): it detects and breaks
// deadlocks instantly and at zero modelled cost. It bounds what any
// recovery scheme could achieve.
type Oracle struct {
	net    *noc.Network
	period int64
	nextAt int64
	opts   noc.LivenessOpts
	Breaks int64
}

// NewOracle returns an oracle checking every period cycles.
func NewOracle(net *noc.Network, period int64, opts noc.LivenessOpts) *Oracle {
	if period <= 0 {
		period = 8
	}
	return &Oracle{net: net, period: period, nextAt: net.Cycle() + period, opts: opts}
}

// NextWorkCycle returns the oracle's next check boundary (see
// Controller.NextWorkCycle).
func (o *Oracle) NextWorkCycle() int64 { return o.nextAt }

// Tick breaks every blocked cycle present at the check boundary.
func (o *Oracle) Tick() error {
	if o.net.Cycle() < o.nextAt {
		return nil
	}
	o.nextAt = o.net.Cycle() + o.period
	for i := 0; i < 64; i++ { // bound work per check
		refs := o.net.FindBlockedCycle(o.opts)
		if refs == nil {
			return nil
		}
		if err := o.net.RotateBlockedCycle(refs); err != nil {
			return err
		}
		o.Breaks++
	}
	return nil
}
