package spinrec

import (
	"testing"

	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/topology"
)

// spinNet builds SPIN's network configuration: plain VCs (no escape
// discipline), strictly minimal adaptive routing so deadlocks actually
// form for the recovery machinery to resolve.
func spinNet(t *testing.T, g *topology.Graph, vcs int, seed uint64) *noc.Network {
	t.Helper()
	n, err := noc.New(noc.Config{
		Graph:        g,
		VNets:        1,
		VCsPerVN:     vcs,
		Classes:      1,
		Routing:      routing.AdaptiveMinimal,
		DerouteAfter: -1,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDefaults(t *testing.T) {
	n := spinNet(t, topology.MustMesh(2, 2).Graph, 1, 1)
	c := New(n, Config{})
	if c.cfg.Timeout != 1024 {
		t.Errorf("timeout = %d, want 1024", c.cfg.Timeout)
	}
}

// TestSpinResolvesSaturationDeadlock mirrors the DRAIN controller test:
// SPIN must keep an unprotected adaptive network making progress.
func TestSpinResolvesSaturationDeadlock(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	n := spinNet(t, g, 1, 5)
	c := New(n, Config{Timeout: 256})
	dst := func(cyc, r int) int {
		d := (r*7 + cyc*13 + 5) % 16
		if d == r {
			d = (d + 1) % 16
		}
		return d
	}
	created, delivered := 0, 0
	lastDelivered, lastProgress := 0, 0
	for cyc := 0; cyc < 30000; cyc++ {
		for r := 0; r < 16; r++ {
			if n.InjQueueLen(r, 0) < 4 {
				if n.Inject(n.NewPacket(r, dst(cyc, r), 0, 1)) {
					created++
				}
			}
		}
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 16; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
		if delivered > lastDelivered {
			lastDelivered, lastProgress = delivered, cyc
		}
		if cyc-lastProgress > 6000 {
			t.Fatalf("no progress for 6000 cycles at %d (delivered %d/%d, spins %d)",
				cyc, delivered, created, c.Stats().Spins)
		}
	}
	if delivered < created/2 {
		t.Errorf("delivered %d of %d", delivered, created)
	}
	st := c.Stats()
	if st.Detections == 0 || st.Spins == 0 {
		t.Errorf("SPIN never detected/recovered: %+v", st)
	}
	if st.Probes == 0 || n.Counters.Probes == 0 {
		t.Error("probe cost never charged")
	}
}

func TestNoSpuriousSpinsWhenIdle(t *testing.T) {
	n := spinNet(t, topology.MustMesh(3, 3).Graph, 2, 2)
	c := New(n, Config{Timeout: 64})
	// Light, deadlock-free-in-practice traffic: one packet at a time.
	for round := 0; round < 20; round++ {
		p := n.NewPacket(0, 8, 0, 1)
		n.Inject(p)
		for i := 0; i < 200 && p.EjectedAt == 0; i++ {
			n.Step()
			if err := c.Tick(); err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 9; r++ {
				n.PopEjected(r, 0)
			}
		}
		if p.EjectedAt == 0 {
			t.Fatal("packet not delivered")
		}
	}
	if st := c.Stats(); st.Spins != 0 || st.Detections != 0 {
		t.Errorf("spurious recovery under light load: %+v", st)
	}
}

func TestDetectionLatencyRespectsTimeout(t *testing.T) {
	// A deadlock planted at cycle 0 must not spin before ~Timeout cycles.
	g, err := topology.NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	n := spinNet(t, g, 1, 3)
	// Plant the canonical ring deadlock via saturating injection from
	// every node toward node+3 (both directions minimal... use +2 with
	// clockwise-only minimal candidates).
	// Simpler: drive to deadlock with traffic, then measure.
	timeout := int64(512)
	c := New(n, Config{Timeout: timeout})
	deadlockAt := int64(-1)
	spinAt := int64(-1)
	for cyc := 0; cyc < 20000 && spinAt < 0; cyc++ {
		for r := 0; r < 6; r++ {
			d := (r + 2) % 6
			if n.InjQueueLen(r, 0) < 2 {
				n.Inject(n.NewPacket(r, d, 0, 1))
			}
		}
		n.Step()
		if deadlockAt < 0 && n.HasDeadlock(noc.LivenessOpts{}) {
			deadlockAt = n.Cycle()
		}
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if c.Stats().Spins > 0 {
			spinAt = n.Cycle()
		}
		for r := 0; r < 6; r++ {
			n.PopEjected(r, 0)
		}
	}
	if deadlockAt < 0 {
		t.Skip("traffic pattern did not deadlock on this seed")
	}
	if spinAt < 0 {
		t.Fatal("deadlock never recovered")
	}
	if spinAt-deadlockAt > 3*timeout {
		t.Errorf("recovery took %d cycles, want within ~%d", spinAt-deadlockAt, 3*timeout)
	}
}

func TestOracleBreaksDeadlocksInstantly(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	n := spinNet(t, g, 1, 7)
	o := NewOracle(n, 4, noc.LivenessOpts{})
	created, delivered := 0, 0
	for cyc := 0; cyc < 15000; cyc++ {
		for r := 0; r < 16; r++ {
			d := (r*5 + cyc*11 + 3) % 16
			if d != r && n.InjQueueLen(r, 0) < 3 {
				if n.Inject(n.NewPacket(r, d, 0, 1)) {
					created++
				}
			}
		}
		n.Step()
		if err := o.Tick(); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 16; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
	}
	if delivered < created*2/3 {
		t.Errorf("oracle: delivered %d of %d", delivered, created)
	}
	if o.Breaks == 0 {
		t.Error("oracle never needed to break a deadlock under saturation")
	}
}

// TestControllerNextWorkCycle pins the fast-forward hint: the next
// detection sweep while idle, the scheduled spin while one is pending.
func TestControllerNextWorkCycle(t *testing.T) {
	n := spinNet(t, topology.MustMesh(2, 2).Graph, 1, 1)
	c := New(n, Config{Timeout: 64})
	if got := c.NextWorkCycle(); got != 64 {
		t.Fatalf("fresh controller NextWorkCycle = %d, want 64", got)
	}
	for i := 0; i < 200; i++ {
		n.Step()
		if err := c.Tick(); err != nil {
			t.Fatal(err)
		}
		if got := c.NextWorkCycle(); got <= n.Cycle() {
			t.Fatalf("cycle %d: NextWorkCycle = %d is not in the future", n.Cycle(), got)
		}
	}
	// An idle network re-arms check boundaries without ever spinning.
	if got, want := c.NextWorkCycle(), c.nextCheckAt; got != want {
		t.Fatalf("idle NextWorkCycle = %d, want next sweep at %d", got, want)
	}
	// With a spin pending, the hint is the coordinated execution cycle.
	c.pending = []noc.VCRef{{}}
	c.pendingAt = n.Cycle() + 17
	if got := c.NextWorkCycle(); got != n.Cycle()+17 {
		t.Fatalf("pending NextWorkCycle = %d, want %d", got, n.Cycle()+17)
	}
}
