package dense

import (
	"math/rand"
	"testing"
)

// TestTableBasic exercises the zero-value table through put/get/delete.
func TestTableBasic(t *testing.T) {
	var tb Table[string]
	if _, ok := tb.Get(1); ok || tb.Len() != 0 {
		t.Fatal("zero table should be empty")
	}
	if tb.Delete(1) {
		t.Fatal("delete on empty table reported true")
	}
	tb.Put(1, "a")
	tb.Put(2, "b")
	tb.Put(1, "a2") // replace
	if v, ok := tb.Get(1); !ok || v != "a2" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if !tb.Delete(1) || tb.Delete(1) {
		t.Fatal("Delete(1) should succeed once")
	}
	if _, ok := tb.Get(1); ok {
		t.Fatal("deleted key still present")
	}
	if v, ok := tb.Get(2); !ok || v != "b" {
		t.Fatalf("Get(2) = %q, %v after unrelated delete", v, ok)
	}
}

// TestTableAgainstMap drives the table and a reference map through the
// same randomized operation sequence — including delete-heavy phases
// that stress backward-shift compaction — and checks they always agree.
func TestTableAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tb Table[int]
	ref := map[int64]int{}
	const keySpace = 200 // small: forces long probe chains and collisions
	for op := 0; op < 20000; op++ {
		k := rng.Int63n(keySpace)
		switch rng.Intn(3) {
		case 0: // put
			tb.Put(k, op)
			ref[k] = op
		case 1: // delete
			got, want := tb.Delete(k), false
			if _, ok := ref[k]; ok {
				want = true
				delete(ref, k)
			}
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
		case 2: // get
			gv, gok := tb.Get(k)
			wv, wok := ref[k]
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, gv, gok, wv, wok)
			}
		}
		if tb.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, map has %d", op, tb.Len(), len(ref))
		}
	}
	// Full-content check via Each.
	seen := map[int64]int{}
	tb.Each(func(k int64, v int) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Each visited key %d twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Each saw %d=%d, want %d", k, seen[k], v)
		}
	}
}

// TestTableEachDeterministic pins that two tables built by the same
// operation sequence iterate in the same order (the property coherence
// and wormhole rely on for byte-identical folds).
func TestTableEachDeterministic(t *testing.T) {
	build := func() *Table[int] {
		var tb Table[int]
		for i := 0; i < 500; i++ {
			tb.Put(int64(i*7919), i)
		}
		for i := 0; i < 500; i += 3 {
			tb.Delete(int64(i * 7919))
		}
		return &tb
	}
	a, b := build(), build()
	var orderA, orderB []int64
	a.Each(func(k int64, _ int) bool { orderA = append(orderA, k); return true })
	b.Each(func(k int64, _ int) bool { orderB = append(orderB, k); return true })
	if len(orderA) != len(orderB) {
		t.Fatalf("lengths differ: %d vs %d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("iteration order diverges at %d: %d vs %d", i, orderA[i], orderB[i])
		}
	}
	// Early stop is honored.
	n := 0
	a.Each(func(int64, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d entries, want 3", n)
	}
}

// TestTableEachOrderIsHistoryNotAge pins the backward-shift property:
// a table that grew and shrank back iterates identically to one that
// only ever held the surviving entries via the same probe layout — no
// tombstone residue changes the walk.
func TestTableEachOrderIsHistoryNotAge(t *testing.T) {
	var tb Table[int]
	for i := 0; i < 64; i++ {
		tb.Put(int64(i), i)
	}
	for i := 0; i < 64; i++ {
		tb.Delete(int64(i))
	}
	if tb.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tb.Len())
	}
	tb.Each(func(k int64, _ int) bool {
		t.Fatalf("Each visited %d in an empty table", k)
		return false
	})
	// Reinsert: probes must find clean slots (no tombstone walk).
	tb.Put(99, 1)
	if v, ok := tb.Get(99); !ok || v != 1 {
		t.Fatal("reinsert after full drain failed")
	}
}
