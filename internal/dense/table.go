// Package dense provides an open-addressed, int64-keyed hash table for
// the simulator's steady-state hot structures (coherence lines, MSHRs,
// directory entries, wormhole reassembly). It replaces built-in maps on
// those paths for two reasons:
//
//   - Cost: lookups are a multiply-shift hash plus a linear probe over
//     parallel slices — no mapaccess/aeshash calls, no per-bucket
//     pointer chasing, and Put reuses tombstone-free slots so steady
//     state allocates only on growth (amortized, and absent entirely
//     once the table reaches its working-set size).
//   - Determinism: iteration (Each) walks slots in ascending index
//     order, a pure function of the operation history — unlike map
//     range order, which Go randomizes per run. Callers that fold over
//     a Table need no collect-and-sort pass and no //drain:orderfree
//     commutativity argument.
//
// Deletion uses backward-shift compaction rather than tombstones, so a
// table's layout (and therefore Each's order) depends only on the
// sequence of Put/Delete calls, never on how long it has lived.
package dense

// minCap is the smallest non-empty table capacity (power of two).
const minCap = 16

// Table is an open-addressed hash table from int64 keys to V, using
// linear probing and backward-shift deletion. The zero value is an
// empty table ready for use.
type Table[V any] struct {
	keys []int64
	vals []V
	live []bool
	n    int
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection that
// spreads sequential keys (addresses, packet IDs) across the table.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of live entries.
func (t *Table[V]) Len() int { return t.n }

// Get returns the value stored under k.
func (t *Table[V]) Get(k int64) (V, bool) {
	if len(t.keys) == 0 {
		var zero V
		return zero, false
	}
	mask := uint64(len(t.keys) - 1)
	for i := mix64(uint64(k)) & mask; t.live[i]; i = (i + 1) & mask {
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
	var zero V
	return zero, false
}

// Put stores v under k, replacing any existing entry.
func (t *Table[V]) Put(k int64, v V) {
	if 4*(t.n+1) > 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := mix64(uint64(k)) & mask
	for t.live[i] {
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
	t.keys[i] = k
	t.vals[i] = v
	t.live[i] = true
	t.n++
}

// Delete removes the entry under k, reporting whether one existed. The
// probe chain is re-compacted in place (backward shift), so no
// tombstones accumulate and the layout stays a pure function of the
// operation history.
func (t *Table[V]) Delete(k int64) bool {
	if len(t.keys) == 0 {
		return false
	}
	mask := uint64(len(t.keys) - 1)
	i := mix64(uint64(k)) & mask
	for {
		if !t.live[i] {
			return false
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	// Shift later chain members back over the hole: an element at j may
	// fill slot i iff its home slot is cyclically outside (i, j] —
	// probing for it would still pass through i.
	j := i
	for {
		j = (j + 1) & mask
		if !t.live[j] {
			break
		}
		h := mix64(uint64(t.keys[j])) & mask
		if (j-h)&mask >= (j-i)&mask {
			t.keys[i] = t.keys[j]
			t.vals[i] = t.vals[j]
			i = j
		}
	}
	var zero V
	t.live[i] = false
	t.vals[i] = zero // drop the reference so the table pins nothing
	t.n--
	return true
}

// Each calls f for every entry in ascending slot order — deterministic
// given the table's operation history — stopping early if f returns
// false. The table must not be mutated during the walk.
func (t *Table[V]) Each(f func(k int64, v V) bool) {
	for i, ok := range t.live {
		if ok && !f(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// grow doubles the capacity (or allocates the first minCap slots) and
// reinserts live entries in ascending old-slot order, keeping the new
// layout deterministic. Growth is amortized: it fires only while the
// table is below its working-set size, then never again.
func (t *Table[V]) grow() {
	cap := 2 * len(t.keys)
	if cap < minCap {
		cap = minCap
	}
	keys, vals, live := t.keys, t.vals, t.live
	t.keys = make([]int64, cap)
	t.vals = make([]V, cap)
	t.live = make([]bool, cap)
	t.n = 0
	mask := uint64(cap - 1)
	for i, ok := range live {
		if !ok {
			continue
		}
		j := mix64(uint64(keys[i])) & mask
		for t.live[j] {
			j = (j + 1) & mask
		}
		t.keys[j] = keys[i]
		t.vals[j] = vals[i]
		t.live[j] = true
		t.n++
	}
}
