package noc

// EngineKind selects the cycle-core implementation behind Network.Step.
type EngineKind int

const (
	// EngineEvent is the event-driven core (the default): activity
	// bitmaps for allocation and injection, a timing wheel over future
	// events, and idle fast-forward support. Byte-identical to
	// EngineDense — same RNG draw sequence, same counters, same results.
	EngineEvent EngineKind = iota
	// EngineDense is the reference stepper: every cycle it rescans all
	// in-flight transfers, all routers with occupied input VCs, and all
	// injection queues. Kept behind the engine seam as the differential
	// oracle for the event core (see FuzzDenseVsEvent).
	EngineDense
	// EngineParallel is the sharded cycle core: routers are partitioned
	// into Config.Shards contiguous shards and each cycle's phases
	// (arrival, allocation planning, injection) run on a fixed worker
	// pool with per-phase barriers, while every randomized decision
	// commits serially in ascending router order. Byte-identical to the
	// other engines for every shard count — see DESIGN.md §"Sharded
	// parallel engine".
	EngineParallel
)

// String implements fmt.Stringer (benchmark sub-names use it).
func (k EngineKind) String() string {
	switch k {
	case EngineDense:
		return "dense"
	case EngineParallel:
		return "parallel"
	}
	return "event"
}

// engine is the build-internal seam between Network's state (buffers,
// queues, counters, RNG) and the per-cycle control flow that decides
// which of that state to visit. Both implementations drive the same
// shared mutation paths (allocateRouter, injectRouterQueues, land), so
// any divergence is confined to *which routers are visited when* — and
// the determinism argument (DESIGN.md §"Event-driven core") shows the
// event engine visits a superset of the routers that matter, in the
// same ascending order, which is why the two are byte-identical.
//
// The Network notifies its engine at every point that changes head
// eligibility or queue occupancy: placed (a packet entered an input
// VC), noteInject (an injection queue went non-empty), addFlight (a
// transfer started). Missing a notification would strand a packet in
// the event engine; CheckInvariants cross-checks the activity bitmaps
// and the wheel against a full state scan to catch exactly that.
type engine interface {
	// step runs one cycle after Network.Step has incremented the clock:
	// complete arrivals, then (unless frozen) allocation and injection.
	step(n *Network)
	// addFlight registers a started transfer landing at f.doneAt.
	addFlight(n *Network, f flight)
	// placed records that a packet now heads an input VC of router,
	// becoming eligible at readyAt (readyAt <= now means immediately).
	placed(n *Network, router int, readyAt int64)
	// noteInject records that router's injection queues went non-empty.
	noteInject(n *Network, router int)
	// inflightCount returns the number of transfers currently on links.
	inflightCount() int
	// eachFlight visits every pending transfer (diagnostics only).
	eachFlight(fn func(f *flight))
	// nextWorkCycle returns a lower bound on the next cycle at which
	// stepping the network could have any observable effect: the
	// earliest pending wheel event, or now+1 when any activity bit is
	// set. The dense engine always answers now+1 (it cannot prove
	// idleness), which makes drivers engine-agnostic.
	nextWorkCycle(n *Network) int64
	// skipIdle advances the clock k cycles in one jump. Callers must
	// have proven the window empty via nextWorkCycle; the dense engine
	// panics (its nextWorkCycle never admits a skippable window).
	skipIdle(n *Network, k int64)
	// removeFailedFlights drops every pending non-eject transfer whose
	// destination link is marked down, applying n.dropFlight to each and
	// returning the count. Drop effects commute (disjoint packets and
	// slots, order-independent counter sums), so engines may visit their
	// flight sets in any internal order. Called between Steps only.
	removeFailedFlights(n *Network, down []bool) int
	// check validates engine-internal invariants against a full scan of
	// the network state (tests only).
	check(n *Network) error
	// stop releases engine-owned resources (the parallel engine's worker
	// goroutines); idempotent, no-op for the other engines. A stopped
	// parallel engine keeps working through its inline serial path.
	stop()
}

// newEngine constructs the engine selected by cfg.Engine.
func newEngine(cfg *Config) engine {
	switch cfg.Engine {
	case EngineDense:
		return &denseEngine{}
	case EngineParallel:
		return newParallelEngine(cfg)
	}
	return newEventEngine(cfg)
}
