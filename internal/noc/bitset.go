package noc

import "math/bits"

// bitset is a fixed-size set of small integers (router IDs) with O(1)
// set/clear and ascending-order iteration via bits.TrailingZeros64 at
// the use sites (the iteration is inlined in the event engine's step so
// the hot path stays free of closure allocations). Ascending order is
// load-bearing: the event engine must visit routers in exactly the
// order the dense stepper's 0..N-1 scan does, or the shared RNG would
// be consumed in a different sequence.
//
// Above one word the set is two-level: sum is a summary word whose bit
// w is set iff words[w] != 0, so iteration (nextWord), emptiness (any)
// and population (count) skip empty 64-router blocks instead of
// scanning them. That is the per-router idle-skipping worklist: on a
// 64x64 mesh a mostly-idle engine touches only the summary word plus
// the few words that actually hold active routers. Small domains
// (len(words) == 1, e.g. an 8x8 mesh or one shard's slice of it) keep
// sum nil and fall back to the dense single-word scan — the structural
// "density threshold": a one-word domain is its own summary.
//
//drain:staged every parallel-phase bitset is a per-shard instance (parShard.alloc/inj) in which only bits of the shard's own [lo,hi) router range are ever set or cleared (shardsafe)
type bitset struct {
	words []uint64
	sum   []uint64 // summary: bit w set iff words[w] != 0; nil when len(words) < 2
}

// newBitset returns an empty set over the domain [0, n).
func newBitset(n int) bitset {
	nw := (n + 63) / 64
	b := bitset{words: make([]uint64, nw)}
	if nw > 1 {
		b.sum = make([]uint64, (nw+63)/64)
	}
	return b
}

// set adds i to the set.
func (b *bitset) set(i int) {
	w := i >> 6
	b.words[w] |= 1 << uint(i&63)
	if b.sum != nil {
		b.sum[w>>6] |= 1 << uint(w&63)
	}
}

// clear removes i from the set.
func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << uint(i&63)
	if b.sum != nil && b.words[w] == 0 {
		b.sum[w>>6] &^= 1 << uint(w&63)
	}
}

// clearWordBit removes element (w<<6 + bit), addressed by word index:
// the engines' scan loops already hold the word index, so they clear
// through this instead of recomputing it from the element.
func (b *bitset) clearWordBit(w, bit int) {
	b.words[w] &^= 1 << uint(bit)
	if b.sum != nil && b.words[w] == 0 {
		b.sum[w>>6] &^= 1 << uint(w&63)
	}
}

// get reports whether i is in the set.
func (b *bitset) get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// nextWord returns the index of the first non-empty word after w (pass
// -1 to start), or -1 when none remain. Callers may clear bits of the
// current or earlier words mid-iteration; they must not set bits.
func (b *bitset) nextWord(w int) int {
	if b.sum == nil {
		for w++; w < len(b.words); w++ {
			if b.words[w] != 0 {
				return w
			}
		}
		return -1
	}
	w++
	sw := w >> 6
	if sw >= len(b.sum) {
		return -1
	}
	// Mask off summary bits below the resume point, then walk.
	cur := b.sum[sw] &^ (1<<uint(w&63) - 1)
	for {
		if cur != 0 {
			return sw<<6 + bits.TrailingZeros64(cur)
		}
		sw++
		if sw >= len(b.sum) {
			return -1
		}
		cur = b.sum[sw]
	}
}

// any reports whether the set is non-empty.
func (b *bitset) any() bool {
	if b.sum != nil {
		for _, s := range b.sum {
			if s != 0 {
				return true
			}
		}
		return false
	}
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// count returns the number of elements in the set.
func (b *bitset) count() int {
	c := 0
	for w := b.nextWord(-1); w >= 0; w = b.nextWord(w) {
		c += bits.OnesCount64(b.words[w])
	}
	return c
}

// sumConsistent reports whether the summary level matches the words —
// the engines' check() validates it alongside their own invariants.
func (b *bitset) sumConsistent() bool {
	if b.sum == nil {
		return len(b.words) < 2
	}
	for w := range b.words {
		if (b.words[w] != 0) != (b.sum[w>>6]&(1<<uint(w&63)) != 0) {
			return false
		}
	}
	return true
}
