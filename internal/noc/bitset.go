package noc

import "math/bits"

// bitset is a fixed-size set of small integers (router IDs) with O(1)
// set/clear and ascending-order iteration via bits.TrailingZeros64 at
// the use sites (the iteration is inlined in the event engine's step so
// the hot path stays free of closure allocations). Ascending order is
// load-bearing: the event engine must visit routers in exactly the
// order the dense stepper's 0..N-1 scan does, or the shared RNG would
// be consumed in a different sequence.
//
//drain:staged every parallel-phase bitset is a per-shard instance (parShard.alloc/inj) in which only bits of the shard's own [lo,hi) router range are ever set or cleared (shardsafe)
type bitset struct {
	words []uint64
}

// newBitset returns an empty set over the domain [0, n).
func newBitset(n int) bitset {
	return bitset{words: make([]uint64, (n+63)/64)}
}

// set adds i to the set.
func (b *bitset) set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// clear removes i from the set.
func (b *bitset) clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// get reports whether i is in the set.
func (b *bitset) get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// any reports whether the set is non-empty.
func (b *bitset) any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// count returns the number of elements in the set.
func (b *bitset) count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
