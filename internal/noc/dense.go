package noc

// denseEngine is the reference cycle core: an exhaustive per-cycle scan
// of the in-flight slice, the occupied-router set and the injection
// queues. It performs no event bookkeeping, so it is trivially correct —
// which is exactly its job: FuzzDenseVsEvent and the sim-level
// differential tests hold the event engine to byte-identical behavior
// against this implementation.
type denseEngine struct {
	inflights []flight
}

// step advances one cycle: complete arrivals, then (unless frozen)
// switch/VC allocation and injection.
//
//drain:hotpath dense-core cycle entry, dispatched from Network.Step through the engine seam (dynamic calls are not followed)
func (d *denseEngine) step(n *Network) {
	d.completeFlights(n)
	if n.frozen {
		n.Counters.FrozenCyc++
		return
	}
	n.allocate()
	n.injectFromQueues()
}

// completeFlights lands transfers whose serialization finished.
func (d *denseEngine) completeFlights(n *Network) {
	out := d.inflights[:0]
	for _, f := range d.inflights {
		if f.doneAt > n.cycle {
			out = append(out, f)
			continue
		}
		n.land(f)
	}
	d.inflights = out
}

// addFlight registers a started transfer.
//
//drain:hotpath called from arbitration through the engine seam (dynamic calls are not followed)
func (d *denseEngine) addFlight(_ *Network, f flight) {
	d.inflights = append(d.inflights, f)
}

// placed is a no-op: the dense allocate() rescan discovers new heads by
// itself (via the occIn occupancy counts).
func (d *denseEngine) placed(_ *Network, _ int, _ int64) {}

// noteInject is a no-op: injectFromQueues rescans every router.
func (d *denseEngine) noteInject(_ *Network, _ int) {}

// inflightCount returns the number of transfers currently on links.
func (d *denseEngine) inflightCount() int { return len(d.inflights) }

// eachFlight visits every pending transfer.
func (d *denseEngine) eachFlight(fn func(f *flight)) {
	for i := range d.inflights {
		fn(&d.inflights[i])
	}
}

// removeFailedFlights filters the in-flight slice in place, dropping
// transfers bound for a failed link.
func (d *denseEngine) removeFailedFlights(n *Network, down []bool) int {
	dropped := 0
	out := d.inflights[:0]
	for _, f := range d.inflights {
		if !f.eject && down[f.toLink] {
			n.dropFlight(f)
			dropped++
			continue
		}
		out = append(out, f)
	}
	d.inflights = out
	return dropped
}

// nextWorkCycle cannot prove idleness without event bookkeeping, so the
// dense engine always reports possible work next cycle; drivers built
// on the hint (sim.RunSyntheticContext) then never skip, and stay
// engine-agnostic.
func (d *denseEngine) nextWorkCycle(n *Network) int64 { return n.cycle + 1 }

// skipIdle must never be reached: nextWorkCycle never admits a window.
func (d *denseEngine) skipIdle(_ *Network, _ int64) {
	panic("noc: dense engine cannot fast-forward (driver ignored nextWorkCycle)")
}

// check has nothing beyond the shared CheckInvariants scans.
func (d *denseEngine) check(_ *Network) error { return nil }

// stop is a no-op: the dense engine owns no resources.
func (d *denseEngine) stop() {}
