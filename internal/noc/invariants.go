package noc

import "fmt"

// CheckInvariants validates internal consistency; tests call it between
// steps. It returns the first violation found.
func (n *Network) CheckInvariants() error {
	seen := make(map[int64]string)
	note := func(p *Packet, where string) error {
		if p.pooled {
			return fmt.Errorf("noc: packet %d at %s is marked pooled (use after release)", p.ID, where)
		}
		if prev, dup := seen[p.ID]; dup {
			return fmt.Errorf("noc: packet %d in two places: %s and %s", p.ID, prev, where)
		}
		seen[p.ID] = where
		return nil
	}
	for l := 0; l < n.g.NumLinks(); l++ {
		router := n.g.Link(l).To
		for s := range n.linkVC[l] {
			p := n.linkVC[l][s].pkt
			if p == nil {
				continue
			}
			if err := note(p, fmt.Sprintf("linkVC[%d][%d]", l, s)); err != nil {
				return err
			}
			if p.atRouter != router || p.inLink != l || p.slot != s {
				return fmt.Errorf("noc: packet %d position fields (%d,%d,%d) disagree with linkVC[%d][%d] at router %d",
					p.ID, p.atRouter, p.inLink, p.slot, l, s, router)
			}
			if n.cfg.PolicyEscape && p.InEscape && !n.cfg.IsEscapeSlot(s) {
				return fmt.Errorf("noc: escape packet %d occupies non-escape slot %d", p.ID, s)
			}
			if p.VNet != s/n.cfg.VCsPerVN {
				return fmt.Errorf("noc: packet %d of VN %d occupies slot %d of VN %d", p.ID, p.VNet, s, s/n.cfg.VCsPerVN)
			}
		}
	}
	for r := 0; r < n.g.N(); r++ {
		for s := range n.localVC[r] {
			p := n.localVC[r][s].pkt
			if p == nil {
				continue
			}
			if err := note(p, fmt.Sprintf("localVC[%d][%d]", r, s)); err != nil {
				return err
			}
			if p.atRouter != r || p.inLink != LocalPort || p.slot != s {
				return fmt.Errorf("noc: packet %d local position fields inconsistent", p.ID)
			}
		}
	}
	var flightErr error
	n.eng.eachFlight(func(f *flight) {
		if flightErr != nil {
			return
		}
		if !f.pkt.sending {
			flightErr = fmt.Errorf("noc: in-flight packet %d not marked sending", f.pkt.ID)
			return
		}
		if !f.eject && !n.linkVC[f.toLink][f.toSlot].reserved {
			flightErr = fmt.Errorf("noc: in-flight packet %d target slot not reserved", f.pkt.ID)
		}
	})
	if flightErr != nil {
		return flightErr
	}
	// The incremental active-router occupancy counts must agree with a
	// full recount (allocate() relies on them to skip idle routers).
	for r := 0; r < n.g.N(); r++ {
		count := int32(0)
		for _, l := range n.inLinks[r] {
			for s := range n.linkVC[l] {
				if n.linkVC[l][s].pkt != nil {
					count++
				}
			}
		}
		for s := range n.localVC[r] {
			if n.localVC[r][s].pkt != nil {
				count++
			}
		}
		if n.occIn[r] != count {
			return fmt.Errorf("noc: router %d occupancy count %d, recount %d", r, n.occIn[r], count)
		}
	}
	// Per-port occupancy counts (request gathering skips empty ports).
	for l := 0; l < n.g.NumLinks(); l++ {
		count := int32(0)
		for s := range n.linkVC[l] {
			if n.linkVC[l][s].pkt != nil {
				count++
			}
		}
		if n.occLink[l] != count {
			return fmt.Errorf("noc: link %d port occupancy %d, recount %d", l, n.occLink[l], count)
		}
	}
	for r := 0; r < n.g.N(); r++ {
		count := int32(0)
		for s := range n.localVC[r] {
			if n.localVC[r][s].pkt != nil {
				count++
			}
		}
		if n.occLocal[r] != count {
			return fmt.Errorf("noc: router %d local port occupancy %d, recount %d", r, n.occLocal[r], count)
		}
	}
	// Failed links must be draining-only: no reservations (their flights
	// were dropped at reconfiguration) and no buffered non-sending
	// packets (evacuated or dropped); only a sending occupant departing
	// over a surviving link may remain until its flight lands.
	for l := range n.linkDown {
		if !n.linkDown[l] {
			continue
		}
		for s := range n.linkVC[l] {
			if n.linkVC[l][s].reserved {
				return fmt.Errorf("noc: failed link %d slot %d is reserved", l, s)
			}
			if p := n.linkVC[l][s].pkt; p != nil && !p.sending {
				return fmt.Errorf("noc: failed link %d slot %d holds stranded packet %d", l, s, p.ID)
			}
		}
	}
	// The incremental non-empty-injection-queue count must agree with a
	// full recount (injectFromQueues relies on it to skip empty cycles).
	// The same sweep notes every queued packet, so the pool check below
	// sees the complete live set.
	injCount := 0
	for r := 0; r < n.g.N(); r++ {
		for c := range n.injQ[r] {
			q := &n.injQ[r][c]
			if q.Len() > 0 {
				injCount++
			}
			for i := 0; i < q.n; i++ {
				if err := note(q.buf[(q.head+i)%len(q.buf)], fmt.Sprintf("injQ[%d][%d]", r, c)); err != nil {
					return err
				}
			}
		}
		for c := range n.ejQ[r] {
			q := &n.ejQ[r][c]
			for i := 0; i < q.n; i++ {
				if err := note(q.buf[(q.head+i)%len(q.buf)], fmt.Sprintf("ejQ[%d][%d]", r, c)); err != nil {
					return err
				}
			}
		}
	}
	if n.injPending != injCount {
		return fmt.Errorf("noc: injPending %d, recount %d", n.injPending, injCount)
	}
	// Pool safety: every free-list entry is marked pooled, appears only
	// once, and is not simultaneously live anywhere the sweeps above saw —
	// a packet may never be both free and in flight.
	freeSeen := make(map[*Packet]bool, len(n.freePkts))
	for i, p := range n.freePkts {
		if !p.pooled {
			return fmt.Errorf("noc: free-list entry %d (packet %d) not marked pooled", i, p.ID)
		}
		if freeSeen[p] {
			return fmt.Errorf("noc: packet %d appears twice in the free list (double release)", p.ID)
		}
		freeSeen[p] = true
		if where, live := seen[p.ID]; live {
			return fmt.Errorf("noc: packet %d is both free and live at %s", p.ID, where)
		}
	}
	// Engine-internal invariants (timing wheel, activity bitmaps).
	return n.eng.check(n)
}
