package noc

import "fmt"

// PlacePacket installs a fresh packet directly into the VC buffer that
// link from→to feeds, bypassing injection. It exists for tests, demos
// and the paper's Fig. 8 walk-through, which need exact packet
// placements to reconstruct published deadlock scenarios.
func (n *Network) PlacePacket(from, to, dst, slot int) (*Packet, error) {
	l, ok := n.g.LinkID(from, to)
	if !ok {
		return nil, fmt.Errorf("noc: no link %d->%d", from, to)
	}
	if slot < 0 || slot >= n.vcPerPort {
		return nil, fmt.Errorf("noc: slot %d out of range [0,%d)", slot, n.vcPerPort)
	}
	s := &n.linkVC[l][slot]
	if s.pkt != nil || s.reserved {
		return nil, fmt.Errorf("noc: slot %d of link %d->%d is occupied", slot, from, to)
	}
	p := n.NewPacket(from, dst, slot/n.cfg.VCsPerVN, 1)
	p.atRouter = to
	p.inLink = l
	p.slot = slot
	if n.cfg.PolicyEscape && n.cfg.IsEscapeSlot(slot) && !n.cfg.NonStickyEscape {
		p.InEscape = true
	}
	s.pkt = p
	n.occIn[to]++
	n.occLink[l]++
	n.eng.placed(n, to, p.readyAt)
	return p, nil
}
