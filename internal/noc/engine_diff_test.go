package noc

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"drain/internal/drainpath"
	"drain/internal/routing"
	"drain/internal/topology"
)

// flagShards pins the parallel network's shard count in the lockstep
// checks (the CI engine-matrix job sets it); zero keeps the per-seed
// rotation through {1, 2, 3, 8}.
var flagShards = flag.Int("drain.shards", 0, "restrict parallel-engine lockstep checks to this shard count (0 = derive from seed)")

// checkDenseVsEvent is the byte-identity net over the engine seam: a
// dense-engine, an event-engine, and a parallel-engine network built
// from the same config are driven with identical external actions
// (injections, freezes, drain rotations, idle fast-forwards) and must
// remain in lockstep — same cycle, same buffer contents, same ejection
// order, same counters, and the same RNG stream position at the end.
// Any divergence means an engine visited a router the dense stepper
// would not have (or vice versa) in a way that changed an arbitration
// draw. The parallel shard count and inline threshold derive from the
// same raw inputs (so the fuzz corpus keeps its meaning): shards cycle
// through {1,2,3,8} and half the runs force the phased barrier
// pipeline even at tiny sizes (ParallelInline < 0). Same contract as
// checkConservation: nil, errSkip, or a descriptive property violation.
func checkDenseVsEvent(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xd1ff))
	nNodes := int(nRaw%12) + 4
	g, err := topology.NewRandomConnected(nNodes, int(seed%7), rng)
	if err != nil {
		return errSkip
	}
	vnets := int(vnRaw%2) + 1
	vcs := int(vcRaw%3) + 1
	cfg := Config{
		Graph: g, VNets: vnets, VCsPerVN: vcs, Classes: vnets,
		Routing: routing.AdaptiveMinimal,
		Seed:    seed,
	}
	if escRaw%2 == 0 {
		cfg.PolicyEscape = true
		cfg.EscapeRouting = routing.AdaptiveMinimal
		cfg.NonStickyEscape = escRaw%4 == 0
	}
	cfgDense, cfgEvent, cfgPar := cfg, cfg, cfg
	cfgDense.Engine = EngineDense
	cfgEvent.Engine = EngineEvent
	cfgPar.Engine = EngineParallel
	cfgPar.Shards = []int{1, 2, 3, 8}[(seed>>3)%4]
	if *flagShards > 0 {
		cfgPar.Shards = *flagShards
	}
	if seed&1 == 0 {
		cfgPar.ParallelInline = -1 // force the phased pipeline
	}
	de, err := New(cfgDense)
	if err != nil {
		return errSkip
	}
	ev, err := New(cfgEvent)
	if err != nil {
		return errSkip
	}
	pa, err := New(cfgPar)
	if err != nil {
		return errSkip
	}
	defer pa.Close()
	path, err := drainpath.FindEulerian(g)
	if err != nil {
		return errSkip
	}
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = path.NextID(id)
	}

	// Live fault plan (3/4 of seeds): fail one removable link mid-run
	// and restore it later. All three networks reconfigure between the
	// same Steps and must agree on the reconfiguration report (packets
	// dropped and rerouted) as well as everything downstream. ">="
	// triggers keep the plan robust to idle fast-forward jumps: a skipped
	// exact cycle applies at the next executed iteration, identically for
	// all three networks.
	frng := rand.New(rand.NewPCG(seed^0xfa17, seed))
	active := g
	var failed topology.Edge
	faultAt, restoreAt := int64(-1), int64(-1)
	if (seed>>5)%4 != 3 {
		faultAt = 250 + int64(frng.IntN(100))
		restoreAt = 700 + int64(frng.IntN(100))
	}
	reconfigAll := func(na *topology.Graph) error {
		tab, nx, err := buildReconfig(na, g)
		if err != nil {
			return errSkip
		}
		repD, errD := de.Reconfigure(na, tab)
		repE, errE := ev.Reconfigure(na, tab)
		repP, errP := pa.Reconfigure(na, tab)
		if errD != nil || errE != nil || errP != nil {
			return fmt.Errorf("reconfigure errors: dense=%v event=%v parallel=%v", errD, errE, errP)
		}
		if repD != repE || repD != repP {
			return fmt.Errorf("reconfig reports diverge: dense=%+v event=%+v parallel=%+v", repD, repE, repP)
		}
		active, next = na, nx
		return nil
	}

	const horizon = int64(1200)
	for cyc := int64(0); cyc < horizon; cyc++ {
		if cyc < horizon/2 && rng.Float64() < 0.5 {
			src := rng.IntN(nNodes)
			dst := rng.IntN(nNodes)
			if dst != src {
				class := rng.IntN(vnets)
				flits := 1 + rng.IntN(5)
				okD := de.Inject(de.NewPacket(src, dst, class, flits))
				okE := ev.Inject(ev.NewPacket(src, dst, class, flits))
				okP := pa.Inject(pa.NewPacket(src, dst, class, flits))
				if okD != okE || okD != okP {
					return fmt.Errorf("cycle %d: inject accepted dense=%v event=%v parallel=%v", cyc, okD, okE, okP)
				}
			}
		}
		if faultAt >= 0 && cyc >= faultAt {
			faultAt = -1
			if cands := topology.RemovableEdges(active); len(cands) > 0 {
				failed = cands[frng.IntN(len(cands))]
				na, err := active.WithoutEdge(failed.A, failed.B)
				if err != nil {
					return fmt.Errorf("cycle %d: fail link %v: %w", cyc, failed, err)
				}
				if err := reconfigAll(na); err != nil {
					return fmt.Errorf("cycle %d: %w", cyc, err)
				}
			} else {
				restoreAt = -1
			}
		}
		if restoreAt >= 0 && faultAt < 0 && cyc >= restoreAt {
			restoreAt = -1
			na, err := active.WithEdge(failed.A, failed.B)
			if err != nil {
				return fmt.Errorf("cycle %d: restore link %v: %w", cyc, failed, err)
			}
			if err := reconfigAll(na); err != nil {
				return fmt.Errorf("cycle %d: restore: %w", cyc, err)
			}
		}
		if cfg.PolicyEscape && cyc%150 == 100 {
			de.SetFrozen(true)
			ev.SetFrozen(true)
			pa.SetFrozen(true)
		}
		de.Step()
		ev.Step()
		pa.Step()
		if de.Cycle() != ev.Cycle() || de.Cycle() != pa.Cycle() {
			return fmt.Errorf("cycle %d: clocks diverge: dense=%d event=%d parallel=%d", cyc, de.Cycle(), ev.Cycle(), pa.Cycle())
		}
		if de.InflightCount() != ev.InflightCount() || de.InflightCount() != pa.InflightCount() {
			return fmt.Errorf("cycle %d: inflight transfers diverge: dense=%d event=%d parallel=%d", cyc, de.InflightCount(), ev.InflightCount(), pa.InflightCount())
		}
		if de.InFlightPackets() != ev.InFlightPackets() || de.InFlightPackets() != pa.InFlightPackets() {
			return fmt.Errorf("cycle %d: in-system packets diverge: dense=%d event=%d parallel=%d", cyc, de.InFlightPackets(), ev.InFlightPackets(), pa.InFlightPackets())
		}
		if cfg.PolicyEscape && cyc%150 == 110 && de.InflightCount() == 0 {
			if err := rotateAll(de, ev, pa, next); err != nil {
				return fmt.Errorf("cycle %d: %w", cyc, err)
			}
			de.SetFrozen(false)
			ev.SetFrozen(false)
			pa.SetFrozen(false)
		}
		if cfg.PolicyEscape && cyc%150 == 130 && de.Frozen() {
			if de.InflightCount() == 0 {
				if err := rotateAll(de, ev, pa, next); err != nil {
					return fmt.Errorf("cycle %d: late %w", cyc, err)
				}
			}
			de.SetFrozen(false)
			ev.SetFrozen(false)
			pa.SetFrozen(false)
		}
		// Drain ejection queues in lockstep: pop order is part of the
		// byte-identity contract (results files record it).
		for r := 0; r < nNodes; r++ {
			for c := 0; c < vnets; c++ {
				for {
					pd := de.PopEjected(r, c)
					pe := ev.PopEjected(r, c)
					pp := pa.PopEjected(r, c)
					if (pd == nil) != (pe == nil) || (pd == nil) != (pp == nil) {
						return fmt.Errorf("cycle %d: ejection queues (%d,%d) diverge: dense=%v event=%v parallel=%v", cyc, r, c, pd != nil, pe != nil, pp != nil)
					}
					if pd == nil {
						break
					}
					if pd.ID != pe.ID || pd.Dst != pe.Dst || pd.Hops != pe.Hops || pd.EjectedAt != pe.EjectedAt {
						return fmt.Errorf("cycle %d: ejected packet diverges: dense={id %d dst %d hops %d at %d} event={id %d dst %d hops %d at %d}",
							cyc, pd.ID, pd.Dst, pd.Hops, pd.EjectedAt, pe.ID, pe.Dst, pe.Hops, pe.EjectedAt)
					}
					if pd.ID != pp.ID || pd.Dst != pp.Dst || pd.Hops != pp.Hops || pd.EjectedAt != pp.EjectedAt {
						return fmt.Errorf("cycle %d: ejected packet diverges: dense={id %d dst %d hops %d at %d} parallel={id %d dst %d hops %d at %d}",
							cyc, pd.ID, pd.Dst, pd.Hops, pd.EjectedAt, pp.ID, pp.Dst, pp.Hops, pp.EjectedAt)
					}
				}
			}
		}
		if cyc%16 == 0 {
			if err := de.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d: dense: %w", cyc, err)
			}
			if err := ev.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d: event: %w", cyc, err)
			}
			if err := pa.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d: parallel: %w", cyc, err)
			}
			if err := compareBuffers(de, ev); err != nil {
				return fmt.Errorf("cycle %d: %w", cyc, err)
			}
			if err := compareBuffers(de, pa); err != nil {
				return fmt.Errorf("cycle %d: dense vs parallel: %w", cyc, err)
			}
		}
		// Once injection has stopped, exercise idle fast-forward: jump
		// the event network over a window its wheel proves empty while
		// the dense network steps through it cycle by cycle. Both must
		// land in the same state (the window really had no work).
		if cyc >= horizon/2 && cyc%37 == 3 && !ev.Frozen() {
			if u := ev.NextWorkCycle(); u > ev.Cycle()+1 {
				if up := pa.NextWorkCycle(); up != u {
					return fmt.Errorf("cycle %d: next-work cycles diverge: event=%d parallel=%d", cyc, u, up)
				}
				w := u - ev.Cycle() - 1
				if rem := horizon - 1 - cyc; w > rem {
					w = rem
				}
				if w > 0 {
					ev.SkipIdle(w)
					pa.SkipIdle(w)
					for i := int64(0); i < w; i++ {
						de.Step()
					}
					cyc += w
					if err := compareBuffers(de, ev); err != nil {
						return fmt.Errorf("cycle %d: after %d-cycle fast-forward: %w", cyc, w, err)
					}
					if err := compareBuffers(de, pa); err != nil {
						return fmt.Errorf("cycle %d: dense vs parallel after %d-cycle fast-forward: %w", cyc, w, err)
					}
				}
			}
		}
	}
	if !reflect.DeepEqual(de.Counters, ev.Counters) {
		return fmt.Errorf("counters diverge:\ndense: %+v\nevent: %+v", de.Counters, ev.Counters)
	}
	if !reflect.DeepEqual(de.Counters, pa.Counters) {
		return fmt.Errorf("counters diverge (shards=%d inline=%d):\ndense:    %+v\nparallel: %+v", cfgPar.Shards, cfgPar.ParallelInline, de.Counters, pa.Counters)
	}
	// Equal stream position means every arbitration drew the same number
	// of values in the same order; probe one draw from each.
	d, e, p := de.rng.Uint64(), ev.rng.Uint64(), pa.rng.Uint64()
	if d != e || d != p {
		return fmt.Errorf("rng streams diverge after run: dense=%#x event=%#x parallel=%#x", d, e, p)
	}
	return nil
}

// rotateAll applies the same drain rotation to all three networks and
// requires them to agree on its outcome.
func rotateAll(de, ev, pa *Network, next []int) error {
	repD, errD := de.DrainRotate(next)
	repE, errE := ev.DrainRotate(next)
	repP, errP := pa.DrainRotate(next)
	if (errD == nil) != (errE == nil) || (errD == nil) != (errP == nil) {
		return fmt.Errorf("drain rotate diverges: dense err=%v event err=%v parallel err=%v", errD, errE, errP)
	}
	if errD != nil {
		return fmt.Errorf("drain rotate: %w", errD)
	}
	if repD != repE || repD != repP {
		return fmt.Errorf("drain rotate reports diverge: dense=%+v event=%+v parallel=%+v", repD, repE, repP)
	}
	return nil
}

// compareBuffers requires both networks to hold the same packets in the
// same VC slots with the same occupancy bookkeeping.
func compareBuffers(de, ev *Network) error {
	id := func(s *vcSlot) int64 {
		if s.pkt == nil {
			return -1
		}
		return s.pkt.ID
	}
	for l := range de.linkVC {
		for s := range de.linkVC[l] {
			if d, e := id(&de.linkVC[l][s]), id(&ev.linkVC[l][s]); d != e {
				return fmt.Errorf("linkVC[%d][%d] diverges: dense packet %d, event packet %d", l, s, d, e)
			}
		}
	}
	for r := range de.localVC {
		for s := range de.localVC[r] {
			if d, e := id(&de.localVC[r][s]), id(&ev.localVC[r][s]); d != e {
				return fmt.Errorf("localVC[%d][%d] diverges: dense packet %d, event packet %d", r, s, d, e)
			}
		}
		for c := range de.injQ[r] {
			if d, e := de.injQ[r][c].Len(), ev.injQ[r][c].Len(); d != e {
				return fmt.Errorf("injection queue (%d,%d) diverges: dense len %d, event len %d", r, c, d, e)
			}
		}
	}
	if !reflect.DeepEqual(de.occIn, ev.occIn) {
		return fmt.Errorf("occIn diverges: dense=%v event=%v", de.occIn, ev.occIn)
	}
	if !reflect.DeepEqual(de.occLink, ev.occLink) || !reflect.DeepEqual(de.occLocal, ev.occLocal) {
		return fmt.Errorf("per-port occupancy diverges")
	}
	return nil
}

func TestDenseVsEventUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) bool {
		err := checkDenseVsEvent(seed, nRaw, vnRaw, vcRaw, escRaw)
		if err != nil && !errors.Is(err, errSkip) {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzDenseVsEvent is the native-fuzzing entry to the engine
// byte-identity property (CI runs it for a short smoke window; run
// locally with `go test -fuzz=FuzzDenseVsEvent ./internal/noc`).
func FuzzDenseVsEvent(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(0xd1ce), uint8(7), uint8(1), uint8(2), uint8(1))
	f.Add(uint64(99), uint8(11), uint8(0), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) {
		if err := checkDenseVsEvent(seed, nRaw, vnRaw, vcRaw, escRaw); err != nil && !errors.Is(err, errSkip) {
			t.Fatal(err)
		}
	})
}
