package noc

import (
	"context"

	"drain/internal/routing"
)

// CancelCheckEvery is how often (in cycles) StepContext polls its
// context. It bounds how long a cancelled run keeps stepping: a caller
// driving the network exclusively through StepContext observes the
// cancellation within CancelCheckEvery cycles. A power of two keeps the
// per-cycle cost to one mask-and-branch.
const CancelCheckEvery = 1024

// StepContext advances the network by one cycle like Step, first
// checking ctx every CancelCheckEvery cycles. It returns ctx.Err() (and
// leaves the network un-stepped) once the context is cancelled, nil
// otherwise. With context.Background() it is behaviorally identical to
// Step: the check never fires an error and consumes no randomness, so
// determinism is unaffected.
func (n *Network) StepContext(ctx context.Context) error {
	if n.cycle&(CancelCheckEvery-1) == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	n.Step()
	return nil
}

// request is an input VC asking for outputs this cycle (scratch state).
type request struct {
	pkt    *Packet
	inLink int // LocalPort or link ID
	slot   int
	wantEj bool
	// outputs the packet may take from a non-escape standpoint and from
	// an escape standpoint, as candidate entries (LinkID + phase info).
	// Both alias the routing table's shared read-only candidate sets and
	// are never mutated or retained past the cycle.
	mainOuts []routing.Candidate
	escOuts  []routing.Candidate
}

// grant is one feasible (input VC → output slot) assignment during link
// arbitration (scratch state).
type grant struct {
	reqIdx     int
	toSlot     int
	setEscape  bool
	downPhase  bool
	productive bool
	// cond/bubbleTo/bubbleVN support the parallel engine's deferred
	// bubble-rule recheck (the one cross-router read during allocation;
	// see parallel.go). Serial arbitration leaves them zero (condAlways).
	cond     uint8
	bubbleTo int32
	bubbleVN int32
}

// grant.cond values: when the parallel engine plans options before the
// serial commit, the single-VC bubble rule (routerFreeInVN) cannot be
// evaluated yet — other routers' commits may still reserve slots at the
// target router. The plan emits both outcomes, tagged, and the commit
// keeps exactly the one the serial allocator would have built.
const (
	condAlways     uint8 = iota // valid unconditionally
	condBubbleOK                // valid iff routerFreeInVN(bubbleTo, bubbleVN) >= 2 at commit
	condBubbleFail              // valid iff routerFreeInVN(bubbleTo, bubbleVN) < 2 at commit
)

// gatherScratch is the per-allocator request-gathering scratch. The
// serial engines use the Network's single instance; the parallel
// engine's plan workers each own one so gathering can run concurrently.
//
//drain:staged one instance per plan worker (parShard.gs); the serial engines use the Network's own instance on the stepping goroutine (shardsafe)
type gatherScratch struct {
	reqs []request
	// outs collects the output links stamped via noteWantOut for the
	// router currently gathering, kept sorted ascending so iterating it
	// visits outputs in exactly outLinks order (link IDs are dense and
	// outLinks is built in ID order).
	outs []int
	// spill marks that the current router stopped tracking wanted
	// outputs (too many requests); the allocator scans all its outputs.
	spill bool
}

// Step advances the network by one cycle: completes arrivals, performs
// switch/VC allocation (unless frozen), and moves injection-queue heads
// into free local VCs. The caller consumes ejection queues afterwards.
// The cycle body is dispatched through the configured engine (event,
// dense, or parallel); all drive the same mutation paths below and are
// byte-identical — see DESIGN.md §"Event-driven core" and §"Sharded
// parallel engine".
func (n *Network) Step() {
	n.cycle++
	n.noteCycles(1)
	n.eng.step(n)
}

// land applies the effects of a completed transfer.
func (n *Network) land(f flight) {
	p := f.pkt
	n.freeUpstream(p.inLink, p.atRouter, p.slot, int64(p.Flits), &n.Counters)
	p.sending = false

	if f.eject {
		n.pushEject(f.toRouter, p)
		return
	}
	n.landArrive(f, &n.Counters)
}

// freeUpstream releases the input VC slot a departed packet occupied.
// The position is passed explicitly (not read from the packet) because
// the parallel engine applies the release after the arrival side has
// already overwritten the packet's position fields.
func (n *Network) freeUpstream(inLink, router, slot int, flits int64, ctr *Counters) {
	n.slotOf(inLink, router, slot).pkt = nil
	n.occIn[router]--
	if inLink == LocalPort {
		n.occLocal[router]--
	} else {
		n.occLink[inLink]--
	}
	ctr.BufReads += flits
}

// landArrive applies the downstream (destination-router) effects of a
// completed non-eject transfer. Counter increments go to ctr so the
// parallel engine can stage them per shard.
func (n *Network) landArrive(f flight, ctr *Counters) {
	p := f.pkt
	dst := &n.linkVC[f.toLink][f.toSlot]
	dst.reserved = false
	dst.pkt = p
	n.occIn[f.toRouter]++
	n.occLink[f.toLink]++
	p.atRouter = f.toRouter
	p.inLink = f.toLink
	p.slot = f.toSlot
	p.readyAt = n.cycle + int64(n.cfg.RouterLatency)
	p.Hops++
	if f.setEscape {
		p.InEscape = true
	}
	p.DownPhase = f.downPhase
	if !f.productive {
		p.Misroutes++
		ctr.Misroutes++
	}
	ctr.Hops++
	ctr.LinkFlits += int64(p.Flits)
	ctr.BufWrites += int64(p.Flits)
	ctr.noteVNActivity(p.VNet, f.toRouter, n.cycle, int64(p.Flits))
	n.eng.placed(n, f.toRouter, p.readyAt)
}

// pushEject delivers p to its destination's ejection queue.
func (n *Network) pushEject(router int, p *Packet) {
	p.EjectedAt = n.cycle
	n.ejQ[router][p.Class].Push(p)
	if !n.ejDirty[router] {
		n.ejDirty[router] = true
		n.ejDirtyList = append(n.ejDirtyList, int32(router))
	}
	n.Counters.Ejected++
	if n.OnEject != nil {
		n.OnEject(p)
	}
}

// slotOf resolves an input VC slot (link or local port).
func (n *Network) slotOf(inLink, router, slot int) *vcSlot {
	if inLink == LocalPort {
		return &n.localVC[router][slot]
	}
	return &n.linkVC[inLink][slot]
}

// allocate performs one cycle of switch + VC allocation at every active
// router. Routers with no occupied input VCs cannot produce requests (and
// would consume no randomness), so they are skipped outright.
func (n *Network) allocate() {
	for r := 0; r < n.g.N(); r++ {
		if n.occIn[r] == 0 {
			continue
		}
		n.allocateRouter(r, &n.gs)
	}
}

// allocateRouter arbitrates router r's output ports among its input VCs.
// It returns how many input VC heads were eligible to move this cycle
// (whether or not they produced a routable request) and how many were
// granted an output; the event engine clears r's activity bit only when
// the two are equal, so a head that is blocked, loses arbitration, or
// is merely waiting to become stalled-enough to deroute keeps the
// router in the active set.
func (n *Network) allocateRouter(r int, gs *gatherScratch) (eligible, granted int) {
	reqs, eligible := n.gatherRequests(r, gs)
	if len(reqs) == 0 {
		return eligible, 0
	}
	// Eject port first (it frees VCs fastest and models priority to
	// sinking traffic), then each output link. Outputs no gathered
	// request can use are skipped: their arbitration would build zero
	// options and draw no randomness, so the skip is unobservable.
	if n.ejectBusy[r] <= n.cycle {
		granted += n.arbitrateEject(r, reqs)
	}
	outs := gs.outs
	if gs.spill {
		// Heavily loaded router: the wanted-output set is incomplete, so
		// arbitrate every output. Unwanted outputs yield zero options and
		// draw nothing, and both slices ascend by link ID, so the grant
		// and draw sequence is identical either way.
		outs = n.outLinks[r]
	}
	for _, out := range outs {
		if n.linkBusy[out] > n.cycle {
			continue
		}
		granted += n.arbitrateLink(r, out, reqs)
	}
	return eligible, granted
}

// gatherRequests lists input VCs of r with a head packet eligible to move
// this cycle, along with the outputs each may use. The second result
// counts every eligible head, including those dropped for having no
// routing candidates right now (deroute/escape eligibility can appear
// with the passage of time alone, so such heads must keep the router
// active).
func (n *Network) gatherRequests(r int, gs *gatherScratch) ([]request, int) {
	eligible := 0
	reqs := gs.reqs[:0]
	gs.outs = gs.outs[:0]
	gs.spill = false
	for _, l := range n.inLinks[r] {
		if n.occLink[l] == 0 {
			continue
		}
		reqs, eligible = n.considerVCs(r, l, n.linkVC[l], gs, reqs, eligible)
	}
	if n.occLocal[r] != 0 {
		reqs, eligible = n.considerVCs(r, LocalPort, n.localVC[r], gs, reqs, eligible)
	}
	gs.reqs = reqs
	return reqs, eligible
}

// considerVCs appends requests for the eligible heads among one input
// port's VC slots and stamps n.wantOut for every output the appended
// requests could use (see allocateRouter).
func (n *Network) considerVCs(r, inLink int, slots []vcSlot, gs *gatherScratch, reqs []request, eligible int) ([]request, int) {
	for s := range slots {
		p := slots[s].pkt
		if p == nil || p.sending || p.readyAt > n.cycle {
			continue
		}
		eligible++
		req := request{pkt: p, inLink: inLink, slot: s}
		if p.Dst == r {
			req.wantEj = true
			reqs = append(reqs, req)
			continue
		}
		// A long-stalled packet on an unrestricted (adaptive) routing
		// function may deroute over any output, including U-turns.
		stalled := n.cfg.DerouteAfter > 0 && n.cycle-p.readyAt >= int64(n.cfg.DerouteAfter)
		// Routing candidates. Escape discipline (paper §III-A):
		// a packet in an escape VC may only continue on escape VCs
		// under EscapeRouting; others may use either. The candidate
		// slices are the routing table's shared read-only sets.
		if n.cfg.PolicyEscape {
			escapeReady := p.InEscape ||
				n.cfg.EscapeAfter <= 0 ||
				n.cycle-p.readyAt >= int64(n.cfg.EscapeAfter)
			if !p.InEscape {
				req.mainOuts = n.routeCands(n.cfg.Routing, r, p.Dst, p.DownPhase, stalled)
			}
			// Phase for escape routing: a packet entering the escape
			// network starts its up*/down* walk fresh.
			escPhase := p.DownPhase
			if !p.InEscape {
				escPhase = false
			}
			if escapeReady {
				req.escOuts = n.routeCands(n.cfg.EscapeRouting, r, p.Dst, escPhase, stalled)
			}
		} else {
			req.mainOuts = n.routeCands(n.cfg.Routing, r, p.Dst, p.DownPhase, stalled)
		}
		if len(req.mainOuts) > 0 || len(req.escOuts) > 0 {
			// Track which outputs are wanted only while the router is
			// lightly loaded: with this many requests essentially every
			// output is wanted, so allocateRouter scans them all instead
			// and the per-candidate stamping would be pure overhead.
			if len(reqs) < wantOutMaxReqs {
				for _, c := range req.mainOuts {
					n.noteWantOut(gs, c.LinkID)
				}
				for _, c := range req.escOuts {
					n.noteWantOut(gs, c.LinkID)
				}
			} else {
				gs.spill = true
			}
			reqs = append(reqs, req)
		}
	}
	return reqs, eligible
}

// wantOutMaxReqs bounds the request count up to which gathering tracks
// the wanted-output set (see considerVCs).
const wantOutMaxReqs = 4

// noteWantOut records output link `out` as wanted by some request of the
// router currently gathering, keeping gs.outs sorted ascending (= the
// outLinks iteration order the dense allocator used, so arbitration and
// its RNG draws happen in the identical output order). The wantOut
// cycle stamps live on the Network: a link belongs to exactly one source
// router, so stamps from routers sharing a cycle never collide — which
// also makes the stamping safe for the parallel engine's concurrent
// per-shard gathering.
func (n *Network) noteWantOut(gs *gatherScratch, out int) {
	if n.wantOut[out] == n.cycle {
		return
	}
	n.wantOut[out] = n.cycle
	outs := append(gs.outs, out)
	for j := len(outs) - 1; j > 0 && outs[j-1] > out; j-- {
		outs[j], outs[j-1] = outs[j-1], outs[j]
	}
	gs.outs = outs
}

// arbitrateEject grants the eject port to one destination packet,
// returning the number of grants made (0 or 1).
func (n *Network) arbitrateEject(r int, reqs []request) int {
	winners := n.buildEjectWinners(r, reqs, n.scrWin[:0])
	n.scrWin = winners
	return n.commitEject(r, reqs, winners)
}

// buildEjectWinners appends the indices (into reqs) of the packets that
// could take r's eject port this cycle. Feasibility depends only on
// state owned by router r (its reqs' packets, its ejection queues), so
// the parallel engine can build winner lists concurrently per shard and
// commit them later unchanged.
func (n *Network) buildEjectWinners(r int, reqs []request, winners []int) []int {
	for i := range reqs {
		req := &reqs[i]
		if req.wantEj && !req.pkt.sending && n.ejectSpace(r, req.pkt.Class) {
			winners = append(winners, i)
		}
	}
	return winners
}

// commitEject draws the eject-port winner and applies the grant. Must
// run serially in ascending router order (it consumes the shared RNG).
func (n *Network) commitEject(r int, reqs []request, winners []int) int {
	if len(winners) == 0 {
		return 0
	}
	p := reqs[winners[n.rng.IntN(len(winners))]].pkt
	p.sending = true
	n.ejectBusy[r] = n.cycle + int64(p.Flits)
	n.eng.addFlight(n, flight{
		pkt: p, doneAt: n.cycle + int64(p.Flits), eject: true, toLink: -1, toRouter: r,
	})
	n.Counters.SWAllocs++
	n.Counters.XbarFlits += int64(p.Flits)
	n.Counters.noteVNActivity(p.VNet, r, n.cycle, int64(p.Flits))
	return 1
}

// arbitrateLink grants output link `out` of router r to one input VC,
// returning the number of grants made (0 or 1).
func (n *Network) arbitrateLink(r, out int, reqs []request) int {
	options := n.buildLinkOptions(out, reqs, n.scrOpts[:0], false)
	n.scrOpts = options
	return n.commitLinkGrant(r, out, reqs, options)
}

// buildLinkOptions appends every feasible (request → output slot)
// assignment for link `out` to options. All feasibility inputs are
// stable for the whole allocation phase — an output link is granted at
// most once per cycle and belongs to exactly one source router — with
// two exceptions:
//
//   - p.sending: a packet granted an earlier output of the same router
//     is skipped. With deferBubble the caller re-filters at commit time.
//   - the single-VC bubble rule (routerFreeInVN of the *target* router),
//     which other routers' same-cycle grants can still change. With
//     deferBubble=false it is evaluated inline (serial allocators); with
//     deferBubble=true the plan emits both outcomes as conditional
//     options (grant.cond) for the serial commit to resolve at exactly
//     the point the serial order would have evaluated the rule.
func (n *Network) buildLinkOptions(out int, reqs []request, options []grant, deferBubble bool) []grant {
	for i := range reqs {
		req := &reqs[i]
		p := req.pkt
		if p.sending {
			continue
		}
		// Conservative VC allocation at the injection port (paper §II-C:
		// fully adaptive routing pairs with conservative allocation): a
		// locally injected packet may not claim the last free VC of the
		// downstream port's VN, so through-traffic always has a hole to
		// move into and the network cannot self-jam into 100% occupancy.
		// With single-VC virtual networks the port rule degenerates, so a
		// bubble-flow-control-style router rule applies instead: the
		// target router must retain a second free buffer in the VN.
		conservativeOK := true
		if req.inLink == LocalPort {
			if n.freeSlotsInVN(out, p.VNet) < min(2, n.cfg.VCsPerVN) {
				conservativeOK = false
			}
			if conservativeOK && n.cfg.VCsPerVN == 1 {
				to := n.g.Link(out).To
				if !deferBubble {
					if n.routerFreeInVN(to, p.VNet) < 2 {
						conservativeOK = false
					}
				} else {
					gOK, okOK := n.optionFor(out, i, req, true)
					gFail, okFail := n.optionFor(out, i, req, false)
					if okOK && okFail && gOK == gFail {
						// Same grant either way: the bubble outcome is
						// irrelevant, emit it unconditionally.
						options = append(options, gOK)
						continue
					}
					if okOK {
						gOK.cond = condBubbleOK
						gOK.bubbleTo = int32(to)
						gOK.bubbleVN = int32(p.VNet)
						options = append(options, gOK)
					}
					if okFail {
						gFail.cond = condBubbleFail
						gFail.bubbleTo = int32(to)
						gFail.bubbleVN = int32(p.VNet)
						options = append(options, gFail)
					}
					continue
				}
			}
		}
		if g, ok := n.optionFor(out, i, req, conservativeOK); ok {
			options = append(options, g)
		}
	}
	return options
}

// optionFor computes the grant the serial allocator would build for req
// on output `out`, given the conservative-rule outcome. The non-escape
// path needs the output in mainOuts and a free non-escape VC downstream
// in the packet's VNet; failing that, the escape path applies: output
// legal under escape routing and the escape slot downstream free. A
// long-stalled local packet may claim an escape slot even against the
// conservative rule: drains guarantee escape buffers keep turning over,
// so this bounded bypass restores the injection-progress guarantee
// (§III-D2) without letting injection pack ordinary buffers to 100%.
func (n *Network) optionFor(out, reqIdx int, req *request, conservativeOK bool) (grant, bool) {
	p := req.pkt
	if conservativeOK {
		if c, ok := findCand(req.mainOuts, out); ok {
			if slot, ok2 := n.freeDownstreamSlot(out, p.VNet, false); ok2 {
				return grant{
					reqIdx: reqIdx, toSlot: slot,
					downPhase: c.DownPhase, productive: c.Productive,
				}, true
			}
		}
	}
	escConservative := conservativeOK || n.injectBypass(p)
	outsForEscape := req.escOuts
	if !n.cfg.PolicyEscape {
		outsForEscape = nil
	}
	if escConservative {
		if c, ok := findCand(outsForEscape, out); ok {
			if slot, ok2 := n.freeDownstreamSlot(out, p.VNet, true); ok2 {
				return grant{
					reqIdx: reqIdx, toSlot: slot, setEscape: !n.cfg.NonStickyEscape,
					downPhase: c.DownPhase, productive: c.Productive,
				}, true
			}
		}
	}
	return grant{}, false
}

// commitLinkGrant draws the winner among options and applies the grant.
// Must run serially in ascending (router, output) order — it consumes
// the shared RNG, and the option sets of later outputs depend on
// earlier winners through p.sending.
func (n *Network) commitLinkGrant(r, out int, reqs []request, options []grant) int {
	if len(options) == 0 {
		return 0
	}
	// Prefer productive grants: deroutes only win an output no minimal
	// packet wants, keeping misrouting a last resort. The filter runs
	// in place (relative order preserved) to stay allocation-free.
	prodCount := 0
	for _, o := range options {
		if o.productive {
			prodCount++
		}
	}
	if prodCount > 0 && prodCount < len(options) {
		kept := options[:0]
		for _, o := range options {
			if o.productive {
				kept = append(kept, o)
			}
		}
		options = kept
	}
	g := options[n.rng.IntN(len(options))]
	req := &reqs[g.reqIdx]
	p := req.pkt
	link := n.g.Link(out)
	p.sending = true
	n.linkBusy[out] = n.cycle + int64(p.Flits)
	dst := &n.linkVC[out][g.toSlot]
	dst.reserved = true
	n.eng.addFlight(n, flight{
		pkt:        p,
		doneAt:     n.cycle + int64(p.Flits),
		toLink:     out,
		toSlot:     g.toSlot,
		toRouter:   link.To,
		setEscape:  g.setEscape,
		downPhase:  g.downPhase,
		productive: g.productive,
	})
	n.Counters.SWAllocs++
	n.Counters.VCAllocs++
	n.Counters.XbarFlits += int64(p.Flits)
	return 1
}

// routeCands returns the shared read-only candidate set for a packet at
// router r heading to dst under algorithm k. A stalled packet on an
// unrestricted adaptive function may deroute over any output.
func (n *Network) routeCands(k routing.Kind, r, dst int, phase, stalled bool) []routing.Candidate {
	if stalled && k == routing.AdaptiveMinimal {
		return n.tab.AllOutputs(r, dst)
	}
	return n.tab.Candidates(k, r, dst, phase)
}

// findCand returns the candidate targeting link out, if present.
func findCand(cands []routing.Candidate, out int) (routing.Candidate, bool) {
	for _, c := range cands {
		if c.LinkID == out {
			return c, true
		}
	}
	return routing.Candidate{}, false
}

// freeSlotsInVN counts free VC slots of virtual network vn at the input
// port fed by link out.
func (n *Network) freeSlotsInVN(out, vn int) int {
	base := vn * n.cfg.VCsPerVN
	c := 0
	for s := base; s < base+n.cfg.VCsPerVN; s++ {
		if n.linkVC[out][s].free() {
			c++
		}
	}
	return c
}

// injectBypass reports whether a local packet has stalled long enough to
// skip the conservative injection admission (progress guarantee; see
// Config.InjectPatience).
func (n *Network) injectBypass(p *Packet) bool {
	return n.cfg.InjectPatience > 0 && n.cycle-p.readyAt >= int64(n.cfg.InjectPatience)
}

// routerFreeInVN counts free VC slots of virtual network vn across all
// link input ports of the given router.
func (n *Network) routerFreeInVN(router, vn int) int {
	c := 0
	for _, l := range n.inLinks[router] {
		c += n.freeSlotsInVN(l, vn)
	}
	return c
}

// freeDownstreamSlot picks a free VC slot at the input port fed by link
// `out`, within virtual network vn. With escape=false it returns the
// first free non-escape slot; with escape=true, the escape slot if free.
// When PolicyEscape is disabled all slots (including slot 0) are plain
// VCs handled by the escape=false path.
func (n *Network) freeDownstreamSlot(out, vn int, escape bool) (int, bool) {
	base := vn * n.cfg.VCsPerVN
	slots := n.linkVC[out]
	if escape {
		if slots[base].free() {
			return base, true
		}
		return 0, false
	}
	start := base
	if n.cfg.PolicyEscape {
		start = base + 1 // slot 0 is the escape VC: reachable only via the escape path
	}
	for s := start; s < base+n.cfg.VCsPerVN; s++ {
		if slots[s].free() {
			return s, true
		}
	}
	return 0, false
}

// injectFromQueues moves injection-queue heads into free local VCs. The
// injPending count of non-empty queues lets whole cycles skip the
// router × class scan when nothing is waiting.
func (n *Network) injectFromQueues() {
	if n.injPending == 0 {
		return
	}
	for r := 0; r < n.g.N(); r++ {
		n.injectRouterQueues(r)
	}
}

// injectRouterQueues attempts to move each of router r's injection-queue
// heads into a free local VC, reporting whether any queue at r is still
// non-empty afterwards. Injection draws no randomness, so the engines
// can call it on any superset of the routers with queued packets.
func (n *Network) injectRouterQueues(r int) bool {
	pending, emptied := n.injectRouterQueuesInto(r, &n.Counters)
	n.injPending -= emptied
	return pending
}

// injectRouterQueuesInto is injectRouterQueues with the side effects the
// parallel engine must stage per shard made explicit: counter
// increments go to ctr, and the number of queues drained to empty is
// returned instead of applied to n.injPending (the caller reduces the
// deltas in deterministic shard order).
func (n *Network) injectRouterQueuesInto(r int, ctr *Counters) (pending bool, emptied int) {
	for class := 0; class < n.cfg.Classes; class++ {
		q := &n.injQ[r][class]
		p := q.Peek()
		if p == nil {
			continue
		}
		slot, escape, ok := n.freeLocalSlot(r, p.VNet)
		if !ok {
			pending = true
			continue
		}
		q.Pop()
		if q.Len() == 0 {
			emptied++
		} else {
			pending = true
		}
		lv := &n.localVC[r][slot]
		lv.pkt = p
		n.occIn[r]++
		n.occLocal[r]++
		p.atRouter = r
		p.inLink = LocalPort
		p.slot = slot
		p.InjectedAt = n.cycle
		p.readyAt = n.cycle + int64(n.cfg.RouterLatency)
		if escape && !n.cfg.NonStickyEscape {
			p.InEscape = true
		}
		ctr.Injected++
		ctr.BufWrites += int64(p.Flits)
		ctr.noteVNActivity(p.VNet, r, n.cycle, int64(p.Flits))
		n.eng.placed(n, r, p.readyAt)
	}
	return pending, emptied
}

// freeLocalSlot picks a free local VC in vn, preferring non-escape slots.
func (n *Network) freeLocalSlot(r, vn int) (slot int, escape, ok bool) {
	base := vn * n.cfg.VCsPerVN
	slots := n.localVC[r]
	if n.cfg.PolicyEscape {
		for s := base + 1; s < base+n.cfg.VCsPerVN; s++ {
			if slots[s].free() {
				return s, false, true
			}
		}
		if slots[base].free() {
			return base, true, true
		}
		return 0, false, false
	}
	for s := base; s < base+n.cfg.VCsPerVN; s++ {
		if slots[s].free() {
			return s, false, true
		}
	}
	return 0, false, false
}
