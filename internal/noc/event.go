package noc

import (
	"fmt"
	"math"
	"math/bits"
)

// eventEngine is the event-driven cycle core. Three structures replace
// the dense engine's exhaustive scans:
//
//   - alloc: a bitmap of routers that may hold an input VC head eligible
//     to move. Bits may be stale-SET (the visit finds nothing, draws no
//     randomness, and clears the bit) but are never stale-CLEAR: a bit is
//     cleared only when a visit granted every eligible head it counted,
//     and every path that creates eligibility (land, injection, rotation,
//     direct placement, readyAt maturation) re-sets the bit or schedules
//     a wake. That one-sided invariant is what makes the engine
//     byte-identical to the dense stepper — see DESIGN.md §"Event-driven
//     core" — and CheckInvariants verifies it against a full scan.
//   - inj: a bitmap of routers whose injection queues may be non-empty
//     (same one-sided staleness; injection draws no randomness at all).
//   - a timing wheel of power-of-two size > max(MaxFlits, RouterLatency):
//     per-slot FIFOs of flights (landing this cycle, in creation order —
//     the same order the dense inflights scan lands them) and of wakes
//     (routers whose placed packet matures this cycle).
//
// Because every future effect lives on the wheel, the engine can also
// prove windows of idleness: nextWorkCycle reports the earliest pending
// event, and skipIdle advances the clock over provably empty cycles in
// one jump (the idle fast-forward used by sim.RunSyntheticContext).
type eventEngine struct {
	size   int64 // wheel slots (power of two)
	mask   int64 // size - 1
	maxOff int64 // largest schedulable offset: max(MaxFlits, RouterLatency)

	flights [][]flight // [cycle&mask] -> transfers landing that cycle
	wakes   [][]int32  // [cycle&mask] -> routers with a head maturing then
	count   int        // pending transfers across all slots

	alloc bitset // routers that may have an eligible head
	inj   bitset // routers whose injection queues may be non-empty
}

// newEventEngine sizes the wheel for cfg: every schedulable event is at
// most max(MaxFlits, RouterLatency) cycles ahead, so a power-of-two
// wheel strictly larger than that offset gives each pending cycle a
// private slot.
func newEventEngine(cfg *Config) *eventEngine {
	maxOff := int64(cfg.MaxFlits)
	if int64(cfg.RouterLatency) > maxOff {
		maxOff = int64(cfg.RouterLatency)
	}
	size := int64(1)
	for size <= maxOff {
		size <<= 1
	}
	return &eventEngine{
		size:    size,
		mask:    size - 1,
		maxOff:  maxOff,
		flights: make([][]flight, size),
		wakes:   make([][]int32, size),
		alloc:   newBitset(cfg.Graph.N()),
		inj:     newBitset(cfg.Graph.N()),
	}
}

// step advances one cycle: fire this cycle's wheel slot (arrivals land
// in creation order, matured heads re-arm their router's activity bit),
// then — unless frozen — visit the active routers for allocation and
// injection in ascending order, exactly the order the dense stepper's
// 0..N-1 scans impose.
//
//drain:hotpath event-core cycle entry, dispatched from Network.Step through the engine seam (dynamic calls are not followed)
func (e *eventEngine) step(n *Network) {
	slot := n.cycle & e.mask
	if fl := e.flights[slot]; len(fl) > 0 {
		e.count -= len(fl)
		for i := range fl {
			n.land(fl[i])
		}
		e.flights[slot] = fl[:0]
	}
	if ws := e.wakes[slot]; len(ws) > 0 {
		for _, r := range ws {
			e.alloc.set(int(r))
		}
		e.wakes[slot] = ws[:0]
	}
	if n.frozen {
		n.Counters.FrozenCyc++
		return
	}
	// Allocation over the active set, word-skipped through the summary
	// level (nextWord): mostly-idle regions cost one summary test per 64
	// routers. The per-word copy makes clearing the just-visited bit
	// safe mid-iteration; no bit can be *set* during this loop (grants
	// only schedule future wheel events), which is also what makes the
	// forward nextWord walk exhaustive.
	for wi := e.alloc.nextWord(-1); wi >= 0; wi = e.alloc.nextWord(wi) {
		w := e.alloc.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			r := wi<<6 + bit
			eligible, granted := n.allocateRouter(r, &n.gs)
			if eligible == granted {
				// Every eligible head moved out; the next head to appear
				// (or mature) will re-set the bit via placed().
				e.alloc.clearWordBit(wi, bit)
			}
		}
	}
	// Injection over the routers with queued packets. Draws no
	// randomness, so stale-set bits are harmless no-op visits.
	for wi := e.inj.nextWord(-1); wi >= 0; wi = e.inj.nextWord(wi) {
		w := e.inj.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			r := wi<<6 + bit
			if !n.injectRouterQueues(r) {
				e.inj.clearWordBit(wi, bit)
			}
		}
	}
}

// addFlight schedules a started transfer to land at f.doneAt.
//
//drain:hotpath called from arbitration through the engine seam (dynamic calls are not followed)
func (e *eventEngine) addFlight(n *Network, f flight) {
	slot := f.doneAt & e.mask
	e.flights[slot] = append(e.flights[slot], f)
	e.count++
}

// placed arms router's activity bit, now or at the head's maturation
// cycle. readyAt is always within the wheel horizon (RouterLatency).
//
//drain:hotpath called from land/injection through the engine seam (dynamic calls are not followed)
func (e *eventEngine) placed(n *Network, router int, readyAt int64) {
	if readyAt <= n.cycle {
		e.alloc.set(router)
		return
	}
	slot := readyAt & e.mask
	e.wakes[slot] = append(e.wakes[slot], int32(router))
}

// noteInject arms router's injection bit.
//
//drain:hotpath called from Network.Inject through the engine seam (dynamic calls are not followed)
func (e *eventEngine) noteInject(_ *Network, router int) {
	e.inj.set(router)
}

// inflightCount returns the number of transfers currently on links.
func (e *eventEngine) inflightCount() int { return e.count }

// eachFlight visits every pending transfer.
func (e *eventEngine) eachFlight(fn func(f *flight)) {
	for s := range e.flights {
		for i := range e.flights[s] {
			fn(&e.flights[s][i])
		}
	}
}

// removeFailedFlights filters every wheel slot in place, dropping
// transfers bound for a failed link and fixing the pending count.
func (e *eventEngine) removeFailedFlights(n *Network, down []bool) int {
	dropped := 0
	for s := range e.flights {
		fl := e.flights[s]
		out := fl[:0]
		for _, f := range fl {
			if !f.eject && down[f.toLink] {
				n.dropFlight(f)
				dropped++
				continue
			}
			out = append(out, f)
		}
		e.flights[s] = out
	}
	e.count -= dropped
	return dropped
}

// nextWorkCycle returns the earliest cycle at which stepping could have
// any effect: now+1 while any activity bit is set (an eligible or
// blocked head retries every cycle, and a queued injection would
// succeed as soon as a slot frees), otherwise the earliest pending
// wheel event, otherwise "never" — the network is completely empty.
//
//drain:hotpath per-iteration driver query, dispatched through the engine seam (dynamic calls are not followed)
func (e *eventEngine) nextWorkCycle(n *Network) int64 {
	if e.alloc.any() || e.inj.any() {
		return n.cycle + 1
	}
	for d := int64(1); d <= e.size; d++ {
		s := (n.cycle + d) & e.mask
		if len(e.flights[s]) > 0 || len(e.wakes[s]) > 0 {
			return n.cycle + d
		}
	}
	return math.MaxInt64
}

// skipIdle jumps the clock over k cycles the caller proved empty via
// nextWorkCycle. No wheel slot in the window holds an event and no
// activity bit is set, so the only per-cycle effects a dense run of k
// Steps would have produced are the frozen-cycle counter ticks.
//
//drain:hotpath fast-forward entry, dispatched from Network.SkipIdle through the engine seam (dynamic calls are not followed)
func (e *eventEngine) skipIdle(n *Network, k int64) {
	n.cycle += k
	n.noteCycles(k)
	if n.frozen {
		n.Counters.FrozenCyc += k
	}
}

// check validates the wheel and the activity bitmaps against a full
// scan: flights sit in the right slot within the horizon, the count
// agrees, every eligible head's router has its bit set (the never-
// stale-clear invariant), every immature head has a pending wake, and
// every non-empty injection queue has its router's bit set.
func (e *eventEngine) check(n *Network) error {
	total := 0
	for s := range e.flights {
		for i := range e.flights[s] {
			f := &e.flights[s][i]
			if f.doneAt <= n.cycle || f.doneAt > n.cycle+e.maxOff {
				return fmt.Errorf("noc: flight of packet %d lands at %d, outside (%d,%d]", f.pkt.ID, f.doneAt, n.cycle, n.cycle+e.maxOff)
			}
			if f.doneAt&e.mask != int64(s) {
				return fmt.Errorf("noc: flight of packet %d (doneAt %d) filed in wheel slot %d", f.pkt.ID, f.doneAt, s)
			}
		}
		total += len(e.flights[s])
	}
	if total != e.count {
		return fmt.Errorf("noc: wheel holds %d flights, count says %d", total, e.count)
	}
	if !e.alloc.sumConsistent() || !e.inj.sumConsistent() {
		return fmt.Errorf("noc: activity bitset summary level disagrees with its words")
	}
	head := func(r int, p *Packet) error {
		if p == nil || p.sending {
			return nil
		}
		if p.readyAt <= n.cycle {
			if !e.alloc.get(r) {
				return fmt.Errorf("noc: eligible head (packet %d) at router %d but activity bit clear", p.ID, r)
			}
			return nil
		}
		if p.readyAt > n.cycle+e.maxOff {
			return fmt.Errorf("noc: packet %d matures at %d, beyond the wheel horizon %d", p.ID, p.readyAt, n.cycle+e.maxOff)
		}
		for _, wr := range e.wakes[p.readyAt&e.mask] {
			if int(wr) == r {
				return nil
			}
		}
		return fmt.Errorf("noc: immature head (packet %d) at router %d has no wake at cycle %d", p.ID, r, p.readyAt)
	}
	for l := 0; l < n.g.NumLinks(); l++ {
		router := n.g.Link(l).To
		for s := range n.linkVC[l] {
			if err := head(router, n.linkVC[l][s].pkt); err != nil {
				return err
			}
		}
	}
	for r := 0; r < n.g.N(); r++ {
		for s := range n.localVC[r] {
			if err := head(r, n.localVC[r][s].pkt); err != nil {
				return err
			}
		}
		for c := range n.injQ[r] {
			if n.injQ[r][c].Len() > 0 && !e.inj.get(r) {
				return fmt.Errorf("noc: router %d has queued injections but injection bit clear", r)
			}
		}
	}
	return nil
}

// stop is a no-op: the event engine owns no resources.
func (e *eventEngine) stop() {}
