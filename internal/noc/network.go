package noc

import (
	"fmt"
	"math/rand/v2"
	"runtime"

	"drain/internal/routing"
	"drain/internal/topology"
)

// vcSlot is one virtual-channel buffer (single packet, VCT).
//
//drain:staged a slot belongs to one router's input port; parallel phases write only slots of routers their shard owns — arrivals and injections by destination router, upstream frees via per-shard staging drained for the owning shard (shardsafe)
type vcSlot struct {
	pkt      *Packet
	reserved bool // claimed by an in-flight transfer
}

func (s *vcSlot) free() bool { return s.pkt == nil && !s.reserved }

// flight is an in-progress transfer over a link or through an eject port.
type flight struct {
	pkt      *Packet
	doneAt   int64
	eject    bool
	toLink   int // destination link (buffer at its head router); -1 for eject
	toSlot   int
	toRouter int
	// effects applied on arrival
	setEscape  bool
	downPhase  bool
	productive bool
}

// Network is a complete NoC instance. It is not safe for concurrent use;
// the simulator is single-threaded and deterministic for a given seed.
type Network struct {
	cfg Config
	g   *topology.Graph
	tab *routing.Table
	rng *rand.Rand

	cycle  int64
	frozen bool

	// eng is the cycle-core implementation (event or dense) behind Step;
	// it owns the in-flight transfer set and, for the event engine, the
	// activity bitmaps and timing wheel. Network notifies it at every
	// eligibility-changing point (placed, noteInject, addFlight).
	eng engine

	vcPerPort int
	linkVC    [][]vcSlot // [linkID][slot]
	localVC   [][]vcSlot // [router][slot]
	linkBusy  []int64    // per link: busy until this cycle (exclusive)
	ejectBusy []int64    // per router

	injQ [][]pktQueue // [router][class]
	ejQ  [][]pktQueue

	// injPending counts non-empty (router, class) injection queues so a
	// cycle with nothing queued skips the router × class scan entirely.
	injPending int

	// ejDirty/ejDirtyList track routers whose ejection queues received
	// packets since the last DiscardEjected sweep, so synthetic sinks
	// drain only routers that actually ejected something.
	ejDirty     []bool
	ejDirtyList []int32

	// cyclesPending/ffPending batch ticks bound for the process-wide
	// simulated-cycle and fast-forwarded-cycle counters (see cycles.go).
	cyclesPending int64
	ffPending     int64

	inLinks  [][]int // link IDs ending at each router
	outLinks [][]int // link IDs starting at each router

	// occIn[r] counts occupied input VC buffers (link + local) at router
	// r. allocate() skips routers with zero occupancy — the "active
	// router" set — which is both a fast path for lightly loaded networks
	// and behavior-preserving: a router with no occupied input VC can
	// never produce a request, so no arbitration (and no RNG draw)
	// happens there either way.
	//
	//drain:staged indexed by router; each parallel phase adjusts only entries of routers its shard owns (shardsafe)
	occIn []int32

	nextID int64

	// OnEject, when set, is invoked for every packet as it enters an
	// ejection queue (including packets ejected during drain windows).
	// Simulation drivers use it to collect latency statistics.
	OnEject func(*Packet)

	Counters Counters

	// scratch buffers reused across cycles (steady-state Step performs
	// no heap allocation; see BenchmarkStepAllocs). gs is the serial
	// request-gathering scratch; the parallel engine's plan workers own
	// one gatherScratch each instead. scrOpts/scrWin serve the serial
	// arbitration paths only (the parallel engine plans into per-shard
	// arenas and commits from them).
	gs      gatherScratch
	scrOpts []grant
	scrWin  []int

	// wantOut[link] == cycle marks output links some request gathered
	// this cycle could use, letting allocateRouter skip the arbitration
	// of outputs that would yield zero options (and so draw nothing).
	// Links belong to exactly one source router, so stamps from routers
	// sharing a cycle never collide (see noteWantOut).
	//
	//drain:staged indexed by link; a link belongs to exactly one source router, so plan workers stamp only links out of their own shard's routers (shardsafe)
	wantOut []int64

	// occLink[l] counts occupied VC buffers at the input port fed by link
	// l; occLocal[r] counts occupied local (injection-port) VC buffers at
	// router r. They let request gathering skip empty ports without
	// scanning their slots. Invariant: occIn[r] equals occLocal[r] plus
	// the occLink of r's inbound links (checked by CheckInvariants).
	//
	//drain:staged indexed by link; a link's head (buffering) router belongs to one shard, and phases adjust only links into their own routers (shardsafe)
	occLink []int32
	//drain:staged indexed by router; phases adjust only entries of routers their shard owns (shardsafe)
	occLocal []int32

	// freePkts is the packet free-list (LIFO): NewPacket pops it,
	// ReleasePacket pushes it. See pool.go for the ownership and
	// determinism rules.
	freePkts []*Packet

	// linkDown marks unidirectional links failed by a live
	// reconfiguration (see Reconfigure). The graph and all linkID-indexed
	// arrays keep the full topology's dense numbering forever; a failed
	// link simply vanishes from every routing candidate set, so no hot
	// path consults this overlay. Invariant: a down link's input VC slots
	// hold no non-sending packets and no reservations.
	linkDown []bool
	// scrDown is Reconfigure's scratch for the incoming down set (the
	// reconfig path is alloc-free; see the hotalloc root).
	scrDown []bool
}

// New builds a network from cfg (cfg is validated and defaulted).
func New(cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tab := cfg.Table
	if tab == nil {
		var err error
		tab, err = routing.NewTable(cfg.Graph, cfg.Mesh)
		if err != nil {
			return nil, err
		}
	}
	g := cfg.Graph
	n := &Network{
		cfg:       cfg,
		g:         g,
		tab:       tab,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		vcPerPort: cfg.VCsPerPort(),
		linkBusy:  make([]int64, g.NumLinks()),
		ejectBusy: make([]int64, g.N()),
		inLinks:   make([][]int, g.N()),
		outLinks:  make([][]int, g.N()),
	}
	n.linkVC = make([][]vcSlot, g.NumLinks())
	for i := range n.linkVC {
		n.linkVC[i] = make([]vcSlot, n.vcPerPort)
	}
	n.localVC = make([][]vcSlot, g.N())
	n.injQ = make([][]pktQueue, g.N())
	n.ejQ = make([][]pktQueue, g.N())
	n.occIn = make([]int32, g.N())
	n.ejDirty = make([]bool, g.N())
	n.wantOut = make([]int64, g.NumLinks())
	n.occLink = make([]int32, g.NumLinks())
	n.occLocal = make([]int32, g.N())
	n.linkDown = make([]bool, g.NumLinks())
	n.scrDown = make([]bool, g.NumLinks())
	n.eng = newEngine(&n.cfg)
	for r := 0; r < g.N(); r++ {
		n.localVC[r] = make([]vcSlot, n.vcPerPort)
		n.injQ[r] = make([]pktQueue, cfg.Classes)
		n.ejQ[r] = make([]pktQueue, cfg.Classes)
		for c := 0; c < cfg.Classes; c++ {
			// Pre-size the rings to their caps so bounded queues never
			// grow (and so Push never allocates) in steady state.
			n.injQ[r][c] = newPktQueue(cfg.InjectCap)
			n.ejQ[r][c] = newPktQueue(cfg.EjectCap)
		}
	}
	for _, l := range g.Links() {
		n.inLinks[l.To] = append(n.inLinks[l.To], l.ID)
		n.outLinks[l.From] = append(n.outLinks[l.From], l.ID)
	}
	n.Counters.VNFlits = make([]int64, cfg.VNets)
	n.Counters.VNActiveRouterCycles = make([]int64, cfg.VNets)
	n.Counters.vnRouterLastActive = make([][]int64, cfg.VNets)
	for vn := range n.Counters.vnRouterLastActive {
		row := make([]int64, g.N())
		for r := range row {
			row[r] = -1
		}
		n.Counters.vnRouterLastActive[vn] = row
	}
	if cfg.Engine == EngineParallel {
		// Safety net for leaked networks (e.g. the per-rate runners of a
		// load sweep): the worker goroutines do not retain the Network, so
		// an unreachable Network is collectable, and the finalizer stops
		// its pool. Explicit Close remains the deterministic path.
		runtime.SetFinalizer(n, (*Network).Close)
	}
	return n, nil
}

// Close releases resources owned by the cycle engine — for the parallel
// engine, its worker goroutines. Idempotent, and a no-op for the event
// and dense engines. The network remains usable afterwards: a stopped
// parallel engine steps through its inline serial path, still
// byte-identical.
func (n *Network) Close() {
	n.eng.stop()
}

// Config returns the network's (validated) configuration.
func (n *Network) Config() Config { return n.cfg }

// Graph returns the topology.
func (n *Network) Graph() *topology.Graph { return n.g }

// Table returns the routing table.
func (n *Network) Table() *routing.Table { return n.tab }

// Cycle returns the current simulation cycle.
func (n *Network) Cycle() int64 { return n.cycle }

// Frozen reports whether allocation is frozen (pre-drain credit freeze).
func (n *Network) Frozen() bool { return n.frozen }

// SetFrozen engages or releases the credit freeze: while frozen, no new
// VC/switch allocations or injections occur, but in-flight transfers
// complete (paper §III-C2 "Pre-Drain Window").
func (n *Network) SetFrozen(v bool) { n.frozen = v }

// InflightCount returns the number of transfers currently on links.
func (n *Network) InflightCount() int { return n.eng.inflightCount() }

// Engine returns which cycle-core implementation the network runs on.
func (n *Network) Engine() EngineKind { return n.cfg.Engine }

// NextWorkCycle returns a lower bound on the next cycle at which
// stepping the network could have any observable effect. The event
// engine reports the earliest pending event (math.MaxInt64 when the
// network is completely empty); the dense engine always reports the
// next cycle. Drivers combine this with their own horizon (traffic
// generators, scheme controllers) to fast-forward via SkipIdle.
func (n *Network) NextWorkCycle() int64 { return n.eng.nextWorkCycle(n) }

// SkipIdle advances the clock k cycles in one jump. The caller must
// have proven the whole window idle: every cycle skipped must satisfy
// cycle < NextWorkCycle() and see no injections or external mutations.
// k <= 0 is a no-op.
func (n *Network) SkipIdle(k int64) {
	if k <= 0 {
		return
	}
	n.eng.skipIdle(n, k)
	n.noteFFCycles(k)
}

// NewPacket returns a packet with position/IDs initialized; the caller
// sets protocol fields and passes it to Inject. The packet comes from
// the network's free-list when one is available (see pool.go) — every
// field is rewritten, so a recycled packet is indistinguishable from a
// fresh allocation.
func (n *Network) NewPacket(src, dst, class, flits int) *Packet {
	n.nextID++
	p := n.takePacket()
	*p = Packet{
		ID:        n.nextID,
		Src:       src,
		Dst:       dst,
		Class:     class,
		VNet:      n.cfg.VNetOf(class),
		Flits:     flits,
		CreatedAt: n.cycle,
		atRouter:  src,
		inLink:    LocalPort,
		slot:      -1,
	}
	return p
}

// CanInject reports whether router r's injection queue for class has room.
func (n *Network) CanInject(r, class int) bool {
	return n.cfg.InjectCap == 0 || n.injQ[r][class].Len() < n.cfg.InjectCap
}

// Inject queues p at its source router. It returns false (dropping
// nothing; the caller retries) when the injection queue is bounded and
// full.
func (n *Network) Inject(p *Packet) bool {
	if !n.CanInject(p.Src, p.Class) {
		return false
	}
	if p.Flits > n.cfg.MaxFlits {
		panic(fmt.Sprintf("noc: packet of %d flits exceeds MaxFlits %d", p.Flits, n.cfg.MaxFlits))
	}
	q := &n.injQ[p.Src][p.Class]
	if q.Len() == 0 {
		n.injPending++
		n.eng.noteInject(n, p.Src)
	}
	q.Push(p)
	n.Counters.Created++
	return true
}

// InjQueueLen returns the length of router r's class injection queue.
func (n *Network) InjQueueLen(r, class int) int { return n.injQ[r][class].Len() }

// EjectedLen returns the number of packets waiting in router r's class
// ejection queue.
func (n *Network) EjectedLen(r, class int) int { return n.ejQ[r][class].Len() }

// ejectSpace reports whether the class queue at r can accept one more.
func (n *Network) ejectSpace(r, class int) bool {
	return n.ejQ[r][class].Len() < n.cfg.EjectCap
}

// PopEjected removes and returns the oldest ejected packet of the class
// at router r, or nil if the queue is empty. The consumer (traffic sink
// or coherence controller) calls this; separate per-class consumption is
// what makes the paper's protocol-deadlock assumptions hold.
func (n *Network) PopEjected(r, class int) *Packet {
	return n.ejQ[r][class].Pop()
}

// PeekEjected returns the oldest ejected packet without removing it.
func (n *Network) PeekEjected(r, class int) *Packet {
	return n.ejQ[r][class].Peek()
}

// DiscardEjected empties every ejection queue, visiting only routers
// that ejected something since the last sweep, and recycles every
// drained packet into the free-list (the delivered packet's simulation
// life is over; statistics were taken at OnEject time). Synthetic-
// traffic sinks use it in place of a full router × class PopEjected
// scan; protocol consumers that need the packets keep using PopEjected
// (a router left dirty after manual pops is a harmless extra visit
// here) and may ReleasePacket themselves once done.
func (n *Network) DiscardEjected() {
	for _, r := range n.ejDirtyList {
		for c := range n.ejQ[r] {
			q := &n.ejQ[r][c]
			for p := q.Pop(); p != nil; p = q.Pop() {
				n.ReleasePacket(p)
			}
		}
		n.ejDirty[r] = false
	}
	n.ejDirtyList = n.ejDirtyList[:0]
}

// OccupiedVCs returns the number of link VC buffers currently holding
// packets (diagnostic).
func (n *Network) OccupiedVCs() int {
	c := 0
	for _, port := range n.linkVC {
		for i := range port {
			if port[i].pkt != nil {
				c++
			}
		}
	}
	return c
}

// InFlightPackets returns the total packets anywhere in the network:
// injection queues, VCs, and ejection queues. A packet mid-transfer on
// a link still occupies its upstream VC slot (land() frees it on
// completion), so the occupancy scan already covers every flight —
// counting n.inflights too would double-count packets in motion.
func (n *Network) InFlightPackets() int {
	total := 0
	for r := 0; r < n.g.N(); r++ {
		for c := 0; c < n.cfg.Classes; c++ {
			total += n.injQ[r][c].Len() + n.ejQ[r][c].Len()
		}
		for i := range n.localVC[r] {
			if n.localVC[r][i].pkt != nil {
				total++
			}
		}
	}
	return total + n.OccupiedVCs()
}

// EscapeOccupant returns the packet in link's escape VC for virtual
// network vn, or nil.
func (n *Network) EscapeOccupant(linkID, vn int) *Packet {
	return n.linkVC[linkID][n.cfg.EscapeSlot(vn)].pkt
}

// LinkOccupant returns the packet in the given link VC slot, or nil.
func (n *Network) LinkOccupant(linkID, slot int) *Packet {
	return n.linkVC[linkID][slot].pkt
}

// LocalOccupant returns the packet in the given local VC slot, or nil.
func (n *Network) LocalOccupant(router, slot int) *Packet {
	return n.localVC[router][slot].pkt
}
