package noc

import (
	"testing"

	"drain/internal/routing"
	"drain/internal/topology"
)

// InFlightPackets must count a packet in motion exactly once: while a
// transfer serializes, the packet sits in its upstream VC slot *and* in
// n.inflights, and the count once summed both (so conservation checks
// failed whenever a snapshot caught a link mid-transfer).
func TestInFlightPacketsCountsTransfersOnce(t *testing.T) {
	m, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Graph: m.Graph, VNets: 1, VCsPerVN: 2, Classes: 1,
		Routing: routing.AdaptiveMinimal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A multi-flit packet keeps the link busy for several cycles, so some
	// Step leaves it mid-transfer.
	if !n.Inject(n.NewPacket(0, 3, 0, 4)) {
		t.Fatal("inject failed")
	}
	sawTransfer := false
	for cyc := 0; cyc < 100; cyc++ {
		n.Step()
		if n.InflightCount() > 0 {
			sawTransfer = true
			if got := n.InFlightPackets(); got != 1 {
				t.Fatalf("cycle %d: InFlightPackets = %d mid-transfer, want 1", cyc, got)
			}
		}
		if n.PopEjected(3, 0) != nil {
			if got := n.InFlightPackets(); got != 0 {
				t.Fatalf("after delivery: InFlightPackets = %d, want 0", got)
			}
			if !sawTransfer {
				t.Fatal("packet delivered without ever appearing in a link transfer")
			}
			return
		}
	}
	t.Fatal("packet never delivered")
}
