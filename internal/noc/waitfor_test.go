package noc

import (
	"testing"

	"drain/internal/drainpath"
	"drain/internal/routing"
	"drain/internal/topology"
)

// ringNet builds an n-router ring with adaptive routing, 1 VN × 1 VC and
// no protection — the minimal configuration in which real routing
// deadlocks form.
func ringNet(t *testing.T, n int) *Network {
	t.Helper()
	g, err := topology.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	net, err := New(Config{
		Graph:        g,
		VNets:        1,
		VCsPerVN:     1,
		Classes:      1,
		Routing:      routing.AdaptiveMinimal,
		DerouteAfter: -1, // strict minimality: deadlocks form readily
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// plantPacket places a packet directly into a link VC buffer (white-box).
func plantPacket(t *testing.T, n *Network, from, to, dst, slot int) *Packet {
	t.Helper()
	l, ok := n.g.LinkID(from, to)
	if !ok {
		t.Fatalf("no link %d->%d", from, to)
	}
	if n.linkVC[l][slot].pkt != nil {
		t.Fatalf("slot %d of link %d->%d already occupied", slot, from, to)
	}
	p := n.NewPacket(from, dst, 0, 1)
	p.atRouter = to
	p.inLink = l
	p.slot = slot
	if n.cfg.PolicyEscape && n.cfg.IsEscapeSlot(slot) {
		p.InEscape = true
	}
	n.linkVC[l][slot].pkt = p
	n.occIn[to]++
	n.occLink[l]++
	n.eng.placed(n, to, p.readyAt)
	return p
}

// plantRingDeadlock fills every clockwise link buffer of an n-ring with a
// packet destined two hops further clockwise: each packet's only minimal
// output is the next clockwise link, which is occupied — a textbook
// routing deadlock.
func plantRingDeadlock(t *testing.T, n *Network, ringSize int) []*Packet {
	t.Helper()
	var pkts []*Packet
	for r := 0; r < ringSize; r++ {
		to := (r + 1) % ringSize
		dst := (r + 3) % ringSize // two hops beyond the buffer's router
		pkts = append(pkts, plantPacket(t, n, r, to, dst, 0))
	}
	return pkts
}

func TestEmptyNetworkHasNoDeadlock(t *testing.T) {
	n := ringNet(t, 6)
	if n.HasDeadlock(LivenessOpts{}) {
		t.Error("empty network reported deadlocked")
	}
	if got := n.AnalyzeLiveness(LivenessOpts{}); len(got) != 0 {
		t.Errorf("non-live refs in empty network: %v", got)
	}
	if c := n.FindBlockedCycle(LivenessOpts{}); c != nil {
		t.Errorf("cycle in empty network: %v", c)
	}
}

func TestPlantedRingDeadlockDetected(t *testing.T) {
	const ring = 6
	n := ringNet(t, ring)
	plantRingDeadlock(t, n, ring)
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !n.HasDeadlock(LivenessOpts{}) {
		t.Fatal("planted deadlock not detected")
	}
	nonLive := n.AnalyzeLiveness(LivenessOpts{})
	if len(nonLive) != ring {
		t.Errorf("non-live VCs = %d, want %d", len(nonLive), ring)
	}
	// Left alone, the network cannot make progress.
	n.Step()
	for i := 0; i < 50; i++ {
		n.Step()
	}
	if n.Counters.Hops != 0 || n.Counters.Ejected != 0 {
		t.Error("deadlocked packets moved without intervention")
	}
}

func TestSingleBlockedPacketIsLive(t *testing.T) {
	// A packet waiting on an occupied buffer that can itself drain is
	// live: no deadlock.
	n := ringNet(t, 6)
	plantPacket(t, n, 0, 1, 3, 0) // wants link 1->2
	plantPacket(t, n, 1, 2, 3, 0) // at 2, wants 2->3 which is free
	if n.HasDeadlock(LivenessOpts{}) {
		t.Error("live chain misreported as deadlock")
	}
}

func TestEjectQueueFullLiveness(t *testing.T) {
	n := ringNet(t, 6)
	// Packet at its destination with a full eject queue.
	p := plantPacket(t, n, 0, 1, 1, 0)
	for i := 0; i < n.cfg.EjectCap; i++ {
		n.ejQ[1][0].Push(n.NewPacket(0, 1, 0, 1))
	}
	// With ejection treated as a live sink, no deadlock.
	if n.HasDeadlock(LivenessOpts{}) {
		t.Error("sink-class packet misreported as deadlocked")
	}
	// With strict queue-space semantics, it is non-live.
	strict := LivenessOpts{EjectLiveByClass: []bool{false}}
	if !n.HasDeadlock(strict) {
		t.Error("full eject queue should be non-live under strict semantics")
	}
	_ = p
}

func TestFindBlockedCycleIsRotatable(t *testing.T) {
	const ring = 6
	n := ringNet(t, ring)
	plantRingDeadlock(t, n, ring)
	refs := n.FindBlockedCycle(LivenessOpts{})
	if len(refs) == 0 {
		t.Fatal("no cycle found in planted deadlock")
	}
	if err := n.RotateBlockedCycle(refs); err != nil {
		t.Fatalf("rotation rejected: %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// One rotation moves every deadlocked packet one hop closer (ring
	// deadlock: all moves are productive), so the deadlock breaks after
	// packets start reaching destinations.
	delivered := 0
	for i := 0; i < 200; i++ {
		n.Step()
		for r := 0; r < ring; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
		if !n.HasDeadlock(LivenessOpts{}) && n.InFlightPackets() == 0 {
			break
		}
		if n.HasDeadlock(LivenessOpts{}) {
			if refs := n.FindBlockedCycle(LivenessOpts{}); refs != nil {
				if err := n.RotateBlockedCycle(refs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if delivered != ring {
		t.Errorf("delivered %d of %d deadlocked packets", delivered, ring)
	}
}

func TestRotateBlockedCycleValidation(t *testing.T) {
	n := ringNet(t, 6)
	if err := n.RotateBlockedCycle(nil); err == nil {
		t.Error("empty cycle should fail")
	}
	l01, _ := n.g.LinkID(0, 1)
	l12, _ := n.g.LinkID(1, 2)
	// Empty buffers.
	if err := n.RotateBlockedCycle([]VCRef{{Link: l01}, {Link: l12}}); err == nil {
		t.Error("rotation of empty buffers should fail")
	}
	// Non-adjacent refs.
	plantPacket(t, n, 0, 1, 4, 0)
	l34, _ := n.g.LinkID(3, 4)
	plantPacket(t, n, 3, 4, 0, 0)
	if err := n.RotateBlockedCycle([]VCRef{{Link: l01}, {Link: l34}}); err == nil {
		t.Error("rotation across non-adjacent links should fail")
	}
}

func TestDrainRotateRequiresFreezeAndQuiesce(t *testing.T) {
	n := ringNet(t, 6)
	path, err := drainpath.FindEulerian(n.g)
	if err != nil {
		t.Fatal(err)
	}
	next := nextTable(path, n.g)
	if _, err := n.DrainRotate(next); err == nil {
		t.Error("drain without freeze should fail")
	}
	// In-flight packet blocks the drain.
	p := n.NewPacket(0, 3, 0, 5)
	n.Inject(p)
	for i := 0; i < 10 && !p.sending; i++ {
		n.Step()
	}
	n.SetFrozen(true)
	if _, err := n.DrainRotate(next); err == nil {
		t.Error("drain with in-flight transfer should fail")
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if _, err := n.DrainRotate(next); err != nil {
		t.Errorf("drain on quiesced frozen network failed: %v", err)
	}
}

func nextTable(p *drainpath.Path, g *topology.Graph) []int {
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = p.NextID(id)
	}
	return next
}

func TestDrainRotateBreaksPlantedDeadlock(t *testing.T) {
	const ring = 6
	n := ringNet(t, ring)
	pkts := plantRingDeadlock(t, n, ring)
	path, err := drainpath.FindEulerian(n.g)
	if err != nil {
		t.Fatal(err)
	}
	next := nextTable(path, n.g)
	n.SetFrozen(true)
	deadline := 4 * ring // drains needed is bounded by the cycle length
	for i := 0; i < deadline && n.HasDeadlock(LivenessOpts{}); i++ {
		if _, err := n.DrainRotate(next); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if n.HasDeadlock(LivenessOpts{}) {
		t.Fatal("drain rotations did not break the deadlock")
	}
	n.SetFrozen(false)
	// All packets must now drain out under normal operation (with
	// further drains if the deadlock re-forms).
	delivered := 0
	for i := 0; i < 500 && delivered < len(pkts); i++ {
		n.Step()
		for r := 0; r < ring; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				delivered++
			}
		}
		if i%20 == 19 && n.HasDeadlock(LivenessOpts{}) {
			n.SetFrozen(true)
			if _, err := n.DrainRotate(next); err != nil {
				t.Fatal(err)
			}
			n.SetFrozen(false)
		}
	}
	if delivered != len(pkts) {
		t.Errorf("delivered %d of %d", delivered, len(pkts))
	}
}

func TestFullDrainEjectsEverything(t *testing.T) {
	const ring = 6
	n := ringNet(t, ring)
	plantRingDeadlock(t, n, ring)
	path, err := drainpath.FindEulerian(n.g)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFrozen(true)
	rep, err := n.FullDrain(nextTable(path, n.g))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ejected != ring {
		t.Errorf("full drain ejected %d, want %d", rep.Ejected, ring)
	}
	if n.OccupiedVCs() != 0 {
		t.Errorf("%d VCs still occupied after full drain", n.OccupiedVCs())
	}
	for _, c := range n.Counters.VNFlits {
		if c == 0 {
			t.Error("drain moves not accounted in VN activity")
		}
	}
}

func TestDrainRotateOnMeshWithEscapePolicy(t *testing.T) {
	// DRAIN's real configuration: escape policy with unrestricted escape
	// routing on a mesh; drains must only touch escape VCs.
	m := topology.MustMesh(3, 3)
	n, err := New(Config{
		Graph: m.Graph, Mesh: m,
		VNets: 1, VCsPerVN: 2, Classes: 1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.AdaptiveMinimal,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Escape slot occupant and a non-escape occupant on the same link.
	esc := plantPacket(t, n, 0, 1, 5, 0)
	non := plantPacket(t, n, 0, 1, 5, 1)
	path, err := drainpath.FindEulerian(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	n.SetFrozen(true)
	rep, err := n.DrainRotate(nextTable(path, m.Graph))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved+rep.Ejected != 1 {
		t.Errorf("drain affected %d packets, want 1 (escape only)", rep.Moved+rep.Ejected)
	}
	if non.Hops != 0 {
		t.Error("non-escape packet was drained")
	}
	if esc.Hops != 1 && esc.EjectedAt == 0 {
		t.Error("escape packet did not move")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveNetworkDeadlocksUnderSaturation(t *testing.T) {
	// The paper's motivating observation: unprotected fully adaptive
	// routing deadlocks under load (Fig. 3 uses exactly this setup).
	g := topology.MustMesh(4, 4).Graph
	n, err := New(Config{
		Graph: g, VNets: 1, VCsPerVN: 1, Classes: 1,
		Routing: routing.AdaptiveMinimal, Seed: 5, EjectCap: 2,
		DerouteAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rngDst := func(c, r int) int {
		d := (r*7 + c*13 + 5) % 16
		if d == r {
			d = (d + 1) % 16
		}
		return d
	}
	deadlocked := false
	for c := 0; c < 4000 && !deadlocked; c++ {
		for r := 0; r < 16; r++ {
			n.Inject(n.NewPacket(r, rngDst(c, r), 0, 1))
		}
		n.Step()
		for r := 0; r < 16; r++ {
			n.PopEjected(r, 0)
		}
		if c%50 == 0 {
			deadlocked = n.HasDeadlock(LivenessOpts{})
		}
	}
	if !deadlocked {
		t.Error("saturated unprotected adaptive 4x4 with 1 VC never deadlocked")
	}
}
