package noc

import "drain/internal/routing"

// Wait-for / liveness analysis over link VC buffers.
//
// A VC buffer is *live* when its packet can eventually move: it is empty,
// its packet is already departing, it can eject, or one of the buffers it
// is allowed to move into is free or live. The least fixpoint of this
// relation separates buffers that can make progress (given cooperative
// scheduling) from buffers caught in a resource deadlock: every allowed
// successor of a non-live buffer is occupied by another non-live packet.
//
// This is the oracle the simulator uses to *measure* deadlocks (paper
// Fig. 3), the detector SPIN's timeout probes resolve against, and the
// source of the blocked cycles that forced-movement recovery rotates.

// LivenessOpts configures the analysis.
type LivenessOpts struct {
	// EjectLiveByClass[c] treats ejection of class c as always eventually
	// possible (a protocol "sink" class, or synthetic traffic that is
	// always consumed). nil means every class's ejection is a live sink;
	// otherwise classes not listed live only if their queue currently has
	// space.
	EjectLiveByClass []bool
}

func (o LivenessOpts) ejectLive(n *Network, router, class int) bool {
	if o.EjectLiveByClass == nil {
		return true
	}
	if class < len(o.EjectLiveByClass) && o.EjectLiveByClass[class] {
		return true
	}
	return n.ejectSpace(router, class)
}

// AnalyzeLiveness returns the non-live link VC buffers (empty slice when
// the network is deadlock-free at this instant).
func (n *Network) AnalyzeLiveness(opts LivenessOpts) []VCRef {
	live, _ := n.liveness(opts)
	var out []VCRef
	for l := 0; l < n.g.NumLinks(); l++ {
		for s := 0; s < n.vcPerPort; s++ {
			if !live[l*n.vcPerPort+s] {
				out = append(out, VCRef{Link: l, Slot: s})
			}
		}
	}
	return out
}

// HasDeadlock reports whether any link VC is non-live.
func (n *Network) HasDeadlock(opts LivenessOpts) bool {
	live, all := n.liveness(opts)
	for i := 0; i < all; i++ {
		if !live[i] {
			return true
		}
	}
	return false
}

// liveness computes the live bit for every link VC slot (flat index
// link*vcPerPort+slot) and returns the slice plus its length.
func (n *Network) liveness(opts LivenessOpts) ([]bool, int) {
	total := n.g.NumLinks() * n.vcPerPort
	live := make([]bool, total)
	// Forward move targets per slot; built once, reversed for propagation.
	targets := make([][]int, total)
	queue := make([]int, 0, total)
	markLive := func(i int) {
		if !live[i] {
			live[i] = true
			queue = append(queue, i)
		}
	}

	for l := 0; l < n.g.NumLinks(); l++ {
		router := n.g.Link(l).To
		for s := 0; s < n.vcPerPort; s++ {
			i := l*n.vcPerPort + s
			slot := &n.linkVC[l][s]
			p := slot.pkt
			if p == nil || p.sending {
				// Empty, reserved (an arriving packet is moving), or
				// departing: all count as making progress.
				markLive(i)
				continue
			}
			if p.Dst == router {
				if opts.ejectLive(n, router, p.Class) {
					markLive(i)
				}
				continue // eject is the only option at the destination
			}
			targets[i] = n.moveTargets(p, router, nil)
			for _, t := range targets[i] {
				if n.linkVC[t/n.vcPerPort][t%n.vcPerPort].free() {
					markLive(i)
					break
				}
			}
		}
	}

	// Reverse adjacency: rev[t] = slots that may move into t.
	rev := make([][]int32, total)
	for i, ts := range targets {
		for _, t := range ts {
			rev[t] = append(rev[t], int32(i))
		}
	}
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range rev[t] {
			markLive(int(i))
		}
	}
	return live, total
}

// moveTargets lists the flat slot indices packet p (at router, in a link
// VC) is allowed to move into, ignoring transient busy state.
func (n *Network) moveTargets(p *Packet, router int, buf []int) []int {
	base := p.VNet * n.cfg.VCsPerVN
	appendFor := func(out int, escape bool) {
		if escape {
			buf = append(buf, out*n.vcPerPort+base)
			return
		}
		start := base
		if n.cfg.PolicyEscape {
			start = base + 1
		}
		for s := start; s < base+n.cfg.VCsPerVN; s++ {
			buf = append(buf, out*n.vcPerPort+s)
		}
	}
	// Eventual-move semantics: adaptive packets can deroute over any
	// output once stalled, so liveness must consider every output.
	// Productive outputs are listed first: FindBlockedCycle follows the
	// first blocked target, so extracted cycles track the packets'
	// *desired* moves (as SPIN's probes do) and forced rotations make
	// real forward progress. The returned sets are the routing table's
	// shared read-only slices and are only iterated here.
	cands := func(k routing.Kind, phase bool) []routing.Candidate {
		if n.cfg.DerouteAfter > 0 && k == routing.AdaptiveMinimal {
			return n.tab.AllOutputsPreferProductive(router, p.Dst)
		}
		return n.tab.Candidates(k, router, p.Dst, phase)
	}
	if n.cfg.PolicyEscape {
		if !p.InEscape {
			for _, c := range cands(n.cfg.Routing, p.DownPhase) {
				appendFor(c.LinkID, false)
			}
		}
		escPhase := p.DownPhase
		if !p.InEscape {
			escPhase = false
		}
		for _, c := range cands(n.cfg.EscapeRouting, escPhase) {
			appendFor(c.LinkID, true)
		}
	} else {
		for _, c := range cands(n.cfg.Routing, p.DownPhase) {
			appendFor(c.LinkID, false)
		}
	}
	return buf
}

// FindBlockedCycle extracts one cycle of mutually blocked VC buffers from
// the current deadlock, or nil if the network is deadlock-free. The
// returned refs satisfy RotateBlockedCycle's preconditions: consecutive
// refs share a router, every ref is occupied, and each packet is allowed
// to move into its successor buffer.
func (n *Network) FindBlockedCycle(opts LivenessOpts) []VCRef {
	live, total := n.liveness(opts)
	start := -1
	for i := 0; i < total; i++ {
		if !live[i] {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}
	// Walk non-live successors until a slot repeats.
	visited := make(map[int]int) // flat index -> position in walk
	var walk []int
	cur := start
	for {
		if pos, seen := visited[cur]; seen {
			cycle := walk[pos:]
			refs := make([]VCRef, len(cycle))
			for i, idx := range cycle {
				refs[i] = VCRef{Link: idx / n.vcPerPort, Slot: idx % n.vcPerPort}
			}
			return refs
		}
		visited[cur] = len(walk)
		walk = append(walk, cur)
		p := n.linkVC[cur/n.vcPerPort][cur%n.vcPerPort].pkt
		if p == nil {
			return nil // raced with movement; caller retries later
		}
		next := -1
		for _, t := range n.moveTargets(p, n.g.Link(cur/n.vcPerPort).To, nil) {
			if !live[t] {
				next = t
				break
			}
		}
		if next < 0 {
			// Dead end: the packet's only blocked option is ejection
			// (possible when eject queues are not treated as live).
			return nil
		}
		cur = next
	}
}
