package noc

import (
	"errors"
	"fmt"
)

// VCRef identifies one link VC buffer (the escape or ordinary VC at the
// input port fed by Link).
type VCRef struct {
	Link int
	Slot int
}

// ErrNotQuiesced is returned when a rotation is attempted while link
// transfers are still in flight (the pre-drain window must complete
// first).
var ErrNotQuiesced = errors.New("noc: network has in-flight transfers; pre-drain incomplete")

// DrainReport summarizes one drain rotation.
type DrainReport struct {
	Moved   int // packets forced one hop
	Ejected int // packets that reached their destination and left
}

// DrainRotate forces every packet in every escape VC one hop along the
// drain path: next[linkID] is the successor link. The rotation is a
// simultaneous permutation, so it always succeeds; packets landing at
// their destination router eject when the class queue has room (paper
// §III-C2 "Drain Window"). The network must be frozen and quiesced.
func (n *Network) DrainRotate(next []int) (DrainReport, error) {
	var rep DrainReport
	if !n.frozen {
		return rep, errors.New("noc: DrainRotate requires a frozen network")
	}
	if n.eng.inflightCount() > 0 {
		return rep, ErrNotQuiesced
	}
	if len(next) != n.g.NumLinks() {
		return rep, fmt.Errorf("noc: drain path covers %d links, topology has %d", len(next), n.g.NumLinks())
	}
	for vn := 0; vn < n.cfg.VNets; vn++ {
		slot := n.cfg.EscapeSlot(vn)
		moved := make([]*Packet, n.g.NumLinks()) // new occupant per link
		for l := 0; l < n.g.NumLinks(); l++ {
			p := n.linkVC[l][slot].pkt
			if p == nil {
				continue
			}
			d := next[l]
			target := n.g.Link(d)
			oldRouter := p.atRouter
			n.occIn[oldRouter]--
			n.occLink[l]--
			p.Hops++
			p.DrainHops++
			n.Counters.Hops++
			n.Counters.DrainMoves++
			n.Counters.LinkFlits += int64(p.Flits)
			n.Counters.noteVNActivity(p.VNet, target.To, n.cycle, int64(p.Flits))
			if n.tab.Dist(target.To, p.Dst) >= n.tab.Dist(oldRouter, p.Dst) {
				p.Misroutes++
				n.Counters.Misroutes++
			}
			if p.Dst == target.To && n.ejectSpace(target.To, p.Class) {
				n.pushEject(target.To, p)
				rep.Ejected++
				continue
			}
			n.occIn[target.To]++
			n.occLink[d]++
			p.atRouter = target.To
			p.inLink = d
			p.slot = slot
			p.readyAt = n.cycle + int64(n.cfg.RouterLatency)
			n.eng.placed(n, target.To, p.readyAt)
			// A forced turn invalidates any up*/down* phase bookkeeping;
			// DRAIN's escape VC is unrestricted so the phase restarts.
			p.DownPhase = false
			moved[d] = p
			rep.Moved++
		}
		for l := 0; l < n.g.NumLinks(); l++ {
			n.linkVC[l][slot].pkt = moved[l]
		}
	}
	return rep, nil
}

// FullDrain rotates the complete drain path length, giving every escape-VC
// packet the chance to visit all routers and eject at its destination
// (paper §III-C2 "Full Drain"). Returns the aggregate report.
func (n *Network) FullDrain(next []int) (DrainReport, error) {
	var total DrainReport
	for i := 0; i < len(next); i++ {
		rep, err := n.DrainRotate(next)
		if err != nil {
			return total, err
		}
		total.Moved += rep.Moved
		total.Ejected += rep.Ejected
		if rep.Moved == 0 {
			break // nothing left in escape VCs
		}
	}
	return total, nil
}

// RotateBlockedCycle forces the packets occupying the given cyclic chain
// of VC buffers to each move one hop into the next buffer (SPIN's
// coordinated forced movement). refs[i]'s packet moves into refs[i+1];
// the last moves into refs[0]. All refs must be occupied by non-moving
// packets, and consecutive refs must be joined by a legal turn.
func (n *Network) RotateBlockedCycle(refs []VCRef) error {
	if len(refs) < 2 {
		return errors.New("noc: rotation cycle needs at least 2 VCs")
	}
	pkts := make([]*Packet, len(refs))
	for i, ref := range refs {
		p := n.linkVC[ref.Link][ref.Slot].pkt
		if p == nil {
			return fmt.Errorf("noc: cycle position %d (%v) is empty", i, ref)
		}
		if p.sending {
			return fmt.Errorf("noc: cycle position %d (%v) holds a moving packet", i, ref)
		}
		nxt := refs[(i+1)%len(refs)]
		if n.g.Link(nxt.Link).From != n.g.Link(ref.Link).To {
			return fmt.Errorf("noc: cycle positions %d→%d are not joined by a turn", i, i+1)
		}
		pkts[i] = p
	}
	for i := range refs {
		nxt := refs[(i+1)%len(refs)]
		p := pkts[i]
		target := n.g.Link(nxt.Link)
		if n.tab.Dist(target.To, p.Dst) >= n.tab.Dist(p.atRouter, p.Dst) {
			p.Misroutes++
			n.Counters.Misroutes++
		}
		n.occIn[p.atRouter]--
		n.occIn[target.To]++
		p.atRouter = target.To
		p.inLink = nxt.Link
		p.slot = nxt.Slot
		p.readyAt = n.cycle + int64(n.cfg.RouterLatency)
		n.eng.placed(n, target.To, p.readyAt)
		p.Hops++
		p.SpinHops++
		p.DownPhase = false
		n.Counters.Hops++
		n.Counters.SpinMoves++
		n.Counters.LinkFlits += int64(p.Flits)
		n.Counters.noteVNActivity(p.VNet, target.To, n.cycle, int64(p.Flits))
	}
	for i, ref := range refs {
		prev := pkts[(i-1+len(pkts))%len(pkts)]
		n.linkVC[ref.Link][ref.Slot].pkt = prev
	}
	return nil
}
