package noc

import "sync/atomic"

// simCycles counts simulated cycles across every Network in the
// process, for the drainserved /metrics throughput gauge. Networks
// batch their ticks locally (cyclesPending) and flush in chunks so the
// hot loop touches the shared counter at most once per cycleFlushEvery
// cycles.
var simCycles atomic.Int64

const cycleFlushEvery = 1024

// SimulatedCycles returns the total number of cycles simulated by all
// Networks process-wide (modulo per-Network unflushed remainders of
// less than cycleFlushEvery cycles).
func SimulatedCycles() int64 { return simCycles.Load() }

// noteCycles credits k simulated cycles to the process-wide counter,
// batching through the per-Network pending count.
func (n *Network) noteCycles(k int64) {
	n.cyclesPending += k
	if n.cyclesPending >= cycleFlushEvery {
		simCycles.Add(n.cyclesPending)
		n.cyclesPending = 0
	}
}

// simFFCycles counts the subset of simulated cycles covered by idle
// fast-forward (SkipIdle) rather than stepped, process-wide. Together
// with SimulatedCycles it makes the skipped-idle fraction observable
// per deployment — whether the fast-forward machinery ever fires on
// production traffic, not just in benchmarks.
var simFFCycles atomic.Int64

// SimFastForwardCycles returns the total number of cycles all Networks
// process-wide covered via idle fast-forward (modulo per-Network
// unflushed remainders of less than cycleFlushEvery cycles).
func SimFastForwardCycles() int64 { return simFFCycles.Load() }

// noteFFCycles credits k fast-forwarded cycles, batched like noteCycles.
func (n *Network) noteFFCycles(k int64) {
	n.ffPending += k
	if n.ffPending >= cycleFlushEvery {
		simFFCycles.Add(n.ffPending)
		n.ffPending = 0
	}
}
