package noc

import "sync/atomic"

// simCycles counts simulated cycles across every Network in the
// process, for the drainserved /metrics throughput gauge. Networks
// batch their ticks locally (cyclesPending) and flush in chunks so the
// hot loop touches the shared counter at most once per cycleFlushEvery
// cycles.
var simCycles atomic.Int64

const cycleFlushEvery = 1024

// SimulatedCycles returns the total number of cycles simulated by all
// Networks process-wide (modulo per-Network unflushed remainders of
// less than cycleFlushEvery cycles).
func SimulatedCycles() int64 { return simCycles.Load() }

// noteCycles credits k simulated cycles to the process-wide counter,
// batching through the per-Network pending count.
func (n *Network) noteCycles(k int64) {
	n.cyclesPending += k
	if n.cyclesPending >= cycleFlushEvery {
		simCycles.Add(n.cyclesPending)
		n.cyclesPending = 0
	}
}
