package noc

import (
	"testing"

	"drain/internal/routing"
	"drain/internal/topology"
)

// meshNet builds a small XY-routed network (deadlock-free baseline used
// by the functional tests).
func meshNet(t *testing.T, w, h int, mutate func(*Config)) *Network {
	t.Helper()
	m := topology.MustMesh(w, h)
	cfg := Config{
		Graph:    m.Graph,
		Mesh:     m,
		VNets:    1,
		VCsPerVN: 2,
		Classes:  1,
		Routing:  routing.XY,
		Seed:     42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runUntilEjected steps the network until the packet count has been
// ejected (and consumed) or maxCycles elapse; returns ejected packets.
func runUntilEjected(t *testing.T, n *Network, want, maxCycles int) []*Packet {
	t.Helper()
	var got []*Packet
	for c := 0; c < maxCycles && len(got) < want; c++ {
		n.Step()
		for r := 0; r < n.Graph().N(); r++ {
			for cl := 0; cl < n.Config().Classes; cl++ {
				for p := n.PopEjected(r, cl); p != nil; p = n.PopEjected(r, cl) {
					got = append(got, p)
				}
			}
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", n.Cycle(), err)
		}
	}
	return got
}

func TestSinglePacketDelivery(t *testing.T) {
	n := meshNet(t, 4, 4, nil)
	p := n.NewPacket(0, 15, 0, 1)
	if !n.Inject(p) {
		t.Fatal("inject failed")
	}
	got := runUntilEjected(t, n, 1, 200)
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if got[0] != p {
		t.Fatal("wrong packet delivered")
	}
	if p.Hops != 6 {
		t.Errorf("hops = %d, want 6 (XY is minimal)", p.Hops)
	}
	if p.Misroutes != 0 {
		t.Errorf("misroutes = %d, want 0", p.Misroutes)
	}
	if p.EjectedAt <= p.InjectedAt {
		t.Errorf("ejected at %d, injected at %d", p.EjectedAt, p.InjectedAt)
	}
	if n.InFlightPackets() != 0 {
		t.Errorf("network still holds %d packets", n.InFlightPackets())
	}
}

func TestZeroLoadLatencyScalesWithDistance(t *testing.T) {
	// One hop costs routerLatency + flits serialization; total latency
	// must grow linearly in hop count at zero load.
	lat := func(dst int) int64 {
		n := meshNet(t, 8, 1, nil)
		p := n.NewPacket(0, dst, 0, 1)
		n.Inject(p)
		got := runUntilEjected(t, n, 1, 500)
		if len(got) != 1 {
			t.Fatalf("packet to %d not delivered", dst)
		}
		return p.NetworkLatency()
	}
	l1, l3, l7 := lat(1), lat(3), lat(7)
	if !(l1 < l3 && l3 < l7) {
		t.Errorf("latencies not increasing: %d, %d, %d", l1, l3, l7)
	}
	// Per-hop increments must be constant at zero load.
	if (l7-l3)/4 != (l3-l1)/2 {
		t.Errorf("per-hop latency not constant: %d vs %d", (l7-l3)/4, (l3-l1)/2)
	}
}

func TestLargePacketSerialization(t *testing.T) {
	small := meshNet(t, 2, 1, nil)
	p1 := small.NewPacket(0, 1, 0, 1)
	small.Inject(p1)
	runUntilEjected(t, small, 1, 100)

	big := meshNet(t, 2, 1, nil)
	p5 := big.NewPacket(0, 1, 0, 5)
	big.Inject(p5)
	runUntilEjected(t, big, 1, 100)

	if p5.NetworkLatency() <= p1.NetworkLatency() {
		t.Errorf("5-flit latency %d not greater than 1-flit latency %d",
			p5.NetworkLatency(), p1.NetworkLatency())
	}
}

func TestManyPacketsConservation(t *testing.T) {
	n := meshNet(t, 4, 4, nil)
	const total = 300
	injected := 0
	var delivered []*Packet
	for c := 0; c < 5000 && len(delivered) < total; c++ {
		if injected < total {
			src := injected % 16
			dst := (injected * 7) % 16
			if dst == src {
				dst = (dst + 1) % 16
			}
			if n.Inject(n.NewPacket(src, dst, 0, 5)) {
				injected++
			}
		}
		n.Step()
		for r := 0; r < 16; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
				if p.Dst != r {
					t.Fatalf("packet %d ejected at %d, dst %d", p.ID, r, p.Dst)
				}
				delivered = append(delivered, p)
			}
		}
	}
	if len(delivered) != total {
		t.Fatalf("delivered %d of %d packets", len(delivered), total)
	}
	if n.InFlightPackets() != 0 {
		t.Errorf("%d packets still in network", n.InFlightPackets())
	}
	if n.Counters.Ejected != total || n.Counters.Injected != total {
		t.Errorf("counters: injected %d ejected %d, want %d",
			n.Counters.Injected, n.Counters.Ejected, total)
	}
}

func TestFreezeStopsAllocation(t *testing.T) {
	n := meshNet(t, 4, 1, nil)
	p := n.NewPacket(0, 3, 0, 1)
	n.Inject(p)
	n.Step() // packet enters local VC
	n.SetFrozen(true)
	for i := 0; i < 20; i++ {
		n.Step()
	}
	if n.Counters.Hops != 0 {
		t.Error("packet moved across links while frozen")
	}
	if p.EjectedAt != 0 {
		t.Error("packet ejected while frozen")
	}
	n.SetFrozen(false)
	got := runUntilEjected(t, n, 1, 100)
	if len(got) != 1 {
		t.Fatal("packet not delivered after unfreeze")
	}
}

func TestFreezeLetsInFlightComplete(t *testing.T) {
	n := meshNet(t, 2, 1, nil)
	p := n.NewPacket(0, 1, 0, 5)
	n.Inject(p)
	// Step until the packet is on the link (sending).
	for i := 0; i < 10 && !p.sending; i++ {
		n.Step()
	}
	if !p.sending {
		t.Fatal("packet never started sending")
	}
	n.SetFrozen(true)
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.InflightCount() != 0 {
		t.Error("in-flight transfer did not complete during freeze")
	}
	if p.sending {
		t.Error("packet still marked sending")
	}
}

func TestEjectQueueCapacityBlocks(t *testing.T) {
	n := meshNet(t, 2, 1, func(c *Config) { c.EjectCap = 1 })
	// Two packets to the same destination; without consumption, only one
	// can sit in the eject queue.
	a := n.NewPacket(0, 1, 0, 1)
	b := n.NewPacket(0, 1, 0, 1)
	n.Inject(a)
	n.Inject(b)
	for i := 0; i < 100; i++ {
		n.Step()
	}
	if got := n.EjectedLen(1, 0); got != 1 {
		t.Fatalf("eject queue holds %d, want 1", got)
	}
	// Consuming frees space; the second packet arrives.
	if p := n.PopEjected(1, 0); p == nil {
		t.Fatal("pop failed")
	}
	for i := 0; i < 100 && n.EjectedLen(1, 0) == 0; i++ {
		n.Step()
	}
	if n.EjectedLen(1, 0) != 1 {
		t.Fatal("second packet never ejected after consumption")
	}
}

func TestInjectCapBoundsQueue(t *testing.T) {
	n := meshNet(t, 2, 1, func(c *Config) { c.InjectCap = 2 })
	ok := 0
	for i := 0; i < 5; i++ {
		if n.Inject(n.NewPacket(0, 1, 0, 1)) {
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("accepted %d injections, want 2", ok)
	}
	if !n.CanInject(1, 0) {
		t.Error("other router's queue should accept")
	}
}

func TestVNetSeparation(t *testing.T) {
	n := meshNet(t, 4, 1, func(c *Config) {
		c.VNets = 3
		c.VCsPerVN = 2
		c.Classes = 3
	})
	pkts := make([]*Packet, 3)
	for cl := 0; cl < 3; cl++ {
		pkts[cl] = n.NewPacket(0, 3, cl, 1)
		if pkts[cl].VNet != cl {
			t.Fatalf("class %d mapped to VN %d", cl, pkts[cl].VNet)
		}
		n.Inject(pkts[cl])
	}
	got := runUntilEjected(t, n, 3, 300)
	if len(got) != 3 {
		t.Fatalf("delivered %d of 3", len(got))
	}
}

func TestClassToVNetFolding(t *testing.T) {
	cfg := Config{VNets: 1, Classes: 3}
	if cfg.VNetOf(0) != 0 || cfg.VNetOf(1) != 0 || cfg.VNetOf(2) != 0 {
		t.Error("with 1 VN all classes must fold onto VN 0")
	}
	cfg.VNets = 3
	if cfg.VNetOf(2) != 2 {
		t.Error("with 3 VNs class 2 must use VN 2")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil graph should fail")
	}
	disc := topology.MustNew(4, []topology.Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if _, err := New(Config{Graph: disc}); err == nil {
		t.Error("disconnected graph should fail")
	}
	g := topology.MustMesh(2, 2).Graph
	if _, err := New(Config{Graph: g, Routing: routing.XY}); err == nil {
		t.Error("XY without mesh should fail")
	}
}

func TestEscapePacketsStayInEscape(t *testing.T) {
	// Saturate a small network with escape policy so escape VCs get used,
	// then check the invariant continuously (CheckInvariants enforces it).
	m := topology.MustMesh(3, 3)
	n, err := New(Config{
		Graph: m.Graph, Mesh: m,
		VNets: 1, VCsPerVN: 2, Classes: 1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.XY,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sawEscape := false
	injected := 0
	for c := 0; c < 3000; c++ {
		for r := 0; r < 9; r++ {
			if injected < 600 {
				dst := (r + 1 + c) % 9
				if dst != r && n.Inject(n.NewPacket(r, dst, 0, 1)) {
					injected++
				}
			}
		}
		n.Step()
		for l := 0; l < m.NumLinks(); l++ {
			if p := n.EscapeOccupant(l, 0); p != nil && p.InEscape {
				sawEscape = true
			}
		}
		for r := 0; r < 9; r++ {
			for p := n.PopEjected(r, 0); p != nil; p = n.PopEjected(r, 0) {
			}
		}
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
	if !sawEscape {
		t.Error("escape VCs never used under saturation")
	}
}
