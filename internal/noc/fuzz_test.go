package noc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/drainpath"
	"drain/internal/routing"
	"drain/internal/topology"
)

// TestConservationUnderRandomConfigs is the simulator's strongest net:
// random topologies, random VC structure, random traffic and periodic
// drains — no packet may ever be lost, duplicated or misdelivered, and
// the internal invariants must hold throughout.
func TestConservationUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
		nNodes := int(nRaw%12) + 4
		g, err := topology.NewRandomConnected(nNodes, int(seed%7), rng)
		if err != nil {
			return false
		}
		vnets := int(vnRaw%2) + 1
		vcs := int(vcRaw%3) + 1
		cfg := Config{
			Graph: g, VNets: vnets, VCsPerVN: vcs, Classes: vnets,
			Routing: routing.AdaptiveMinimal,
			Seed:    seed,
		}
		if escRaw%2 == 0 {
			cfg.PolicyEscape = true
			cfg.EscapeRouting = routing.AdaptiveMinimal
			cfg.NonStickyEscape = escRaw%4 == 0
		}
		net, err := New(cfg)
		if err != nil {
			return false
		}
		path, err := drainpath.FindEulerian(g)
		if err != nil {
			return false
		}
		next := make([]int, g.NumLinks())
		for id := range next {
			next[id] = path.NextID(id)
		}

		created, delivered := 0, 0
		seen := map[int64]bool{}
		const horizon = 1200
		for cyc := 0; cyc < horizon; cyc++ {
			if cyc < horizon/2 && rng.Float64() < 0.5 {
				src := rng.IntN(nNodes)
				dst := rng.IntN(nNodes)
				if dst != src {
					class := rng.IntN(vnets)
					flits := 1 + rng.IntN(5)
					if net.Inject(net.NewPacket(src, dst, class, flits)) {
						created++
					}
				}
			}
			// Occasional drain window (keeps escape VCs moving and
			// exercises the rotation path under live traffic).
			if cfg.PolicyEscape && cyc%150 == 100 {
				net.SetFrozen(true)
			}
			net.Step()
			if cfg.PolicyEscape && cyc%150 == 110 && net.InflightCount() == 0 {
				if _, err := net.DrainRotate(next); err != nil {
					return false
				}
				net.SetFrozen(false)
			}
			if cfg.PolicyEscape && cyc%150 == 130 && net.Frozen() {
				// Quiesce took longer than 10 cycles; release anyway.
				if net.InflightCount() == 0 {
					if _, err := net.DrainRotate(next); err != nil {
						return false
					}
				}
				net.SetFrozen(false)
			}
			for r := 0; r < nNodes; r++ {
				for c := 0; c < vnets; c++ {
					for p := net.PopEjected(r, c); p != nil; p = net.PopEjected(r, c) {
						if p.Dst != r || seen[p.ID] {
							return false
						}
						seen[p.ID] = true
						delivered++
					}
				}
			}
			if cyc%16 == 0 {
				if err := net.CheckInvariants(); err != nil {
					t.Logf("seed=%d: %v", seed, err)
					return false
				}
			}
		}
		// Conservation: every created packet is delivered or still in the
		// system (deadlocks can strand packets; none may vanish).
		return delivered+net.InFlightPackets() == created
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDrainRotationIsPermutation: rotating a fully loaded escape layer
// conserves every packet (no overwrite at any fan-in).
func TestDrainRotationIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0xabcd))
		nNodes := int(nRaw%10) + 4
		g, err := topology.NewRandomConnected(nNodes, 4, rng)
		if err != nil {
			return false
		}
		net, err := New(Config{
			Graph: g, VNets: 1, VCsPerVN: 1, Classes: 1,
			PolicyEscape:  true,
			Routing:       routing.AdaptiveMinimal,
			EscapeRouting: routing.AdaptiveMinimal,
			EjectCap:      1,
			Seed:          seed,
		})
		if err != nil {
			return false
		}
		// Fill EVERY escape buffer.
		for _, l := range g.Links() {
			if _, err := net.PlacePacket(l.From, l.To, rng.IntN(nNodes), 0); err != nil {
				return false
			}
		}
		path, err := drainpath.FindEulerian(g)
		if err != nil {
			return false
		}
		next := make([]int, g.NumLinks())
		for id := range next {
			next[id] = path.NextID(id)
		}
		before := net.InFlightPackets()
		net.SetFrozen(true)
		rep, err := net.DrainRotate(next)
		if err != nil {
			return false
		}
		if net.CheckInvariants() != nil {
			return false
		}
		// All packets accounted for: moved + ejected == total, and the
		// network still holds total (ejections moved to queues).
		if rep.Moved+rep.Ejected != g.NumLinks() {
			return false
		}
		return net.InFlightPackets() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
