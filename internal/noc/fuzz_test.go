package noc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/drainpath"
	"drain/internal/routing"
	"drain/internal/topology"
)

// errSkip marks an input that produced no simulable configuration
// (e.g. the random graph could not be built); not a property violation.
var errSkip = errors.New("uninteresting input")

// buildReconfig computes what a live topology change needs: the routing
// table over the active subgraph with candidates remapped into full's
// link-ID space, and the drain turn-table in full's link-ID space with
// -1 for failed links (exactly what core.Controller.Reconfigure
// produces).
func buildReconfig(active, full *topology.Graph) (*routing.Table, []int, error) {
	tab, err := routing.NewTableRemapped(active, full, 0)
	if err != nil {
		return nil, nil, err
	}
	path, err := drainpath.FindEulerian(active)
	if err != nil {
		return nil, nil, err
	}
	next := make([]int, full.NumLinks())
	for i := range next {
		next[i] = -1
	}
	for _, al := range active.Links() {
		fid, ok := full.LinkID(al.From, al.To)
		if !ok {
			return nil, nil, fmt.Errorf("active link %v not in full graph", al)
		}
		sl := active.Link(path.NextID(al.ID))
		fsucc, ok := full.LinkID(sl.From, sl.To)
		if !ok {
			return nil, nil, fmt.Errorf("active link %v not in full graph", sl)
		}
		next[fid] = fsucc
	}
	return tab, next, nil
}

// checkConservation is the simulator's strongest net: random topologies,
// random VC structure, random traffic, periodic drains and live link
// failures/recoveries — no packet may ever be lost, duplicated or
// misdelivered (packets cut by a failure are accounted in FaultDrops),
// and the internal invariants must hold throughout. It returns nil on
// success, errSkip for inputs that produce no simulable config, and a
// descriptive error on a property violation. Shared by the quick.Check
// property test and the native fuzz target.
func checkConservation(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	nNodes := int(nRaw%12) + 4
	g, err := topology.NewRandomConnected(nNodes, int(seed%7), rng)
	if err != nil {
		return errSkip
	}
	vnets := int(vnRaw%2) + 1
	vcs := int(vcRaw%3) + 1
	cfg := Config{
		Graph: g, VNets: vnets, VCsPerVN: vcs, Classes: vnets,
		Routing: routing.AdaptiveMinimal,
		Seed:    seed,
	}
	if escRaw%2 == 0 {
		cfg.PolicyEscape = true
		cfg.EscapeRouting = routing.AdaptiveMinimal
		cfg.NonStickyEscape = escRaw%4 == 0
	}
	net, err := New(cfg)
	if err != nil {
		return errSkip
	}
	path, err := drainpath.FindEulerian(g)
	if err != nil {
		return errSkip
	}
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = path.NextID(id)
	}

	// Live fault plan (3/4 of seeds): fail one removable link mid-run
	// and restore it later, reconfiguring routing and the drain path on
	// the fly. A dedicated RNG keeps the traffic stream independent of
	// the plan.
	frng := rand.New(rand.NewPCG(seed^0xfa17, seed))
	active := g
	var failed topology.Edge
	faultAt, restoreAt := -1, -1
	if seed%4 != 3 {
		faultAt = 250 + frng.IntN(100)
		restoreAt = 700 + frng.IntN(100)
	}

	created, delivered, rejected := 0, 0, 0
	seen := map[int64]bool{}
	const horizon = 1200
	for cyc := 0; cyc < horizon; cyc++ {
		if cyc < horizon/2 && rng.Float64() < 0.5 {
			src := rng.IntN(nNodes)
			dst := rng.IntN(nNodes)
			if dst != src {
				class := rng.IntN(vnets)
				flits := 1 + rng.IntN(5)
				p := net.NewPacket(src, dst, class, flits)
				if net.Inject(p) {
					created++
				} else {
					// Failed injection leaves ownership with the caller;
					// recycle so the pool-safety invariants cover this path.
					net.ReleasePacket(p)
					rejected++
				}
			}
		}
		if faultAt >= 0 && cyc >= faultAt {
			faultAt = -1
			if cands := topology.RemovableEdges(active); len(cands) > 0 {
				failed = cands[frng.IntN(len(cands))]
				na, err := active.WithoutEdge(failed.A, failed.B)
				if err != nil {
					return fmt.Errorf("cycle %d: fail link %v: %w", cyc, failed, err)
				}
				tab, nx, err := buildReconfig(na, g)
				if err != nil {
					return errSkip
				}
				if _, err := net.Reconfigure(na, tab); err != nil {
					return fmt.Errorf("cycle %d: reconfigure: %w", cyc, err)
				}
				active, next = na, nx
			} else {
				restoreAt = -1
			}
		}
		if restoreAt >= 0 && faultAt < 0 && cyc >= restoreAt {
			restoreAt = -1
			na, err := active.WithEdge(failed.A, failed.B)
			if err != nil {
				return fmt.Errorf("cycle %d: restore link %v: %w", cyc, failed, err)
			}
			tab, nx, err := buildReconfig(na, g)
			if err != nil {
				return errSkip
			}
			if _, err := net.Reconfigure(na, tab); err != nil {
				return fmt.Errorf("cycle %d: restore reconfigure: %w", cyc, err)
			}
			active, next = na, nx
		}
		// Occasional drain window (keeps escape VCs moving and
		// exercises the rotation path under live traffic).
		if cfg.PolicyEscape && cyc%150 == 100 {
			net.SetFrozen(true)
		}
		net.Step()
		if cfg.PolicyEscape && cyc%150 == 110 && net.InflightCount() == 0 {
			if _, err := net.DrainRotate(next); err != nil {
				return fmt.Errorf("cycle %d: drain rotate: %w", cyc, err)
			}
			net.SetFrozen(false)
		}
		if cfg.PolicyEscape && cyc%150 == 130 && net.Frozen() {
			// Quiesce took longer than 10 cycles; release anyway.
			if net.InflightCount() == 0 {
				if _, err := net.DrainRotate(next); err != nil {
					return fmt.Errorf("cycle %d: late drain rotate: %w", cyc, err)
				}
			}
			net.SetFrozen(false)
		}
		for r := 0; r < nNodes; r++ {
			for c := 0; c < vnets; c++ {
				for p := net.PopEjected(r, c); p != nil; p = net.PopEjected(r, c) {
					if p.Dst != r {
						return fmt.Errorf("cycle %d: packet %d for %d ejected at %d", cyc, p.ID, p.Dst, r)
					}
					if seen[p.ID] {
						return fmt.Errorf("cycle %d: packet %d delivered twice", cyc, p.ID)
					}
					seen[p.ID] = true
					delivered++
					net.ReleasePacket(p)
				}
			}
		}
		if cyc%16 == 0 {
			if err := net.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d: %w", cyc, err)
			}
		}
	}
	// Conservation: every created packet is delivered, still in the
	// system, or was explicitly dropped by a link failure (deadlocks can
	// strand packets; none may silently vanish).
	if delivered+net.InFlightPackets()+int(net.Counters.FaultDrops) != created {
		return fmt.Errorf("conservation: created=%d delivered=%d inflight=%d faultdrops=%d",
			created, delivered, net.InFlightPackets(), net.Counters.FaultDrops)
	}
	// Pool conservation: every release above is accounted for — rejected
	// injections and delivered packets recycled here, fault drops recycled
	// inside the network — and the free list can never exceed the total
	// ever recycled (a double release would break both identities, and
	// CheckInvariants already rejects it structurally).
	if want := int64(rejected+delivered) + net.Counters.FaultDrops; net.Counters.Recycled != want {
		return fmt.Errorf("pool: recycled=%d, want rejected(%d)+delivered(%d)+faultdrops(%d)=%d",
			net.Counters.Recycled, rejected, delivered, net.Counters.FaultDrops, want)
	}
	if free := net.PoolFree(); int64(free) > net.Counters.Recycled {
		return fmt.Errorf("pool: %d packets free but only %d ever recycled", free, net.Counters.Recycled)
	}
	return nil
}

// checkRotation verifies that rotating a fully loaded escape layer
// conserves every packet (no overwrite at any fan-in). Same contract as
// checkConservation.
func checkRotation(seed uint64, nRaw uint8) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcd))
	nNodes := int(nRaw%10) + 4
	g, err := topology.NewRandomConnected(nNodes, 4, rng)
	if err != nil {
		return errSkip
	}
	net, err := New(Config{
		Graph: g, VNets: 1, VCsPerVN: 1, Classes: 1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.AdaptiveMinimal,
		EjectCap:      1,
		Seed:          seed,
	})
	if err != nil {
		return errSkip
	}
	// Fill EVERY escape buffer.
	for _, l := range g.Links() {
		if _, err := net.PlacePacket(l.From, l.To, rng.IntN(nNodes), 0); err != nil {
			return fmt.Errorf("place packet on link %d->%d: %w", l.From, l.To, err)
		}
	}
	path, err := drainpath.FindEulerian(g)
	if err != nil {
		return errSkip
	}
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = path.NextID(id)
	}
	before := net.InFlightPackets()
	net.SetFrozen(true)
	rep, err := net.DrainRotate(next)
	if err != nil {
		return fmt.Errorf("drain rotate: %w", err)
	}
	if err := net.CheckInvariants(); err != nil {
		return fmt.Errorf("after rotate: %w", err)
	}
	// All packets accounted for: moved + ejected == total, and the
	// network still holds total (ejections moved to queues).
	if rep.Moved+rep.Ejected != g.NumLinks() {
		return fmt.Errorf("rotate report: moved=%d ejected=%d links=%d", rep.Moved, rep.Ejected, g.NumLinks())
	}
	if got := net.InFlightPackets(); got != before {
		return fmt.Errorf("rotate lost packets: before=%d after=%d", before, got)
	}
	return nil
}

func TestConservationUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) bool {
		err := checkConservation(seed, nRaw, vnRaw, vcRaw, escRaw)
		if err != nil && !errors.Is(err, errSkip) {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDrainRotationIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		err := checkRotation(seed, nRaw)
		if err != nil && !errors.Is(err, errSkip) {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzConservation is the native-fuzzing entry to the conservation
// property (CI runs it for a short smoke window; run locally with
// `go test -fuzz=FuzzConservation ./internal/noc`).
func FuzzConservation(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(0xdead), uint8(7), uint8(1), uint8(2), uint8(1))
	f.Add(uint64(42), uint8(11), uint8(0), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) {
		if err := checkConservation(seed, nRaw, vnRaw, vcRaw, escRaw); err != nil && !errors.Is(err, errSkip) {
			t.Fatal(err)
		}
	})
}

// FuzzDrainRotation is the native-fuzzing entry to the rotation
// permutation property.
func FuzzDrainRotation(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xbeef), uint8(9))
	f.Add(uint64(7), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		if err := checkRotation(seed, nRaw); err != nil && !errors.Is(err, errSkip) {
			t.Fatal(err)
		}
	})
}
