package noc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/drainpath"
	"drain/internal/routing"
	"drain/internal/topology"
)

// errSkip marks an input that produced no simulable configuration
// (e.g. the random graph could not be built); not a property violation.
var errSkip = errors.New("uninteresting input")

// checkConservation is the simulator's strongest net: random topologies,
// random VC structure, random traffic and periodic drains — no packet
// may ever be lost, duplicated or misdelivered, and the internal
// invariants must hold throughout. It returns nil on success, errSkip
// for inputs that produce no simulable config, and a descriptive error
// on a property violation. Shared by the quick.Check property test and
// the native fuzz target.
func checkConservation(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xfeed))
	nNodes := int(nRaw%12) + 4
	g, err := topology.NewRandomConnected(nNodes, int(seed%7), rng)
	if err != nil {
		return errSkip
	}
	vnets := int(vnRaw%2) + 1
	vcs := int(vcRaw%3) + 1
	cfg := Config{
		Graph: g, VNets: vnets, VCsPerVN: vcs, Classes: vnets,
		Routing: routing.AdaptiveMinimal,
		Seed:    seed,
	}
	if escRaw%2 == 0 {
		cfg.PolicyEscape = true
		cfg.EscapeRouting = routing.AdaptiveMinimal
		cfg.NonStickyEscape = escRaw%4 == 0
	}
	net, err := New(cfg)
	if err != nil {
		return errSkip
	}
	path, err := drainpath.FindEulerian(g)
	if err != nil {
		return errSkip
	}
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = path.NextID(id)
	}

	created, delivered := 0, 0
	seen := map[int64]bool{}
	const horizon = 1200
	for cyc := 0; cyc < horizon; cyc++ {
		if cyc < horizon/2 && rng.Float64() < 0.5 {
			src := rng.IntN(nNodes)
			dst := rng.IntN(nNodes)
			if dst != src {
				class := rng.IntN(vnets)
				flits := 1 + rng.IntN(5)
				if net.Inject(net.NewPacket(src, dst, class, flits)) {
					created++
				}
			}
		}
		// Occasional drain window (keeps escape VCs moving and
		// exercises the rotation path under live traffic).
		if cfg.PolicyEscape && cyc%150 == 100 {
			net.SetFrozen(true)
		}
		net.Step()
		if cfg.PolicyEscape && cyc%150 == 110 && net.InflightCount() == 0 {
			if _, err := net.DrainRotate(next); err != nil {
				return fmt.Errorf("cycle %d: drain rotate: %w", cyc, err)
			}
			net.SetFrozen(false)
		}
		if cfg.PolicyEscape && cyc%150 == 130 && net.Frozen() {
			// Quiesce took longer than 10 cycles; release anyway.
			if net.InflightCount() == 0 {
				if _, err := net.DrainRotate(next); err != nil {
					return fmt.Errorf("cycle %d: late drain rotate: %w", cyc, err)
				}
			}
			net.SetFrozen(false)
		}
		for r := 0; r < nNodes; r++ {
			for c := 0; c < vnets; c++ {
				for p := net.PopEjected(r, c); p != nil; p = net.PopEjected(r, c) {
					if p.Dst != r {
						return fmt.Errorf("cycle %d: packet %d for %d ejected at %d", cyc, p.ID, p.Dst, r)
					}
					if seen[p.ID] {
						return fmt.Errorf("cycle %d: packet %d delivered twice", cyc, p.ID)
					}
					seen[p.ID] = true
					delivered++
				}
			}
		}
		if cyc%16 == 0 {
			if err := net.CheckInvariants(); err != nil {
				return fmt.Errorf("cycle %d: %w", cyc, err)
			}
		}
	}
	// Conservation: every created packet is delivered or still in the
	// system (deadlocks can strand packets; none may vanish).
	if delivered+net.InFlightPackets() != created {
		return fmt.Errorf("conservation: created=%d delivered=%d inflight=%d",
			created, delivered, net.InFlightPackets())
	}
	return nil
}

// checkRotation verifies that rotating a fully loaded escape layer
// conserves every packet (no overwrite at any fan-in). Same contract as
// checkConservation.
func checkRotation(seed uint64, nRaw uint8) error {
	rng := rand.New(rand.NewPCG(seed, seed^0xabcd))
	nNodes := int(nRaw%10) + 4
	g, err := topology.NewRandomConnected(nNodes, 4, rng)
	if err != nil {
		return errSkip
	}
	net, err := New(Config{
		Graph: g, VNets: 1, VCsPerVN: 1, Classes: 1,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.AdaptiveMinimal,
		EjectCap:      1,
		Seed:          seed,
	})
	if err != nil {
		return errSkip
	}
	// Fill EVERY escape buffer.
	for _, l := range g.Links() {
		if _, err := net.PlacePacket(l.From, l.To, rng.IntN(nNodes), 0); err != nil {
			return fmt.Errorf("place packet on link %d->%d: %w", l.From, l.To, err)
		}
	}
	path, err := drainpath.FindEulerian(g)
	if err != nil {
		return errSkip
	}
	next := make([]int, g.NumLinks())
	for id := range next {
		next[id] = path.NextID(id)
	}
	before := net.InFlightPackets()
	net.SetFrozen(true)
	rep, err := net.DrainRotate(next)
	if err != nil {
		return fmt.Errorf("drain rotate: %w", err)
	}
	if err := net.CheckInvariants(); err != nil {
		return fmt.Errorf("after rotate: %w", err)
	}
	// All packets accounted for: moved + ejected == total, and the
	// network still holds total (ejections moved to queues).
	if rep.Moved+rep.Ejected != g.NumLinks() {
		return fmt.Errorf("rotate report: moved=%d ejected=%d links=%d", rep.Moved, rep.Ejected, g.NumLinks())
	}
	if got := net.InFlightPackets(); got != before {
		return fmt.Errorf("rotate lost packets: before=%d after=%d", before, got)
	}
	return nil
}

func TestConservationUnderRandomConfigs(t *testing.T) {
	f := func(seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) bool {
		err := checkConservation(seed, nRaw, vnRaw, vcRaw, escRaw)
		if err != nil && !errors.Is(err, errSkip) {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDrainRotationIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		err := checkRotation(seed, nRaw)
		if err != nil && !errors.Is(err, errSkip) {
			t.Logf("seed=%d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzConservation is the native-fuzzing entry to the conservation
// property (CI runs it for a short smoke window; run locally with
// `go test -fuzz=FuzzConservation ./internal/noc`).
func FuzzConservation(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(0xdead), uint8(7), uint8(1), uint8(2), uint8(1))
	f.Add(uint64(42), uint8(11), uint8(0), uint8(1), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, vnRaw, vcRaw, escRaw uint8) {
		if err := checkConservation(seed, nRaw, vnRaw, vcRaw, escRaw); err != nil && !errors.Is(err, errSkip) {
			t.Fatal(err)
		}
	})
}

// FuzzDrainRotation is the native-fuzzing entry to the rotation
// permutation property.
func FuzzDrainRotation(f *testing.F) {
	f.Add(uint64(1), uint8(0))
	f.Add(uint64(0xbeef), uint8(9))
	f.Add(uint64(7), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		if err := checkRotation(seed, nRaw); err != nil && !errors.Is(err, errSkip) {
			t.Fatal(err)
		}
	})
}
