package noc

import "testing"

// TestFastForwardCounter: SkipIdle credits the skipped window to the
// process-wide fast-forward counter (the /metrics observability for
// whether the machinery ever fires), while stepped cycles do not.
func TestFastForwardCounter(t *testing.T) {
	n := newTestNet(t, EngineEvent)
	before := SimFastForwardCycles()
	for i := 0; i < 10; i++ {
		n.Step()
	}
	// Stepping must not count as fast-forwarding.
	if got := SimFastForwardCycles(); got != before {
		t.Fatalf("Step moved the fast-forward counter: %d -> %d", before, got)
	}
	const skip = 5000 // > cycleFlushEvery, so the batch flushes
	n.SkipIdle(skip)
	if got := SimFastForwardCycles(); got < before+skip {
		t.Fatalf("SkipIdle(%d): counter %d -> %d, want >= %d", skip, before, got, before+skip)
	}
	if c := n.Cycle(); c != 10+skip {
		t.Fatalf("cycle = %d, want %d", c, 10+skip)
	}
}
