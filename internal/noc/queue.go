package noc

// pktQueue is a FIFO of packets backed by a ring buffer. The seed
// implementation used bare slices with copy(q, q[1:]) pops, which made
// draining an n-packet queue O(n²) and showed up in injection-heavy runs;
// head-index pops are O(1) and steady-state operation never allocates
// once the ring has grown to the queue's working size.
//
//drain:staged queues are per (router, class); the parallel inject phase pops only queues of its shard's own routers, and pushes happen in serial contexts only (shardsafe)
type pktQueue struct {
	buf  []*Packet
	head int
	n    int
}

// newPktQueue returns a queue with capacity for cap packets before the
// first grow; cap <= 0 defers allocation to the first Push.
func newPktQueue(cap int) pktQueue {
	var q pktQueue
	if cap > 0 {
		q.buf = make([]*Packet, cap)
	}
	return q
}

// Len returns the number of queued packets.
func (q *pktQueue) Len() int { return q.n }

// Push appends p at the tail, growing the ring if full.
func (q *pktQueue) Push(p *Packet) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)%len(q.buf)] = p
	q.n++
}

// Pop removes and returns the head packet, or nil if empty.
func (q *pktQueue) Pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil // release the reference
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return p
}

// Peek returns the head packet without removing it, or nil if empty.
func (q *pktQueue) Peek() *Packet {
	if q.n == 0 {
		return nil
	}
	return q.buf[q.head]
}

// grow doubles the ring, unrolling the wrapped contents.
//
//drain:coldpath amortized ring growth; steady-state Step never triggers it (TestStepAllocs pins this)
func (q *pktQueue) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 4
	}
	buf := make([]*Packet, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}
