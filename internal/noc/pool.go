package noc

// Packet pooling: a deterministic LIFO free-list that makes a run's
// packet allocations O(peak live packets) instead of O(packets
// injected). NewPacket pops the most recently released Packet and
// rewrites every field; ReleasePacket pushes a packet whose simulation
// life has ended. The pool is deliberately NOT a sync.Pool: sync.Pool's
// per-P caches and GC-cycle victim drops make hit/miss (and therefore
// allocation) behavior scheduling-dependent, while this list is a plain
// slice whose state is a pure function of the simulation history.
//
// Determinism across engines and shard counts: every pool operation
// happens in a serial context — packet creation (traffic generators,
// coherence controllers) and driver-side consumption (DiscardEjected,
// PopEjected) run between Steps, and the fault-drop paths (Reconfigure,
// dropFlight) are serial phases even under EngineParallel, whose worker
// phases never create or retire packets. So a single free-list needs no
// per-shard splitting and refills in exactly the serial engines' order
// for every K; and since no observable output depends on *which* struct
// backs a packet (all outputs are field values, never pointer
// identities), reuse cannot perturb byte-identity. DESIGN.md §14 has
// the full ownership argument.

// ReleasePacket returns p to the network's free-list for reuse by a
// future NewPacket. The caller must own p outright — popped from an
// ejection queue or never successfully injected — and must not touch it
// afterwards. Releasing a packet still inside the network corrupts the
// simulation; releasing one twice panics (CheckInvariants and the
// conservation fuzz also police both). Consumers that keep packets
// (or simply drop them to the GC) remain correct — pooling is an
// optimization, never an obligation.
func (n *Network) ReleasePacket(p *Packet) {
	if p.pooled {
		panic("noc: ReleasePacket called twice on the same packet")
	}
	p.pooled = true
	p.Payload = nil // drop protocol payloads so the pool pins no memory
	n.freePkts = append(n.freePkts, p)
	n.Counters.Recycled++
}

// PoolFree returns the number of packets currently in the free-list
// (diagnostic; tests pin the pool's bookkeeping with it).
func (n *Network) PoolFree() int { return len(n.freePkts) }

// takePacket pops the most recently released packet, or allocates when
// the list is empty. Every field is overwritten by the caller
// (NewPacket), so no reset pass is needed here beyond the pop itself.
func (n *Network) takePacket() *Packet {
	if k := len(n.freePkts); k > 0 {
		p := n.freePkts[k-1]
		n.freePkts[k-1] = nil
		n.freePkts = n.freePkts[:k-1]
		return p
	}
	return allocPacket()
}

// allocPacket is the pool's miss path: the one place a Packet is heap-
// allocated. It fires once per new high-water mark of simultaneously
// live packets; steady state recycles and never reaches it. go:noinline
// keeps the compiler from folding the allocation into NewPacket's line,
// where escapecheck would misread the coldpath escape as a hot one.
//
//drain:coldpath pool miss fires only on a new high-water mark of live packets; steady-state NewPacket pops the free-list
//go:noinline
func allocPacket() *Packet { return new(Packet) }
