package noc

import (
	"fmt"

	"drain/internal/routing"
	"drain/internal/topology"
)

// Config describes a network instance. The defaults mirror the paper's
// Table II where applicable.
type Config struct {
	Graph *topology.Graph
	Mesh  *topology.Mesh // optional; required for XY routing

	// VNets is the number of virtual networks; message class c uses
	// virtual network c mod VNets. VCsPerVN is the number of VCs per
	// virtual network at every input port (Table II: 2 VCs/VNet).
	VNets    int
	VCsPerVN int
	// Classes is the number of message classes the system injects
	// (MESI: 3 — request, forward, response).
	Classes int

	// PolicyEscape designates VC 0 of each virtual network as an escape
	// VC: any packet may enter it (subject to EscapeRouting legality) but
	// may never leave back to a non-escape VC. Without it all VCs are
	// equivalent (SPIN's configuration).
	PolicyEscape bool
	// Routing is the algorithm for non-escape VCs (and for all VCs when
	// PolicyEscape is false).
	Routing routing.Kind
	// EscapeRouting is the algorithm packets in escape VCs must follow.
	// For the escape-VC baseline this is XY or UpDown (turn-restricted);
	// for DRAIN it equals Routing (the escape VC is unrestricted — the
	// drains make it safe).
	EscapeRouting routing.Kind

	// MaxFlits is the largest packet size; it sizes the pre-drain window.
	MaxFlits int
	// EjectCap is the per-class ejection queue capacity at each node.
	EjectCap int
	// InjectCap bounds each per-class injection queue (0 = unbounded).
	InjectCap int
	// RouterLatency is the per-hop pipeline latency in cycles (Table II: 1).
	RouterLatency int

	// DerouteAfter lets a packet routed by AdaptiveMinimal request *any*
	// output (misroute, including U-turns) once it has stalled this many
	// cycles — "fully adaptive random" routing in its unrestricted
	// reading, which keeps post-saturation throughput stable (default 8).
	// Negative keeps routing strictly minimal: the maximally deadlock-
	// prone substrate, used to *measure* deadlock occurrence (Fig. 3)
	// and to construct deadlocks in tests. See DESIGN.md §"substrate
	// regimes".
	DerouteAfter int

	// EscapeAfter gates entry into escape VCs: a packet in a non-escape
	// VC requests an escape VC only after stalling this many cycles
	// (0 or negative admits escape candidates immediately, the default).
	EscapeAfter int

	// InjectPatience bounds how long the conservative injection rule may
	// defer a local packet: after stalling this many cycles at the head
	// of its local VC, the packet may claim any legal free slot. Without
	// this, an injection-side dependency (e.g. a coherence Unblock stuck
	// behind wedged requests) could starve forever — the paper's
	// §III-D2 progress argument assumes injection eventually succeeds
	// once drains free buffers. Default 512; negative disables bypass.
	InjectPatience int

	// NonStickyEscape relaxes the "once in escape, always in escape"
	// rule: packets in escape VCs may move back to non-escape VCs.
	// Classic escape-VC deadlock freedom (Duato) keeps stickiness;
	// DRAIN does not need it — the periodic drains make the escape VCs
	// safe regardless — and without it the escape VC contributes its
	// capacity like any other VC (how the paper's VN-1/VC-2 DRAIN
	// matches SPIN's 2-VC throughput).
	NonStickyEscape bool

	// Seed drives all randomized arbitration decisions.
	Seed uint64

	// Engine selects the cycle-core implementation. The zero value is
	// EngineEvent (activity bitmaps + timing wheel + idle fast-forward);
	// EngineDense keeps the exhaustive per-cycle rescans; EngineParallel
	// shards the cycle phases across a worker pool. All three are
	// byte-identical — same RNG draw sequence, same counters, same
	// results — differing only in speed; see DESIGN.md §"Event-driven
	// core", §"Sharded parallel engine" and FuzzDenseVsEvent.
	Engine EngineKind

	// Shards is the number of router shards (and so the worker-pool
	// fan-out) of EngineParallel; other engines ignore it. Values above
	// the router count are clamped; <= 0 defaults to 1. Results are
	// byte-identical for every value.
	Shards int

	// ParallelInline tunes EngineParallel's inline fast path: cycles
	// whose active-work estimate (landing flights + active routers) is
	// below the threshold run serially on the stepping goroutine,
	// skipping the barrier overhead. 0 means the built-in default;
	// negative disables the fast path so every cycle exercises the
	// phased machinery (tests use this). Results are identical either
	// way — the threshold is a pure function of simulation state.
	ParallelInline int

	// Table optionally supplies a prebuilt routing table for Graph/Mesh
	// (from routing.NewTable over exactly this Graph). Tables are
	// immutable and safely shared between networks; at thousands of
	// routers their construction dominates Network setup, so callers
	// building several networks over one topology (engine differentials,
	// the sharded-step benchmarks) should build the table once. Nil
	// builds a fresh one.
	Table *routing.Table
}

// Validate checks the configuration and fills zero fields with defaults.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("noc: Config.Graph is required")
	}
	if !c.Graph.Connected() {
		return fmt.Errorf("noc: topology must be connected")
	}
	if c.VNets <= 0 {
		c.VNets = 1
	}
	if c.VCsPerVN <= 0 {
		c.VCsPerVN = 2
	}
	if c.Classes <= 0 {
		c.Classes = 1
	}
	if c.MaxFlits <= 0 {
		c.MaxFlits = 5
	}
	if c.EjectCap <= 0 {
		c.EjectCap = 4
	}
	if c.RouterLatency <= 0 {
		c.RouterLatency = 1
	}
	if c.DerouteAfter == 0 {
		c.DerouteAfter = 8
	}
	if c.InjectPatience == 0 {
		c.InjectPatience = 512
	}
	if c.Engine == EngineParallel && c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Routing == routing.XY && c.Mesh == nil {
		return fmt.Errorf("noc: XY routing requires Config.Mesh")
	}
	if c.PolicyEscape && c.EscapeRouting == routing.XY && c.Mesh == nil {
		return fmt.Errorf("noc: XY escape routing requires Config.Mesh")
	}
	if c.Table != nil && c.Table.Graph() != c.Graph {
		return fmt.Errorf("noc: Config.Table was built for a different topology")
	}
	return nil
}

// VCsPerPort returns the total number of VCs at each input port.
func (c *Config) VCsPerPort() int { return c.VNets * c.VCsPerVN }

// VNetOf returns the virtual network used by a message class.
func (c *Config) VNetOf(class int) int { return class % c.VNets }

// EscapeSlot returns the escape VC slot index within virtual network vn.
func (c *Config) EscapeSlot(vn int) int { return vn * c.VCsPerVN }

// IsEscapeSlot reports whether slot index s is an escape VC slot.
func (c *Config) IsEscapeSlot(s int) bool { return s%c.VCsPerVN == 0 }
