package noc

import "testing"

func TestPktQueueFIFO(t *testing.T) {
	q := newPktQueue(2)
	if q.Len() != 0 || q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue misbehaves")
	}
	mk := func(id int64) *Packet { return &Packet{ID: id} }
	// Push beyond the initial capacity, interleaved with pops so the ring
	// wraps, and check strict FIFO order throughout.
	next := int64(0)
	want := int64(0)
	push := func(k int) {
		for i := 0; i < k; i++ {
			q.Push(mk(next))
			next++
		}
	}
	pop := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if got := q.Peek(); got == nil || got.ID != want {
				t.Fatalf("Peek = %v, want ID %d", got, want)
			}
			if got := q.Pop(); got.ID != want {
				t.Fatalf("Pop = %d, want %d", got.ID, want)
			}
			want++
		}
	}
	push(2)
	pop(1) // head advances: ring is offset
	push(6) // forces a grow with wrapped contents
	pop(7)
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", q.Len())
	}
	push(5)
	pop(5)
}

func TestPktQueueZeroCap(t *testing.T) {
	q := newPktQueue(0)
	for i := int64(0); i < 10; i++ {
		q.Push(&Packet{ID: i})
	}
	for i := int64(0); i < 10; i++ {
		if got := q.Pop(); got.ID != i {
			t.Fatalf("Pop = %d, want %d", got.ID, i)
		}
	}
}

// TestPktQueueSteadyStateNoGrow checks that a pre-sized ring cycling at
// its capacity never reallocates (the property the per-class ejection
// queues rely on for allocation-free Step).
func TestPktQueueSteadyStateNoGrow(t *testing.T) {
	q := newPktQueue(4)
	buf0 := &q.buf[0]
	for i := 0; i < 100; i++ {
		q.Push(&Packet{ID: int64(i)})
		if i >= 3 {
			q.Pop()
		}
	}
	if &q.buf[0] != buf0 {
		t.Error("ring reallocated while cycling within its capacity")
	}
}
