package noc

import (
	"errors"
	"sync/atomic"

	"drain/internal/routing"
	"drain/internal/topology"
)

// ReconfigReport summarizes one live topology reconfiguration.
type ReconfigReport struct {
	LinksFailed   int // unidirectional links newly marked down
	LinksRestored int // unidirectional links newly marked up
	Rerouted      int // buffered packets evacuated off failed links
	Dropped       int // packets dropped (in flight over, or stranded in, failed links)
}

// simReconfigs / simRerouted count reconfiguration activity across every
// Network in the process, for the drainserved /metrics counters.
// Reconfigurations are rare events (fault-schedule granularity, not
// per-cycle), so direct atomic adds need no batching.
var (
	simReconfigs atomic.Int64
	simRerouted  atomic.Int64
)

// SimReconfigs returns the total number of live reconfigurations applied
// by all Networks process-wide.
func SimReconfigs() int64 { return simReconfigs.Load() }

// SimPacketsRerouted returns the total number of buffered packets
// evacuated off failed links by all Networks process-wide.
func SimPacketsRerouted() int64 { return simRerouted.Load() }

// Reconfigure errors (package-level so the alloc-free reconfig path
// never constructs one dynamically).
var (
	errReconfigNilTable   = errors.New("noc: Reconfigure requires a routing table built over the active subgraph")
	errReconfigWrongGraph = errors.New("noc: Reconfigure table was not built over the given active subgraph")
	errReconfigRouters    = errors.New("noc: active subgraph has a different router count")
	errReconfigNotSubset  = errors.New("noc: active subgraph has links outside the full topology")
)

// Reconfigure applies a live topology change: active is the subgraph of
// the construction-time graph that is currently fault-free, and tab is a
// routing table built over it with candidates expressed in the full
// graph's link-ID space (routing.NewTableRemapped). The full graph and
// every linkID-indexed array keep their dense numbering; failed links
// become a linkDown overlay that no hot path consults — they simply
// vanish from every candidate set, so arbitration of a failed output
// builds zero options and draws no randomness, independent of engine.
//
// In-flight packets are preserved where possible:
//
//   - transfers already on a newly failed link are dropped (the flit
//     stream is cut mid-wire): upstream slot freed, downstream
//     reservation cleared, counted in Counters.FaultDrops;
//   - packets buffered at a failed link's input port are evacuated to a
//     free VC of the same router's surviving input ports (non-escape
//     slots first, escape fallback, same discipline as allocation),
//     counted in Counters.FaultReroutes — or dropped when the router has
//     no free slot;
//   - every surviving packet's up*/down* phase is reset: the table's
//     up*/down* numbering changed wholesale, so the walk restarts (the
//     same rule DrainRotate applies per forced hop).
//
// Reconfigure must run between Steps (for EngineParallel the workers are
// parked then, making the reconfiguration a naturally serial phase). The
// caller recomputes the drain path separately (core.Controller.
// Reconfigure). The reconfig path performs no heap allocation — it runs
// mid-simulation and is a hotalloc root (see internal/lint).
func (n *Network) Reconfigure(active *topology.Graph, tab *routing.Table) (ReconfigReport, error) {
	var rep ReconfigReport
	if tab == nil {
		return rep, errReconfigNilTable
	}
	if tab.Graph() != active {
		return rep, errReconfigWrongGraph
	}
	if active.N() != n.g.N() {
		return rep, errReconfigRouters
	}
	// New down set: a full-graph link is down iff absent from active.
	up := 0
	for i, l := range n.g.Links() {
		_, ok := active.LinkID(l.From, l.To)
		n.scrDown[i] = !ok
		if ok {
			up++
		}
		if !ok && !n.linkDown[i] {
			rep.LinksFailed++
		}
		if ok && n.linkDown[i] {
			rep.LinksRestored++
		}
	}
	if up != active.NumLinks() {
		return rep, errReconfigNotSubset
	}

	if rep.LinksFailed > 0 {
		// Cut transfers bound for newly failed links. Already-down links
		// cannot have flights (no grants target them), so dropping
		// against the whole new down set is equivalent.
		rep.Dropped += n.eng.removeFailedFlights(n, n.scrDown)
		// Evacuate stranded buffers, in ascending (link, slot) order —
		// shared Network code, so the order is engine-independent.
		for l := range n.scrDown {
			if !n.scrDown[l] || n.linkDown[l] {
				continue
			}
			n.linkBusy[l] = 0 // any transfer on the wire was cut above
			for s := range n.linkVC[l] {
				p := n.linkVC[l][s].pkt
				if p == nil || p.sending {
					// A sending occupant departs over a surviving link;
					// its slot frees at landing and is never refilled.
					continue
				}
				if n.evacuate(p, l, s) {
					rep.Rerouted++
				} else {
					n.linkVC[l][s].pkt = nil
					n.occIn[p.atRouter]--
					n.occLink[l]--
					n.Counters.FaultDrops++
					n.ReleasePacket(p)
					rep.Dropped++
				}
			}
		}
	}

	// The up*/down* numbering changed wholesale: restart every surviving
	// packet's phase under the new table. Pending flights carry the phase
	// computed at grant time as an arrival effect, so it is reset there
	// too (per-flight independent mutation — engine iteration order is
	// unobservable).
	n.eng.eachFlight(clearFlightDownPhase)
	for l := range n.linkVC {
		for s := range n.linkVC[l] {
			if p := n.linkVC[l][s].pkt; p != nil {
				p.DownPhase = false
			}
		}
	}
	for r := range n.localVC {
		for s := range n.localVC[r] {
			if p := n.localVC[r][s].pkt; p != nil {
				p.DownPhase = false
			}
		}
	}

	n.tab = tab
	n.cfg.Table = tab
	copy(n.linkDown, n.scrDown)
	n.Counters.Reconfigs++
	simReconfigs.Add(1)
	if rep.Rerouted > 0 {
		simRerouted.Add(int64(rep.Rerouted))
	}
	return rep, nil
}

// clearFlightDownPhase resets the up*/down* arrival effect carried by a
// pending flight (a package-level function value, not a closure, so the
// alloc-free Reconfigure path allocates nothing to pass it).
func clearFlightDownPhase(f *flight) { f.downPhase = false }

// dropFlight applies the shared drop effects for a transfer cut by a
// link failure: the upstream slot frees (the packet departed), the
// downstream reservation clears, and the packet leaves the simulation.
// Effects of distinct drops commute, so engines may apply them in any
// internal flight order.
func (n *Network) dropFlight(f flight) {
	p := f.pkt
	n.freeUpstream(p.inLink, p.atRouter, p.slot, int64(p.Flits), &n.Counters)
	p.sending = false
	n.linkVC[f.toLink][f.toSlot].reserved = false
	n.Counters.FaultDrops++
	n.ReleasePacket(p)
}

// evacuate moves the non-sending packet p out of failed-link slot
// (fromLink, fromSlot) into a free VC of the same router's surviving
// input ports, mirroring freeDownstreamSlot's discipline: an escape
// packet may only take escape (base) slots; others try non-escape slots
// across all ports first, then fall back to escape slots (entering the
// escape network, sticky unless NonStickyEscape). Ports ascend by link
// ID and slots ascend within each port, so the choice is deterministic.
// Reports false when no slot is free (the caller drops the packet).
func (n *Network) evacuate(p *Packet, fromLink, fromSlot int) bool {
	r := p.atRouter
	base := p.VNet * n.cfg.VCsPerVN
	find := func(lo, hi int) (int, int, bool) {
		for _, l := range n.inLinks[r] {
			if n.scrDown[l] {
				continue
			}
			for s := lo; s < hi; s++ {
				if n.linkVC[l][s].free() {
					return l, s, true
				}
			}
		}
		return 0, 0, false
	}
	var toLink, toSlot int
	var ok, escape bool
	switch {
	case n.cfg.PolicyEscape && p.InEscape:
		toLink, toSlot, ok = find(base, base+1)
	case n.cfg.PolicyEscape:
		if toLink, toSlot, ok = find(base+1, base+n.cfg.VCsPerVN); !ok {
			toLink, toSlot, ok = find(base, base+1)
			escape = ok
		}
	default:
		toLink, toSlot, ok = find(base, base+n.cfg.VCsPerVN)
	}
	if !ok {
		return false
	}
	n.linkVC[fromLink][fromSlot].pkt = nil
	n.occLink[fromLink]--
	n.linkVC[toLink][toSlot].pkt = p
	n.occLink[toLink]++
	p.inLink = toLink
	p.slot = toSlot
	p.readyAt = n.cycle + int64(n.cfg.RouterLatency)
	if escape && !n.cfg.NonStickyEscape {
		p.InEscape = true
	}
	n.Counters.FaultReroutes++
	n.eng.placed(n, r, p.readyAt)
	return true
}

// LinkDown reports whether unidirectional link l is currently failed.
func (n *Network) LinkDown(l int) bool { return n.linkDown[l] }
