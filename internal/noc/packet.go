// Package noc is a cycle-accurate network-on-chip simulator: virtual-
// channel routers with virtual cut-through flow control, per-virtual-
// network VC partitioning, per-message-class injection and ejection
// queues, single-cycle routers and links with serialization latency.
//
// It is the substrate the DRAIN paper's evaluation runs on (the paper
// used gem5/Garnet2.0; see DESIGN.md for the substitution argument). The
// deadlock-freedom schemes — DRAIN itself (internal/core), SPIN
// (internal/spinrec) and escape VCs (a Config choice) — are layered on
// top through the freeze, rotation and wait-for APIs exposed here.
package noc

import "fmt"

// LocalPort is the pseudo input-link ID for a router's local injection
// port (packets freshly injected from the node occupy local VCs).
const LocalPort = -1

// Packet is a network packet. With virtual cut-through and single-packet
// VCs (Table II "Buffer Organization"), a packet is the unit of buffering
// and Flits only determines link serialization time.
//
//drain:staged a packet occupies exactly one VC slot or queue cell at a time; parallel phases mutate only packets landing at or injected into the phase shard's own routers, so every write is partitioned by destination-router owner (shardsafe)
type Packet struct {
	ID    int64
	Src   int
	Dst   int
	Class int // message class; mapped to VNet = Class mod VNets
	VNet  int
	Flits int

	// Timestamps (cycles). CreatedAt is when the packet entered the
	// injection queue, InjectedAt when it left the queue into a VC,
	// EjectedAt when it entered the ejection queue.
	CreatedAt  int64
	InjectedAt int64
	EjectedAt  int64

	// Statistics.
	Hops      int
	Misroutes int // hops that did not reduce BFS distance to Dst
	DrainHops int // hops forced by drain windows
	SpinHops  int // hops forced by SPIN recovery

	// InEscape marks a packet that has entered an escape VC; it may
	// never return to a non-escape VC (paper §III-A).
	InEscape bool
	// DownPhase is the up*/down* routing phase: true once the packet has
	// taken a down link (it may then never go up again).
	DownPhase bool

	// Payload carries protocol-level context (e.g. a coherence message).
	Payload any

	// Position and pipeline state, maintained by the network.
	atRouter int
	inLink   int // LocalPort or the link whose buffer holds the packet
	slot     int // VC slot index within the input port
	readyAt  int64
	sending  bool

	// pooled marks a packet sitting in the free-list (see pool.go):
	// set by ReleasePacket, cleared by NewPacket's full rewrite. It
	// exists to catch use-after-release and double-release bugs.
	pooled bool
}

// At returns the router currently buffering the packet.
func (p *Packet) At() int { return p.atRouter }

// InputLink returns the link whose input-port VC holds the packet, or
// LocalPort for the injection port.
func (p *Packet) InputLink() int { return p.inLink }

// Slot returns the VC slot index holding the packet.
func (p *Packet) Slot() int { return p.slot }

// String renders a compact identification for debugging.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d[%d→%d c%d at %d]", p.ID, p.Src, p.Dst, p.Class, p.atRouter)
}

// NetworkLatency is the in-network latency (injection to ejection).
func (p *Packet) NetworkLatency() int64 { return p.EjectedAt - p.InjectedAt }

// TotalLatency includes source queuing delay.
func (p *Packet) TotalLatency() int64 { return p.EjectedAt - p.CreatedAt }
