package noc

import (
	"testing"

	"drain/internal/routing"
	"drain/internal/topology"
)

// lineNet builds a 1×n line network with configurable VC structure.
func lineNet(t *testing.T, n, vnets, vcs int, mutate func(*Config)) *Network {
	t.Helper()
	m := topology.MustMesh(n, 1)
	cfg := Config{
		Graph: m.Graph, Mesh: m,
		VNets: vnets, VCsPerVN: vcs, Classes: vnets,
		Routing: routing.AdaptiveMinimal,
		Seed:    99,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConservativeInjectionHoldsBackLastVC(t *testing.T) {
	// 2 VCs per VN: a local packet may not claim the last free slot of
	// the downstream port.
	n := lineNet(t, 3, 1, 2, func(c *Config) { c.InjectPatience = -1 })
	// Pin a blocker in one of the two VC slots on link 0->1: it is at
	// its destination (router 1) but the eject queue is full.
	fillEjectQueue(n, 1, 0)
	if _, err := n.PlacePacket(0, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	// Local packet at 0 wants to go to 2 via 1; only slot 1 free → the
	// conservative rule (needs 2 free) blocks it.
	p := n.NewPacket(0, 2, 0, 1)
	n.Inject(p)
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if p.Hops != 0 {
		t.Error("local packet crossed a link despite conservative rule")
	}
	// Consuming the eject queue lets the blocker leave; both slots free
	// up and the local packet flows.
	for i := 0; i < 100 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(1, 0)
		n.PopEjected(2, 0)
	}
	if p.EjectedAt == 0 {
		t.Error("packet never delivered after queue drained")
	}
}

// fillEjectQueue stuffs router r's class queue to capacity.
func fillEjectQueue(n *Network, r, class int) {
	for n.ejQ[r][class].Len() < n.cfg.EjectCap {
		n.ejQ[r][class].Push(n.NewPacket(r, r, class, 1))
	}
}

func mustLinkID(t *testing.T, n *Network, a, b int) int {
	t.Helper()
	id, ok := n.g.LinkID(a, b)
	if !ok {
		t.Fatalf("no link %d->%d", a, b)
	}
	return id
}

func TestInjectPatienceBypassUsesEscapeSlot(t *testing.T) {
	// With escape policy, a long-stalled local packet may claim the
	// escape slot even when the conservative rule fails.
	n := lineNet(t, 3, 1, 2, func(c *Config) {
		c.PolicyEscape = true
		c.EscapeRouting = routing.AdaptiveMinimal
		c.NonStickyEscape = true
		c.InjectPatience = 20
		c.DerouteAfter = -1
	})
	// Pin a blocker in the non-escape slot of 0->1: destined for router
	// 2 whose eject queue is full.
	fillEjectQueue(n, 2, 0)
	if _, err := n.PlacePacket(0, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Also pin both 1->2 buffers so the blocker cannot advance.
	if _, err := n.PlacePacket(1, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.PlacePacket(1, 2, 2, 0); err != nil {
		t.Fatal(err)
	}
	p := n.NewPacket(0, 1, 0, 1)
	n.Inject(p)
	// Conservative rule fails (only the escape slot of 0->1 is free);
	// before patience elapses the packet must wait.
	for i := 0; i < 15; i++ {
		n.Step()
	}
	if p.Hops != 0 || p.EjectedAt != 0 {
		t.Fatal("packet moved before patience elapsed")
	}
	// ...after patience it claims the escape slot and delivers (its own
	// destination, router 1, has queue space).
	for i := 0; i < 200 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(1, 0)
	}
	if p.EjectedAt == 0 {
		t.Error("stalled local packet never bypassed into the escape slot")
	}
}

func TestBubbleRuleForSingleVC(t *testing.T) {
	// VC-1: local injection needs a second free buffer at the target
	// router, not just the target port.
	n := lineNet(t, 4, 1, 1, func(c *Config) { c.DerouteAfter = -1; c.InjectPatience = -1 })
	// Router 1 has input links 0->1 and 2->1. Pin a blocker in 2->1 (at
	// its destination with a full eject queue); then a local packet at 0
	// heading right sees a free 0->1 slot but no bubble at router 1.
	fillEjectQueue(n, 1, 0)
	if _, err := n.PlacePacket(2, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	p := n.NewPacket(0, 3, 0, 1)
	n.Inject(p)
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if p.Hops != 0 {
		t.Error("bubble rule did not hold back single-VC injection")
	}
}

func TestNonStickyEscapePacketsLeaveEscape(t *testing.T) {
	n := lineNet(t, 4, 1, 2, func(c *Config) {
		c.PolicyEscape = true
		c.EscapeRouting = routing.AdaptiveMinimal
		c.NonStickyEscape = true
	})
	// Plant a packet in the escape slot; it must still be delivered and
	// never acquire the sticky flag.
	p, err := n.PlacePacket(0, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.InEscape {
		t.Fatal("non-sticky network set InEscape")
	}
	for i := 0; i < 100 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(3, 0)
	}
	if p.EjectedAt == 0 {
		t.Error("escape-slot packet not delivered")
	}
	if p.InEscape {
		t.Error("InEscape set on a non-sticky network")
	}
}

func TestStickyEscapePacketsStayInEscape(t *testing.T) {
	n := lineNet(t, 4, 1, 2, func(c *Config) {
		c.PolicyEscape = true
		c.EscapeRouting = routing.AdaptiveMinimal
	})
	p, err := n.PlacePacket(0, 1, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !p.InEscape {
		t.Fatal("sticky network did not set InEscape on placement")
	}
	for i := 0; i < 200 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(3, 0)
		if err := n.CheckInvariants(); err != nil {
			t.Fatal(err) // would catch escape packet in non-escape slot
		}
	}
	if p.EjectedAt == 0 {
		t.Error("sticky escape packet not delivered")
	}
}

func TestVNActivityCounters(t *testing.T) {
	n := lineNet(t, 3, 2, 1, nil)
	// One packet on VN 0 only.
	p := n.NewPacket(0, 2, 0, 1)
	n.Inject(p)
	for i := 0; i < 100 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(2, 0)
	}
	if p.EjectedAt == 0 {
		t.Fatal("not delivered")
	}
	if n.Counters.VNFlits[0] == 0 {
		t.Error("VN0 flits not counted")
	}
	if n.Counters.VNFlits[1] != 0 || n.Counters.VNActiveRouterCycles[1] != 0 {
		t.Error("idle VN1 shows activity")
	}
	if n.Counters.VNActiveRouterCycles[0] == 0 {
		t.Error("VN0 router-cycles not counted")
	}
}

func TestPlacePacketValidation(t *testing.T) {
	n := lineNet(t, 3, 1, 2, nil)
	if _, err := n.PlacePacket(0, 2, 1, 0); err == nil {
		t.Error("placement on missing link should fail")
	}
	if _, err := n.PlacePacket(0, 1, 2, 7); err == nil {
		t.Error("out-of-range slot should fail")
	}
	if _, err := n.PlacePacket(0, 1, 2, 0); err != nil {
		t.Error("valid placement failed")
	}
	if _, err := n.PlacePacket(0, 1, 2, 0); err == nil {
		t.Error("double placement should fail")
	}
}

func TestInjectOversizePacketPanics(t *testing.T) {
	n := lineNet(t, 3, 1, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("oversize packet should panic")
		}
	}()
	n.Inject(n.NewPacket(0, 2, 0, 99))
}

func TestFrozenCountsCycles(t *testing.T) {
	n := lineNet(t, 3, 1, 2, nil)
	n.SetFrozen(true)
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.Counters.FrozenCyc != 10 {
		t.Errorf("frozen cycles = %d, want 10", n.Counters.FrozenCyc)
	}
}

func TestEjectPortSerialization(t *testing.T) {
	// Two 5-flit packets arriving at the same destination cannot both
	// use the eject port in the same 5-cycle window.
	n := lineNet(t, 3, 1, 2, nil)
	a := n.NewPacket(0, 1, 0, 5)
	bb := n.NewPacket(2, 1, 0, 5)
	n.Inject(a)
	n.Inject(bb)
	for i := 0; i < 100 && (a.EjectedAt == 0 || bb.EjectedAt == 0); i++ {
		n.Step()
		n.PopEjected(1, 0)
	}
	if a.EjectedAt == 0 || bb.EjectedAt == 0 {
		t.Fatal("not both delivered")
	}
	d := a.EjectedAt - bb.EjectedAt
	if d < 0 {
		d = -d
	}
	if d < 5 {
		t.Errorf("eject completions %d cycles apart; port must serialize 5-flit packets", d)
	}
}

func TestDerouteEventuallyMisroutes(t *testing.T) {
	// With deroute enabled, a packet whose minimal path is permanently
	// blocked escapes around the obstruction.
	n := lineNet(t, 4, 1, 1, func(c *Config) { c.DerouteAfter = 4; c.InjectPatience = 1 })
	// Block the direct path 1->2 with a parked packet (its dst's eject
	// queue is filled so it cannot leave).
	parked, err := n.PlacePacket(1, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fill eject queue at 3 so parked cannot move on... actually parked
	// wants 2->3; block that slot instead with another parked packet
	// whose own eject queue at 3 is full.
	parked2, err := n.PlacePacket(2, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n.cfg.EjectCap; i++ {
		n.ejQ[3][0].Push(n.NewPacket(0, 3, 0, 1))
	}
	_ = parked
	_ = parked2
	// A new packet from 0 to 2: minimal path passes the blocked 1->2
	// slot. On a line there is no alternative... so use dst 1 instead:
	// packet from 0 to 1 is deliverable; this just sanity-checks that
	// derouting doesn't break ordinary delivery under blockage.
	p := n.NewPacket(0, 1, 0, 1)
	n.Inject(p)
	for i := 0; i < 200 && p.EjectedAt == 0; i++ {
		n.Step()
		n.PopEjected(1, 0)
	}
	if p.EjectedAt == 0 {
		t.Error("packet to intermediate router not delivered")
	}
}
