package noc

// Counters aggregates the microarchitectural event counts the power model
// consumes (internal/power) and the simulator reports.
type Counters struct {
	Created    int64 // packets entering injection queues
	Injected   int64 // packets leaving injection queues into VCs
	Ejected    int64 // packets entering ejection queues
	Hops       int64 // link traversals (packet granularity)
	LinkFlits  int64 // link traversals (flit granularity)
	BufWrites  int64 // VC buffer writes (flits)
	BufReads   int64 // VC buffer reads (flits)
	XbarFlits  int64 // crossbar traversals (flits)
	VCAllocs   int64 // successful VC allocations
	SWAllocs   int64 // successful switch allocations
	Misroutes  int64 // unproductive hops
	DrainMoves int64 // packet-hops forced by drain windows
	SpinMoves  int64 // packet-hops forced by SPIN recovery
	Probes     int64 // SPIN probe messages (modelled)
	Drains     int64 // drain windows executed
	FullDrains int64 // full drains executed
	FrozenCyc  int64 // cycles spent frozen (pre-drain + drain windows)

	// Per-virtual-network activity, for the Fig. 4 active/wasted power
	// split. Activity is tracked at router granularity: VN vn is active
	// at router r in a cycle when one of its flits moved through r, and
	// VNActiveRouterCycles[vn] counts such (router, cycle) pairs. The
	// activity *fraction* is VNActiveRouterCycles / (routers × cycles).
	VNFlits              []int64
	VNActiveRouterCycles []int64
	vnRouterLastActive   [][]int64 // [vn][router] last active cycle
}

// noteVNActivity records flit movement on virtual network vn through
// router r at the given cycle.
func (c *Counters) noteVNActivity(vn, router int, cycle, flits int64) {
	c.VNFlits[vn] += flits
	if c.vnRouterLastActive[vn][router] != cycle {
		c.vnRouterLastActive[vn][router] = cycle
		c.VNActiveRouterCycles[vn]++
	}
}
