package noc

// Counters aggregates the microarchitectural event counts the power model
// consumes (internal/power) and the simulator reports.
//
//drain:staged parallel phases accumulate into their shard's private delta instance (parShard.ctr), absorbed serially in ascending shard order; the delta's aliased vnRouterLastActive rows are router-partitioned, so concurrent shard writes never touch the same entry (shardsafe)
type Counters struct {
	Created    int64 // packets entering injection queues
	Injected   int64 // packets leaving injection queues into VCs
	Ejected    int64 // packets entering ejection queues
	Hops       int64 // link traversals (packet granularity)
	LinkFlits  int64 // link traversals (flit granularity)
	BufWrites  int64 // VC buffer writes (flits)
	BufReads   int64 // VC buffer reads (flits)
	XbarFlits  int64 // crossbar traversals (flits)
	VCAllocs   int64 // successful VC allocations
	SWAllocs   int64 // successful switch allocations
	Misroutes  int64 // unproductive hops
	DrainMoves int64 // packet-hops forced by drain windows
	SpinMoves  int64 // packet-hops forced by SPIN recovery
	Probes     int64 // SPIN probe messages (modelled)
	Drains     int64 // drain windows executed
	FullDrains int64 // full drains executed
	FrozenCyc  int64 // cycles spent frozen (pre-drain + drain windows)

	// Runtime fault/reconfiguration outcomes (see Network.Reconfigure).
	Reconfigs     int64 // live topology reconfigurations applied
	FaultReroutes int64 // buffered packets evacuated off failed links
	FaultDrops    int64 // packets dropped by link failures (in flight or stranded)

	// Recycled counts packets returned to the free-list (pool.go):
	// delivered packets drained by DiscardEjected or released by a
	// consumer, failed injections handed back by the driver, and
	// fault-dropped packets. It is bookkeeping for the pool-safety
	// invariant, not a network event: no parallel phase touches it.
	Recycled int64

	// Per-virtual-network activity, for the Fig. 4 active/wasted power
	// split. Activity is tracked at router granularity: VN vn is active
	// at router r in a cycle when one of its flits moved through r, and
	// VNActiveRouterCycles[vn] counts such (router, cycle) pairs. The
	// activity *fraction* is VNActiveRouterCycles / (routers × cycles).
	VNFlits              []int64
	VNActiveRouterCycles []int64
	vnRouterLastActive   [][]int64 // [vn][router] last active cycle
}

// noteVNActivity records flit movement on virtual network vn through
// router r at the given cycle.
func (c *Counters) noteVNActivity(vn, router int, cycle, flits int64) {
	c.VNFlits[vn] += flits
	if c.vnRouterLastActive[vn][router] != cycle {
		c.vnRouterLastActive[vn][router] = cycle
		c.VNActiveRouterCycles[vn]++
	}
}

// newShardDelta returns a Counters for per-shard accumulation by the
// parallel engine: fresh VN sums, but vnRouterLastActive aliasing the
// authoritative table so noteVNActivity's per-(vn,router,cycle) dedup is
// against global state. Router rows are shard-exclusive during parallel
// phases, so the aliased writes never race.
//
//drain:coldpath one-time lazy shard setup on the first Step; steady-state cycles only absorb
func (c *Counters) newShardDelta(vnets int) Counters {
	return Counters{
		VNFlits:              make([]int64, vnets),
		VNActiveRouterCycles: make([]int64, vnets),
		vnRouterLastActive:   c.vnRouterLastActive,
	}
}

// absorb adds d's event counts into c and zeroes them in d. The
// parallel engine absorbs per-shard deltas in ascending shard order;
// every field is an order-independent sum, so the result is
// byte-identical to serial accumulation. d's vnRouterLastActive is left
// alone (it aliases c's; see newShardDelta).
func (c *Counters) absorb(d *Counters) {
	c.Created += d.Created
	c.Injected += d.Injected
	c.Ejected += d.Ejected
	c.Hops += d.Hops
	c.LinkFlits += d.LinkFlits
	c.BufWrites += d.BufWrites
	c.BufReads += d.BufReads
	c.XbarFlits += d.XbarFlits
	c.VCAllocs += d.VCAllocs
	c.SWAllocs += d.SWAllocs
	c.Misroutes += d.Misroutes
	c.DrainMoves += d.DrainMoves
	c.SpinMoves += d.SpinMoves
	c.Probes += d.Probes
	c.Drains += d.Drains
	c.FullDrains += d.FullDrains
	c.FrozenCyc += d.FrozenCyc
	c.Reconfigs += d.Reconfigs
	c.FaultReroutes += d.FaultReroutes
	c.FaultDrops += d.FaultDrops
	c.Recycled += d.Recycled
	d.Created = 0
	d.Injected = 0
	d.Ejected = 0
	d.Hops = 0
	d.LinkFlits = 0
	d.BufWrites = 0
	d.BufReads = 0
	d.XbarFlits = 0
	d.VCAllocs = 0
	d.SWAllocs = 0
	d.Misroutes = 0
	d.DrainMoves = 0
	d.SpinMoves = 0
	d.Probes = 0
	d.Drains = 0
	d.FullDrains = 0
	d.FrozenCyc = 0
	d.Reconfigs = 0
	d.FaultReroutes = 0
	d.FaultDrops = 0
	d.Recycled = 0
	for i := range d.VNFlits {
		c.VNFlits[i] += d.VNFlits[i]
		d.VNFlits[i] = 0
	}
	for i := range d.VNActiveRouterCycles {
		c.VNActiveRouterCycles[i] += d.VNActiveRouterCycles[i]
		d.VNActiveRouterCycles[i] = 0
	}
}
