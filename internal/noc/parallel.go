package noc

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// parallelEngine is the sharded cycle core: routers are partitioned into
// K contiguous shards and each cycle's read-dominated phases run on a
// fixed worker pool with per-phase barriers, while every randomized
// decision (arbitration draws) commits serially in ascending router
// order on the stepping goroutine. The result is byte-identical to the
// dense and event engines for every K — same RNG draw sequence, same
// counters, same buffers — which the three-way lockstep oracle
// (FuzzDenseVsEvent) and sim.TestParallelEngineDifferential prove.
//
// Why identity holds (DESIGN.md §"Sharded parallel engine" has the full
// argument):
//
//   - Arbitration draws are inherently serial: the option set of a later
//     output at a router depends on earlier same-router winners via
//     p.sending, and the *number* of draws depends on outcomes. So draws
//     and their commits stay on one goroutine, in the dense scan order
//     (ascending router, eject port first, then outputs ascending).
//   - Everything else a cycle does is either partitioned by owner
//     (arrival effects by destination router, injection by router,
//     wake/alloc bits by router) or stable across the phase (routing
//     candidates, downstream free-slot state — each output link is
//     granted at most once per cycle and belongs to one source router),
//     so it parallelizes without changing any observable.
//   - The two cross-shard flows — upstream buffer releases of landing
//     flights, and counter deltas — go through per-shard staging drained
//     in ascending shard order, and all merged quantities are
//     order-independent sums or owner-exclusive writes.
//   - The one cross-router read during allocation, the single-VC bubble
//     rule (routerFreeInVN of the *target* router), is planned as
//     conditional options (grant.cond) and resolved at commit time, at
//     exactly the point the serial order evaluates it.
//
// Ejections are pushed serially in flight order so ejection-queue
// order, ejDirtyList order and OnEject callback order (float summation
// in the stats collectors!) match the serial engines. One observable
// difference remains: OnEject fires after the whole arrival phase
// rather than interleaved with it. The in-repo callbacks only read the
// packet, so nothing in the repo can tell.
type parallelEngine struct {
	nShards int

	// Timing wheel over future events, sized exactly like the event
	// engine's. Flights are appended only from serial contexts (the
	// commit phase), so the wheel is global; wakes are per shard.
	size    int64
	mask    int64
	maxOff  int64
	flights [][]flight
	count   int

	shardOf []int32 // router -> owning shard
	shards  []parShard

	// inlineBelow: cycles whose active-work estimate is below this run
	// serially on the stepping goroutine (identical results, no barrier
	// overhead). 0 after construction means "never inline".
	inlineBelow int

	// Worker pool: worker i processes shard i+1; shard 0 runs on the
	// stepping goroutine between kickoff and wg.Wait. curNet/curPhase
	// are published before the kickoff sends and read after the
	// receives; wg orders all shard writes before the next phase.
	curNet   *Network
	curPhase int
	start    []chan struct{}
	wg       sync.WaitGroup
	quit     chan struct{}
	quitOnce sync.Once
	stopped  bool
	bound    bool
}

// Parallel phase identifiers (curPhase).
const (
	phaseLandArrive = iota // apply arrival effects, stage upstream frees
	phaseLandFree          // drain staged upstream frees in shard order
	phasePlan              // gather requests, build option lists
	phaseInject            // move injection-queue heads into local VCs
)

// defaultParallelInline is the active-work threshold below which a cycle
// runs inline; chosen so a saturated 8x8 stays inline (barriers would
// dominate) while a loaded 64x64 runs phased.
const defaultParallelInline = 96

// upFree is a staged upstream buffer release: the position a landing
// packet departed from, captured before the arrival side overwrites the
// packet's position fields. Addressed to the shard owning the upstream
// router.
type upFree struct {
	pkt    *Packet
	inLink int32 // LocalPort or link ID
	router int32
	slot   int32
	flits  int32
}

// routerPlan is one router's planned allocation work: index ranges into
// the owning shard's request/winner/output arenas.
type routerPlan struct {
	router       int32
	eligible     int32
	winLo, winHi int32 // eject winner indices in parShard.wins
	reqLo, reqHi int32 // requests in parShard.reqs
	outLo, outHi int32 // planned outputs in parShard.outs
}

// plannedOut is one output link with at least one planned option.
type plannedOut struct {
	link         int32
	optLo, optHi int32 // options in parShard.opts
}

// parShard is the per-shard state: the shard's slice of the activity
// bitmaps and wake wheel, its staging buffers, and its plan arenas. The
// bitsets span the full router domain (only bits in [lo,hi) are ever
// set), so no two shards share a word and ascending iteration over
// shards 0..K-1 visits routers in global ascending order.
//
//drain:staged per-shard by construction: each phase writes only its own instance's arenas and counters; the one cross-shard field, upOut, is written column-exclusively (shard s appends only to its own upOut[dst]) and drained at the next barrier in ascending source-shard order (shardsafe)
type parShard struct {
	lo, hi int
	alloc  bitset
	inj    bitset
	wakes  [][]int32

	// upOut[dst] stages upstream frees this shard's arrivals owe to
	// shard dst; dst drains them in ascending source-shard order.
	upOut [][]upFree

	ctr      Counters // staged counter delta (vnRouterLastActive aliased)
	injDelta int      // queues drained to empty this cycle

	// plan arenas, reset each phased cycle
	gs    gatherScratch
	plans []routerPlan
	reqs  []request
	wins  []int
	outs  []plannedOut
	opts  []grant
}

// newParallelEngine builds the engine and spawns its K-1 workers
// (shard 0 runs on the stepping goroutine). Construction is the cold
// path: everything the hot phases append to is a reusable arena.
func newParallelEngine(cfg *Config) *parallelEngine {
	nRouters := cfg.Graph.N()
	k := cfg.Shards
	if k <= 0 {
		k = 1
	}
	if k > nRouters {
		k = nRouters
	}
	maxOff := int64(cfg.MaxFlits)
	if int64(cfg.RouterLatency) > maxOff {
		maxOff = int64(cfg.RouterLatency)
	}
	size := int64(1)
	for size <= maxOff {
		size <<= 1
	}
	e := &parallelEngine{
		nShards: k,
		size:    size,
		mask:    size - 1,
		maxOff:  maxOff,
		flights: make([][]flight, size),
		shardOf: make([]int32, nRouters),
		shards:  make([]parShard, k),
		quit:    make(chan struct{}),
	}
	e.inlineBelow = cfg.ParallelInline
	if e.inlineBelow == 0 {
		e.inlineBelow = defaultParallelInline
	} else if e.inlineBelow < 0 {
		e.inlineBelow = 0
	}
	for s := range e.shards {
		sh := &e.shards[s]
		sh.lo = s * nRouters / k
		sh.hi = (s + 1) * nRouters / k
		for r := sh.lo; r < sh.hi; r++ {
			e.shardOf[r] = int32(s)
		}
		sh.alloc = newBitset(nRouters)
		sh.inj = newBitset(nRouters)
		sh.wakes = make([][]int32, size)
		sh.upOut = make([][]upFree, k)
	}
	e.start = make([]chan struct{}, k-1)
	for i := range e.start {
		e.start[i] = make(chan struct{}, 1)
		go e.worker(i + 1)
	}
	return e
}

// bind lazily wires the per-shard counter deltas to the network's
// authoritative VN-activity table (not yet allocated when newEngine
// runs).
//
//drain:coldpath one-time lazy wiring on the first Step; steady-state cycles see e.bound and never re-enter
func (e *parallelEngine) bind(n *Network) {
	for s := range e.shards {
		e.shards[s].ctr = n.Counters.newShardDelta(n.cfg.VNets)
	}
	e.bound = true
}

// worker is the persistent loop of one pool goroutine: wait for a phase
// kickoff, run this shard's share, signal the barrier.
//
//drain:hotpath parallel-phase worker body; spawned once at construction and dispatched per phase through channels (dynamic edges are not followed)
func (e *parallelEngine) worker(s int) {
	for {
		select {
		case <-e.quit:
			return
		case <-e.start[s-1]:
		}
		e.runShardPhase(e.curNet, e.curPhase, s)
		e.wg.Done()
	}
}

func (e *parallelEngine) runShardPhase(n *Network, phase, s int) {
	switch phase {
	case phaseLandArrive:
		e.landArrivals(n, s)
	case phaseLandFree:
		e.applyUpFrees(n, s)
	case phasePlan:
		e.planShard(n, s)
	case phaseInject:
		e.injectShard(n, s)
	}
}

// runPhase fans one phase across the shards and waits for all of them:
// workers take shards 1..K-1, the stepping goroutine takes shard 0. The
// buffered kickoff sends publish curNet/curPhase (channel send
// happens-before receive); wg.Wait is the barrier ordering every
// shard's writes before the next phase reads them.
func (e *parallelEngine) runPhase(n *Network, phase int) {
	e.curNet, e.curPhase = n, phase
	e.wg.Add(len(e.start))
	for _, c := range e.start {
		c <- struct{}{}
	}
	e.runShardPhase(n, phase, 0)
	e.wg.Wait()
	e.curNet = nil
}

// step advances one cycle. Small cycles (and every cycle once stopped)
// run inline — the event engine's exact algorithm over the per-shard
// structures; loaded cycles run the phased pipeline. The choice is a
// pure function of simulation state, and both paths are byte-identical,
// so interleaving them freely is safe.
//
//drain:hotpath parallel-core cycle entry, dispatched from Network.Step through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) step(n *Network) {
	if !e.bound {
		e.bind(n)
	}
	slot := n.cycle & e.mask
	fl := e.flights[slot]
	work := len(fl)
	for s := range e.shards {
		work += e.shards[s].alloc.count() + e.shards[s].inj.count()
	}
	if e.stopped || len(e.start) == 0 || work < e.inlineBelow {
		e.stepInline(n, fl, slot)
		return
	}
	e.stepPhased(n, fl, slot)
}

// stepInline runs the whole cycle serially on the stepping goroutine:
// lands in creation order, then allocation and injection over the
// per-shard bitsets in ascending shard order — which is ascending
// router order, exactly the dense scan.
func (e *parallelEngine) stepInline(n *Network, fl []flight, slot int64) {
	if len(fl) > 0 {
		e.count -= len(fl)
		for i := range fl {
			n.land(fl[i])
		}
		e.flights[slot] = fl[:0]
	}
	e.fireWakes(slot)
	if n.frozen {
		n.Counters.FrozenCyc++
		return
	}
	for s := range e.shards {
		sh := &e.shards[s]
		for wi := sh.alloc.nextWord(-1); wi >= 0; wi = sh.alloc.nextWord(wi) {
			w := sh.alloc.words[wi]
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				w &^= 1 << uint(bit)
				r := wi<<6 + bit
				eligible, granted := n.allocateRouter(r, &n.gs)
				if eligible == granted {
					sh.alloc.clearWordBit(wi, bit)
				}
			}
		}
	}
	for s := range e.shards {
		sh := &e.shards[s]
		for wi := sh.inj.nextWord(-1); wi >= 0; wi = sh.inj.nextWord(wi) {
			w := sh.inj.words[wi]
			for w != 0 {
				bit := bits.TrailingZeros64(w)
				w &^= 1 << uint(bit)
				if !n.injectRouterQueues(wi<<6 + bit) {
					sh.inj.clearWordBit(wi, bit)
				}
			}
		}
	}
}

// stepPhased runs the cycle as the barrier pipeline: parallel arrivals
// (staging upstream frees), parallel frees, serial ejection pushes,
// wakes, parallel planning, serial commit, parallel injection, and a
// serial reduce of the staged deltas in shard order.
func (e *parallelEngine) stepPhased(n *Network, fl []flight, slot int64) {
	if len(fl) > 0 {
		e.count -= len(fl)
		e.runPhase(n, phaseLandArrive)
		e.runPhase(n, phaseLandFree)
		for i := range fl {
			if fl[i].eject {
				n.pushEject(fl[i].toRouter, fl[i].pkt)
			}
		}
		e.flights[slot] = fl[:0]
	}
	e.fireWakes(slot)
	if n.frozen {
		e.reduce(n)
		n.Counters.FrozenCyc++
		return
	}
	e.runPhase(n, phasePlan)
	e.commit(n)
	e.runPhase(n, phaseInject)
	e.reduce(n)
}

// fireWakes re-arms the activity bits of routers whose head matures
// this cycle. Cheap pure bit work, so it always runs serially.
func (e *parallelEngine) fireWakes(slot int64) {
	for s := range e.shards {
		sh := &e.shards[s]
		if ws := sh.wakes[slot]; len(ws) > 0 {
			for _, r := range ws {
				sh.alloc.set(int(r))
			}
			sh.wakes[slot] = ws[:0]
		}
	}
}

// landArrivals (phaseLandArrive, per shard): apply the destination-side
// effects of every flight landing in this shard, and stage the upstream
// release — captured from the packet's position fields before
// landArrive overwrites them — to the shard owning the departed router.
// Eject flights only stage their release here; the push happens
// serially after phaseLandFree.
func (e *parallelEngine) landArrivals(n *Network, s int) {
	sh := &e.shards[s]
	fl := e.flights[n.cycle&e.mask]
	for i := range fl {
		f := &fl[i]
		if e.shardOf[f.toRouter] != int32(s) {
			continue
		}
		p := f.pkt
		dst := e.shardOf[p.atRouter]
		sh.upOut[dst] = append(sh.upOut[dst], upFree{
			pkt: p, inLink: int32(p.inLink), router: int32(p.atRouter),
			slot: int32(p.slot), flits: int32(p.Flits),
		})
		if !f.eject {
			n.landArrive(*f, &sh.ctr)
		}
	}
}

// applyUpFrees (phaseLandFree, per shard): drain the staged releases
// addressed to this shard, in ascending source-shard order. All touched
// state (upstream VC slots, occupancy counts) is owned by this shard's
// routers; BufReads accumulates in the shard delta.
func (e *parallelEngine) applyUpFrees(n *Network, s int) {
	sh := &e.shards[s]
	for i := range e.shards {
		src := &e.shards[i]
		cell := src.upOut[s]
		for j := range cell {
			u := &cell[j]
			n.freeUpstream(int(u.inLink), int(u.router), int(u.slot), int64(u.flits), &sh.ctr)
			u.pkt.sending = false
		}
		src.upOut[s] = cell[:0]
	}
}

// planShard (phasePlan, per shard): for every active router of the
// shard, gather requests and precompute what the serial allocator will
// need — the eligible count, the eject winner list, and per-output
// option lists (with the bubble rule deferred as conditional options).
// Reads shared state that is stable for the whole allocation phase;
// writes only shard-owned arenas, this shard's activity bits, and the
// per-link wantOut stamps of this shard's own output links.
func (e *parallelEngine) planShard(n *Network, s int) {
	sh := &e.shards[s]
	sh.plans = sh.plans[:0]
	sh.reqs = sh.reqs[:0]
	sh.wins = sh.wins[:0]
	sh.outs = sh.outs[:0]
	sh.opts = sh.opts[:0]
	for wi := sh.alloc.nextWord(-1); wi >= 0; wi = sh.alloc.nextWord(wi) {
		w := sh.alloc.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			r := wi<<6 + bit
			reqs, eligible := n.gatherRequests(r, &sh.gs)
			if len(reqs) == 0 {
				if eligible == 0 {
					// Stale bit: the visit found nothing and would have
					// drawn no randomness — clear, as the event engine does.
					sh.alloc.clearWordBit(wi, bit)
				}
				continue
			}
			pl := routerPlan{router: int32(r), eligible: int32(eligible)}
			pl.reqLo = int32(len(sh.reqs))
			sh.reqs = append(sh.reqs, reqs...)
			pl.reqHi = int32(len(sh.reqs))
			areqs := sh.reqs[pl.reqLo:pl.reqHi]
			pl.winLo = int32(len(sh.wins))
			if n.ejectBusy[r] <= n.cycle {
				sh.wins = n.buildEjectWinners(r, areqs, sh.wins)
			}
			pl.winHi = int32(len(sh.wins))
			pl.outLo = int32(len(sh.outs))
			outs := sh.gs.outs
			if sh.gs.spill {
				outs = n.outLinks[r]
			}
			for _, out := range outs {
				if n.linkBusy[out] > n.cycle {
					continue
				}
				optLo := int32(len(sh.opts))
				sh.opts = n.buildLinkOptions(out, areqs, sh.opts, true)
				if int32(len(sh.opts)) > optLo {
					sh.outs = append(sh.outs, plannedOut{
						link: int32(out), optLo: optLo, optHi: int32(len(sh.opts)),
					})
				}
			}
			pl.outHi = int32(len(sh.outs))
			sh.plans = append(sh.plans, pl)
		}
	}
}

// commit replays the plans serially in ascending shard (= router)
// order, making every RNG draw in exactly the dense scan's sequence:
// per router, the eject draw first, then each planned output ascending.
// Options planned optimistically are filtered the way the serial
// allocator would have: packets granted an earlier output this cycle
// (sending) drop out, and conditional bubble options resolve against
// the now-current target-router state.
func (e *parallelEngine) commit(n *Network) {
	for s := range e.shards {
		sh := &e.shards[s]
		for pi := range sh.plans {
			pl := &sh.plans[pi]
			r := int(pl.router)
			reqs := sh.reqs[pl.reqLo:pl.reqHi]
			granted := 0
			if pl.winHi > pl.winLo {
				granted += n.commitEject(r, reqs, sh.wins[pl.winLo:pl.winHi])
			}
			for oi := pl.outLo; oi < pl.outHi; oi++ {
				po := &sh.outs[oi]
				seg := sh.opts[po.optLo:po.optHi]
				kept := seg[:0]
				for i := range seg {
					g := seg[i]
					if reqs[g.reqIdx].pkt.sending {
						continue
					}
					switch g.cond {
					case condBubbleOK:
						if n.routerFreeInVN(int(g.bubbleTo), int(g.bubbleVN)) < 2 {
							continue
						}
					case condBubbleFail:
						if n.routerFreeInVN(int(g.bubbleTo), int(g.bubbleVN)) >= 2 {
							continue
						}
					}
					kept = append(kept, g)
				}
				granted += n.commitLinkGrant(r, int(po.link), reqs, kept)
			}
			if int(pl.eligible) == granted {
				sh.alloc.clear(r)
			}
		}
	}
}

// injectShard (phaseInject, per shard): the event engine's injection
// sweep over this shard's bits. Injection draws no randomness and
// touches only router-owned state; the injPending and counter deltas
// stage per shard.
func (e *parallelEngine) injectShard(n *Network, s int) {
	sh := &e.shards[s]
	for wi := sh.inj.nextWord(-1); wi >= 0; wi = sh.inj.nextWord(wi) {
		w := sh.inj.words[wi]
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &^= 1 << uint(bit)
			pending, emptied := n.injectRouterQueuesInto(wi<<6+bit, &sh.ctr)
			sh.injDelta += emptied
			if !pending {
				sh.inj.clearWordBit(wi, bit)
			}
		}
	}
}

// reduce folds the staged per-shard deltas into the network in
// ascending shard order. Sums only, so the result is byte-identical to
// the serial engines' in-place accumulation.
func (e *parallelEngine) reduce(n *Network) {
	for s := range e.shards {
		sh := &e.shards[s]
		n.Counters.absorb(&sh.ctr)
		n.injPending -= sh.injDelta
		sh.injDelta = 0
	}
}

// addFlight schedules a started transfer to land at f.doneAt. Called
// from serial contexts only (the commit phase and the inline path).
//
//drain:hotpath called from arbitration through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) addFlight(n *Network, f flight) {
	slot := f.doneAt & e.mask
	e.flights[slot] = append(e.flights[slot], f)
	e.count++
}

// placed arms the owning shard's activity bit, now or at the head's
// maturation cycle. In parallel phases this is only ever called for
// routers of the running shard (arrivals and injections are partitioned
// by destination router), so the per-shard structures never race.
//
//drain:hotpath called from land/injection through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) placed(n *Network, router int, readyAt int64) {
	sh := &e.shards[e.shardOf[router]]
	if readyAt <= n.cycle {
		sh.alloc.set(router)
		return
	}
	slot := readyAt & e.mask
	sh.wakes[slot] = append(sh.wakes[slot], int32(router))
}

// noteInject arms the owning shard's injection bit (serial contexts:
// Network.Inject runs between cycles).
//
//drain:hotpath called from Network.Inject through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) noteInject(_ *Network, router int) {
	e.shards[e.shardOf[router]].inj.set(router)
}

// inflightCount returns the number of transfers currently on links.
func (e *parallelEngine) inflightCount() int { return e.count }

// eachFlight visits every pending transfer.
func (e *parallelEngine) eachFlight(fn func(f *flight)) {
	for s := range e.flights {
		for i := range e.flights[s] {
			fn(&e.flights[s][i])
		}
	}
}

// removeFailedFlights filters every wheel slot in place, dropping
// transfers bound for a failed link. Runs on the stepping goroutine
// between Steps, when the workers are parked, so no synchronization is
// needed — a reconfiguration is a serial phase, like commits.
func (e *parallelEngine) removeFailedFlights(n *Network, down []bool) int {
	dropped := 0
	for s := range e.flights {
		fl := e.flights[s]
		out := fl[:0]
		for _, f := range fl {
			if !f.eject && down[f.toLink] {
				n.dropFlight(f)
				dropped++
				continue
			}
			out = append(out, f)
		}
		e.flights[s] = out
	}
	e.count -= dropped
	return dropped
}

// nextWorkCycle mirrors the event engine: now+1 while any activity bit
// is set, otherwise the earliest pending wheel event, otherwise never.
//
//drain:hotpath per-iteration driver query, dispatched through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) nextWorkCycle(n *Network) int64 {
	for s := range e.shards {
		if e.shards[s].alloc.any() || e.shards[s].inj.any() {
			return n.cycle + 1
		}
	}
	for d := int64(1); d <= e.size; d++ {
		slot := (n.cycle + d) & e.mask
		if len(e.flights[slot]) > 0 {
			return n.cycle + d
		}
		for s := range e.shards {
			if len(e.shards[s].wakes[slot]) > 0 {
				return n.cycle + d
			}
		}
	}
	return math.MaxInt64
}

// skipIdle jumps the clock over k cycles the caller proved empty via
// nextWorkCycle (see the event engine's skipIdle).
//
//drain:hotpath fast-forward entry, dispatched from Network.SkipIdle through the engine seam (dynamic calls are not followed)
func (e *parallelEngine) skipIdle(n *Network, k int64) {
	n.cycle += k
	n.noteCycles(k)
	if n.frozen {
		n.Counters.FrozenCyc += k
	}
}

// stop terminates the worker pool. Idempotent; subsequent Steps use the
// inline path, which remains byte-identical.
func (e *parallelEngine) stop() {
	e.quitOnce.Do(func() {
		e.stopped = true
		close(e.quit)
	})
}

// check validates the wheel, the per-shard activity structures and the
// staging buffers against a full scan (tests only; see the event
// engine's check for the invariant statements).
func (e *parallelEngine) check(n *Network) error {
	total := 0
	for s := range e.flights {
		for i := range e.flights[s] {
			f := &e.flights[s][i]
			if f.doneAt <= n.cycle || f.doneAt > n.cycle+e.maxOff {
				return fmt.Errorf("noc: flight of packet %d lands at %d, outside (%d,%d]", f.pkt.ID, f.doneAt, n.cycle, n.cycle+e.maxOff)
			}
			if f.doneAt&e.mask != int64(s) {
				return fmt.Errorf("noc: flight of packet %d (doneAt %d) filed in wheel slot %d", f.pkt.ID, f.doneAt, s)
			}
		}
		total += len(e.flights[s])
	}
	if total != e.count {
		return fmt.Errorf("noc: wheel holds %d flights, count says %d", total, e.count)
	}
	for s := range e.shards {
		sh := &e.shards[s]
		for r := 0; r < len(e.shardOf); r++ {
			owned := r >= sh.lo && r < sh.hi
			if !owned && (sh.alloc.get(r) || sh.inj.get(r)) {
				return fmt.Errorf("noc: shard %d holds activity bit for router %d outside [%d,%d)", s, r, sh.lo, sh.hi)
			}
		}
		if !sh.alloc.sumConsistent() || !sh.inj.sumConsistent() {
			return fmt.Errorf("noc: shard %d activity bitset summary level disagrees with its words", s)
		}
		for d := range sh.upOut {
			if len(sh.upOut[d]) != 0 {
				return fmt.Errorf("noc: shard %d has %d unstaged upstream frees for shard %d between cycles", s, len(sh.upOut[d]), d)
			}
		}
		if sh.injDelta != 0 {
			return fmt.Errorf("noc: shard %d has unreduced injPending delta %d", s, sh.injDelta)
		}
	}
	head := func(r int, p *Packet) error {
		sh := &e.shards[e.shardOf[r]]
		if p == nil || p.sending {
			return nil
		}
		if p.readyAt <= n.cycle {
			if !sh.alloc.get(r) {
				return fmt.Errorf("noc: eligible head (packet %d) at router %d but activity bit clear", p.ID, r)
			}
			return nil
		}
		if p.readyAt > n.cycle+e.maxOff {
			return fmt.Errorf("noc: packet %d matures at %d, beyond the wheel horizon %d", p.ID, p.readyAt, n.cycle+e.maxOff)
		}
		for _, wr := range sh.wakes[p.readyAt&e.mask] {
			if int(wr) == r {
				return nil
			}
		}
		return fmt.Errorf("noc: immature head (packet %d) at router %d has no wake at cycle %d", p.ID, r, p.readyAt)
	}
	for l := 0; l < n.g.NumLinks(); l++ {
		router := n.g.Link(l).To
		for s := range n.linkVC[l] {
			if err := head(router, n.linkVC[l][s].pkt); err != nil {
				return err
			}
		}
	}
	for r := 0; r < n.g.N(); r++ {
		for s := range n.localVC[r] {
			if err := head(r, n.localVC[r][s].pkt); err != nil {
				return err
			}
		}
		for c := range n.injQ[r] {
			if n.injQ[r][c].Len() > 0 && !e.shards[e.shardOf[r]].inj.get(r) {
				return fmt.Errorf("noc: router %d has queued injections but injection bit clear", r)
			}
		}
	}
	return nil
}
