package noc

import (
	"math"
	"testing"

	"drain/internal/routing"
	"drain/internal/topology"
)

func TestEngineKindString(t *testing.T) {
	if got := EngineEvent.String(); got != "event" {
		t.Errorf("EngineEvent.String() = %q", got)
	}
	if got := EngineDense.String(); got != "dense" {
		t.Errorf("EngineDense.String() = %q", got)
	}
}

func TestEventWheelSizing(t *testing.T) {
	g, err := topology.NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		maxFlits, routerLatency int
		wantSize                int64
	}{
		{1, 1, 2},
		{5, 1, 8},
		{8, 1, 16}, // power-of-two offset still needs a strictly larger wheel
		{5, 9, 16},
		{16, 4, 32},
	}
	for _, c := range cases {
		cfg := Config{Graph: g, MaxFlits: c.maxFlits, RouterLatency: c.routerLatency}
		e := newEventEngine(&cfg)
		maxOff := int64(c.maxFlits)
		if int64(c.routerLatency) > maxOff {
			maxOff = int64(c.routerLatency)
		}
		if e.size != c.wantSize || e.mask != c.wantSize-1 || e.maxOff != maxOff {
			t.Errorf("maxFlits=%d latency=%d: size=%d mask=%d maxOff=%d, want size=%d",
				c.maxFlits, c.routerLatency, e.size, e.mask, e.maxOff, c.wantSize)
		}
		if e.size&(e.size-1) != 0 || e.size <= maxOff {
			t.Errorf("wheel size %d is not a power of two strictly above offset %d", e.size, maxOff)
		}
	}
}

func newTestNet(t *testing.T, kind EngineKind) *Network {
	t.Helper()
	g, err := topology.NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{
		Graph: g, VNets: 1, VCsPerVN: 2, Classes: 1,
		Routing: routing.AdaptiveMinimal,
		Seed:    1,
		Engine:  kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNextWorkCycleStates(t *testing.T) {
	n := newTestNet(t, EngineEvent)
	if got := n.NextWorkCycle(); got != math.MaxInt64 {
		t.Fatalf("empty network NextWorkCycle = %d, want MaxInt64", got)
	}
	// A queued injection is immediate work.
	if !n.Inject(n.NewPacket(0, 2, 0, 1)) {
		t.Fatal("inject refused on an empty network")
	}
	if got := n.NextWorkCycle(); got != n.Cycle()+1 {
		t.Fatalf("with queued injection NextWorkCycle = %d, want %d", got, n.Cycle()+1)
	}
	// Run to delivery; the hint must never admit skipping a cycle the
	// dense semantics would act in (each Step's work happens at most
	// one cycle after the hint).
	for i := 0; i < 64 && n.InFlightPackets() > 0; i++ {
		n.Step()
		n.DiscardEjected()
	}
	if n.InFlightPackets() != 0 {
		t.Fatal("packet not delivered within 64 cycles on a 4-ring")
	}
	if got := n.NextWorkCycle(); got != math.MaxInt64 {
		t.Fatalf("drained network NextWorkCycle = %d, want MaxInt64", got)
	}
	// The dense engine can never prove idleness.
	d := newTestNet(t, EngineDense)
	if got := d.NextWorkCycle(); got != d.Cycle()+1 {
		t.Fatalf("dense NextWorkCycle = %d, want %d", got, d.Cycle()+1)
	}
}

func TestSkipIdleAdvancesClock(t *testing.T) {
	n := newTestNet(t, EngineEvent)
	n.SkipIdle(100)
	if n.Cycle() != 100 {
		t.Fatalf("cycle = %d after SkipIdle(100)", n.Cycle())
	}
	n.SkipIdle(0) // no-op
	n.SkipIdle(-5)
	if n.Cycle() != 100 {
		t.Fatalf("cycle = %d after no-op skips", n.Cycle())
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A frozen skip accounts the window as frozen cycles, exactly as k
	// dense Steps would have.
	n.SetFrozen(true)
	n.SkipIdle(7)
	if n.Counters.FrozenCyc != 7 {
		t.Fatalf("FrozenCyc = %d after frozen SkipIdle(7)", n.Counters.FrozenCyc)
	}
}

func TestSkipIdlePanicsOnDense(t *testing.T) {
	n := newTestNet(t, EngineDense)
	defer func() {
		if recover() == nil {
			t.Fatal("dense SkipIdle did not panic")
		}
	}()
	n.SkipIdle(1)
}

// TestInjPendingCount pins the incremental non-empty-injection-queue
// count that lets injectFromQueues skip whole cycles: it must rise as
// queues go non-empty, fall as they drain, and always agree with the
// recount in CheckInvariants.
func TestInjPendingCount(t *testing.T) {
	n := newTestNet(t, EngineEvent)
	if n.injPending != 0 {
		t.Fatalf("fresh network injPending = %d", n.injPending)
	}
	// Three packets at router 0 make ONE non-empty queue; one more at
	// router 1 makes two.
	for i := 0; i < 3; i++ {
		if !n.Inject(n.NewPacket(0, 2, 0, 1)) {
			t.Fatal("inject refused")
		}
	}
	if n.injPending != 1 {
		t.Fatalf("injPending = %d after 3 injections at one router, want 1", n.injPending)
	}
	if !n.Inject(n.NewPacket(1, 3, 0, 1)) {
		t.Fatal("inject refused")
	}
	if n.injPending != 2 {
		t.Fatalf("injPending = %d with two routers queued, want 2", n.injPending)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64 && n.injPending > 0; i++ {
		n.Step()
		if err := n.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if n.injPending != 0 {
		t.Fatalf("injPending = %d after draining, want 0", n.injPending)
	}
}
