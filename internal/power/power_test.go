package power

import (
	"testing"

	"drain/internal/noc"
)

// The three Fig. 9 router configurations on a mesh (5 ports).
func fig9Configs() (escape, spin, drainCfg RouterConfig) {
	escape = RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: SchemeEscapeVC}
	spin = RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: SchemeSPIN}
	drainCfg = RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: SchemeDRAIN}
	return
}

func TestFig9AreaRatios(t *testing.T) {
	p := DefaultParams()
	e, s, d := fig9Configs()
	ea, sa, da := Area(e, p).Total(), Area(s, p).Total(), Area(d, p).Total()
	// Paper: DRAIN yields ~72% area reduction vs escape VCs.
	ratio := da / ea
	if ratio < 0.18 || ratio > 0.38 {
		t.Errorf("DRAIN/escape area ratio = %.3f, want ≈0.28 (72%% reduction)", ratio)
	}
	if !(da < sa && sa < ea) {
		t.Errorf("area ordering violated: drain=%.0f spin=%.0f escape=%.0f", da, sa, ea)
	}
	// SPIN's control overhead: ~15% over an equivalent plain router.
	plain := s
	plain.Scheme = SchemeNone
	over := (sa - Area(plain, p).Total()) / Area(plain, p).Total()
	if over < 0.02 || over > 0.16 {
		t.Errorf("SPIN control overhead = %.3f of router, want noticeable but ≤15%%", over)
	}
}

func TestFig9StaticPowerRatios(t *testing.T) {
	p := DefaultParams()
	e, _, d := fig9Configs()
	ep, dp := StaticPower(e, p).Total(), StaticPower(d, p).Total()
	// Paper: ~77% router power reduction vs the baselines.
	ratio := dp / ep
	if ratio < 0.15 || ratio > 0.35 {
		t.Errorf("DRAIN/escape power ratio = %.3f, want ≈0.23 (77%% reduction)", ratio)
	}
}

func TestBuffersDominate(t *testing.T) {
	// The paper's premise (Fig. 4 discussion): VC buffers are the
	// dominant area/power component of the interconnect.
	p := DefaultParams()
	e, _, _ := fig9Configs()
	a := Area(e, p)
	if a.Buffers < a.Crossbar+a.Allocators+a.Control {
		t.Errorf("buffers (%.0f) do not dominate (other %.0f)",
			a.Buffers, a.Crossbar+a.Allocators+a.Control)
	}
	sp := StaticPower(e, p)
	if sp.Buffers < sp.Crossbar+sp.Allocators+sp.Control {
		t.Error("buffer static power does not dominate")
	}
}

func TestDynamicEnergyMonotone(t *testing.T) {
	p := DefaultParams()
	var small, big noc.Counters
	small.LinkFlits, small.BufWrites, small.BufReads = 10, 10, 10
	big.LinkFlits, big.BufWrites, big.BufReads = 100, 100, 100
	if DynamicEnergy(small, p) >= DynamicEnergy(big, p) {
		t.Error("dynamic energy not monotone in activity")
	}
	if DynamicEnergy(noc.Counters{}, p) != 0 {
		t.Error("no events should mean no dynamic energy")
	}
}

func TestPerVNPowerSplit(t *testing.T) {
	p := DefaultParams()
	rc := RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5}
	cnt := noc.Counters{
		VNFlits:              []int64{1000, 10, 0},
		VNActiveRouterCycles: []int64{64 * 5000, 64 * 100, 0},
	}
	const cycles = 10000
	vp := PerVNPower(cnt, rc, p, cycles, 64, 1.0)
	if len(vp) != 3 {
		t.Fatalf("got %d VNs", len(vp))
	}
	// VN0 is busy half the time; VN2 never: all waste.
	if vp[0].ActiveMW <= vp[1].ActiveMW || vp[1].ActiveMW <= vp[2].ActiveMW {
		t.Errorf("active power not ordered by activity: %+v", vp)
	}
	if vp[2].ActiveMW != 0 {
		t.Errorf("idle VN has active power %v", vp[2].ActiveMW)
	}
	if vp[2].WastedMW <= 0 {
		t.Error("idle VN must waste static power")
	}
	// An idle VN wastes more than a busy VN.
	if vp[0].WastedMW >= vp[2].WastedMW {
		t.Errorf("busy VN wastes more than idle VN: %+v", vp)
	}
	// Paper Fig. 4: at realistic (low) utilization, waste dominates.
	totalActive := vp[0].ActiveMW + vp[1].ActiveMW + vp[2].ActiveMW
	totalWaste := vp[0].WastedMW + vp[1].WastedMW + vp[2].WastedMW
	if totalWaste < totalActive {
		t.Errorf("waste (%.2f) should dominate at low load (active %.2f)", totalWaste, totalActive)
	}
	if got := PerVNPower(cnt, rc, p, 0, 64, 1.0); got[0].ActiveMW != 0 {
		t.Error("zero-cycle run should report zero power")
	}
}

func TestMOESIScalingIncreasesSavings(t *testing.T) {
	// Paper §V-A: protocols needing more virtual networks (MOESI: 6)
	// make DRAIN's relative savings even greater.
	p := DefaultParams()
	mesi := RouterConfig{Ports: 5, VNets: 3, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: SchemeEscapeVC}
	moesi := RouterConfig{Ports: 5, VNets: 6, VCsPerVN: 2, FlitBits: 128, BufDepth: 5, Scheme: SchemeEscapeVC}
	d := RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 1, FlitBits: 128, BufDepth: 5, Scheme: SchemeDRAIN}
	savingMESI := 1 - Area(d, p).Total()/Area(mesi, p).Total()
	savingMOESI := 1 - Area(d, p).Total()/Area(moesi, p).Total()
	if savingMOESI <= savingMESI {
		t.Errorf("MOESI saving %.3f not greater than MESI %.3f", savingMOESI, savingMESI)
	}
	powMESI := 1 - StaticPower(d, p).Total()/StaticPower(mesi, p).Total()
	powMOESI := 1 - StaticPower(d, p).Total()/StaticPower(moesi, p).Total()
	if powMOESI <= powMESI {
		t.Errorf("MOESI power saving %.3f not greater than MESI %.3f", powMOESI, powMESI)
	}
}

func TestBreakdownComponentsScale(t *testing.T) {
	p := DefaultParams()
	base := RouterConfig{Ports: 5, VNets: 1, VCsPerVN: 1, FlitBits: 128, BufDepth: 5}
	// Doubling VCs doubles buffer area, leaves crossbar unchanged.
	twice := base
	twice.VCsPerVN = 2
	a, b := Area(base, p), Area(twice, p)
	if b.Buffers != 2*a.Buffers {
		t.Errorf("buffer area %.0f → %.0f, want 2x", a.Buffers, b.Buffers)
	}
	if b.Crossbar != a.Crossbar {
		t.Error("crossbar area changed with VC count")
	}
	if b.Allocators <= a.Allocators {
		t.Error("allocator area should grow with VCs")
	}
	// More ports grow crossbar quadratically.
	wide := base
	wide.Ports = 10
	if Area(wide, p).Crossbar != 4*a.Crossbar {
		t.Error("crossbar should scale with ports²")
	}
	// Control overhead only with a scheme that has one.
	if a.Control != 0 {
		t.Error("plain router has control overhead")
	}
	spin := base
	spin.Scheme = SchemeSPIN
	if Area(spin, p).Control <= 0 {
		t.Error("SPIN router lacks control overhead")
	}
}

func TestVCsHelper(t *testing.T) {
	rc := RouterConfig{VNets: 3, VCsPerVN: 2}
	if rc.VCs() != 6 {
		t.Errorf("VCs = %d, want 6", rc.VCs())
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeNone: "none", SchemeEscapeVC: "escape-vc", SchemeSPIN: "spin", SchemeDRAIN: "drain",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}
