// Package power is the analytical router power and area model standing
// in for DSENT at 11 nm (see DESIGN.md). It converts the simulator's
// microarchitectural event counts into dynamic energy, charges per-
// resource leakage and clock power, and produces the per-virtual-network
// active/wasted split of the paper's Fig. 4 and the area/static-power
// comparison of Fig. 9.
//
// Absolute values are arbitrary-but-plausible calibrations; every paper
// claim reproduced from this model is a ratio between schemes, which
// depends only on the resource scaling (buffer cost ∝ VNs × VCs × depth
// × flit width dominates the router, as DSENT reports).
package power

import "drain/internal/noc"

// Params holds per-event energies (pJ) and per-resource leakage (mW).
type Params struct {
	// Dynamic energy per flit event.
	BufWritePJ float64
	BufReadPJ  float64
	XbarPJ     float64
	LinkPJ     float64
	// Dynamic energy per allocation event.
	AllocPJ float64
	// Leakage + clock power per VC buffer (mW); scales with depth×width.
	VCLeakMW float64
	// Crossbar leakage per port² unit (mW).
	XbarLeakMW float64
	// Allocator leakage per port²·VC unit (mW).
	AllocLeakMW float64
	// Control overheads as fractions of the base router (area and
	// static power): SPIN's probe/coordination logic is reported at
	// ~15% (paper §V-A); DRAIN's epoch register + turn-table is tiny.
	SpinOverhead  float64
	DrainOverhead float64
}

// DefaultParams returns the 11 nm-inspired calibration.
func DefaultParams() Params {
	return Params{
		BufWritePJ:    0.60,
		BufReadPJ:     0.45,
		XbarPJ:        0.55,
		LinkPJ:        1.20,
		AllocPJ:       0.25,
		VCLeakMW:      0.75,
		XbarLeakMW:    0.080,
		AllocLeakMW:   0.016,
		SpinOverhead:  0.15,
		DrainOverhead: 0.02,
	}
}

// Scheme tags the deadlock-freedom mechanism for control-overhead
// accounting.
type Scheme int

// Scheme values.
const (
	SchemeNone Scheme = iota
	SchemeEscapeVC
	SchemeSPIN
	SchemeDRAIN
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeEscapeVC:
		return "escape-vc"
	case SchemeSPIN:
		return "spin"
	case SchemeDRAIN:
		return "drain"
	default:
		return "none"
	}
}

// RouterConfig describes one router's provisioned resources.
type RouterConfig struct {
	Ports    int // input/output ports including the local port
	VNets    int
	VCsPerVN int
	FlitBits int
	BufDepth int // flits per VC (single-packet VCT: max packet size)
	Scheme   Scheme
}

// VCs returns total VCs per input port.
func (c RouterConfig) VCs() int { return c.VNets * c.VCsPerVN }

// Breakdown decomposes router area (µm², arbitrary calibration) or
// static power (mW) into components.
type Breakdown struct {
	Buffers    float64
	Crossbar   float64
	Allocators float64
	Control    float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Buffers + b.Crossbar + b.Allocators + b.Control }

// controlFactor returns the scheme's control overhead fraction.
func controlFactor(s Scheme, p Params) float64 {
	switch s {
	case SchemeSPIN:
		return p.SpinOverhead
	case SchemeDRAIN:
		return p.DrainOverhead
	default:
		return 0
	}
}

// Area models one router's area. Buffer area dominates and scales with
// total VC storage; crossbar with ports²×width; allocators with
// ports²×VCs.
func Area(c RouterConfig, p Params) Breakdown {
	const (
		aPerBufBit = 1.8 // µm² per flip-flop-equivalent buffer bit
		aXbarUnit  = 1.1
		aAllocUnit = 20.0
	)
	b := Breakdown{
		Buffers:    float64(c.Ports) * float64(c.VCs()) * float64(c.BufDepth) * float64(c.FlitBits) * aPerBufBit,
		Crossbar:   float64(c.Ports*c.Ports) * float64(c.FlitBits) * aXbarUnit,
		Allocators: float64(c.Ports*c.Ports) * float64(c.VCs()) * aAllocUnit,
	}
	b.Control = controlFactor(c.Scheme, p) * (b.Crossbar + b.Allocators + b.Buffers*0.15)
	return b
}

// StaticPower models one router's leakage + clock power in mW.
func StaticPower(c RouterConfig, p Params) Breakdown {
	b := Breakdown{
		Buffers:    float64(c.Ports) * float64(c.VCs()) * float64(c.BufDepth) / 5.0 * float64(c.FlitBits) / 128.0 * p.VCLeakMW,
		Crossbar:   float64(c.Ports*c.Ports) * p.XbarLeakMW,
		Allocators: float64(c.Ports*c.Ports) * float64(c.VCs()) * p.AllocLeakMW,
	}
	b.Control = controlFactor(c.Scheme, p) * (b.Crossbar + b.Allocators + b.Buffers*0.15)
	return b
}

// DynamicEnergy converts counters into total dynamic energy (pJ).
func DynamicEnergy(cnt noc.Counters, p Params) float64 {
	return float64(cnt.BufWrites)*p.BufWritePJ +
		float64(cnt.BufReads)*p.BufReadPJ +
		float64(cnt.XbarFlits)*p.XbarPJ +
		float64(cnt.LinkFlits)*p.LinkPJ +
		float64(cnt.SWAllocs+cnt.VCAllocs)*p.AllocPJ
}

// VNPower is the Fig. 4 split for one virtual network.
type VNPower struct {
	ActiveMW float64 // dynamic + static during cycles with flit movement
	WastedMW float64 // static burned during idle cycles
}

// PerVNPower computes each virtual network's active and wasted power over
// a run of `cycles` cycles at `freqGHz`, for a system of `routers`
// routers configured per rc.
func PerVNPower(cnt noc.Counters, rc RouterConfig, p Params, cycles int64, routers int, freqGHz float64) []VNPower {
	out := make([]VNPower, rc.VNets)
	if cycles <= 0 {
		return out
	}
	// Static power of one VN's buffers across the whole system.
	perVNStatic := float64(rc.Ports) * float64(rc.VCsPerVN) * float64(rc.BufDepth) / 5.0 *
		float64(rc.FlitBits) / 128.0 * p.VCLeakMW * float64(routers)
	timeNS := float64(cycles) / freqGHz
	for vn := range out {
		var active, flits int64
		if vn < len(cnt.VNActiveRouterCycles) {
			active = cnt.VNActiveRouterCycles[vn]
			flits = cnt.VNFlits[vn]
		}
		frac := float64(active) / float64(cycles) / float64(routers)
		dynPJ := float64(flits) * (p.BufWritePJ + p.BufReadPJ + p.XbarPJ + p.LinkPJ)
		out[vn] = VNPower{
			ActiveMW: perVNStatic*frac + dynPJ/timeNS, // pJ/ns = mW
			WastedMW: perVNStatic * (1 - frac),
		}
	}
	return out
}
