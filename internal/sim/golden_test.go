package sim

import (
	"testing"

	"drain/internal/traffic"
)

// TestGoldenCounters locks the simulator's cycle-level behavior: the
// counter totals below were captured from the pre-optimization seed
// implementation (before the routing candidate-table precomputation, the
// scratch-arena refactor, the ring-buffer queues and the active-router
// set) on a faulty 4x4 mesh. Any divergence means a hot-path change
// altered simulation semantics — arbitration order, RNG draw sequence, or
// routing candidates — rather than just its speed.
func TestGoldenCounters(t *testing.T) {
	type golden struct {
		scheme                 Scheme
		epoch                  int64
		created, injected      int64
		ejected, hops          int64
		bufWrites, bufReads    int64
		xbarFlits, vcAllocs    int64
		swAllocs, misroutes    int64
		drainMoves, drains     int64
		frozenCyc              int64
	}
	cases := map[string]golden{
		"drain": {
			scheme: SchemeDRAIN, epoch: 256,
			created: 6083, injected: 6074, ejected: 6034, hops: 17908,
			bufWrites: 23950, bufReads: 23905, xbarFlits: 23920,
			vcAllocs: 17885, swAllocs: 23920, misroutes: 328,
			drainMoves: 32, drains: 7, frozenCyc: 70,
		},
		"escape": {
			scheme: SchemeEscapeVC,
			created: 6290, injected: 6283, ejected: 6240, hops: 18319,
			bufWrites: 24602, bufReads: 24559, xbarFlits: 24574,
			vcAllocs: 18329, swAllocs: 24574, misroutes: 260,
		},
		"spin": {
			scheme: SchemeSPIN,
			created: 6304, injected: 6303, ejected: 6269, hops: 18518,
			bufWrites: 24821, bufReads: 24787, xbarFlits: 24802,
			vcAllocs: 18530, swAllocs: 24802, misroutes: 278,
		},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			r, err := Build(Params{
				Width: 4, Height: 4, Faults: 3, FaultSeed: 5,
				Scheme: want.scheme, Epoch: want.epoch, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.20, 500, 1500)
			if err != nil {
				t.Fatal(err)
			}
			k := res.Counters
			got := golden{
				scheme: want.scheme, epoch: want.epoch,
				created: k.Created, injected: k.Injected, ejected: k.Ejected,
				hops: k.Hops, bufWrites: k.BufWrites, bufReads: k.BufReads,
				xbarFlits: k.XbarFlits, vcAllocs: k.VCAllocs,
				swAllocs: k.SWAllocs, misroutes: k.Misroutes,
				drainMoves: k.DrainMoves, drains: k.Drains,
				frozenCyc: k.FrozenCyc,
			}
			if got != want {
				t.Errorf("counters diverged from golden:\n got %+v\nwant %+v", got, want)
			}
			if k.LinkFlits != want.hops {
				t.Errorf("LinkFlits = %d, want %d (single-flit packets)", k.LinkFlits, want.hops)
			}
		})
	}
}
