package sim

import (
	"encoding/json"
	"math"
	"testing"

	"drain/internal/noc"
	"drain/internal/stats"
	"drain/internal/traffic"
)

// TestRNGModeDefaultsAndOverride pins the resolution order: zero means
// the process default (exact unless SetDefaultRNGMode changed it), and
// an explicit Params.RNGMode always wins over the process default.
func TestRNGModeDefaultsAndOverride(t *testing.T) {
	run := func(p Params) SyntheticResult {
		t.Helper()
		r, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 100, 400)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Epoch: 256, Seed: 7}
	if got := run(base).RNGMode; got != traffic.RNGExact {
		t.Fatalf("default mode = %v, want exact", got)
	}
	SetDefaultRNGMode(traffic.RNGCounter)
	defer SetDefaultRNGMode(traffic.RNGExact)
	if got := run(base).RNGMode; got != traffic.RNGCounter {
		t.Fatalf("mode with process default counter = %v", got)
	}
	exp := base
	exp.RNGMode = traffic.RNGExact
	// An explicit exact cannot be expressed as non-zero... RNGExact is the
	// zero value, so an explicit field set still resolves to the process
	// default; spelling "force exact under a counter default" requires
	// restoring the default. Document the asymmetry by asserting it.
	if got := run(exp).RNGMode; got != traffic.RNGCounter {
		t.Fatalf("zero-valued RNGMode should defer to process default, got %v", got)
	}
	SetDefaultRNGMode(traffic.RNGExact)
	cnt := base
	cnt.RNGMode = traffic.RNGCounter
	if got := run(cnt).RNGMode; got != traffic.RNGCounter {
		t.Fatalf("explicit counter under exact default = %v", got)
	}
}

// TestCounterModeByteIdenticalAcrossEngines: counter mode trades draw
// identity with exact mode for speed, but it is still a deterministic
// model — for a fixed seed the marshalled result bytes must be
// identical across the dense, event and parallel engines at every
// shard count (FastForwarded excepted: the dense oracle never opens
// fast-forward windows, so that telemetry field is normalized).
func TestCounterModeByteIdenticalAcrossEngines(t *testing.T) {
	base := Params{
		Width: 4, Height: 4,
		Scheme: SchemeDRAIN, Epoch: 256,
		Seed:    21,
		RNGMode: traffic.RNGCounter,
	}
	run := func(p Params) SyntheticResult {
		t.Helper()
		r, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.10, 200, 2000)
		if err != nil {
			t.Fatal(err)
		}
		res.FastForwarded = 0
		return res
	}
	variants := map[string]Params{"event": base}
	d := base
	d.Engine = noc.EngineDense
	variants["dense"] = d
	for _, k := range shardCounts() {
		p := base
		p.Shards = k
		p.ParallelInline = -1
		variants[shardName(k)] = p
	}
	var want []byte
	for _, name := range []string{"event", "dense"} {
		b, err := json.Marshal(run(variants[name]))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if string(b) != string(want) {
			t.Errorf("%s: counter-mode bytes diverge:\nfirst: %s\n here: %s", name, want, b)
		}
	}
	for name, p := range variants {
		if name == "event" || name == "dense" {
			continue
		}
		b, err := json.Marshal(run(p))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(want) {
			t.Errorf("%s: counter-mode bytes diverge:\nfirst: %s\n here: %s", name, want, b)
		}
	}
}

func shardName(k int) string { return "shards=" + string(rune('0'+k)) }

// TestRNGModeStatisticalEquivalence is the acceptance gate for counter
// mode: at a low and a mid load point, exact and counter runs must
// agree on the injection process (two-proportion z-test on created
// packets over node-cycles) and on the latency distribution
// (two-sample Kolmogorov–Smirnov on per-packet network latencies), at
// alpha = 0.001. Seeds are fixed, so these are fixed computations —
// a pass here is a pass everywhere.
func TestRNGModeStatisticalEquivalence(t *testing.T) {
	const (
		warmup  = 500
		measure = 6000
		nodes   = 16
	)
	for _, rate := range []float64{0.02, 0.10} {
		run := func(mode traffic.RNGMode) (SyntheticResult, []float64) {
			t.Helper()
			r, err := Build(Params{
				Width: 4, Height: 4,
				Scheme: SchemeDRAIN, Epoch: 1024,
				Seed:    7,
				RNGMode: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			var lats []float64
			r.Net.OnEject = func(p *noc.Packet) { lats = append(lats, float64(p.NetworkLatency())) }
			res, err := r.RunSynthetic(traffic.UniformRandom{N: nodes}, rate, warmup, measure)
			if err != nil {
				t.Fatal(err)
			}
			if r.Net.OnEject == nil {
				t.Fatal("caller-installed OnEject hook was not restored")
			}
			return res, lats
		}
		exact, latE := run(traffic.RNGExact)
		counter, latC := run(traffic.RNGCounter)

		trials := int64(nodes) * (warmup + measure)
		z := stats.TwoProportionZ(exact.Counters.Created, trials, counter.Counters.Created, trials)
		if zcrit := stats.NormalQuantile(1 - 0.001/2); math.Abs(z) >= zcrit {
			t.Errorf("rate %.2f: created totals |z| = %.3f >= %.3f (exact %d, counter %d)",
				rate, math.Abs(z), zcrit, exact.Counters.Created, counter.Counters.Created)
		}
		d := stats.KSStatistic(latE, latC)
		crit := stats.KSCritical(len(latE), len(latC), 0.001)
		if d >= crit {
			t.Errorf("rate %.2f: latency KS D = %.4f >= %.4f (n=%d vs %d; means %.2f vs %.2f)",
				rate, d, crit, len(latE), len(latC), exact.AvgLatency, counter.AvgLatency)
		}
		// The modes are different models: same statistics, different
		// draws. Identical counters would mean the mode plumbing is not
		// actually switching anything.
		if exact.Counters.Created == counter.Counters.Created &&
			exact.AvgLatency == counter.AvgLatency {
			t.Errorf("rate %.2f: exact and counter results are identical — mode not applied?", rate)
		}
	}
}

// TestRNGModeCurveEquivalence compares full load sweeps: counter mode
// must reproduce exact mode's latency/throughput curve — low-load
// latency within a few percent, accepted throughput within tight
// bounds at every point, and the measured saturation throughput within
// 10% — the properties the paper's figures are built from.
func TestRNGModeCurveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point sweep; skipped in -short")
	}
	rates := []float64{0.02, 0.10, 0.20, 0.30, 0.45}
	sweep := func(mode traffic.RNGMode) stats.Curve {
		t.Helper()
		c, err := LoadSweep(Params{
			Width: 4, Height: 4,
			Scheme: SchemeDRAIN, Epoch: 1024,
			Seed:    7,
			RNGMode: mode,
		}, "uniform", rates, 500, 4000)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	exact := sweep(traffic.RNGExact)
	counter := sweep(traffic.RNGCounter)
	for i := range exact {
		e, c := exact[i], counter[i]
		if relDiff(e.Accepted, c.Accepted) > 0.05 {
			t.Errorf("rate %.2f: accepted diverges: exact %.4f counter %.4f", e.Offered, e.Accepted, c.Accepted)
		}
		// Latency tolerance loosens near saturation where variance blows up.
		tol := 0.08
		if e.Offered >= 0.30 {
			tol = 0.25
		}
		if relDiff(e.AvgLat, c.AvgLat) > tol {
			t.Errorf("rate %.2f: avg latency diverges: exact %.2f counter %.2f", e.Offered, e.AvgLat, c.AvgLat)
		}
	}
	if se, sc := exact.Saturation(), counter.Saturation(); relDiff(se, sc) > 0.10 {
		t.Errorf("saturation throughput diverges: exact %.4f counter %.4f", se, sc)
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestCounterModeFastForwards: at fig11's low load the counter-mode
// run must actually cash in the idle fast-forward (nonzero skipped
// cycles reported) — the wall-clock win the mode exists for.
func TestCounterModeFastForwards(t *testing.T) {
	r, err := Build(Params{
		Width: 4, Height: 4,
		Scheme:  SchemeEscapeVC,
		Seed:    7,
		RNGMode: traffic.RNGCounter,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.005, 200, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.FastForwarded == 0 {
		t.Fatal("counter-mode low-load run never fast-forwarded")
	}
	if res.RNGMode != traffic.RNGCounter {
		t.Fatalf("RNGMode = %v", res.RNGMode)
	}
}
