package sim

import (
	"testing"

	"drain/internal/topology"
	"drain/internal/traffic"
	"drain/internal/workload"
)

func TestBuildAllSchemes(t *testing.T) {
	for _, s := range []Scheme{SchemeNone, SchemeIdeal, SchemeEscapeVC, SchemeSPIN, SchemeDRAIN, SchemeUpDown} {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: s, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		switch s {
		case SchemeDRAIN:
			if r.Drain == nil {
				t.Errorf("%v: no drain controller", s)
			}
			if r.Net.Config().VNets != 1 {
				t.Errorf("%v: VNets = %d, want 1", s, r.Net.Config().VNets)
			}
		case SchemeSPIN:
			if r.Spin == nil {
				t.Errorf("%v: no spin controller", s)
			}
		case SchemeIdeal:
			if r.Oracle == nil {
				t.Errorf("%v: no oracle", s)
			}
		}
	}
}

func TestVNetDefaults(t *testing.T) {
	// With 3 classes, the baselines get 3 VNs and DRAIN keeps 1.
	esc, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeEscapeVC, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if esc.Net.Config().VNets != 3 {
		t.Errorf("escape VNets = %d, want 3", esc.Net.Config().VNets)
	}
	dr, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Net.Config().VNets != 1 {
		t.Errorf("drain VNets = %d, want 1", dr.Net.Config().VNets)
	}
}

func TestFaultInjectionIsSeeded(t *testing.T) {
	a, err := Build(Params{Width: 8, Height: 8, Faults: 8, FaultSeed: 7, Scheme: SchemeDRAIN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Params{Width: 8, Height: 8, Faults: 8, FaultSeed: 7, Scheme: SchemeDRAIN, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Graph.Edges(), b.Graph.Edges()
	if len(ea) != len(eb) {
		t.Fatal("fault seeds not deterministic")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same FaultSeed produced different topologies")
		}
	}
	if len(ea) != 112-8 {
		t.Errorf("edges after 8 faults = %d, want 104", len(ea))
	}
}

func TestRunSyntheticLowLoad(t *testing.T) {
	for _, s := range []Scheme{SchemeEscapeVC, SchemeSPIN, SchemeDRAIN} {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: s, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.02, 1000, 4000)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Accepted < 0.015 || res.Accepted > 0.025 {
			t.Errorf("%v: accepted %.4f at offered 0.02", s, res.Accepted)
		}
		if res.AvgLatency < 3 || res.AvgLatency > 60 {
			t.Errorf("%v: implausible low-load latency %.1f", s, res.AvgLatency)
		}
		if res.Deadlocked {
			t.Errorf("%v: deadlock at low load", s)
		}
	}
}

func TestRunSyntheticDeterministic(t *testing.T) {
	run := func() SyntheticResult {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 9, Epoch: 500})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.1, 500, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AvgLatency != b.AvgLatency || a.Accepted != b.Accepted || a.Counters.Hops != b.Counters.Hops {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSchemeNoneDetectsDeadlock(t *testing.T) {
	r, err := Build(Params{
		Width: 4, Height: 4, Scheme: SchemeNone, Seed: 5,
		VCsPerVN: 1, EjectCap: 2,
		DerouteAfter: -1, // strict minimal adaptive deadlocks reliably
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.45, 0, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("saturated unprotected network did not report deadlock")
	}
	if res.DeadlockCycle <= 0 {
		t.Error("deadlock cycle not recorded")
	}
}

func TestLoadSweepMonotoneThroughput(t *testing.T) {
	curve, err := LoadSweep(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 6, Epoch: 2000},
		"uniform", []float64{0.02, 0.10, 0.30}, 500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0].AvgLat > curve[2].AvgLat {
		t.Errorf("latency decreased with load: %+v", curve)
	}
	if curve.Saturation() < curve[0].Accepted {
		t.Error("saturation below low-load accepted rate")
	}
}

func TestRunAppAcrossSchemes(t *testing.T) {
	prof := workload.MustGet("blackscholes")
	for _, s := range []Scheme{SchemeEscapeVC, SchemeSPIN, SchemeDRAIN} {
		r, err := Build(Params{
			Width: 4, Height: 4, Scheme: s, Classes: 3, Seed: 4,
			Epoch: 2000, InjectCap: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunApp(prof, 200, 400000)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.Completed {
			t.Fatalf("%v: app did not complete (%d ops, %d in net)",
				s, res.Protocol.OpsCompleted, r.Net.InFlightPackets())
		}
		if res.Runtime <= 0 || res.AvgLatency <= 0 {
			t.Errorf("%v: degenerate result %+v", s, res)
		}
	}
}

func TestBuildOnCustomTopology(t *testing.T) {
	g, err := topology.NewChiplet(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := BuildOn(g, nil, Params{Scheme: SchemeDRAIN, Seed: 8, Epoch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: g.N()}, 0.05, 500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted <= 0 {
		t.Error("no traffic delivered on chiplet topology")
	}
}

func TestPortsPerRouter(t *testing.T) {
	r, err := Build(Params{Width: 8, Height: 8, Scheme: SchemeDRAIN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 8x8 mesh: average degree 3.5 → 4 ports + local = 4..5.
	if got := r.PortsPerRouter(); got < 4 || got > 5 {
		t.Errorf("ports per router = %d", got)
	}
}
