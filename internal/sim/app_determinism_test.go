package sim

import (
	"reflect"
	"testing"

	"drain/internal/workload"
)

// TestAppRunDeterminism runs the same coherence workload twice with one
// seed and requires identical results. This guards the protocol layer
// against map-iteration-order leaks (victim selection, MSHR retry order,
// invalidation send order): Go randomizes map iteration per run, so any
// order-sensitive use of a map makes equal-seed runs diverge.
func TestAppRunDeterminism(t *testing.T) {
	run := func() AppResult {
		r, err := Build(Params{
			Width: 4, Height: 4, Faults: 2, FaultSeed: 3,
			Scheme: SchemeDRAIN, Classes: 3, InjectCap: 16,
			Epoch: 1024, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunApp(workload.MustGet("canneal"), 150, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("equal-seed app runs diverged:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}
