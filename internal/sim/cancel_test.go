package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"drain/internal/noc"
	"drain/internal/traffic"
	"drain/internal/workload"
)

// pollCountCtx is a context whose Err() flips to Canceled after a fixed
// number of polls. It makes cancellation deterministic in simulated
// time: the step loop polls every noc.CancelCheckEvery cycles, so the
// cycle at which the run stops is exact and assertable.
type pollCountCtx struct {
	context.Context
	polls     int
	remaining int
}

func (c *pollCountCtx) Err() error {
	c.polls++
	if c.polls > c.remaining {
		return context.Canceled
	}
	return nil
}

func TestRunSyntheticCancelBoundedCycles(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Allow 3 successful polls (cycles 0, 1024, 2048); the 4th poll, at
	// cycle 3·CancelCheckEvery, observes the cancellation.
	ctx := &pollCountCtx{Context: context.Background(), remaining: 3}
	_, err = r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 16}, 0.05, 0, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got, want := r.Net.Cycle(), int64(3*noc.CancelCheckEvery); got != want {
		t.Errorf("run stopped at cycle %d, want exactly %d (bounded by CancelCheckEvery)", got, want)
	}
}

func TestRunAppCancelBoundedCycles(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Classes: 3, InjectCap: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := &pollCountCtx{Context: context.Background(), remaining: 2}
	_, err = r.RunAppContext(ctx, workload.MustGet("canneal"), 0, 1<<40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got, want := r.Net.Cycle(), int64(2*noc.CancelCheckEvery); got != want {
		t.Errorf("run stopped at cycle %d, want exactly %d", got, want)
	}
}

func TestRunSyntheticCancelPromptWallClock(t *testing.T) {
	r, err := Build(Params{Width: 8, Height: 8, Scheme: SchemeDRAIN, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 64}, 0.10, 0, 1<<40)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}
}

func TestLoadSweepCancelledBetweenRates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := LoadSweepContext(ctx, Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 1},
		"uniform", []float64{0.02, 0.05}, 100, 400)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestContextVariantsIdenticalResults pins the contract that an
// undisturbed context changes nothing: RunSynthetic and
// RunSyntheticContext(Background) produce identical results.
func TestContextVariantsIdenticalResults(t *testing.T) {
	run := func(withCtx bool) SyntheticResult {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var res SyntheticResult
		if withCtx {
			res, err = r.RunSyntheticContext(context.Background(), traffic.UniformRandom{N: 16}, 0.1, 500, 2000)
		} else {
			res, err = r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.1, 500, 2000)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	if a.Accepted != b.Accepted || a.AvgLatency != b.AvgLatency ||
		a.P99Latency != b.P99Latency || a.Cycles != b.Cycles ||
		a.Counters.Injected != b.Counters.Injected || a.Counters.Ejected != b.Counters.Ejected ||
		a.Counters.Hops != b.Counters.Hops {
		t.Errorf("results differ:\nplain: %+v\nctx:   %+v", a, b)
	}
}

// TestCancelLeaksNoGoroutines cancels a run mid-flight and verifies the
// goroutine count settles back to its baseline.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: uint64(i) + 1})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			_, _ = r.RunSyntheticContext(ctx, traffic.UniformRandom{N: 16}, 0.05, 0, 1<<40)
			close(done)
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		<-done
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d after cancelled runs, baseline %d", runtime.NumGoroutine(), base)
}
