// Package sim wires topology, routing, the NoC, a deadlock-freedom
// scheme and a workload into one deterministic simulation run. It is the
// layer the experiment harness, the benchmarks and the public facade
// build on, and its defaults mirror the paper's Table II.
package sim

import (
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sync/atomic"

	"drain/internal/coherence"
	"drain/internal/core"
	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/spinrec"
	"drain/internal/topology"
	"drain/internal/traffic"
)

// Scheme selects the deadlock-freedom mechanism under test.
type Scheme int

// Schemes.
const (
	// SchemeNone applies no protection: fully adaptive routing that can
	// and does deadlock (the paper's Fig. 3 measurement configuration).
	SchemeNone Scheme = iota
	// SchemeIdeal is deadlock-free fully adaptive routing by oracle:
	// instant zero-cost recovery (Fig. 5's "ideal").
	SchemeIdeal
	// SchemeEscapeVC is the proactive baseline: escape VCs with
	// turn-restricted routing (DoR fault-free, up*/down* faulty) and one
	// virtual network per message class.
	SchemeEscapeVC
	// SchemeSPIN is the reactive baseline: unrestricted adaptive routing
	// with timeout-probe detection and coordinated spins, one virtual
	// network per message class.
	SchemeSPIN
	// SchemeDRAIN is the paper's subactive mechanism: unrestricted
	// adaptive routing, a single virtual network, periodic drains.
	SchemeDRAIN
	// SchemeUpDown routes every packet with turn-restricted up*/down*
	// (used standalone for Fig. 5's comparison).
	SchemeUpDown
	// SchemeDoR is the classic baseline router (Table I "virtual
	// networks" row): deterministic dimension-order routing, deadlock-
	// free by turn elimination, one virtual network per message class.
	// It requires a fault-free mesh.
	SchemeDoR
)

// ParseScheme parses a scheme name as printed by Scheme.String (plus
// the "escape" shorthand for escape-vc). It is the single source of
// truth for the scheme vocabulary cmd/drainsim flags and server
// requests share.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "none":
		return SchemeNone, nil
	case "ideal":
		return SchemeIdeal, nil
	case "escape", "escape-vc":
		return SchemeEscapeVC, nil
	case "spin":
		return SchemeSPIN, nil
	case "drain":
		return SchemeDRAIN, nil
	case "updown":
		return SchemeUpDown, nil
	case "dor":
		return SchemeDoR, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (none|ideal|escape|spin|drain|updown|dor)", s)
	}
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeIdeal:
		return "ideal"
	case SchemeEscapeVC:
		return "escape-vc"
	case SchemeSPIN:
		return "spin"
	case SchemeDRAIN:
		return "drain"
	case SchemeUpDown:
		return "updown"
	case SchemeDoR:
		return "dor"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Params configures one simulation (Table II defaults).
type Params struct {
	// Width×Height mesh; Faults bidirectional links are removed randomly
	// (connectivity preserved) using FaultSeed.
	Width, Height int
	Faults        int
	FaultSeed     uint64

	Scheme Scheme

	// VNets/VCsPerVN override the scheme defaults when nonzero
	// (escape-VC and SPIN default to 3 VNets; DRAIN to 1; all to 2 VCs).
	VNets    int
	VCsPerVN int
	// Classes defaults to 1 for synthetic runs; coherence runs force 3.
	Classes int

	// Epoch is DRAIN's drain period (default 64K cycles).
	Epoch int64
	// FullDrainEvery is DRAIN's full-drain period in drain windows.
	FullDrainEvery int
	// DrainHops is forced hops per drain window (ablation; default 1).
	DrainHops int
	// DrainAlgorithm picks the offline path construction.
	DrainAlgorithm core.PathAlgorithm
	// SpinTimeout is SPIN's detection timeout (default 1024).
	SpinTimeout int64

	// MaxFlits bounds packet size (default 5); InjectCap/EjectCap bound
	// the NI queues.
	MaxFlits  int
	InjectCap int
	EjectCap  int

	// CtrlFraction is the fraction of 1-flit packets in synthetic runs
	// (the rest are MaxFlits-sized). Defaults to 1.0: standard synthetic
	// evaluation uses single-flit packets. Negative means 0.
	CtrlFraction float64
	// DerouteAfter enables stall-triggered adaptive derouting when
	// positive (see noc.Config.DerouteAfter); the default (strictly
	// minimal adaptive routing) matches the paper's substrate.
	DerouteAfter int
	// StickyEscape forces DRAIN to use the classic sticky escape-VC
	// discipline (ablation; see noc.Config.NonStickyEscape).
	StickyEscape bool
	// MSHRs bounds outstanding misses per core in coherence runs
	// (default 4; the paper's systems have deeper miss-level
	// parallelism, which raises network pressure).
	MSHRs int

	// Engine selects the noc cycle-core implementation (zero value:
	// event-driven; see noc.Config.Engine). Results are byte-identical
	// across engines, so this only affects speed.
	Engine noc.EngineKind

	// Shards, when positive, runs the simulation on the sharded parallel
	// engine (noc.EngineParallel) with that many shards, overriding
	// Engine. Zero defers to the process default (SetDefaultShards).
	// Results are byte-identical for every value — shards are a speed
	// knob, not a model knob — so the field is excluded from the JSON
	// form Normalized Params are cache-keyed by.
	//
	//drain:cachekey-exempt shard count changes how fast a run computes, never what it computes (byte-identity proven by TestParallelEngineDifferential), so equal requests at different shard counts must share a cache entry
	Shards int `json:"-"`
	// ParallelInline overrides the parallel engine's inline-cycle
	// threshold (see noc.Config.ParallelInline; tests use -1 to force
	// the phased pipeline). Excluded from cache keys like Shards.
	//
	//drain:cachekey-exempt inline threshold only picks between byte-identical serial and phased paths; results cannot depend on it
	ParallelInline int `json:"-"`

	// FaultSchedule lists live topology changes (link failures and
	// recoveries) applied mid-run at the scheduled cycle boundaries; see
	// FaultEvent and ValidateFaultSchedule. Unlike Shards a schedule
	// changes simulation results, so it stays in the JSON form cache
	// keys are derived from.
	FaultSchedule []FaultEvent `json:",omitempty"`

	// RoutingTable optionally reuses a prebuilt routing table (see
	// noc.Config.Table). It must have been built over the *same graph
	// value* the runner gets, so it pairs with BuildOn (Build constructs
	// a fresh graph, which can never match). Routing is a pure function
	// of the topology, so reuse cannot change results; excluded from
	// cache keys like Shards.
	//
	//drain:cachekey-exempt a prebuilt table is a memoization of the pure routing function of the (already-keyed) topology parameters; reusing one cannot change results
	RoutingTable *routing.Table `json:"-"`

	// RNGMode selects the synthetic generator's draw discipline (see
	// traffic.RNGMode): exact (default, byte-reproducible) or counter
	// (statistically equivalent, O(1) quiet cycles). Zero defers to the
	// process default (SetDefaultRNGMode). Unlike Shards the mode
	// changes concrete results — different draws, different packets —
	// so it stays IN the JSON form cache keys are derived from.
	RNGMode traffic.RNGMode `json:",omitempty"`

	Seed uint64
}

// defaultShards is the process-wide shard count applied when a Params
// leaves Shards at zero (set from the -shards flag of cmd/experiments
// and cmd/drainserved, which fan out over internally built Params).
var defaultShards atomic.Int64

// SetDefaultShards sets the process-wide default shard count: n > 0
// makes every Build with Params.Shards == 0 use the parallel engine
// with n shards; n <= 0 restores the built-in (serial event engine).
func SetDefaultShards(n int) { defaultShards.Store(int64(n)) }

// defaultRNGMode is the process-wide RNG mode applied when a Params
// leaves RNGMode at zero (set from the -rng-mode flag of
// cmd/experiments, whose figures build Params internally). Unlike
// defaultShards this default changes results, so anything that
// cache-keys Params (the server) must resolve RNGMode explicitly
// rather than lean on the process default — and drainserved never
// calls SetDefaultRNGMode.
var defaultRNGMode atomic.Int64

// SetDefaultRNGMode sets the process-wide default RNG mode used when
// Params.RNGMode is zero (RNGExact). Passing traffic.RNGExact restores
// the built-in default.
func SetDefaultRNGMode(m traffic.RNGMode) { defaultRNGMode.Store(int64(m)) }

// effectiveRNGMode resolves a Params' RNG mode against the process
// default.
func (p *Params) effectiveRNGMode() traffic.RNGMode {
	if p.RNGMode != 0 {
		return p.RNGMode
	}
	return traffic.RNGMode(defaultRNGMode.Load())
}

func (p *Params) setDefaults() {
	if p.Width <= 0 {
		p.Width = 8
	}
	if p.Height <= 0 {
		p.Height = 8
	}
	if p.Classes <= 0 {
		p.Classes = 1
	}
	if p.VNets <= 0 {
		switch p.Scheme {
		case SchemeEscapeVC, SchemeSPIN, SchemeDoR:
			p.VNets = min(3, p.Classes) // one VN per message class
		default:
			p.VNets = 1
		}
	}
	if p.VCsPerVN <= 0 {
		p.VCsPerVN = 2
	}
	if p.Epoch <= 0 {
		p.Epoch = 64 * 1024
	}
	if p.SpinTimeout <= 0 {
		p.SpinTimeout = 1024
	}
	if p.MaxFlits <= 0 {
		p.MaxFlits = 5
	}
	if p.CtrlFraction == 0 {
		// Negative stays negative (meaning "no control packets") so this
		// defaulting is idempotent; RunSynthetic clamps at use.
		p.CtrlFraction = 1.0
	}
}

// Normalized returns a copy of p with every defaulted field resolved
// to its effective value (exactly what Build applies). Two Params
// values describe the same simulation iff their Normalized forms are
// equal, which makes Normalized the canonical form for content-
// addressed caching of run results.
func (p Params) Normalized() Params {
	p.setDefaults()
	return p
}

// Runner holds one fully wired simulation instance.
type Runner struct {
	Params Params
	Mesh   *topology.Mesh  // the fault-free mesh (nil for custom graphs)
	Graph  *topology.Graph // the (possibly faulty) topology in use
	Net    *noc.Network

	Drain  *core.Controller
	Spin   *spinrec.Controller
	Oracle *spinrec.Oracle

	// Trace, when set before a run, receives one CSV record per ejected
	// packet (see TraceHeader).
	Trace io.Writer

	// FaultReports records one entry per live reconfiguration applied
	// from Params.FaultSchedule, in application order.
	FaultReports []noc.ReconfigReport

	// active is the currently fault-free subgraph (Graph until the first
	// scheduled fault fires); faultIdx is the next unapplied event.
	active   *topology.Graph
	faultIdx int
}

// Build constructs a Runner from params.
func Build(p Params) (*Runner, error) {
	g, mesh, err := p.BuildGraph()
	if err != nil {
		return nil, err
	}
	return BuildOn(g, mesh, p)
}

// BuildGraph constructs exactly the (possibly randomly faulted)
// topology Build would simulate on, without building the network.
// Servers use it to validate a request's fault schedule against the
// concrete topology up front, so a bad schedule fails fast instead of
// failing the job at execution time.
func (p Params) BuildGraph() (*topology.Graph, *topology.Mesh, error) {
	p.setDefaults()
	mesh, err := topology.NewMesh(p.Width, p.Height)
	if err != nil {
		return nil, nil, err
	}
	g := mesh.Graph
	if p.Faults > 0 {
		rng := rand.New(rand.NewPCG(p.FaultSeed, p.FaultSeed^0xb5297a4d))
		g, err = topology.RemoveRandomLinks(g, p.Faults, rng)
		if err != nil {
			return nil, nil, err
		}
	}
	return g, mesh, nil
}

// BuildOn constructs a Runner over an explicit topology (irregular,
// chiplet, random…). mesh may be nil unless the scheme needs XY routing
// (fault-free escape VC).
func BuildOn(g *topology.Graph, mesh *topology.Mesh, p Params) (*Runner, error) {
	p.setDefaults()
	if len(p.FaultSchedule) > 0 {
		if p.Scheme == SchemeDoR {
			return nil, fmt.Errorf("sim: dimension-order routing cannot survive link failures (no fault schedule with scheme dor)")
		}
		if err := ValidateFaultSchedule(g, p.FaultSchedule); err != nil {
			return nil, fmt.Errorf("sim: %v", err)
		}
	}
	cfg := noc.Config{
		Graph:        g,
		Mesh:         mesh,
		VNets:        p.VNets,
		VCsPerVN:     p.VCsPerVN,
		Classes:      p.Classes,
		MaxFlits:     p.MaxFlits,
		InjectCap:    p.InjectCap,
		EjectCap:     p.EjectCap,
		DerouteAfter: p.DerouteAfter,
		Seed:         p.Seed,
		Engine:       p.Engine,
		Table:        p.RoutingTable,
	}
	shards := p.Shards
	if shards == 0 {
		shards = int(defaultShards.Load())
	}
	if shards > 0 || p.Engine == noc.EngineParallel {
		cfg.Engine = noc.EngineParallel
		if shards < 1 {
			shards = 1
		}
		cfg.Shards = shards
		cfg.ParallelInline = p.ParallelInline
	}
	switch p.Scheme {
	case SchemeNone, SchemeIdeal, SchemeSPIN:
		cfg.Routing = routing.AdaptiveMinimal
	case SchemeUpDown:
		cfg.Routing = routing.UpDown
	case SchemeDoR:
		if mesh == nil || g != mesh.Graph {
			return nil, fmt.Errorf("sim: dimension-order routing needs a fault-free mesh")
		}
		cfg.Routing = routing.XY
	case SchemeEscapeVC:
		cfg.PolicyEscape = true
		cfg.Routing = routing.AdaptiveMinimal
		// XY escape is only legal on a fault-free mesh; a fault schedule
		// breaks that mid-run, so such runs use up*/down* from cycle 0.
		if p.Faults == 0 && len(p.FaultSchedule) == 0 && mesh != nil && g == mesh.Graph {
			cfg.EscapeRouting = routing.XY // DoR is legal fault-free
		} else {
			cfg.EscapeRouting = routing.UpDown
		}
	case SchemeDRAIN:
		cfg.PolicyEscape = true
		cfg.Routing = routing.AdaptiveMinimal
		cfg.EscapeRouting = routing.AdaptiveMinimal // unrestricted escape
		// Drains keep the escape VC safe without stickiness, so its
		// capacity stays usable (see noc.Config.NonStickyEscape).
		cfg.NonStickyEscape = !p.StickyEscape
	default:
		return nil, fmt.Errorf("sim: unknown scheme %v", p.Scheme)
	}
	net, err := noc.New(cfg)
	if err != nil {
		return nil, err
	}
	r := &Runner{Params: p, Mesh: mesh, Graph: g, Net: net, active: g}
	switch p.Scheme {
	case SchemeDRAIN:
		ctl, err := core.New(net, core.Config{
			Epoch:          p.Epoch,
			FullDrainEvery: p.FullDrainEvery,
			DrainHops:      p.DrainHops,
			Algorithm:      p.DrainAlgorithm,
		})
		if err != nil {
			return nil, err
		}
		r.Drain = ctl
	case SchemeSPIN:
		r.Spin = spinrec.New(net, spinrec.Config{Timeout: p.SpinTimeout, EjectLiveByClass: sinkClasses(p.Classes)})
	case SchemeIdeal:
		r.Oracle = spinrec.NewOracle(net, 8, noc.LivenessOpts{EjectLiveByClass: sinkClasses(p.Classes)})
	}
	return r, nil
}

// sinkClasses marks which classes' ejection queues always drain: for
// single-class synthetic traffic everything sinks; for coherence only
// the response class is a guaranteed sink (paper §III-D2).
func sinkClasses(classes int) []bool {
	if classes <= 1 {
		return nil // all live
	}
	out := make([]bool, classes)
	if classes > coherence.ClassResp {
		out[coherence.ClassResp] = true
	}
	return out
}

// Close releases engine-owned resources (the parallel engine's worker
// goroutines). Optional — a finalizer covers forgotten runners — but
// sweeps that build many runners should close each when done with it.
func (r *Runner) Close() { r.Net.Close() }

// TickScheme advances whichever controller the scheme uses; call once
// per cycle after Net.Step.
func (r *Runner) TickScheme() error {
	switch {
	case r.Drain != nil:
		return r.Drain.Tick()
	case r.Spin != nil:
		return r.Spin.Tick()
	case r.Oracle != nil:
		return r.Oracle.Tick()
	}
	return nil
}

// nextSchemeWorkCycle returns the next cycle at which the scheme's
// controller could do anything observable (math.MaxInt64 when no
// controller is wired). Together with noc.Network.NextWorkCycle it
// bounds the idle fast-forward windows in RunSyntheticContext.
func (r *Runner) nextSchemeWorkCycle() int64 {
	switch {
	case r.Drain != nil:
		return r.Drain.NextWorkCycle()
	case r.Spin != nil:
		return r.Spin.NextWorkCycle()
	case r.Oracle != nil:
		return r.Oracle.NextWorkCycle()
	}
	return math.MaxInt64
}

// PortsPerRouter returns the mean router port count (links + local) for
// the power model.
func (r *Runner) PortsPerRouter() int {
	links := 0
	for n := 0; n < r.Graph.N(); n++ {
		links += r.Graph.Degree(n)
	}
	return links/r.Graph.N() + 1
}
