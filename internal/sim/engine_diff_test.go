package sim

import (
	"fmt"
	"reflect"
	"testing"

	"drain/internal/noc"
	"drain/internal/traffic"
)

// TestEngineDifferential locks the engine seam at the simulation level:
// for every scheme, load point and fault pattern, a run on the event
// core must reproduce the dense stepper's SyntheticResult exactly —
// every counter, every latency float, bit for bit. This is the
// driver-level complement of noc.FuzzDenseVsEvent (which exercises the
// engines under adversarial topologies and rotation timing).
func TestEngineDifferential(t *testing.T) {
	schemes := []Scheme{SchemeDRAIN, SchemeSPIN, SchemeEscapeVC, SchemeNone}
	rates := []float64{0.02, 0.45}
	faults := []int{0, 3}
	for _, scheme := range schemes {
		for _, rate := range rates {
			for _, nf := range faults {
				name := fmt.Sprintf("%s/rate%.2f/faults%d", scheme, rate, nf)
				t.Run(name, func(t *testing.T) {
					run := func(eng noc.EngineKind) SyntheticResult {
						r, err := Build(Params{
							Width: 4, Height: 4,
							Faults: nf, FaultSeed: 11,
							Scheme: scheme,
							Epoch:  256, SpinTimeout: 128,
							Seed:   7,
							Engine: eng,
						})
						if err != nil {
							t.Fatal(err)
						}
						res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, rate, 200, 2000)
						if err != nil {
							t.Fatal(err)
						}
						return res
					}
					dense := run(noc.EngineDense)
					event := run(noc.EngineEvent)
					// FastForwarded is wall-clock telemetry, not a simulation
					// result: the dense oracle never opens fast-forward
					// windows (its NextWorkCycle admits nothing), so it is
					// the one field allowed to differ across engines.
					dense.FastForwarded, event.FastForwarded = 0, 0
					if !reflect.DeepEqual(dense, event) {
						t.Errorf("results diverge:\ndense: %+v\nevent: %+v", dense, event)
					}
				})
			}
		}
	}
}

// TestRunnerReuseAcrossRuns pins the driver's clock-space handling on a
// reused runner: the second run starts at a nonzero absolute network
// cycle, so the fast-forward window arithmetic must convert the
// engine's absolute hints into the loop's relative counter (a bug here
// once made a reused dense runner compute a bogus skippable window and
// panic in SkipIdle). Both engines must survive reuse and agree on the
// second run's results.
func TestRunnerReuseAcrossRuns(t *testing.T) {
	second := func(eng noc.EngineKind) SyntheticResult {
		r, err := Build(Params{
			Width: 4, Height: 4,
			Scheme: SchemeDRAIN, Epoch: 256,
			Seed:   3,
			Engine: eng,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 0, 500); err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 0, 1500)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dense := second(noc.EngineDense)
	event := second(noc.EngineEvent)
	// Telemetry, allowed to differ across engines (see TestEngineDifferential).
	dense.FastForwarded, event.FastForwarded = 0, 0
	if !reflect.DeepEqual(dense, event) {
		t.Errorf("reused-runner results diverge:\ndense: %+v\nevent: %+v", dense, event)
	}
}
