package sim

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"drain/internal/routing"
	"drain/internal/topology"
)

// FaultEvent is one scheduled live topology change: at Cycle the
// bidirectional link A-B fails (Fail true) or recovers (Fail false).
// Events are applied at cycle boundaries — an event at cycle C takes
// effect before the step from C to C+1 — identically in every engine
// and for every shard count. Unlike Params.Shards, a fault schedule
// changes what the simulation computes, so FaultEvent is JSON-visible
// and part of the content address cached results are keyed by.
type FaultEvent struct {
	Cycle int64 `json:"cycle"`
	A     int   `json:"a"`
	B     int   `json:"b"`
	Fail  bool  `json:"fail"`
}

// String formats the event in ParseFaultSchedule's syntax.
func (e FaultEvent) String() string {
	action := "recover"
	if e.Fail {
		action = "fail"
	}
	return fmt.Sprintf("%d:%s:%d-%d", e.Cycle, action, e.A, e.B)
}

// ParseFaultSchedule parses the -fault-schedule CLI syntax: a comma-
// separated list of cycle:action:a-b events, where action is "fail" or
// "recover" and a-b names a bidirectional link by its endpoint routers.
// Example: "1000:fail:2-3,3000:recover:2-3". An empty string is an
// empty schedule. The result is syntactically parsed only; validate it
// against a concrete topology with ValidateFaultSchedule.
func ParseFaultSchedule(s string) ([]FaultEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []FaultEvent
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		parts := strings.Split(item, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("sim: fault event %q: want cycle:fail|recover:a-b", item)
		}
		cyc, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sim: fault event %q: bad cycle: %v", item, err)
		}
		var fail bool
		switch parts[1] {
		case "fail":
			fail = true
		case "recover":
			fail = false
		default:
			return nil, fmt.Errorf("sim: fault event %q: action must be \"fail\" or \"recover\"", item)
		}
		a, b, ok := strings.Cut(parts[2], "-")
		if !ok {
			return nil, fmt.Errorf("sim: fault event %q: link must be a-b", item)
		}
		av, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("sim: fault event %q: bad router %q", item, a)
		}
		bv, err := strconv.Atoi(b)
		if err != nil {
			return nil, fmt.Errorf("sim: fault event %q: bad router %q", item, b)
		}
		out = append(out, FaultEvent{Cycle: cyc, A: av, B: bv, Fail: fail})
	}
	return out, nil
}

// ValidateFaultSchedule checks a schedule against the topology it will
// run on: cycles must be non-decreasing and non-negative, the same link
// may not appear twice at the same cycle, every failure must target a
// currently-up link and every recovery a currently-down one, and the
// topology must stay connected after every event (the simulator has no
// notion of an unreachable router, and the drain path needs a connected
// graph). The check replays the whole sequence, so it catches exactly
// the states a run would reach. The error text is safe for clients.
func ValidateFaultSchedule(g *topology.Graph, sched []FaultEvent) error {
	cur := g
	type linkCycle struct {
		a, b  int
		cycle int64
	}
	seen := make(map[linkCycle]bool, len(sched))
	prev := int64(0)
	for i, ev := range sched {
		if ev.Cycle < 0 {
			return fmt.Errorf("fault event %d: negative cycle %d", i, ev.Cycle)
		}
		if ev.Cycle < prev {
			return fmt.Errorf("fault schedule not sorted: event %d (cycle %d) after cycle %d", i, ev.Cycle, prev)
		}
		prev = ev.Cycle
		a, b := ev.A, ev.B
		if a > b {
			a, b = b, a
		}
		k := linkCycle{a: a, b: b, cycle: ev.Cycle}
		if seen[k] {
			return fmt.Errorf("duplicate fault events for link %d-%d at cycle %d", a, b, ev.Cycle)
		}
		seen[k] = true
		var err error
		if ev.Fail {
			cur, err = cur.WithoutEdge(a, b)
		} else {
			cur, err = cur.WithEdge(a, b)
		}
		if err != nil {
			return fmt.Errorf("fault event %d (cycle %d): %v", i, ev.Cycle, err)
		}
		if !cur.Connected() {
			return fmt.Errorf("fault event %d disconnects the topology (link %d-%d down at cycle %d)", i, a, b, ev.Cycle)
		}
	}
	return nil
}

// nextFaultCycle returns the cycle of the next unapplied scheduled
// fault event (math.MaxInt64 when none remain). Together with the
// network and scheme hints it bounds idle fast-forward windows, so a
// skip can never jump over a scheduled reconfiguration.
func (r *Runner) nextFaultCycle() int64 {
	if r.faultIdx < len(r.Params.FaultSchedule) {
		return r.Params.FaultSchedule[r.faultIdx].Cycle
	}
	return math.MaxInt64
}

// applyDueFaults applies every scheduled fault event due at or before
// the network's current cycle, then reconfigures routing, the network
// and the drain path once over the resulting topology (batching events
// that share a cycle into a single reconfiguration). The run loops call
// it at the top of each iteration — before injection and Step — so an
// event at cycle C takes effect on the C→C+1 cycle boundary, between
// Steps, where every engine (the parallel one included: its workers are
// parked then) applies it as a serial phase.
func (r *Runner) applyDueFaults() error {
	sched := r.Params.FaultSchedule
	if r.faultIdx >= len(sched) || sched[r.faultIdx].Cycle > r.Net.Cycle() {
		return nil
	}
	now := r.Net.Cycle()
	for r.faultIdx < len(sched) && sched[r.faultIdx].Cycle <= now {
		ev := sched[r.faultIdx]
		a, b := ev.A, ev.B
		if a > b {
			a, b = b, a
		}
		var err error
		if ev.Fail {
			r.active, err = r.active.WithoutEdge(a, b)
		} else {
			r.active, err = r.active.WithEdge(a, b)
		}
		if err != nil {
			// Unreachable after BuildOn's ValidateFaultSchedule.
			return fmt.Errorf("sim: fault event at cycle %d: %v", ev.Cycle, err)
		}
		r.faultIdx++
	}
	return r.reconfigure()
}

// reconfigure rebuilds the routing table over the current active
// subgraph (candidates remapped into the full graph's link-ID space),
// swaps it into the network, and recomputes the drain path when the
// DRAIN controller is wired. A full rebuild is the correctness
// fallback; the constructions are cheap (linear to near-linear in the
// topology), and reconfigurations happen at fault-schedule granularity,
// not per cycle.
func (r *Runner) reconfigure() error {
	tab, err := routing.NewTableRemapped(r.active, r.Graph, 0)
	if err != nil {
		return fmt.Errorf("sim: reconfiguration routing rebuild: %v", err)
	}
	rep, err := r.Net.Reconfigure(r.active, tab)
	if err != nil {
		return fmt.Errorf("sim: reconfiguration: %v", err)
	}
	r.FaultReports = append(r.FaultReports, rep)
	if r.Drain != nil {
		if err := r.Drain.Reconfigure(r.active); err != nil {
			return err
		}
	}
	return nil
}

// Active returns the currently fault-free subgraph of the runner's
// topology (Graph itself until the first scheduled fault fires).
func (r *Runner) Active() *topology.Graph { return r.active }
