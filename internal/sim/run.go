package sim

import (
	"context"
	"fmt"
	"io"

	"drain/internal/coherence"
	"drain/internal/noc"
	"drain/internal/stats"
	"drain/internal/traffic"
	"drain/internal/workload"
)

// TraceHeader is the CSV header emitted before per-packet trace records.
const TraceHeader = "id,src,dst,class,flits,created,injected,ejected,hops,misroutes,drain_hops,spin_hops"

// tracer writes one CSV record per ejected packet to w.
func tracer(w io.Writer) func(*noc.Packet) {
	fmt.Fprintln(w, TraceHeader)
	return func(p *noc.Packet) {
		fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.ID, p.Src, p.Dst, p.Class, p.Flits,
			p.CreatedAt, p.InjectedAt, p.EjectedAt,
			p.Hops, p.Misroutes, p.DrainHops, p.SpinHops)
	}
}

// SyntheticResult summarizes an open-loop synthetic-traffic run.
type SyntheticResult struct {
	Offered       float64 // requested injection rate, packets/node/cycle
	Accepted      float64 // measured ejection rate, packets/node/cycle
	AvgLatency    float64 // mean network latency (cycles)
	P99Latency    int64
	AvgHops       float64
	MisroutesPerK float64 // misroutes per 1000 delivered packets
	Deadlocked    bool    // a persistent deadlock was observed (SchemeNone)
	DeadlockCycle int64
	Counters      noc.Counters
	Cycles        int64
	// RNGMode is the generator discipline the run actually used (after
	// resolving the process default); FastForwarded counts the cycles
	// the idle fast-forward jumped over instead of stepping.
	RNGMode       traffic.RNGMode
	FastForwarded int64
}

// RunSynthetic drives the runner's network with the given pattern and
// rate for warmup+measure cycles, measuring only the post-warmup window.
// For SchemeNone the run additionally watches for persistent deadlocks
// and stops early when one is confirmed.
func (r *Runner) RunSynthetic(pattern traffic.Pattern, rate float64, warmup, measure int64) (SyntheticResult, error) {
	return r.RunSyntheticContext(context.Background(), pattern, rate, warmup, measure)
}

// RunSyntheticContext is RunSynthetic with cancellation: the step loop
// polls ctx every noc.CancelCheckEvery cycles and returns a
// cancellation error (wrapping ctx.Err()) within that cycle bound. With
// context.Background() the results are byte-identical to RunSynthetic.
func (r *Runner) RunSyntheticContext(ctx context.Context, pattern traffic.Pattern, rate float64, warmup, measure int64) (SyntheticResult, error) {
	mode := r.Params.effectiveRNGMode()
	res := SyntheticResult{Offered: rate, RNGMode: mode}
	gen := traffic.NewGeneratorMode(pattern, rate, r.Params.Seed^0x1234, mode, r.Graph.N())
	gen.CtrlFraction = max(0, r.Params.CtrlFraction)
	gen.DataFlits = r.Params.MaxFlits
	var lat stats.Sample
	var hops, misroutes, delivered int64
	measuring := false
	var trace func(*noc.Packet)
	if r.Trace != nil {
		trace = tracer(r.Trace)
	}
	// Chain rather than replace any caller-installed ejection hook (the
	// statistical-equivalence tests tap per-packet latencies this way).
	prev := r.Net.OnEject
	r.Net.OnEject = func(p *noc.Packet) {
		if prev != nil {
			prev(p)
		}
		if trace != nil {
			trace(p)
		}
		if !measuring {
			return
		}
		lat.Add(p.NetworkLatency())
		hops += int64(p.Hops)
		misroutes += int64(p.Misroutes)
		delivered++
	}
	defer func() { r.Net.OnEject = prev }()

	total := warmup + measure
	watch := r.Params.Scheme == SchemeNone
	lastEject := int64(0)
	suspect := false
	// base converts between the network's absolute clock and this run's
	// iteration counter: iteration cyc steps the clock from base+cyc to
	// base+cyc+1. It is nonzero when the runner is reused for a second run.
	base := r.Net.Cycle()
	for cyc := int64(0); cyc < total; cyc++ {
		// Scheduled faults fire first, before injection and Step, so an
		// event at cycle C reconfigures on the C→C+1 boundary.
		if err := r.applyDueFaults(); err != nil {
			return res, err
		}
		if !r.Net.Frozen() {
			gen.Tick(r.Net)
		}
		if err := r.Net.StepContext(ctx); err != nil {
			return res, fmt.Errorf("sim: synthetic run cancelled at cycle %d: %w", r.Net.Cycle(), err)
		}
		if err := r.TickScheme(); err != nil {
			return res, err
		}
		if cyc == warmup {
			measuring = true
		}
		// Sink: consume every ejection queue (stats were already taken by
		// OnEject as the packets landed).
		r.Net.DiscardEjected()
		if watch && cyc%512 == 511 {
			if r.Net.Counters.Ejected == lastEject && r.Net.HasDeadlock(noc.LivenessOpts{}) {
				if suspect {
					res.Deadlocked = true
					res.DeadlockCycle = r.Net.Cycle()
					break
				}
				suspect = true
			} else {
				suspect = false
			}
			lastEject = r.Net.Counters.Ejected
		}
		// Idle fast-forward: when network, scheme and generator all prove
		// a window of do-nothing iterations, jump over it in one go. An
		// iteration j steps the clock from j to j+1 (firing cycle j+1's
		// events) and ticks the scheme at j+1, so the first iteration that
		// may matter is (earliest interesting cycle) - 1. The window is
		// further capped so that the warmup flip, every StepContext
		// cancellation poll (the bounded-cancel contract), and every
		// deadlock-watch sweep still execute on their exact cycles.
		if !r.Net.Frozen() {
			// NextWorkCycle hints are absolute network cycles; -base maps
			// them onto the iteration counter.
			u := min(r.Net.NextWorkCycle(), r.nextSchemeWorkCycle()) - base - 1
			// A fault at absolute cycle C is applied at the top of
			// iteration C-base, so that iteration must execute.
			if fb := r.nextFaultCycle() - base; fb < u {
				u = fb
			}
			if u > total {
				u = total
			}
			if cyc < warmup && warmup < u {
				u = warmup
			}
			// StepContext polls ctx when the absolute clock is a multiple of
			// CancelCheckEvery, so the boundary is computed absolutely too.
			if pb := (base+cyc+noc.CancelCheckEvery)&^(noc.CancelCheckEvery-1) - base; pb < u {
				u = pb
			}
			if watch {
				if wb := (cyc + 1) | 511; wb < u {
					u = wb
				}
			}
			if w := u - (cyc + 1); w > 0 {
				// The generator may stop short at the first cycle in which
				// some node's rate draw fires; stepping resumes there.
				skipped := gen.SkipQuiet(r.Graph.N(), w)
				r.Net.SkipIdle(skipped)
				cyc += skipped
				res.FastForwarded += skipped
			}
		}
	}
	res.Cycles = r.Net.Cycle()
	res.Counters = r.Net.Counters
	res.AvgLatency = lat.Mean()
	res.P99Latency = lat.P99()
	if delivered > 0 {
		res.AvgHops = float64(hops) / float64(delivered)
		res.MisroutesPerK = 1000 * float64(misroutes) / float64(delivered)
	}
	if measure > 0 {
		res.Accepted = float64(delivered) / float64(r.Graph.N()) / float64(measure)
	}
	return res, nil
}

// LoadSweep measures a latency/throughput curve: one fresh runner per
// offered rate (networks are not reusable across rates).
func LoadSweep(p Params, patternName string, rates []float64, warmup, measure int64) (stats.Curve, error) {
	return LoadSweepContext(context.Background(), p, patternName, rates, warmup, measure)
}

// LoadSweepContext is LoadSweep with cancellation: ctx is threaded into
// every per-rate run (see RunSyntheticContext) and also checked between
// rates.
func LoadSweepContext(ctx context.Context, p Params, patternName string, rates []float64, warmup, measure int64) (stats.Curve, error) {
	var curve stats.Curve
	for _, rate := range rates {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: load sweep cancelled: %w", err)
		}
		r, err := Build(p)
		if err != nil {
			return nil, err
		}
		pat, err := traffic.ByName(patternName, r.Graph.N(), p.Width)
		if err != nil {
			r.Close()
			return nil, err
		}
		res, err := r.RunSyntheticContext(ctx, pat, rate, warmup, measure)
		r.Close()
		if err != nil {
			return nil, err
		}
		curve = append(curve, stats.LoadPoint{
			Offered:  rate,
			Accepted: res.Accepted,
			AvgLat:   res.AvgLatency,
			P99Lat:   res.P99Latency,
		})
	}
	return curve, nil
}

// AppResult summarizes a closed-loop coherence workload run.
type AppResult struct {
	Workload   string
	Completed  bool
	Runtime    int64 // cycles until every core hit its ops target
	AvgLatency float64
	P99Latency int64
	Protocol   coherence.Stats
	Counters   noc.Counters
	Drains     int64
	Spins      int64
	// Deadlocked reports a persistent deadlock (SchemeNone runs only;
	// protected schemes resolve deadlocks instead).
	Deadlocked    bool
	DeadlockCycle int64
}

// RunApp executes a coherence workload to completion (every core
// performs opsTarget memory operations) or until maxCycles.
func (r *Runner) RunApp(prof workload.Profile, opsTarget, maxCycles int64) (AppResult, error) {
	return r.RunAppContext(context.Background(), prof, opsTarget, maxCycles)
}

// RunAppContext is RunApp with cancellation: the step loop polls ctx
// every noc.CancelCheckEvery cycles and returns a cancellation error
// (wrapping ctx.Err()) within that cycle bound. With
// context.Background() the results are byte-identical to RunApp.
func (r *Runner) RunAppContext(ctx context.Context, prof workload.Profile, opsTarget, maxCycles int64) (AppResult, error) {
	res := AppResult{Workload: prof.Name}
	if r.Params.Classes < coherence.NumClasses {
		return res, fmt.Errorf("sim: coherence runs need Classes=3 (have %d)", r.Params.Classes)
	}
	sys, err := coherence.New(r.Net, coherence.Config{
		Gen:       prof,
		OpsTarget: opsTarget,
		MSHRs:     r.Params.MSHRs,
		Seed:      r.Params.Seed ^ 0x517cc1b7,
	})
	if err != nil {
		return res, err
	}
	var lat stats.Sample
	var trace func(*noc.Packet)
	if r.Trace != nil {
		trace = tracer(r.Trace)
	}
	r.Net.OnEject = func(p *noc.Packet) {
		if trace != nil {
			trace(p)
		}
		lat.Add(p.NetworkLatency())
	}
	defer func() { r.Net.OnEject = nil }()

	lastEject := int64(0)
	suspect := false
	watch := r.Params.Scheme == SchemeNone
	opts := noc.LivenessOpts{EjectLiveByClass: sinkClasses(r.Params.Classes)}
	for cyc := int64(0); cyc < maxCycles; cyc++ {
		if err := r.applyDueFaults(); err != nil {
			return res, err
		}
		if err := r.Net.StepContext(ctx); err != nil {
			return res, fmt.Errorf("sim: app run cancelled at cycle %d: %w", r.Net.Cycle(), err)
		}
		if err := r.TickScheme(); err != nil {
			return res, err
		}
		sys.Tick()
		if sys.Done() {
			res.Completed = true
			break
		}
		if watch && cyc%512 == 511 {
			// A deadlock is confirmed when two consecutive sweeps find
			// non-live buffers with zero ejections in between.
			if r.Net.Counters.Ejected == lastEject && r.Net.HasDeadlock(opts) {
				if suspect {
					res.Deadlocked = true
					res.DeadlockCycle = r.Net.Cycle()
					break
				}
				suspect = true
			} else {
				suspect = false
			}
			lastEject = r.Net.Counters.Ejected
		}
	}
	res.Runtime = r.Net.Cycle()
	res.AvgLatency = lat.Mean()
	res.P99Latency = lat.P99()
	res.Protocol = sys.Stats()
	res.Counters = r.Net.Counters
	if r.Drain != nil {
		res.Drains = r.Drain.Stats().Drains
	}
	if r.Spin != nil {
		res.Spins = r.Spin.Stats().Spins
	}
	return res, nil
}
