package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"reflect"
	"testing"

	"drain/internal/traffic"
)

// shardsFlag narrows the parallel differential tests to one shard
// count (the CI engine-matrix job runs the suite at 2, 4 and 8, with
// and without -race). Zero — the default — covers {1, 2, 3, 8}.
var shardsFlag = flag.Int("drain.shards", 0, "restrict parallel-engine tests to this shard count (0 = built-in set)")

func shardCounts() []int {
	if *shardsFlag > 0 {
		return []int{*shardsFlag}
	}
	return []int{1, 2, 3, 8}
}

// TestParallelEngineDifferential locks the sharded engine at the
// simulation level: with rotation and freezes active (small DRAIN
// epoch) and SPIN recovery in the mix, a run on the parallel engine at
// every shard count must reproduce the event core's SyntheticResult
// exactly — every counter, every latency float, bit for bit. The inline
// fast path is disabled so the phased barrier pipeline itself is what
// runs on these small meshes.
func TestParallelEngineDifferential(t *testing.T) {
	base := Params{
		Width: 4, Height: 4,
		FaultSeed: 11,
		Epoch:     256, SpinTimeout: 128,
		Seed: 7,
	}
	run := func(t *testing.T, p Params, shards int) SyntheticResult {
		p.Shards = shards
		if shards > 0 {
			p.ParallelInline = -1
		}
		r, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.30, 200, 2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, scheme := range []Scheme{SchemeDRAIN, SchemeSPIN} {
		for _, nf := range []int{0, 3} {
			t.Run(fmt.Sprintf("%s/faults%d", scheme, nf), func(t *testing.T) {
				p := base
				p.Scheme = scheme
				p.Faults = nf
				want := run(t, p, 0) // event engine reference
				for _, k := range shardCounts() {
					if got := run(t, p, k); !reflect.DeepEqual(want, got) {
						t.Errorf("shards=%d diverges from event engine:\nevent:    %+v\nparallel: %+v", k, want, got)
					}
				}
			})
		}
	}
}

// TestParallelDeterminismBytes pins the strongest form of the contract
// the result cache and goldens rely on: the marshalled result bytes —
// floats included — are identical for every shard count.
func TestParallelDeterminismBytes(t *testing.T) {
	var want []byte
	for _, k := range shardCounts() {
		r, err := Build(Params{
			Width: 5, Height: 5,
			Scheme: SchemeDRAIN, Epoch: 512,
			Seed:   21,
			Shards: k, ParallelInline: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(traffic.Transpose{W: 5}, 0.20, 300, 2500)
		r.Close()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
		} else if string(b) != string(want) {
			t.Errorf("shards=%d result bytes diverge:\nfirst: %s\n here: %s", k, want, b)
		}
	}
}

// TestParallelEngineRaceHot keeps the phased pipeline hot for thousands
// of cycles on a loaded mesh with drain rotation active — the
// configuration where every staging buffer, barrier and bit structure
// is busy. Its job is to give the race detector surface area: the CI
// matrix runs this package under -race at several shard counts.
func TestParallelEngineRaceHot(t *testing.T) {
	shards := 4
	if *shardsFlag > 0 {
		shards = *shardsFlag
	}
	r, err := Build(Params{
		Width: 8, Height: 8,
		Scheme: SchemeDRAIN, Epoch: 256,
		Seed:   5,
		Shards: shards, ParallelInline: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.30, 500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Ejected == 0 {
		t.Fatal("hot parallel run delivered no packets")
	}
}
