package sim

import (
	"strings"
	"testing"

	"drain/internal/stats"
	"drain/internal/traffic"
	"drain/internal/workload"
)

func TestUpDownSchemeRuns(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeUpDown, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 500, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < 0.03 {
		t.Errorf("up*/down* accepted %.3f at offered 0.05", res.Accepted)
	}
	if res.MisroutesPerK != 0 {
		t.Errorf("up*/down* must never misroute, got %.2f/1k", res.MisroutesPerK)
	}
}

func TestCtrlFractionControlsPacketSize(t *testing.T) {
	// All-control traffic moves more packets per flit than all-data.
	run := func(ctrl float64) SyntheticResult {
		r, err := Build(Params{
			Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 3,
			CtrlFraction: ctrl,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 500, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1.0)
	big := run(-1) // negative → all MaxFlits-sized
	if small.Counters.LinkFlits >= big.Counters.LinkFlits {
		t.Errorf("all-data traffic should move more flits: %d vs %d",
			small.Counters.LinkFlits, big.Counters.LinkFlits)
	}
	if small.AvgLatency >= big.AvgLatency {
		t.Errorf("1-flit latency %.1f should beat 5-flit %.1f",
			small.AvgLatency, big.AvgLatency)
	}
}

func TestMSHRParamPropagates(t *testing.T) {
	// A larger MSHR budget must raise protocol concurrency (more misses
	// outstanding → more messages for the same ops target).
	prof := workload.MustGet("canneal")
	run := func(mshrs int) AppResult {
		r, err := Build(Params{
			Width: 4, Height: 4, Scheme: SchemeEscapeVC, Classes: 3,
			InjectCap: 16, MSHRs: mshrs, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunApp(prof, 300, 400_000)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("mshrs=%d did not complete", mshrs)
		}
		return res
	}
	small := run(1)
	big := run(8)
	if big.Runtime >= small.Runtime {
		t.Errorf("more MSHRs should shorten runtime: %d vs %d", big.Runtime, small.Runtime)
	}
}

func TestSyntheticMeasurementWindow(t *testing.T) {
	// Packets created before the warmup boundary must not contaminate
	// the measured latency sample; cheap sanity: zero measure window
	// yields zero accepted and zero latency sample.
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 500, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.AvgLatency != 0 {
		t.Errorf("zero measurement window produced data: %+v", res)
	}
}

func TestDrainStatsSurfaceInAppResult(t *testing.T) {
	r, err := Build(Params{
		Width: 4, Height: 4, Scheme: SchemeDRAIN, Classes: 3,
		Epoch: 500, InjectCap: 16, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunApp(workload.MustGet("bodytrack"), 200, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Drains == 0 {
		t.Error("500-cycle epochs over a long run must record drains")
	}
	if res.Spins != 0 {
		t.Error("DRAIN run reported spins")
	}
}

func TestTraceEmitsRecords(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	r.Trace = &buf
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 200, 1500)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != TraceHeader {
		t.Errorf("trace header = %q", lines[0])
	}
	// One record per ejection (header excluded) — tracing covers the
	// whole run, not just the measurement window.
	if int64(len(lines)-1) != res.Counters.Ejected {
		t.Errorf("trace has %d records, ejected %d", len(lines)-1, res.Counters.Ejected)
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(TraceHeader, ",") {
			t.Fatalf("malformed trace record %q", l)
		}
	}
}

func TestSchemeStrings(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeNone: "none", SchemeIdeal: "ideal", SchemeEscapeVC: "escape-vc",
		SchemeSPIN: "spin", SchemeDRAIN: "drain", SchemeUpDown: "updown",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme should still render")
	}
}

func TestBuildRejectsUnknownScheme(t *testing.T) {
	if _, err := Build(Params{Width: 4, Height: 4, Scheme: Scheme(99)}); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestDoRScheme(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDoR, Classes: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Net.Config().VNets != 3 {
		t.Errorf("DoR VNets = %d, want 3 (one per class)", r.Net.Config().VNets)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.05, 500, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.MisroutesPerK != 0 {
		t.Errorf("deterministic DoR misrouted %.2f/1k", res.MisroutesPerK)
	}
	if res.Accepted < 0.04 || res.Deadlocked {
		t.Errorf("DoR degenerate: %+v", res)
	}
	// DoR on a faulty mesh must be rejected.
	if _, err := Build(Params{Width: 4, Height: 4, Faults: 2, Scheme: SchemeDoR, Seed: 7}); err == nil {
		t.Error("DoR on a faulty mesh should fail")
	}
}

func TestSaturationSearchOnRealNetwork(t *testing.T) {
	// Binary-search the DRAIN saturation point; it must land near the
	// plateau that the over-saturation probe reports.
	measure := func(rate float64) (float64, error) {
		r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 8})
		if err != nil {
			return 0, err
		}
		res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, rate, 500, 2500)
		if err != nil {
			return 0, err
		}
		return res.Accepted, nil
	}
	point, err := stats.SearchSaturation(0.02, 0.6, 0.9, 0.02, measure)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunSynthetic(traffic.UniformRandom{N: 16}, 0.6, 500, 2500)
	if err != nil {
		t.Fatal(err)
	}
	plateau := res.Accepted
	if point < plateau*0.6 || point > plateau*1.6 {
		t.Errorf("searched saturation %.3f far from plateau %.3f", point, plateau)
	}
}

func TestStickyEscapeParam(t *testing.T) {
	sticky, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, StickyEscape: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sticky.Net.Config().NonStickyEscape {
		t.Error("StickyEscape param ignored")
	}
	def, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !def.Net.Config().NonStickyEscape {
		t.Error("DRAIN default should be non-sticky")
	}
}

func TestRunAppRequiresThreeClasses(t *testing.T) {
	r, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunApp(workload.MustGet("lu"), 10, 1000); err == nil {
		t.Error("coherence run on 1-class network should fail")
	}
}
