package sim

import (
	"reflect"
	"strings"
	"testing"

	"drain/internal/noc"
	"drain/internal/topology"
	"drain/internal/traffic"
)

func TestParseFaultSchedule(t *testing.T) {
	got, err := ParseFaultSchedule(" 1000:fail:2-3, 3000:recover:2-3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []FaultEvent{
		{Cycle: 1000, A: 2, B: 3, Fail: true},
		{Cycle: 3000, A: 2, B: 3, Fail: false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %+v, want %+v", got, want)
	}
	for _, ev := range got {
		back, err := ParseFaultSchedule(ev.String())
		if err != nil || len(back) != 1 || back[0] != ev {
			t.Fatalf("String/Parse round trip broke %+v: got %+v, err %v", ev, back, err)
		}
	}
	if got, err := ParseFaultSchedule(""); err != nil || got != nil {
		t.Fatalf("empty schedule: got %+v, err %v", got, err)
	}
	for _, bad := range []string{"x", "10:fail", "10:explode:2-3", "ten:fail:2-3", "10:fail:2", "10:fail:a-b"} {
		if _, err := ParseFaultSchedule(bad); err == nil {
			t.Errorf("ParseFaultSchedule(%q) accepted", bad)
		}
	}
}

func TestValidateFaultSchedule(t *testing.T) {
	g := topology.MustMesh(4, 4).Graph
	ok := []FaultEvent{
		{Cycle: 100, A: 1, B: 2, Fail: true},
		{Cycle: 100, A: 5, B: 6, Fail: true},
		{Cycle: 200, A: 2, B: 1, Fail: false}, // reversed endpoints normalize
		{Cycle: 300, A: 5, B: 6, Fail: false},
	}
	if err := ValidateFaultSchedule(g, ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	cases := []struct {
		name  string
		sched []FaultEvent
		want  string
	}{
		{"unsorted", []FaultEvent{{Cycle: 200, A: 1, B: 2, Fail: true}, {Cycle: 100, A: 5, B: 6, Fail: true}}, "not sorted"},
		{"negative", []FaultEvent{{Cycle: -1, A: 1, B: 2, Fail: true}}, "negative cycle"},
		{"duplicate", []FaultEvent{{Cycle: 100, A: 1, B: 2, Fail: true}, {Cycle: 100, A: 2, B: 1, Fail: false}}, "duplicate"},
		{"fail-down", []FaultEvent{{Cycle: 100, A: 1, B: 2, Fail: true}, {Cycle: 200, A: 1, B: 2, Fail: true}}, "no edge"},
		{"recover-up", []FaultEvent{{Cycle: 100, A: 1, B: 2, Fail: false}}, "already present"},
		{"no-such-link", []FaultEvent{{Cycle: 100, A: 0, B: 15, Fail: true}}, "no edge"},
		{"disconnect", []FaultEvent{
			{Cycle: 100, A: 0, B: 1, Fail: true},
			{Cycle: 200, A: 0, B: 4, Fail: true},
		}, "disconnects"},
	}
	for _, tc := range cases {
		err := ValidateFaultSchedule(g, tc.sched)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBuildRejectsFaultScheduleWithDoR(t *testing.T) {
	_, err := Build(Params{Width: 4, Height: 4, Scheme: SchemeDoR,
		FaultSchedule: []FaultEvent{{Cycle: 100, A: 1, B: 2, Fail: true}}})
	if err == nil || !strings.Contains(err.Error(), "fault schedule") {
		t.Fatalf("DoR with fault schedule: err %v", err)
	}
}

// TestFaultScheduleByteIdenticalAcrossEngines runs the same faulty
// schedule under every engine and several shard counts; the full result
// — counters (drops and reroutes included), latency statistics and the
// per-event reconfiguration reports — must be byte-identical. Faults
// are a model change, engines and shards are not.
func TestFaultScheduleByteIdenticalAcrossEngines(t *testing.T) {
	sched := []FaultEvent{
		{Cycle: 300, A: 1, B: 2, Fail: true},
		{Cycle: 500, A: 5, B: 6, Fail: true},
		{Cycle: 900, A: 1, B: 2, Fail: false},
	}
	base := Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Epoch: 256,
		Seed: 7, FaultSchedule: sched}
	run := func(p Params) (SyntheticResult, []noc.ReconfigReport) {
		t.Helper()
		r, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		pat, err := traffic.ByName("uniform", r.Graph.N(), p.Width)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(pat, 0.10, 200, 1200)
		if err != nil {
			t.Fatal(err)
		}
		return res, r.FaultReports
	}
	ref, refReps := run(base)
	if ref.Counters.Reconfigs != 3 {
		t.Fatalf("Reconfigs = %d, want 3", ref.Counters.Reconfigs)
	}
	if len(refReps) != 3 {
		t.Fatalf("FaultReports = %+v, want 3 entries", refReps)
	}
	variants := map[string]Params{}
	for name, p := range map[string]func(Params) Params{
		"dense":      func(p Params) Params { p.Engine = noc.EngineDense; return p },
		"shards=1":   func(p Params) Params { p.Shards = 1; return p },
		"shards=2":   func(p Params) Params { p.Shards = 2; return p },
		"shards=3":   func(p Params) Params { p.Shards = 3; return p },
		"shards=8":   func(p Params) Params { p.Shards = 8; return p },
		"ph-barrier": func(p Params) Params { p.Shards = 2; p.ParallelInline = -1; return p },
	} {
		variants[name] = p(base)
	}
	for name, p := range variants {
		res, reps := run(p)
		// FastForwarded is telemetry the dense oracle never accrues
		// (see TestEngineDifferential); exclude it from byte-identity.
		res.FastForwarded = ref.FastForwarded
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("%s: result diverges:\n got %+v\nwant %+v", name, res, ref)
		}
		if !reflect.DeepEqual(reps, refReps) {
			t.Errorf("%s: reconfig reports diverge: got %+v want %+v", name, reps, refReps)
		}
	}
}

// TestFaultScheduleChangesResults: unlike Shards, a fault schedule is a
// model change — the same run with and without it must differ.
func TestFaultScheduleChangesResults(t *testing.T) {
	base := Params{Width: 4, Height: 4, Scheme: SchemeDRAIN, Epoch: 256, Seed: 7}
	withFaults := base
	withFaults.FaultSchedule = []FaultEvent{{Cycle: 300, A: 1, B: 2, Fail: true}}
	run := func(p Params) SyntheticResult {
		t.Helper()
		r, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		pat, err := traffic.ByName("uniform", r.Graph.N(), p.Width)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.RunSynthetic(pat, 0.10, 200, 1200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(base), run(withFaults)
	if reflect.DeepEqual(a, b) {
		t.Fatal("fault schedule did not change the result")
	}
	if b.Counters.Reconfigs != 1 {
		t.Fatalf("Reconfigs = %d, want 1", b.Counters.Reconfigs)
	}
}
