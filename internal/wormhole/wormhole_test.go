package wormhole

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func hdr(id int64, flits int) Header {
	return Header{PacketID: id, Src: 0, Dst: 5, Class: 1, TotalFlits: flits}
}

func TestNewPacketWellFormed(t *testing.T) {
	for _, flits := range []int{1, 2, 5, 16} {
		p := NewPacket(hdr(1, flits))
		if err := p.Validate(); err != nil {
			t.Errorf("flits=%d: %v", flits, err)
		}
		if len(p.Flits) != flits {
			t.Errorf("flits=%d: got %d", flits, len(p.Flits))
		}
	}
}

func TestNewPacketPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-flit packet should panic")
		}
	}()
	NewPacket(hdr(1, 0))
}

func TestTruncateProducesTwoValidSubPackets(t *testing.T) {
	p := NewPacket(hdr(7, 5))
	down, up, err := Truncate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := down.Validate(); err != nil {
		t.Errorf("downstream: %v", err)
	}
	if err := up.Validate(); err != nil {
		t.Errorf("upstream: %v", err)
	}
	if len(down.Flits) != 2 || len(up.Flits) != 3 {
		t.Errorf("split sizes %d/%d, want 2/3", len(down.Flits), len(up.Flits))
	}
	// The synthesized flags: downstream gained a tail, upstream a head.
	if !down.Flits[1].Tail {
		t.Error("downstream missing synthesized tail")
	}
	if !up.Flits[0].Head {
		t.Error("upstream missing synthesized head")
	}
	// Headers embedded in both parts.
	if up.Flits[0].Header != p.Flits[0].Header {
		t.Error("upstream head lost the original header")
	}
}

func TestTruncateRejectsBadSplits(t *testing.T) {
	p := NewPacket(hdr(1, 3))
	for _, at := range []int{0, 3, -1, 7} {
		if _, _, err := Truncate(p, at); err == nil {
			t.Errorf("Truncate(…, %d) accepted", at)
		}
	}
	single := NewPacket(hdr(2, 1))
	if _, _, err := Truncate(single, 1); err == nil {
		t.Error("single-flit truncation accepted")
	}
}

func TestReassemblyInOrder(t *testing.T) {
	r := NewReassembler()
	p := NewPacket(hdr(3, 5))
	down, up, err := Truncate(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := r.Accept(down); err != nil || got != nil {
		t.Fatalf("first part should not complete: %v %v", got, err)
	}
	if r.Pending() != 1 {
		t.Errorf("pending = %d", r.Pending())
	}
	got, err := r.Accept(up)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("second part should complete the packet")
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
	if len(got.Flits) != 5 || r.Completed != 1 || r.Pending() != 0 {
		t.Errorf("reassembly state wrong: %d flits, %d completed, %d pending",
			len(got.Flits), r.Completed, r.Pending())
	}
}

func TestReassemblyRejectsDuplicates(t *testing.T) {
	r := NewReassembler()
	p := NewPacket(hdr(4, 4))
	down, _, err := Truncate(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(down); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(down); err == nil {
		t.Error("duplicate sub-packet accepted")
	}
}

func TestScatterCoversPacket(t *testing.T) {
	subs, err := Scatter(hdr(9, 10), []int{3, 5, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 4 {
		t.Fatalf("got %d sub-packets, want 4", len(subs))
	}
	total := 0
	for i, s := range subs {
		if err := s.Validate(); err != nil {
			t.Errorf("sub %d: %v", i, err)
		}
		total += len(s.Flits)
	}
	if total != 10 {
		t.Errorf("flits conserved? total %d, want 10", total)
	}
	if _, err := Scatter(hdr(9, 10), []int{0}); err == nil {
		t.Error("cut at 0 accepted")
	}
	if _, err := Scatter(hdr(9, 10), []int{3, 3}); err == nil {
		t.Error("duplicate cut accepted")
	}
}

// Property: any sequence of truncations followed by arrival in any order
// reassembles the exact original packet — the §III-C3 correctness claim.
func TestTruncationReassemblyProperty(t *testing.T) {
	f := func(seed uint64, flitsRaw, cutsRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x17))
		flits := int(flitsRaw%20) + 1
		h := hdr(int64(seed%1000), flits)
		// Random distinct cut points.
		nCuts := int(cutsRaw) % flits // at most flits-1 valid cuts
		cutSet := map[int]bool{}
		for len(cutSet) < nCuts {
			c := 1 + rng.IntN(flits)
			if c < flits {
				cutSet[c] = true
			} else {
				nCuts--
			}
		}
		var cuts []int
		for c := range cutSet {
			cuts = append(cuts, c)
		}
		subs, err := Scatter(h, cuts)
		if err != nil {
			return false
		}
		// Shuffle arrival order.
		rng.Shuffle(len(subs), func(i, j int) { subs[i], subs[j] = subs[j], subs[i] })
		r := NewReassembler()
		var done *SubPacket
		for i, s := range subs {
			got, err := r.Accept(s)
			if err != nil {
				return false
			}
			if got != nil && i != len(subs)-1 {
				return false // completed early?!
			}
			done = got
		}
		if done == nil || len(done.Flits) != flits {
			return false
		}
		for i, f := range done.Flits {
			if f.Seq != i || f.Header != h {
				return false
			}
		}
		return r.Pending() == 0 && r.Completed == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved reassembly of many packets never cross-
// contaminates (MSHRs keep per-packet buffers).
func TestInterleavedReassemblyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x31))
		r := NewReassembler()
		type job struct{ subs []SubPacket }
		var pool []SubPacket
		nPkts := 3 + rng.IntN(5)
		for id := 0; id < nPkts; id++ {
			flits := 2 + rng.IntN(8)
			h := hdr(int64(id), flits)
			cut := 1 + rng.IntN(flits-1)
			subs, err := Scatter(h, []int{cut})
			if err != nil {
				return false
			}
			pool = append(pool, subs...)
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		completed := 0
		for _, s := range pool {
			got, err := r.Accept(s)
			if err != nil {
				return false
			}
			if got != nil {
				completed++
			}
		}
		return completed == nPkts && r.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
