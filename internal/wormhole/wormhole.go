// Package wormhole implements the packet truncation and reassembly
// mechanism DRAIN uses to support flit-based (wormhole) flow control
// (paper §III-C3). Our network model, like the paper's implementation,
// uses virtual cut-through — packets never span routers, so drains never
// split them. Under wormhole flow control a drain's forced turn can
// split a packet mid-body: the router then
//
//  1. encodes the last downstream flit as a tail flit, and
//  2. embeds the original header information into the first upstream
//     flit,
//
// producing two self-routing sub-packets. At the destination, flits are
// buffered at the MSHRs and the full packet is reassembled once every
// flit has arrived, in any sub-packet order.
//
// This package provides that protocol — Truncate and Reassembler — with
// the invariants the paper's correctness depends on: truncation never
// loses or duplicates a flit, sub-packets remain well-formed (head …
// tail), and reassembly completes exactly when all original flits have
// arrived.
package wormhole

import (
	"errors"
	"fmt"
	"sort"

	"drain/internal/dense"
)

// Header carries the routing/protocol information of an original packet;
// truncation copies it into each sub-packet's synthesized head flit.
type Header struct {
	PacketID int64
	Src, Dst int
	Class    int
	// TotalFlits is the original packet length, so the reassembler knows
	// when it is complete.
	TotalFlits int
}

// Flit is one flow-control unit.
type Flit struct {
	Header Header
	// Seq is the flit's position in the ORIGINAL packet (0-based); it is
	// preserved across truncations so reassembly can restore order.
	Seq  int
	Head bool // first flit of its (sub-)packet, carries Header
	Tail bool // last flit of its (sub-)packet
}

// SubPacket is a contiguous run of an original packet's flits that
// travels as an independent unit after truncation.
type SubPacket struct {
	Flits []Flit
}

// Validate checks sub-packet well-formedness: non-empty, head first,
// tail last, contiguous ascending Seq, consistent headers.
func (s SubPacket) Validate() error {
	if len(s.Flits) == 0 {
		return errors.New("wormhole: empty sub-packet")
	}
	if !s.Flits[0].Head {
		return errors.New("wormhole: first flit is not a head")
	}
	if !s.Flits[len(s.Flits)-1].Tail {
		return errors.New("wormhole: last flit is not a tail")
	}
	h := s.Flits[0].Header
	for i, f := range s.Flits {
		if f.Header != h {
			return fmt.Errorf("wormhole: flit %d header mismatch", i)
		}
		if i > 0 && f.Seq != s.Flits[i-1].Seq+1 {
			return fmt.Errorf("wormhole: flit %d breaks Seq contiguity", i)
		}
		if f.Head && i != 0 {
			return fmt.Errorf("wormhole: interior head at %d", i)
		}
		if f.Tail && i != len(s.Flits)-1 {
			return fmt.Errorf("wormhole: interior tail at %d", i)
		}
	}
	return nil
}

// NewPacket builds the original (untruncated) sub-packet for a header.
func NewPacket(h Header) SubPacket {
	if h.TotalFlits <= 0 {
		panic("wormhole: packet needs at least one flit")
	}
	s := SubPacket{Flits: make([]Flit, h.TotalFlits)}
	for i := range s.Flits {
		s.Flits[i] = Flit{Header: h, Seq: i}
	}
	s.Flits[0].Head = true
	s.Flits[h.TotalFlits-1].Tail = true
	return s
}

// Truncate splits s after its first `after` flits (0 < after < len):
// the first part is the downstream portion (already past the drain
// turn), whose last flit the router re-encodes as a tail; the second is
// the upstream portion, whose first flit receives a synthesized head
// with the embedded header. Single-flit sub-packets cannot be truncated.
func Truncate(s SubPacket, after int) (down, up SubPacket, err error) {
	if err := s.Validate(); err != nil {
		return down, up, err
	}
	if after <= 0 || after >= len(s.Flits) {
		return down, up, fmt.Errorf("wormhole: cannot truncate %d-flit sub-packet after %d", len(s.Flits), after)
	}
	down = SubPacket{Flits: append([]Flit(nil), s.Flits[:after]...)}
	up = SubPacket{Flits: append([]Flit(nil), s.Flits[after:]...)}
	// Router modifications (paper §III-C3): new tail downstream, new
	// head (with embedded header) upstream.
	down.Flits[len(down.Flits)-1].Tail = true
	up.Flits[0].Head = true
	return down, up, nil
}

// Reassembler collects sub-packet flits at a destination's MSHRs and
// reports completed packets. Pending assemblies live in a dense table
// keyed by packet ID and each tracks its received flits as a bitset —
// the per-flit path is an index plus a word test, with no map hashing.
type Reassembler struct {
	pending dense.Table[*assembly]
	// Completed counts fully reassembled packets.
	Completed int64
}

type assembly struct {
	header Header
	got    []uint64 // received-flit bitset, indexed by original Seq
	n      int      // count of bits set in got
}

func (a *assembly) has(seq int) bool { return a.got[seq>>6]&(1<<(seq&63)) != 0 }

func (a *assembly) mark(seq int) {
	a.got[seq>>6] |= 1 << (seq & 63)
	a.n++
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{}
}

// Pending returns the number of partially reassembled packets.
func (r *Reassembler) Pending() int { return r.pending.Len() }

// Accept buffers one arriving sub-packet. It returns the reassembled
// original packet (flits in order) when this sub-packet completes it,
// or nil if more flits are still missing.
func (r *Reassembler) Accept(s SubPacket) (*SubPacket, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	h := s.Flits[0].Header
	a, ok := r.pending.Get(h.PacketID)
	if !ok {
		a = &assembly{header: h, got: make([]uint64, (h.TotalFlits+63)/64)}
		r.pending.Put(h.PacketID, a)
	}
	if a.header != h {
		return nil, fmt.Errorf("wormhole: packet %d header mismatch across sub-packets", h.PacketID)
	}
	for _, f := range s.Flits {
		if f.Seq < 0 || f.Seq >= h.TotalFlits {
			return nil, fmt.Errorf("wormhole: packet %d flit seq %d out of range", h.PacketID, f.Seq)
		}
		if a.has(f.Seq) {
			return nil, fmt.Errorf("wormhole: packet %d duplicate flit %d", h.PacketID, f.Seq)
		}
		a.mark(f.Seq)
	}
	if a.n < h.TotalFlits {
		return nil, nil
	}
	r.pending.Delete(h.PacketID)
	r.Completed++
	out := NewPacket(h)
	return &out, nil
}

// Scatter recursively truncates a packet into n sub-packets at the given
// cut points (ascending flit offsets into the original packet); it
// models a packet truncated by several successive drain windows. Cut
// points must be strictly inside (0, TotalFlits).
func Scatter(h Header, cuts []int) ([]SubPacket, error) {
	sorted := append([]int(nil), cuts...)
	sort.Ints(sorted)
	prev := 0
	for _, c := range sorted {
		if c <= prev || c >= h.TotalFlits {
			return nil, fmt.Errorf("wormhole: bad cut %d for %d-flit packet", c, h.TotalFlits)
		}
		prev = c
	}
	rest := NewPacket(h)
	var out []SubPacket
	offset := 0
	for _, c := range sorted {
		down, up, err := Truncate(rest, c-offset)
		if err != nil {
			return nil, err
		}
		out = append(out, down)
		rest = up
		offset = c
	}
	return append(out, rest), nil
}
