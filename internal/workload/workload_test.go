package workload

import (
	"math/rand/v2"
	"testing"
)

func TestGetAndNames(t *testing.T) {
	for _, n := range Names() {
		p, err := Get(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile %q reports name %q", n, p.Name)
		}
		if p.Issue <= 0 || p.Issue >= 1 {
			t.Errorf("%s: issue prob %v out of range", n, p.Issue)
		}
		if p.SharedFrac < 0 || p.SharedFrac > 1 || p.WriteFrac < 0 || p.WriteFrac > 1 {
			t.Errorf("%s: fractions out of range", n)
		}
		if p.PrivateLines <= 0 || p.SharedLines <= 0 {
			t.Errorf("%s: empty address regions", n)
		}
	}
	if _, err := Get("doom3"); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestSuites(t *testing.T) {
	if got := len(Suite("parsec")); got != 5 {
		t.Errorf("parsec suite has %d profiles, want 5", got)
	}
	if got := len(Suite("ligra")); got != 6 {
		t.Errorf("ligra suite has %d profiles, want 6", got)
	}
	if got := len(Suite("splash2")); got != 4 {
		t.Errorf("splash2 suite has %d profiles, want 4", got)
	}
	if got := len(Parsec5()); got != 5 {
		t.Errorf("Parsec5 returned %d", got)
	}
}

func TestCannealIsMostIntensiveParsec(t *testing.T) {
	// Paper Fig. 3: canneal has the highest injection rate of the five.
	c := MustGet("canneal")
	for _, p := range Parsec5() {
		if p.Name != "canneal" && p.Issue >= c.Issue {
			t.Errorf("%s issue %v ≥ canneal %v", p.Name, p.Issue, c.Issue)
		}
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	p := MustGet("canneal")
	rng := rand.New(rand.NewPCG(1, 2))
	sawShared, sawPrivate := false, false
	for i := 0; i < 5000; i++ {
		addr, _ := p.Next(3, rng)
		if addr >= sharedBase {
			sawShared = true
			if addr >= sharedBase+p.SharedLines {
				t.Fatal("shared address out of region")
			}
		} else {
			sawPrivate = true
			if addr < 3<<20 || addr >= 3<<20+p.PrivateLines {
				t.Fatal("private address outside core 3's region")
			}
		}
	}
	if !sawShared || !sawPrivate {
		t.Error("access stream did not cover both regions")
	}
	// Different cores' private regions never collide.
	a0, _ := p.Next(0, rng)
	a1, _ := p.Next(1, rng)
	if a0>>20 == a1>>20 && a0 < sharedBase && a1 < sharedBase {
		// Same upper bits would mean same region; cores 0 and 1 differ.
		t.Error("private regions collide")
	}
}

func TestWriteFractionRealized(t *testing.T) {
	p := MustGet("radix") // WriteFrac 0.40
	rng := rand.New(rand.NewPCG(3, 4))
	writes := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if _, w := p.Next(0, rng); w {
			writes++
		}
	}
	frac := float64(writes) / trials
	if frac < 0.36 || frac > 0.44 {
		t.Errorf("realized write fraction %v, want ≈0.40", frac)
	}
}
