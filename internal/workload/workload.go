// Package workload provides synthetic per-application reference-stream
// profiles that stand in for the paper's full-system runs of PARSEC,
// SPLASH-2 and Ligra on gem5 (see DESIGN.md: protocol-deadlock behaviour
// depends on the message-class dependency structure and load intensity,
// not on instruction semantics). Each profile parameterizes a core's
// memory access stream: issue intensity, locality, sharing degree and
// read/write mix. Intensities are calibrated so the relative ordering
// the paper reports holds (e.g. canneal is the most network-intensive
// PARSEC workload, Fig. 3).
package workload

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Profile describes one application's synthetic memory behaviour and
// implements coherence.AccessGen.
type Profile struct {
	// Name identifies the workload (e.g. "canneal").
	Name string
	// Suite is "parsec", "splash2" or "ligra".
	Suite string
	// Issue is the per-cycle probability a core issues a memory access.
	Issue float64
	// PrivateLines / SharedLines size the two address regions (in cache
	// lines); small regions raise hit rates and sharing contention.
	PrivateLines int64
	SharedLines  int64
	// SharedFrac is the probability an access targets the shared region.
	SharedFrac float64
	// WriteFrac is the probability an access is a store.
	WriteFrac float64
}

// sharedBase places the shared region above all private regions.
const sharedBase = int64(1) << 40

// Next implements coherence.AccessGen.
func (p Profile) Next(core int, rng *rand.Rand) (int64, bool) {
	write := rng.Float64() < p.WriteFrac
	if rng.Float64() < p.SharedFrac {
		return sharedBase + rng.Int64N(p.SharedLines), write
	}
	return int64(core)<<20 + rng.Int64N(p.PrivateLines), write
}

// IssueProb implements coherence.AccessGen.
func (p Profile) IssueProb() float64 { return p.Issue }

// PrewarmLines implements coherence.Prewarmer: each core starts with its
// private region resident (full-system simulators reach the same state
// via checkpoint warm-up before measurement).
func (p Profile) PrewarmLines(core int) []int64 {
	out := make([]int64, 0, p.PrivateLines)
	for i := int64(0); i < p.PrivateLines; i++ {
		out = append(out, int64(core)<<20+i)
	}
	return out
}

// String implements fmt.Stringer.
func (p Profile) String() string { return p.Suite + "/" + p.Name }

// The profile tables. Issue intensities and sharing degrees are synthetic
// calibrations (documented substitution for gem5 full-system runs); the
// orderings mirror the paper's observations.
// Private regions fit the default 256-line L1 (they hit after warm-up);
// network traffic comes from shared-region contention plus writebacks,
// so per-workload injection intensity ≈ Issue × SharedFrac × churn —
// small for blackscholes, largest for canneal, as the paper reports.
var profiles = map[string]Profile{
	// PARSEC (paper Figs. 3 and 13; canneal has the highest injection).
	"blackscholes": {Name: "blackscholes", Suite: "parsec", Issue: 0.04, PrivateLines: 160, SharedLines: 256, SharedFrac: 0.04, WriteFrac: 0.20},
	"bodytrack":    {Name: "bodytrack", Suite: "parsec", Issue: 0.08, PrivateLines: 160, SharedLines: 384, SharedFrac: 0.12, WriteFrac: 0.25},
	"fluidanimate": {Name: "fluidanimate", Suite: "parsec", Issue: 0.10, PrivateLines: 160, SharedLines: 512, SharedFrac: 0.18, WriteFrac: 0.30},
	"swaptions":    {Name: "swaptions", Suite: "parsec", Issue: 0.06, PrivateLines: 160, SharedLines: 256, SharedFrac: 0.07, WriteFrac: 0.22},
	"canneal":      {Name: "canneal", Suite: "parsec", Issue: 0.14, PrivateLines: 192, SharedLines: 2048, SharedFrac: 0.28, WriteFrac: 0.30},

	// SPLASH-2 (paper Fig. 13 companions).
	"barnes": {Name: "barnes", Suite: "splash2", Issue: 0.09, PrivateLines: 160, SharedLines: 768, SharedFrac: 0.22, WriteFrac: 0.28},
	"fft":    {Name: "fft", Suite: "splash2", Issue: 0.12, PrivateLines: 160, SharedLines: 512, SharedFrac: 0.16, WriteFrac: 0.35},
	"lu":     {Name: "lu", Suite: "splash2", Issue: 0.10, PrivateLines: 160, SharedLines: 512, SharedFrac: 0.14, WriteFrac: 0.30},
	"radix":  {Name: "radix", Suite: "splash2", Issue: 0.14, PrivateLines: 160, SharedLines: 768, SharedFrac: 0.20, WriteFrac: 0.40},

	// Ligra graph workloads (paper Fig. 12; 64-core runs). Graph codes
	// have low locality and high read sharing.
	"bfs":        {Name: "bfs", Suite: "ligra", Issue: 0.12, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.35, WriteFrac: 0.15},
	"pagerank":   {Name: "pagerank", Suite: "ligra", Issue: 0.16, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.40, WriteFrac: 0.25},
	"components": {Name: "components", Suite: "ligra", Issue: 0.13, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.35, WriteFrac: 0.30},
	"radii":      {Name: "radii", Suite: "ligra", Issue: 0.14, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.38, WriteFrac: 0.20},
	"triangle":   {Name: "triangle", Suite: "ligra", Issue: 0.11, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.30, WriteFrac: 0.10},
	"bc":         {Name: "bc", Suite: "ligra", Issue: 0.15, PrivateLines: 128, SharedLines: 4096, SharedFrac: 0.40, WriteFrac: 0.25},
}

// Get returns the named profile.
func Get(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
	}
	return p, nil
}

// MustGet is Get but panics on unknown names (for tables in tests/benches).
func MustGet(name string) Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Suite returns all profiles of one suite, sorted by name.
func Suite(suite string) []Profile {
	var out []Profile
	for _, p := range profiles {
		if p.Suite == suite {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns every profile name, sorted.
func Names() []string {
	var out []string
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parsec5 returns the five PARSEC workloads used in the paper's Fig. 3.
func Parsec5() []Profile {
	var out []Profile
	for _, n := range []string{"blackscholes", "bodytrack", "canneal", "fluidanimate", "swaptions"} {
		out = append(out, MustGet(n))
	}
	return out
}
