package traffic

import (
	"fmt"
	"math"

	"drain/internal/noc"
)

// RNGMode selects the generator's draw discipline.
//
// RNGExact is the sequential discipline the repo's determinism oracle
// is built on: one 53-bit PCG draw per node per cycle, in node order,
// whether or not anything injects. Results are byte-reproducible and
// identical across engines and fast-forward boundaries, but a quiet
// cycle still costs N draws, which caps the idle fast-forward's payoff
// (sim.RunSyntheticContext can skip network cycles for free, yet must
// replay every generator draw it jumps over).
//
// RNGCounter replaces the per-cycle Bernoulli draws with counter-based
// per-node streams: the gap to a node's next injection is a pure
// function of (seed, node, cycle-of-previous-injection) via a stateless
// SplitMix-style hash, sampled geometrically so the injection process
// has exactly the same per-cycle Bernoulli statistics. Because the
// stream is indexed by position instead of consumed sequentially, a
// fast-forward over k quiet cycles costs zero draws and zero catch-up
// work — SkipQuiet is O(1) — and a ticked cycle with no injection due
// is a single comparison. The injection-side draws (destination, size)
// are likewise pure functions of (seed, node, cycle). Counter mode is
// statistically equivalent to exact mode (injection counts, latency
// curves and saturation points match within test bounds; see
// internal/stats and the sim rngmode tests) but draws different
// concrete packets, so it changes results and is excluded from the
// byte-identity oracles.
type RNGMode int

// RNG modes.
const (
	// RNGExact: sequential draws, byte-reproducible (the default, and
	// the differential-fuzz oracle).
	RNGExact RNGMode = iota
	// RNGCounter: counter-based per-node streams, statistically
	// equivalent and far cheaper on quiet cycles.
	RNGCounter
)

// ParseRNGMode parses a mode name as printed by RNGMode.String. It is
// the single source of truth for the vocabulary the cmd/drainsim flag
// and server requests share.
func ParseRNGMode(s string) (RNGMode, error) {
	switch s {
	case "", "exact":
		return RNGExact, nil
	case "counter":
		return RNGCounter, nil
	default:
		return 0, fmt.Errorf("traffic: unknown rng mode %q (accepted modes: exact, counter)", s)
	}
}

// String implements fmt.Stringer.
func (m RNGMode) String() string {
	switch m {
	case RNGExact:
		return "exact"
	case RNGCounter:
		return "counter"
	default:
		return fmt.Sprintf("RNGMode(%d)", int(m))
	}
}

// Domain-separation salts for the counter streams: the gap draw and the
// two words seeding the injection-side PCG must be independent for the
// same (seed, node, cycle).
const (
	saltGap   = 0x6a09e667f3bcc909
	saltEmitA = 0xbb67ae8584caa73b
	saltEmitB = 0x3c6ef372fe94f82b
)

// neverGap stands in for "this node never injects" (rate <= 0). It is
// far beyond any simulated horizon while leaving headroom against
// int64 overflow when added to a cycle.
const neverGap = int64(1) << 60

// mix64 is the SplitMix64 finalizer: a full-avalanche bijection on
// uint64, the standard stateless counter-to-random mapping.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// counterDraw returns the 64-bit counter-stream draw for (node, cycle)
// under the given salt: a pure function of the generator seed and its
// arguments, with no state consumed.
func (g *Generator) counterDraw(node int, cycle int64, salt uint64) uint64 {
	return mix64(g.seed ^ salt ^ mix64(uint64(node)*0x9e3779b97f4a7c15+uint64(cycle)*0xd1342543de82ef95))
}

// gapAfter samples the gap (>= 1 cycles) from cycle to node's next
// injection, geometrically with parameter Rate, from the counter stream
// at (node, cycle). A geometric gap makes the injection process
// marginally identical to exact mode's independent Bernoulli(Rate)
// trial per cycle: P(gap = k) = (1-Rate)^(k-1) * Rate.
func (g *Generator) gapAfter(node int, cycle int64) int64 {
	switch {
	case g.rateThresh == 0: // Rate <= 0: never fires
		return neverGap
	case g.rateThresh >= 1<<53: // Rate >= 1: fires every cycle
		return 1
	}
	// u in (0,1]: the +1 keeps log finite at a zero draw.
	u := float64(g.counterDraw(node, cycle, saltGap)&mask53+1) * (1.0 / (1 << 53))
	lg := math.Log(u) * g.invLog1mRate
	if lg >= float64(neverGap) {
		return neverGap
	}
	gap := int64(lg) + 1
	if gap < 1 {
		gap = 1
	}
	return gap
}

// heapLess orders the schedule heap by (fire cycle, node): same-cycle
// firings pop in ascending node order, the order exact mode's per-node
// scan injects in.
func (g *Generator) heapLess(a, b int32) bool {
	fa, fb := g.fireAt[a], g.fireAt[b]
	return fa < fb || (fa == fb && a < b)
}

// siftDown restores the heap property from index i.
func (g *Generator) siftDown(i int) {
	h := g.fheap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && g.heapLess(h[r], h[l]) {
			m = r
		}
		if !g.heapLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// reschedule replaces the heap top's fire cycle with its next one (the
// counter-stream gap after the cycle that just fired) and restores the
// heap. This plus SkipQuiet is the whole per-cycle cost of counter
// mode: one reschedule per injection, one comparison per quiet cycle.
func (g *Generator) reschedule(cycle int64) {
	top := g.fheap[0]
	g.fireAt[top] = cycle + g.gapAfter(int(top), cycle)
	g.siftDown(0)
}

// refreshCounter recomputes the rate-derived constants and rebuilds the
// whole injection schedule from the generator's current position. It
// runs at construction and again if Rate is reassigned mid-run (the
// schedule drawn under the old rate would be stale).
func (g *Generator) refreshCounter() {
	g.refreshThresh()
	if g.Rate > 0 && g.Rate < 1 {
		g.invLog1mRate = 1 / math.Log1p(-g.Rate)
	} else {
		g.invLog1mRate = 0
	}
	base := g.ctrCycle - 1
	for n := range g.fireAt {
		g.fireAt[n] = base + g.gapAfter(n, base)
	}
	for i := len(g.fheap)/2 - 1; i >= 0; i-- {
		g.siftDown(i)
	}
}

// tickCounter is Tick's counter-mode body: advance the local clock one
// cycle and emit every node whose scheduled fire cycle is due. Cycles
// with nothing due cost a single heap-top comparison.
func (g *Generator) tickCounter(n *noc.Network) {
	if g.Rate != g.rateCached {
		g.refreshCounter()
	}
	c := g.ctrCycle
	g.ctrCycle++
	for len(g.fheap) > 0 && g.fireAt[g.fheap[0]] <= c {
		src := int(g.fheap[0])
		// Destination and size draws are pure functions of
		// (seed, node, cycle): reseed the PCG from the counter stream so
		// emit's draw order and effects match exact mode's exactly.
		g.src.Seed(g.counterDraw(src, c, saltEmitA), g.counterDraw(src, c, saltEmitB))
		g.emit(n, src)
		g.reschedule(c)
	}
}

// skipQuietCounter is SkipQuiet's counter-mode body: the next fire
// cycle is already known, so the skip is a clock adjustment — O(1), no
// draws, no catch-up. Position independence (segmented runs with
// arbitrary skip boundaries inject identically to a run ticked every
// cycle) holds because the schedule is indexed by cycle, not consumed
// per cycle; exact mode can never satisfy that invariant.
func (g *Generator) skipQuietCounter(max int64) int64 {
	if max <= 0 {
		return 0
	}
	if g.Rate != g.rateCached {
		g.refreshCounter()
	}
	if len(g.fheap) == 0 {
		g.ctrCycle += max
		return max
	}
	k := g.fireAt[g.fheap[0]] - g.ctrCycle
	if k <= 0 {
		return 0
	}
	if k > max {
		k = max
	}
	g.ctrCycle += k
	return k
}
