package traffic

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/topology"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed+1)) }

func TestUniformRandomNeverSelf(t *testing.T) {
	u := UniformRandom{N: 16}
	r := rng(1)
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		src := i % 16
		d := u.Dest(src, r)
		if d == src {
			t.Fatal("uniform returned self")
		}
		if d < 0 || d >= 16 {
			t.Fatalf("dest %d out of range", d)
		}
		counts[d]++
	}
	for n, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("node %d got %d packets; distribution skewed", n, c)
		}
	}
}

func TestTransposeIsInvolution(t *testing.T) {
	tr := Transpose{W: 8}
	for src := 0; src < 64; src++ {
		d := tr.Dest(src, nil)
		if tr.Dest(d, nil) != src {
			t.Fatalf("transpose not an involution at %d", src)
		}
	}
	if tr.Dest(1, nil) != 8 {
		t.Errorf("transpose(1) = %d, want 8", tr.Dest(1, nil))
	}
}

func TestBitComplementAndShuffle(t *testing.T) {
	bc := BitComplement{N: 64}
	if bc.Dest(0, nil) != 63 || bc.Dest(63, nil) != 0 {
		t.Error("bit complement endpoints wrong")
	}
	sh := Shuffle{Bits: 6}
	if got := sh.Dest(1, nil); got != 2 {
		t.Errorf("shuffle(1) = %d, want 2", got)
	}
	if got := sh.Dest(32, nil); got != 1 {
		t.Errorf("shuffle(32) = %d, want 1", got)
	}
}

func TestHotspotConcentration(t *testing.T) {
	h := Hotspot{N: 16, Hot: 8, Fraction: 0.5}
	r := rng(2)
	hot := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if h.Dest(0, r) == 8 {
			hot++
		}
	}
	// ~50% + uniform share.
	if hot < trials/3 || hot > 2*trials/3 {
		t.Errorf("hotspot received %d of %d", hot, trials)
	}
}

func TestTornadoAndNeighbor(t *testing.T) {
	tor := Tornado{W: 8}
	// (0,0) → (4,0); halfway around the row.
	if got := tor.Dest(0, nil); got != 4 {
		t.Errorf("tornado(0) = %d, want 4", got)
	}
	if got := tor.Dest(7, nil); got != 3 {
		t.Errorf("tornado(7) = %d, want 3", got)
	}
	// Row preserved for every source.
	for src := 0; src < 64; src++ {
		if tor.Dest(src, nil)/8 != src/8 {
			t.Fatalf("tornado(%d) left its row", src)
		}
	}
	nb := Neighbor{N: 16}
	if nb.Dest(15, nil) != 0 || nb.Dest(3, nil) != 4 {
		t.Error("neighbor ring wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomp", "shuffle", "hotspot", "tornado", "neighbor"} {
		p, err := ByName(name, 64, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
	}
	if _, err := ByName("nope", 64, 8); err == nil {
		t.Error("unknown pattern should fail")
	}
	if _, err := ByName("transpose", 60, 8); err == nil {
		t.Error("transpose on non-square should fail")
	}
	if _, err := ByName("shuffle", 60, 8); err == nil {
		t.Error("shuffle on non-power-of-two should fail")
	}
	if _, err := ByName("tornado", 60, 8); err == nil {
		t.Error("tornado with width not dividing n should fail")
	}
}

func TestGeneratorRate(t *testing.T) {
	m := topology.MustMesh(4, 4)
	n, err := noc.New(noc.Config{
		Graph: m.Graph, Mesh: m, Routing: routing.XY,
		VNets: 1, VCsPerVN: 2, Classes: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(UniformRandom{N: 16}, 0.1, 7)
	const cycles = 2000
	for c := 0; c < cycles; c++ {
		g.Tick(n)
		n.Step()
		for r := 0; r < 16; r++ {
			n.PopEjected(r, 0)
		}
	}
	// Expected injections: 16 nodes × 0.1 × 2000 = 3200 (±15%).
	if g.Created < 2700 || g.Created > 3700 {
		t.Errorf("created %d packets, want ≈3200", g.Created)
	}
}

func TestGeneratorBacksOffWhenQueueFull(t *testing.T) {
	// A saturated 2-node network must cause skips, not unbounded queues.
	m := topology.MustMesh(2, 1)
	n, err := noc.New(noc.Config{
		Graph: m.Graph, Mesh: m, Routing: routing.XY,
		VNets: 1, VCsPerVN: 1, Classes: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(UniformRandom{N: 2}, 1.0, 8)
	g.InjQueueCap = 4
	for c := 0; c < 500; c++ {
		g.Tick(n)
		n.Step() // never consume ejections: back-pressure builds
	}
	if g.Skipped == 0 {
		t.Error("generator never backed off under saturation")
	}
	if q := n.InjQueueLen(0, 0); q > 8 {
		t.Errorf("injection queue grew to %d despite cap", q)
	}
}

// Property: every pattern returns in-range destinations for every source.
func TestPatternsInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		pats := []Pattern{
			UniformRandom{N: 64}, Transpose{W: 8}, BitComplement{N: 64},
			Shuffle{Bits: 6}, Hotspot{N: 64, Hot: 10, Fraction: 0.3},
			Tornado{W: 8}, Neighbor{N: 64},
		}
		for _, p := range pats {
			for src := 0; src < 64; src++ {
				d := p.Dest(src, r)
				if d < 0 || d >= 64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRateThresholdMatchesFloat64 pins the integer-threshold fast path:
// for any rate, comparing the raw 53-bit draw against rateThresh must
// decide exactly as rand/v2's Float64() < rate would on the same draw.
func TestRateThresholdMatchesFloat64(t *testing.T) {
	rates := []float64{0, 1e-18, 0.02, 0.1, 0.25, 1.0 / 3.0, 0.45, 0.5,
		0.999999999, 1, 1.5, -0.1,
		// Exactly representable boundary neighborhoods.
		float64(1<<52) / (1 << 53), (float64(1<<52) + 1) / (1 << 53),
	}
	r := rng(11)
	for _, rate := range rates {
		g := NewGenerator(UniformRandom{N: 4}, rate, 1)
		g.refreshThresh()
		for i := 0; i < 20000; i++ {
			u := r.Uint64() & (1<<53 - 1)
			fires := u < g.rateThresh
			want := float64(u)/(1<<53) < rate
			if fires != want {
				t.Fatalf("rate=%v u=%d: threshold says %v, Float64 comparison says %v", rate, u, fires, want)
			}
		}
		// Edge draws.
		for _, u := range []uint64{0, 1, 1<<53 - 2, 1<<53 - 1} {
			fires := u < g.rateThresh
			want := float64(u)/(1<<53) < rate
			if fires != want {
				t.Fatalf("rate=%v edge u=%d: threshold says %v, Float64 comparison says %v", rate, u, fires, want)
			}
		}
	}
}

// TestSkipQuietMatchesTicked pins the fast-forward contract: a
// generator driven by SkipQuiet windows plus resumed Ticks must make
// exactly the injections, in the same cycles, with the same RNG stream,
// as a twin ticked every cycle.
func TestSkipQuietMatchesTicked(t *testing.T) {
	m := topology.MustMesh(4, 4)
	build := func(seed uint64) *noc.Network {
		n, err := noc.New(noc.Config{
			Graph: m.Graph, Mesh: m, Routing: routing.XY,
			VNets: 1, VCsPerVN: 2, Classes: 1, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, rate := range []float64{0.003, 0.02, 0.3} {
		nT, nS := build(9), build(9)
		gT := NewGenerator(UniformRandom{N: 16}, rate, 5)
		gS := NewGenerator(UniformRandom{N: 16}, rate, 5)
		wrng := rng(77)
		step := func(n *noc.Network) {
			n.Step()
			n.DiscardEjected()
		}
		cyc := 0
		for cyc < 4000 {
			// The skipping side asks for a random window; every cycle
			// SkipQuiet reports quiet, the ticked side must inject
			// nothing.
			w := int64(1 + wrng.IntN(50))
			k := gS.SkipQuiet(16, w)
			if k > 0 && nS.NextWorkCycle() > nS.Cycle()+k {
				nS.SkipIdle(k)
			} else {
				for i := int64(0); i < k; i++ {
					step(nS)
				}
			}
			for i := int64(0); i < k; i++ {
				before := gT.Created + gT.Skipped
				gT.Tick(nT)
				if gT.Created+gT.Skipped != before {
					t.Fatalf("rate=%v cycle %d: SkipQuiet skipped a cycle with an injection attempt", rate, cyc+int(i))
				}
				step(nT)
			}
			cyc += int(k)
			if k == w {
				continue
			}
			// Window ended on a non-quiet cycle: both sides tick it
			// (the skipper resumes from its memoized node).
			gS.Tick(nS)
			step(nS)
			gT.Tick(nT)
			step(nT)
			cyc++
		}
		if gT.Created != gS.Created || gT.Skipped != gS.Skipped {
			t.Fatalf("rate=%v: ticked created/skipped %d/%d, skipper %d/%d",
				rate, gT.Created, gT.Skipped, gS.Created, gS.Skipped)
		}
		if ct, cs := nT.Counters.Created, nS.Counters.Created; ct != cs {
			t.Fatalf("rate=%v: network created counts diverge: %d vs %d", rate, ct, cs)
		}
		// Equal stream position: both generators' next draws agree.
		if a, b := gT.rng.Uint64(), gS.rng.Uint64(); a != b {
			t.Fatalf("rate=%v: generator rng streams diverge", rate)
		}
	}
}
