package traffic

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/stats"
	"drain/internal/topology"
)

func TestParseRNGMode(t *testing.T) {
	for _, m := range []RNGMode{RNGExact, RNGCounter} {
		got, err := ParseRNGMode(m.String())
		if err != nil || got != m {
			t.Errorf("round trip %v: got %v, err %v", m, got, err)
		}
	}
	if got, err := ParseRNGMode(""); err != nil || got != RNGExact {
		t.Errorf("empty string: got %v, err %v (want exact default)", got, err)
	}
	_, err := ParseRNGMode("fast")
	if err == nil {
		t.Fatal("unknown mode accepted")
	}
	// The error must teach the accepted vocabulary.
	for _, want := range []string{"fast", "exact", "counter"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestNewGeneratorModeExactIsNewGenerator: RNGExact through the mode
// constructor is the plain constructor — same draws, same injections.
func TestNewGeneratorModeExactIsNewGenerator(t *testing.T) {
	a := NewGenerator(UniformRandom{N: 16}, 0.1, 5)
	b := NewGeneratorMode(UniformRandom{N: 16}, 0.1, 5, RNGExact, 16)
	if b.Mode() != RNGExact {
		t.Fatalf("mode = %v", b.Mode())
	}
	for i := 0; i < 100; i++ {
		if x, y := a.rng.Uint64(), b.rng.Uint64(); x != y {
			t.Fatalf("draw %d diverges", i)
		}
	}
}

// TestCounterPositionIndependence is the property exact mode can never
// satisfy, stated as a test: a counter-mode generator driven over
// cycles [0,N) in one shot (ticked every cycle) and a twin driven
// through arbitrary fast-forward boundaries — random SkipQuiet windows
// interleaved with resumed ticks — make identical injections in
// identical cycles, leaving twin networks in identical states.
func TestCounterPositionIndependence(t *testing.T) {
	m := topology.MustMesh(4, 4)
	build := func() *noc.Network {
		n, err := noc.New(noc.Config{
			Graph: m.Graph, Mesh: m, Routing: routing.XY,
			VNets: 1, VCsPerVN: 2, Classes: 1, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	for _, rate := range []float64{0.003, 0.02, 0.3} {
		nT, nS := build(), build()
		gT := NewGeneratorMode(UniformRandom{N: 16}, rate, 5, RNGCounter, 16)
		gS := NewGeneratorMode(UniformRandom{N: 16}, rate, 5, RNGCounter, 16)
		wrng := rng(77)
		step := func(n *noc.Network) {
			n.Step()
			n.DiscardEjected()
		}
		cyc := 0
		for cyc < 4000 {
			w := int64(1 + wrng.IntN(50))
			k := gS.SkipQuiet(16, w)
			if k > 0 && nS.NextWorkCycle() > nS.Cycle()+k {
				nS.SkipIdle(k)
			} else {
				for i := int64(0); i < k; i++ {
					step(nS)
				}
			}
			// The one-shot twin ticks through the skipped window; none of
			// those cycles may attempt an injection.
			for i := int64(0); i < k; i++ {
				before := gT.Created + gT.Skipped
				gT.Tick(nT)
				if gT.Created+gT.Skipped != before {
					t.Fatalf("rate=%v cycle %d: SkipQuiet skipped an injecting cycle", rate, cyc+int(i))
				}
				step(nT)
			}
			cyc += int(k)
			if k == w {
				continue
			}
			// Window ended early: the next cycle has an injection due.
			// Both sides tick it; the segmented side must inject now.
			before := gS.Created + gS.Skipped
			gS.Tick(nS)
			if gS.Created+gS.Skipped == before {
				t.Fatalf("rate=%v cycle %d: SkipQuiet stopped early on a quiet cycle", rate, cyc)
			}
			step(nS)
			gT.Tick(nT)
			step(nT)
			cyc++
		}
		if gT.Created != gS.Created || gT.Skipped != gS.Skipped {
			t.Fatalf("rate=%v: one-shot created/skipped %d/%d, segmented %d/%d",
				rate, gT.Created, gT.Skipped, gS.Created, gS.Skipped)
		}
		if gT.ctrCycle != gS.ctrCycle {
			t.Fatalf("rate=%v: generator clocks diverge: %d vs %d", rate, gT.ctrCycle, gS.ctrCycle)
		}
		// Identical injections leave byte-identical network counters
		// (creation cycles, routes, buffer traffic — everything).
		if !reflect.DeepEqual(nT.Counters, nS.Counters) {
			t.Fatalf("rate=%v: network counters diverge:\none-shot:  %+v\nsegmented: %+v",
				rate, nT.Counters, nS.Counters)
		}
		// And the future schedule is position-independent too.
		if !reflect.DeepEqual(gT.fireAt, gS.fireAt) {
			t.Fatalf("rate=%v: schedules diverge", rate)
		}
	}
}

// TestCounterGapDistribution pins the geometric sampling against the
// exact-mode Bernoulli contract at the distribution level: gaps drawn
// across many (node, cycle) stream positions must follow
// P(gap=k) = (1-p)^(k-1) p, chi-square tested at alpha=0.001
// (deterministic seed: this is a fixed computation).
func TestCounterGapDistribution(t *testing.T) {
	const p = 0.1
	g := NewGeneratorMode(UniformRandom{N: 4}, p, 123, RNGCounter, 4)
	const draws = 200_000
	// Bins: gap=1..40, then a tail bin.
	const bins = 41
	obs := make([]float64, bins)
	for i := 0; i < draws; i++ {
		gap := g.gapAfter(i%97, int64(i))
		if gap < 1 {
			t.Fatalf("gap %d < 1", gap)
		}
		if gap >= bins {
			obs[bins-1]++
		} else {
			obs[gap-1]++
		}
	}
	exp := make([]float64, bins)
	tail := 1.0
	for k := 1; k < bins; k++ {
		pk := math.Pow(1-p, float64(k-1)) * p
		exp[k-1] = pk * draws
		tail -= pk
	}
	exp[bins-1] = tail * draws
	x2 := stats.ChiSquare(obs, exp)
	crit := stats.ChiSquareCritical(bins-1, 0.001)
	if x2 >= crit {
		t.Errorf("gap distribution chi-square %g >= critical %g", x2, crit)
	}
}

// TestCounterPerNodeInjectionCounts: over a long unbounded-queue run,
// every node's injection count matches the Bernoulli expectation
// (chi-square across nodes), and the grand total matches an exact-mode
// twin by a two-proportion z-test — the injection process is
// statistically the same, only the draws differ.
func TestCounterPerNodeInjectionCounts(t *testing.T) {
	const (
		nodes  = 16
		cycles = 20_000
		rate   = 0.05
	)
	m := topology.MustMesh(4, 4)
	run := func(mode RNGMode, seed uint64) (*Generator, []float64) {
		n, err := noc.New(noc.Config{
			Graph: m.Graph, Mesh: m, Routing: routing.XY,
			VNets: 1, VCsPerVN: 2, Classes: 1, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		g := NewGeneratorMode(UniformRandom{N: nodes}, rate, seed, mode, nodes)
		g.InjQueueCap = 0 // unbounded: count raw injections, never step
		for c := 0; c < cycles; c++ {
			g.Tick(n)
		}
		per := make([]float64, nodes)
		for r := 0; r < nodes; r++ {
			per[r] = float64(n.InjQueueLen(r, 0))
		}
		return g, per
	}
	gC, perC := run(RNGCounter, 7)
	gE, _ := run(RNGExact, 7)

	exp := make([]float64, nodes)
	for i := range exp {
		exp[i] = rate * cycles
	}
	x2 := stats.ChiSquare(perC, exp)
	crit := stats.ChiSquareCritical(nodes, 0.001)
	if x2 >= crit {
		t.Errorf("per-node injection chi-square %g >= critical %g (counts %v)", x2, crit, perC)
	}
	// Same offered rate as exact mode, by z-test on the totals.
	trials := int64(nodes * cycles)
	z := stats.TwoProportionZ(gC.Created, trials, gE.Created, trials)
	if zcrit := stats.NormalQuantile(1 - 0.001/2); math.Abs(z) >= zcrit {
		t.Errorf("counter vs exact created totals: |z| = %g >= %g (counter %d, exact %d)",
			math.Abs(z), zcrit, gC.Created, gE.Created)
	}
}

// TestCounterRateChangeRebuildsSchedule: reassigning Rate mid-run takes
// effect (the stale schedule is rebuilt) — turning the rate to zero
// silences the generator; restoring it resumes injections.
func TestCounterRateChangeRebuildsSchedule(t *testing.T) {
	m := topology.MustMesh(4, 4)
	n, err := noc.New(noc.Config{
		Graph: m.Graph, Mesh: m, Routing: routing.XY,
		VNets: 1, VCsPerVN: 2, Classes: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGeneratorMode(UniformRandom{N: 16}, 0.3, 7, RNGCounter, 16)
	g.InjQueueCap = 0
	for c := 0; c < 200; c++ {
		g.Tick(n)
	}
	if g.Created == 0 {
		t.Fatal("no injections at rate 0.3")
	}
	mark := g.Created
	g.Rate = 0
	for c := 0; c < 200; c++ {
		g.Tick(n)
	}
	if g.Created != mark {
		t.Fatalf("injected %d packets at rate 0", g.Created-mark)
	}
	// A zero-rate generator skips any window whole.
	if k := g.SkipQuiet(16, 1000); k != 1000 {
		t.Fatalf("zero-rate SkipQuiet = %d, want 1000", k)
	}
	g.Rate = 0.3
	for c := 0; c < 200; c++ {
		g.Tick(n)
	}
	if g.Created == mark {
		t.Fatal("no injections after rate restored")
	}
}
