// Package traffic provides the synthetic traffic patterns and open-loop
// injection processes used by the paper's synthetic evaluations
// (uniform random and transpose in Figs. 10, 11 and 14, plus the usual
// complements for wider coverage).
package traffic

import (
	"fmt"
	"math/rand/v2"

	"drain/internal/noc"
)

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Dest returns the destination for a packet from src; it may consult
	// rng for randomized patterns. Implementations must never return src
	// unless no other node exists.
	Dest(src int, rng *rand.Rand) int
	Name() string
}

// UniformRandom sends each packet to a uniformly random other node.
type UniformRandom struct{ N int }

// Dest implements Pattern.
func (u UniformRandom) Dest(src int, rng *rand.Rand) int {
	if u.N <= 1 {
		return src
	}
	d := rng.IntN(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u UniformRandom) Name() string { return "uniform_random" }

// Transpose sends (x,y) to (y,x) on a W×W mesh numbering.
type Transpose struct{ W int }

// Dest implements Pattern.
func (t Transpose) Dest(src int, _ *rand.Rand) int {
	x, y := src%t.W, src/t.W
	return x*t.W + y
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// BitComplement sends node i to node (N-1-i).
type BitComplement struct{ N int }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, _ *rand.Rand) int { return b.N - 1 - src }

// Name implements Pattern.
func (b BitComplement) Name() string { return "bit_complement" }

// Shuffle sends node i to node obtained by rotating its bits left by one
// (i must index a power-of-two network).
type Shuffle struct{ Bits int }

// Dest implements Pattern.
func (s Shuffle) Dest(src int, _ *rand.Rand) int {
	mask := (1 << s.Bits) - 1
	return ((src << 1) | (src >> (s.Bits - 1))) & mask
}

// Name implements Pattern.
func (s Shuffle) Name() string { return "shuffle" }

// Hotspot sends a fraction of traffic to a fixed hot node and the rest
// uniformly.
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // probability a packet targets Hot
}

// Dest implements Pattern.
func (h Hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < h.Fraction && h.Hot != src {
		return h.Hot
	}
	return UniformRandom{N: h.N}.Dest(src, rng)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Tornado sends each node halfway around its row on a W-wide mesh
// (adversarial for minimal routing on meshes).
type Tornado struct{ W int }

// Dest implements Pattern.
func (t Tornado) Dest(src int, _ *rand.Rand) int {
	x, y := src%t.W, src/t.W
	return y*t.W + (x+t.W/2)%t.W
}

// Name implements Pattern.
func (t Tornado) Name() string { return "tornado" }

// Neighbor sends each node to its +1 ring neighbor (best-case locality).
type Neighbor struct{ N int }

// Dest implements Pattern.
func (nb Neighbor) Dest(src int, _ *rand.Rand) int { return (src + 1) % nb.N }

// Name implements Pattern.
func (nb Neighbor) Name() string { return "neighbor" }

// ByName constructs a pattern for an n-node network (w is the mesh width
// for transpose and tornado). Known names: uniform, transpose, bitcomp,
// shuffle, hotspot, tornado, neighbor.
func ByName(name string, n, w int) (Pattern, error) {
	switch name {
	case "uniform", "uniform_random":
		return UniformRandom{N: n}, nil
	case "transpose":
		if w*w != n {
			return nil, fmt.Errorf("traffic: transpose needs a square mesh, have n=%d w=%d", n, w)
		}
		return Transpose{W: w}, nil
	case "bitcomp", "bit_complement":
		return BitComplement{N: n}, nil
	case "shuffle":
		bits := 0
		for 1<<bits < n {
			bits++
		}
		if 1<<bits != n {
			return nil, fmt.Errorf("traffic: shuffle needs power-of-two nodes, have %d", n)
		}
		return Shuffle{Bits: bits}, nil
	case "hotspot":
		return Hotspot{N: n, Hot: n / 2, Fraction: 0.2}, nil
	case "tornado":
		if w <= 0 || n%w != 0 {
			return nil, fmt.Errorf("traffic: tornado needs a mesh width dividing n, have n=%d w=%d", n, w)
		}
		return Tornado{W: w}, nil
	case "neighbor":
		return Neighbor{N: n}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// Generator drives open-loop Bernoulli injection into a network: each
// node independently creates a packet with probability Rate each cycle.
type Generator struct {
	Pattern Pattern
	// Rate is offered load in packets/node/cycle.
	Rate float64
	// CtrlFraction of packets are 1-flit control packets; the rest are
	// DataFlits-sized (mirrors a coherence mix on the synthetic runs).
	CtrlFraction float64
	DataFlits    int
	// Class assigned to generated packets.
	Class int
	// InjQueueCap skips injection at nodes whose queue is backed up
	// beyond this depth (keeps open-loop offered load well-defined
	// instead of accumulating unbounded queues). 0 disables the bound.
	InjQueueCap int

	rng *rand.Rand

	// Created counts generation attempts that were actually injected.
	Created int64
	// Skipped counts injections suppressed by a full queue.
	Skipped int64
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(p Pattern, rate float64, seed uint64) *Generator {
	return &Generator{
		Pattern:      p,
		Rate:         rate,
		CtrlFraction: 0.5,
		DataFlits:    5,
		InjQueueCap:  8,
		rng:          rand.New(rand.NewPCG(seed, seed^0xa5a5a5a55a5a5a5a)),
	}
}

// Tick injects this cycle's packets into the network.
func (g *Generator) Tick(n *noc.Network) {
	nodes := n.Graph().N()
	for src := 0; src < nodes; src++ {
		if g.rng.Float64() >= g.Rate {
			continue
		}
		if g.InjQueueCap > 0 && n.InjQueueLen(src, g.Class) >= g.InjQueueCap {
			g.Skipped++
			continue
		}
		dst := g.Pattern.Dest(src, g.rng)
		if dst == src {
			continue
		}
		flits := 1
		if g.rng.Float64() >= g.CtrlFraction {
			flits = g.DataFlits
		}
		if n.Inject(n.NewPacket(src, dst, g.Class, flits)) {
			g.Created++
		} else {
			g.Skipped++
		}
	}
}
