// Package traffic provides the synthetic traffic patterns and open-loop
// injection processes used by the paper's synthetic evaluations
// (uniform random and transpose in Figs. 10, 11 and 14, plus the usual
// complements for wider coverage).
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"

	"drain/internal/noc"
)

// Pattern maps a source node to a destination node.
type Pattern interface {
	// Dest returns the destination for a packet from src; it may consult
	// rng for randomized patterns. Implementations must never return src
	// unless no other node exists.
	Dest(src int, rng *rand.Rand) int
	Name() string
}

// UniformRandom sends each packet to a uniformly random other node.
type UniformRandom struct{ N int }

// Dest implements Pattern.
func (u UniformRandom) Dest(src int, rng *rand.Rand) int {
	if u.N <= 1 {
		return src
	}
	d := rng.IntN(u.N - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (u UniformRandom) Name() string { return "uniform_random" }

// Transpose sends (x,y) to (y,x) on a W×W mesh numbering.
type Transpose struct{ W int }

// Dest implements Pattern.
func (t Transpose) Dest(src int, _ *rand.Rand) int {
	x, y := src%t.W, src/t.W
	return x*t.W + y
}

// Name implements Pattern.
func (t Transpose) Name() string { return "transpose" }

// BitComplement sends node i to node (N-1-i).
type BitComplement struct{ N int }

// Dest implements Pattern.
func (b BitComplement) Dest(src int, _ *rand.Rand) int { return b.N - 1 - src }

// Name implements Pattern.
func (b BitComplement) Name() string { return "bit_complement" }

// Shuffle sends node i to node obtained by rotating its bits left by one
// (i must index a power-of-two network).
type Shuffle struct{ Bits int }

// Dest implements Pattern.
func (s Shuffle) Dest(src int, _ *rand.Rand) int {
	mask := (1 << s.Bits) - 1
	return ((src << 1) | (src >> (s.Bits - 1))) & mask
}

// Name implements Pattern.
func (s Shuffle) Name() string { return "shuffle" }

// Hotspot sends a fraction of traffic to a fixed hot node and the rest
// uniformly.
type Hotspot struct {
	N        int
	Hot      int
	Fraction float64 // probability a packet targets Hot
}

// Dest implements Pattern.
func (h Hotspot) Dest(src int, rng *rand.Rand) int {
	if rng.Float64() < h.Fraction && h.Hot != src {
		return h.Hot
	}
	return UniformRandom{N: h.N}.Dest(src, rng)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// Tornado sends each node halfway around its row on a W-wide mesh
// (adversarial for minimal routing on meshes).
type Tornado struct{ W int }

// Dest implements Pattern.
func (t Tornado) Dest(src int, _ *rand.Rand) int {
	x, y := src%t.W, src/t.W
	return y*t.W + (x+t.W/2)%t.W
}

// Name implements Pattern.
func (t Tornado) Name() string { return "tornado" }

// Neighbor sends each node to its +1 ring neighbor (best-case locality).
type Neighbor struct{ N int }

// Dest implements Pattern.
func (nb Neighbor) Dest(src int, _ *rand.Rand) int { return (src + 1) % nb.N }

// Name implements Pattern.
func (nb Neighbor) Name() string { return "neighbor" }

// ByName constructs a pattern for an n-node network (w is the mesh width
// for transpose and tornado). Known names: uniform, transpose, bitcomp,
// shuffle, hotspot, tornado, neighbor.
func ByName(name string, n, w int) (Pattern, error) {
	switch name {
	case "uniform", "uniform_random":
		return UniformRandom{N: n}, nil
	case "transpose":
		if w*w != n {
			return nil, fmt.Errorf("traffic: transpose needs a square mesh, have n=%d w=%d", n, w)
		}
		return Transpose{W: w}, nil
	case "bitcomp", "bit_complement":
		return BitComplement{N: n}, nil
	case "shuffle":
		bits := 0
		for 1<<bits < n {
			bits++
		}
		if 1<<bits != n {
			return nil, fmt.Errorf("traffic: shuffle needs power-of-two nodes, have %d", n)
		}
		return Shuffle{Bits: bits}, nil
	case "hotspot":
		return Hotspot{N: n, Hot: n / 2, Fraction: 0.2}, nil
	case "tornado":
		if w <= 0 || n%w != 0 {
			return nil, fmt.Errorf("traffic: tornado needs a mesh width dividing n, have n=%d w=%d", n, w)
		}
		return Tornado{W: w}, nil
	case "neighbor":
		return Neighbor{N: n}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q", name)
	}
}

// Generator drives open-loop Bernoulli injection into a network: each
// node independently creates a packet with probability Rate each cycle.
type Generator struct {
	Pattern Pattern
	// Rate is offered load in packets/node/cycle.
	Rate float64
	// CtrlFraction of packets are 1-flit control packets; the rest are
	// DataFlits-sized (mirrors a coherence mix on the synthetic runs).
	CtrlFraction float64
	DataFlits    int
	// Class assigned to generated packets.
	Class int
	// InjQueueCap skips injection at nodes whose queue is backed up
	// beyond this depth (keeps open-loop offered load well-defined
	// instead of accumulating unbounded queues). 0 disables the bound.
	InjQueueCap int

	rng *rand.Rand
	// src is the concrete PCG behind rng: the per-node rate draws call it
	// directly, skipping rng's Source interface dispatch while consuming
	// the identical stream (rng.Uint64() == src.Uint64(), same object).
	src *rand.PCG

	// rateThresh caches Rate as an integer threshold on the raw 53-bit
	// draw: u&mask53 < rateThresh is exactly rng.Float64() < Rate (see
	// refreshThresh). rateCached detects Rate being reassigned.
	rateThresh uint64
	rateCached float64

	// pendingSrc/hasPending memoize a mid-cycle stop inside SkipQuiet:
	// the node whose rate draw passed, whose injection draws have not
	// happened yet. The next Tick resumes from exactly that point, so
	// the RNG sequence matches a generator ticked every cycle.
	pendingSrc int
	hasPending bool

	// Counter-mode state (see counter.go). mode selects the draw
	// discipline; seed keys the stateless counter streams; ctrCycle is
	// the generator's own clock (cycles it has Ticked or skipped);
	// fireAt[n] is node n's next scheduled injection cycle and fheap a
	// min-heap of node ids ordered by (fireAt, node); invLog1mRate
	// caches 1/ln(1-Rate) for the geometric gap sampling.
	mode         RNGMode
	seed         uint64
	ctrCycle     int64
	fireAt       []int64
	fheap        []int32
	invLog1mRate float64

	// Created counts generation attempts that were actually injected.
	Created int64
	// Skipped counts injections suppressed by a full queue.
	Skipped int64
}

// NewGenerator returns an exact-mode generator seeded deterministically.
func NewGenerator(p Pattern, rate float64, seed uint64) *Generator {
	src := rand.NewPCG(seed, seed^0xa5a5a5a55a5a5a5a)
	return &Generator{
		Pattern:      p,
		Rate:         rate,
		CtrlFraction: 0.5,
		DataFlits:    5,
		InjQueueCap:  8,
		rng:          rand.New(src),
		src:          src,
		seed:         seed,
	}
}

// NewGeneratorMode returns a generator in the given RNG mode. Counter
// mode needs the node count up front to build its injection schedule;
// exact mode ignores nodes (it learns the count from the network each
// Tick) and the result is identical to NewGenerator.
func NewGeneratorMode(p Pattern, rate float64, seed uint64, mode RNGMode, nodes int) *Generator {
	g := NewGenerator(p, rate, seed)
	g.mode = mode
	if mode == RNGCounter {
		g.fireAt = make([]int64, nodes)
		g.fheap = make([]int32, nodes)
		for i := range g.fheap {
			g.fheap[i] = int32(i)
		}
		g.refreshCounter()
	}
	return g
}

// Mode reports the generator's RNG mode.
func (g *Generator) Mode() RNGMode { return g.mode }

// mask53 extracts the 53 bits rand/v2's Float64 keeps of each Uint64
// draw: Float64() == float64(u<<11>>11) / (1<<53).
const mask53 = 1<<53 - 1

// refreshThresh recomputes the integer rate threshold. The per-node rate
// draw `rng.Float64() < Rate` is, by rand/v2's construction, exactly
// `float64(u&mask53)/2^53 < Rate` for one Uint64 draw u. Both sides are
// exact binary rationals (x := u&mask53 < 2^53 converts exactly, dividing
// by 2^53 only shifts the exponent, and Rate*2^53 likewise just shifts
// Rate's exponent), so the comparison equals the real-number comparison
// x < Rate*2^53, i.e. x < ceil(Rate*2^53). Comparing the raw draw against
// that integer threshold therefore consumes the identical RNG stream and
// fires on exactly the same cycles, while skipping the float conversion
// in the all-nodes-quiet common case.
func (g *Generator) refreshThresh() {
	t := g.Rate * (1 << 53)
	switch {
	case t <= 0:
		g.rateThresh = 0
	case t >= 1<<53:
		g.rateThresh = 1 << 53 // every draw fires
	default:
		g.rateThresh = uint64(math.Ceil(t))
	}
	g.rateCached = g.Rate
}

// Tick injects this cycle's packets into the network. If the previous
// call was a SkipQuiet that stopped mid-cycle, Tick first completes that
// cycle's pending injection and continues from the following node, so
// the draw sequence is exactly that of a generator ticked every cycle.
func (g *Generator) Tick(n *noc.Network) {
	if g.mode == RNGCounter {
		g.tickCounter(n)
		return
	}
	if g.Rate != g.rateCached {
		g.refreshThresh()
	}
	nodes := n.Graph().N()
	src := 0
	if g.hasPending {
		g.hasPending = false
		g.emit(n, g.pendingSrc)
		src = g.pendingSrc + 1
	}
	for ; src < nodes; src++ {
		if g.src.Uint64()&mask53 >= g.rateThresh {
			continue
		}
		g.emit(n, src)
	}
}

// emit performs the injection-side draws and effects for a node whose
// rate draw passed (the draw/effect order here is load-bearing for
// determinism: queue-cap check, destination draw, self-test, size draw,
// inject).
func (g *Generator) emit(n *noc.Network, src int) {
	if g.InjQueueCap > 0 && n.InjQueueLen(src, g.Class) >= g.InjQueueCap {
		g.Skipped++
		return
	}
	dst := g.Pattern.Dest(src, g.rng)
	if dst == src {
		return
	}
	flits := 1
	if g.rng.Float64() >= g.CtrlFraction {
		flits = g.DataFlits
	}
	p := n.NewPacket(src, dst, g.Class, flits)
	if n.Inject(p) {
		g.Created++
	} else {
		// A refused injection leaves ownership with us (the queue never
		// saw the packet), so hand it straight back to the pool.
		g.Skipped++
		n.ReleasePacket(p)
	}
}

// SkipQuiet fast-forwards the generator over up to max cycles in which
// no node injects, drawing exactly the per-cycle rate draws a ticked
// generator would have drawn. It returns the number of fully quiet
// cycles k (0 ≤ k ≤ max): the caller may skip k network cycles; if
// k < max, cycle k is not quiet and the caller must resume per-cycle
// stepping there — the next Tick finishes that cycle's draws from the
// memoized stop point. Callers use this during provably idle windows
// (see noc.Network.NextWorkCycle); a generator with a pending injection
// never skips.
//
//drain:hotpath idle fast-forward companion to Network.SkipIdle
func (g *Generator) SkipQuiet(nodes int, max int64) int64 {
	if g.mode == RNGCounter {
		return g.skipQuietCounter(max)
	}
	if g.hasPending || max <= 0 {
		return 0
	}
	if g.Rate != g.rateCached {
		g.refreshThresh()
	}
	for k := int64(0); k < max; k++ {
		for src := 0; src < nodes; src++ {
			if g.src.Uint64()&mask53 < g.rateThresh {
				g.pendingSrc = src
				g.hasPending = true
				return k
			}
		}
	}
	return max
}
