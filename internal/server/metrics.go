package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"drain/internal/noc"
	"drain/internal/stats"
)

// latencyWindow caps the latency sample; when full it resets, so the
// percentiles describe a recent window rather than all of history and
// memory stays bounded.
const latencyWindow = 1 << 16

// serverMetrics aggregates the service counters /metrics exposes. Job
// latency percentiles reuse the repo's measurement primitive
// (stats.Sample) rather than a second quantile implementation.
type serverMetrics struct {
	queueCap      int
	inflight      atomic.Int64
	jobsTotal     atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64

	mu      sync.Mutex
	latency stats.Sample // milliseconds

	// lastScrape/lastCycles remember the previous /metrics scrape so the
	// cycles-per-second gauge reports the rate over the scrape interval
	// (first scrape falls back to the process-lifetime average).
	lastScrape time.Time
	lastCycles int64
}

// observe records one finished job.
func (m *serverMetrics) observe(d time.Duration, err error) {
	m.jobsTotal.Add(1)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		m.jobsCancelled.Add(1)
	default:
		m.jobsFailed.Add(1)
	}
	m.mu.Lock()
	if m.latency.Count() >= latencyWindow {
		m.latency.Reset()
	}
	m.latency.Add(d.Milliseconds())
	m.mu.Unlock()
}

// latencyP50 returns the median job latency of the current window.
func (m *serverMetrics) latencyP50() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.latency.Percentile(0.50)) * time.Millisecond
}

// handleMetrics writes the counters in Prometheus text exposition
// style (one "name value" pair per line, gauge/counter semantics by
// name), with no dependency on a metrics library.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := &s.metrics
	m.mu.Lock()
	count := m.latency.Count()
	p50 := m.latency.Percentile(0.50)
	p99 := m.latency.Percentile(0.99)
	mean := m.latency.Mean()
	m.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "drainserved_uptime_seconds %.0f\n", s.uptime().Seconds())
	fmt.Fprintf(w, "drainserved_queue_depth %d\n", s.QueueDepth())
	fmt.Fprintf(w, "drainserved_queue_capacity %d\n", m.queueCap)
	fmt.Fprintf(w, "drainserved_jobs_inflight %d\n", m.inflight.Load())
	fmt.Fprintf(w, "drainserved_jobs_total %d\n", m.jobsTotal.Load())
	fmt.Fprintf(w, "drainserved_jobs_failed %d\n", m.jobsFailed.Load())
	fmt.Fprintf(w, "drainserved_jobs_cancelled %d\n", m.jobsCancelled.Load())
	fmt.Fprintf(w, "drainserved_sim_parallel_shards %d\n", s.cfg.Shards)
	hits, misses, entries := s.CacheStats()
	fmt.Fprintf(w, "drainserved_cache_hits %d\n", hits)
	fmt.Fprintf(w, "drainserved_cache_misses %d\n", misses)
	fmt.Fprintf(w, "drainserved_cache_entries %d\n", entries)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "drainserved_cache_hit_rate %.4f\n", hitRate)
	cycles := noc.SimulatedCycles()
	m.mu.Lock()
	now := time.Now()
	rate := 0.0
	switch {
	case !m.lastScrape.IsZero() && now.After(m.lastScrape) && cycles >= m.lastCycles:
		rate = float64(cycles-m.lastCycles) / now.Sub(m.lastScrape).Seconds()
	case s.uptime() > 0:
		rate = float64(cycles) / s.uptime().Seconds()
	}
	m.lastScrape, m.lastCycles = now, cycles
	m.mu.Unlock()
	fmt.Fprintf(w, "drainserved_sim_cycles_total %d\n", cycles)
	fmt.Fprintf(w, "drainserved_sim_cycles_per_second %.0f\n", rate)
	// Idle fast-forward observability: how many of the simulated cycles
	// were jumped over rather than stepped (and the fraction), so a
	// deployment can tell whether its traffic ever exercises the
	// fast-forward machinery at all.
	ff := noc.SimFastForwardCycles()
	ffFrac := 0.0
	if cycles > 0 {
		ffFrac = float64(ff) / float64(cycles)
	}
	fmt.Fprintf(w, "drainserved_sim_fastforward_cycles_total %d\n", ff)
	fmt.Fprintf(w, "drainserved_sim_fastforward_fraction %.4f\n", ffFrac)
	fmt.Fprintf(w, "drainserved_sim_reconfigs_total %d\n", noc.SimReconfigs())
	fmt.Fprintf(w, "drainserved_sim_packets_rerouted_total %d\n", noc.SimPacketsRerouted())
	fmt.Fprintf(w, "drainserved_job_latency_ms_count %d\n", count)
	fmt.Fprintf(w, "drainserved_job_latency_ms_p50 %d\n", p50)
	fmt.Fprintf(w, "drainserved_job_latency_ms_p99 %d\n", p99)
	fmt.Fprintf(w, "drainserved_job_latency_ms_mean %.1f\n", mean)
}
