package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"drain/internal/experiments"
	"drain/internal/sim"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.ForceStop()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// A served figure must carry exactly the markdown cmd/experiments
// renders for the same experiment, and resubmitting the same request
// must be a cache hit with byte-identical body and no recomputation.
func TestFigureJobMatchesCLIAndCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	resp, body := postJob(t, ts.URL, `{"fig":"fig6"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decode response: %v", err)
	}

	e, ok := experiments.ByID("fig6")
	if !ok {
		t.Fatal("fig6 not in registry")
	}
	tables, err := e.Run(context.Background(), experiments.Quick, 1)
	if err != nil {
		t.Fatalf("direct fig6 run: %v", err)
	}
	want := experiments.RenderFigure(e, tables)
	if r.Markdown != want {
		t.Fatalf("served markdown differs from cmd/experiments rendering:\n--- served ---\n%s\n--- direct ---\n%s", r.Markdown, want)
	}

	resp2, body2 := postJob(t, ts.URL, `{"kind":"figure","fig":"fig6","scale":"quick","seed":1}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmit X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("cache hit body differs from original miss body")
	}
	if n := s.JobsExecuted(); n != 1 {
		t.Fatalf("JobsExecuted = %d after identical resubmit, want 1 (no recompute)", n)
	}
}

// A served sweep must report the same curve sim.LoadSweep computes.
func TestSweepJobMatchesLoadSweep(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	req := `{"kind":"sweep","width":4,"height":4,"faults":2,"rates":[0.02,0.05],"warmup":200,"measure":500}`
	resp, body := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(r.Tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(r.Tables))
	}

	p := sim.Params{Width: 4, Height: 4, Faults: 2, FaultSeed: 1, Scheme: sim.SchemeDRAIN, Seed: 1}
	curve, err := sim.LoadSweep(p, "uniform", []float64{0.02, 0.05}, 200, 500)
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	if len(r.Tables[0].Rows) != len(curve) {
		t.Fatalf("served %d rows, direct sweep has %d points", len(r.Tables[0].Rows), len(curve))
	}
	for i, pt := range curve {
		want := []string{
			fmt.Sprintf("%.3f", pt.Offered),
			fmt.Sprintf("%.4f", pt.Accepted),
			fmt.Sprintf("%.1f", pt.AvgLat),
			fmt.Sprintf("%d", pt.P99Lat),
		}
		for j := range want {
			if r.Tables[0].Rows[i][j] != want[j] {
				t.Fatalf("row %d col %d: served %q, direct %q", i, j, r.Tables[0].Rows[i][j], want[j])
			}
		}
	}
}

// slowSweep returns a request body whose simulation runs long enough to
// occupy a worker until cancelled; seed varies the cache key per call.
func slowSweep(seed int) string {
	return fmt.Sprintf(`{"kind":"sweep","width":8,"height":8,"seed":%d,"rates":[0.1],"measure":2000000000}`, seed)
}

// With one worker and a one-slot queue, a third concurrent job must be
// rejected with 429 and a Retry-After hint, and cancelling the slow
// jobs must return the pool to idle.
func TestQueueFullBackpressureAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	launch := func(seed int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/jobs", strings.NewReader(slowSweep(seed)))
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	launch(101)
	waitFor(t, "first job in flight", func() bool { return s.InFlight() == 1 })
	launch(102)
	waitFor(t, "second job queued", func() bool { return s.QueueDepth() == 1 })

	resp, body := postJob(t, ts.URL, slowSweep(103))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	// Hang up both slow clients: the in-flight run must stop within
	// noc.CancelCheckEvery cycles and the queued one must be skipped.
	cancel()
	wg.Wait()
	waitFor(t, "pool idle after cancel", func() bool {
		return s.InFlight() == 0 && s.QueueDepth() == 0
	})
	if hits, _, _ := s.CacheStats(); hits != 0 {
		t.Fatalf("cancelled jobs produced %d cache hits", hits)
	}
}

// Close must finish queued work, then reject new submissions and flip
// /healthz to draining.
func TestDrainRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts.URL, `{"fig":"fig6"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up job status %d", resp.StatusCode)
	}

	s.Close() // drains: the completed job is already through

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hz.StatusCode)
	}

	resp2, body := postJob(t, ts.URL, `{"fig":"fig5"}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d (%s), want 503", resp2.StatusCode, body)
	}
}

func TestHealthzOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Shards: 4})
	postJob(t, ts.URL, `{"fig":"fig6"}`) // miss + execute
	postJob(t, ts.URL, `{"fig":"fig6"}`) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"drainserved_queue_depth 0",
		"drainserved_queue_capacity 64",
		"drainserved_jobs_inflight 0",
		"drainserved_jobs_total 1",
		"drainserved_jobs_failed 0",
		"drainserved_cache_hits 1",
		"drainserved_cache_misses 1",
		"drainserved_cache_entries 1",
		"drainserved_cache_hit_rate 0.5000",
		"drainserved_sim_parallel_shards 4",
		"drainserved_sim_cycles_total ",
		"drainserved_sim_cycles_per_second ",
		"drainserved_sim_fastforward_cycles_total ",
		"drainserved_sim_fastforward_fraction ",
		"drainserved_job_latency_ms_count 1",
		"drainserved_job_latency_ms_p50 ",
		"drainserved_job_latency_ms_p99 ",
		"drainserved_uptime_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestBadRequestsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, body := range []string{
		`{`,                             // malformed JSON
		`{"figs":"fig6"}`,               // unknown field
		`{"fig":"fig999"}`,              // unknown figure
		`{"kind":"sweep","width":1000}`, // out-of-range mesh
	} {
		resp, data := postJob(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s = %d (%s), want 400", body, resp.StatusCode, data)
			continue
		}
		var e errorBody
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: error body %q not the JSON envelope", body, data)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
}
