package server

import (
	"encoding/json"
	"testing"
)

// keyOf decodes a JSON request body and returns its cache key.
func keyOf(t *testing.T, body string) string {
	t.Helper()
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatalf("unmarshal %q: %v", body, err)
	}
	c, err := req.Canonicalize()
	if err != nil {
		t.Fatalf("canonicalize %q: %v", body, err)
	}
	return c.Key()
}

// Two JSON bodies naming the same simulation must hash to the same key
// regardless of field order.
func TestKeyIgnoresFieldOrder(t *testing.T) {
	a := keyOf(t, `{"kind":"sweep","scheme":"drain","width":8,"faults":4,"rates":[0.02,0.1]}`)
	b := keyOf(t, `{"rates":[0.02,0.1],"faults":4,"width":8,"scheme":"drain","kind":"sweep"}`)
	if a != b {
		t.Fatalf("field order changed key: %s vs %s", a, b)
	}
}

// A request relying on defaults and one spelling every default out must
// cache as the same entry.
func TestKeyDefaultsExplicitIdentical(t *testing.T) {
	figDefault := keyOf(t, `{"fig":"fig6"}`)
	figExplicit := keyOf(t, `{"kind":"figure","fig":"fig6","scale":"quick","seed":1}`)
	if figDefault != figExplicit {
		t.Fatalf("figure default vs explicit keys differ: %s vs %s", figDefault, figExplicit)
	}

	swDefault := keyOf(t, `{"kind":"sweep"}`)
	swExplicit := keyOf(t, `{"kind":"sweep","scheme":"drain","width":8,"height":8,
		"faults":0,"fault_seed":1,"vnets":1,"vcs_per_vn":2,"epoch":65536,"seed":1,
		"pattern":"uniform","rates":[0.02,0.10],"warmup":1000,"measure":4000}`)
	if swDefault != swExplicit {
		t.Fatalf("sweep default vs explicit keys differ: %s vs %s", swDefault, swExplicit)
	}
}

// The shard count steers execution speed, never results, so it must not
// fragment the cache: requests differing only in shards share a key,
// and the canonical form still carries the count to execution.
func TestKeyIgnoresShards(t *testing.T) {
	base := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4}`
	sharded := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"shards":4}`
	if a, b := keyOf(t, base), keyOf(t, sharded); a != b {
		t.Fatalf("shards changed the cache key: %s vs %s", a, b)
	}
	var req Request
	if err := json.Unmarshal([]byte(sharded), &req); err != nil {
		t.Fatal(err)
	}
	c, err := req.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards != 4 {
		t.Fatalf("canonical dropped the shard count: got %d, want 4", c.Shards)
	}
}

// A fault schedule changes what the sweep computes, so — unlike shards
// — it MUST be part of the cache key: adding one, moving an event, or
// flipping its direction each produce a distinct key, while shards
// still do not fragment entries that share a schedule.
func TestKeyIncludesFaultSchedule(t *testing.T) {
	base := `{"kind":"sweep","scheme":"drain","width":8,"height":8}`
	oneFault := `{"kind":"sweep","scheme":"drain","width":8,"height":8,
		"fault_schedule":[{"cycle":1000,"a":1,"b":2,"fail":true}]}`
	laterFault := `{"kind":"sweep","scheme":"drain","width":8,"height":8,
		"fault_schedule":[{"cycle":2000,"a":1,"b":2,"fail":true}]}`
	withRecover := `{"kind":"sweep","scheme":"drain","width":8,"height":8,
		"fault_schedule":[{"cycle":1000,"a":1,"b":2,"fail":true},{"cycle":2000,"a":1,"b":2,"fail":false}]}`
	keys := map[string]string{}
	for _, body := range []string{base, oneFault, laterFault, withRecover} {
		k := keyOf(t, body)
		if prev, dup := keys[k]; dup {
			t.Fatalf("fault schedule not in cache key: %s and %s collide", prev, body)
		}
		keys[k] = body
	}
	// Shards still ride outside the key for scheduled-fault sweeps.
	shardedFault := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"shards":4,
		"fault_schedule":[{"cycle":1000,"a":1,"b":2,"fail":true}]}`
	if a, b := keyOf(t, oneFault), keyOf(t, shardedFault); a != b {
		t.Fatalf("shards changed the key of a scheduled-fault sweep: %s vs %s", a, b)
	}
}

// The RNG mode changes what a sweep computes (counter mode draws
// different packets), so — unlike shards — it MUST be part of the
// cache key; an explicit "exact" and an omitted mode are the same
// simulation and must share one.
func TestKeyIncludesRNGMode(t *testing.T) {
	base := `{"kind":"sweep","scheme":"drain","width":8,"height":8}`
	exact := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"rng_mode":"exact"}`
	counter := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"rng_mode":"counter"}`
	if a, b := keyOf(t, base), keyOf(t, exact); a != b {
		t.Fatalf("explicit exact mode changed the cache key: %s vs %s", a, b)
	}
	if a, b := keyOf(t, base), keyOf(t, counter); a == b {
		t.Fatalf("counter mode did not change the cache key: %s", a)
	}
	// Shards still ride outside the key for counter-mode sweeps.
	shardedCounter := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"rng_mode":"counter","shards":4}`
	if a, b := keyOf(t, counter), keyOf(t, shardedCounter); a != b {
		t.Fatalf("shards changed the key of a counter-mode sweep: %s vs %s", a, b)
	}
	// Figures accept only the default spelled out: an explicit "exact"
	// is the same job as an omitted mode ("counter" is rejected —
	// TestCanonicalizeRejectsBadRequests).
	if a, b := keyOf(t, `{"fig":"fig6"}`), keyOf(t, `{"fig":"fig6","rng_mode":"exact"}`); a != b {
		t.Fatalf("explicit exact mode changed a figure's cache key: %s vs %s", a, b)
	}
}

// Any semantically different request must miss: each axis change below
// must produce a distinct key.
func TestKeySemanticChangesDiffer(t *testing.T) {
	base := `{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4}`
	variants := []string{
		base,
		`{"kind":"sweep","scheme":"escape","width":8,"height":8,"faults":4}`,
		`{"kind":"sweep","scheme":"drain","width":10,"height":8,"faults":4}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":5}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"fault_seed":2}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"seed":2}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"pattern":"transpose"}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"rates":[0.05]}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"measure":8000}`,
		`{"kind":"sweep","scheme":"drain","width":8,"height":8,"faults":4,"epoch":1024}`,
		`{"fig":"fig6"}`,
		`{"fig":"fig6","scale":"full"}`,
		`{"fig":"fig6","seed":2}`,
	}
	seen := make(map[string]string, len(variants))
	for _, v := range variants {
		k := keyOf(t, v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %s and %s", prev, v)
		}
		seen[k] = v
	}
}

func TestCanonicalizeRejectsBadRequests(t *testing.T) {
	bad := []string{
		`{"kind":"mystery"}`,
		`{"kind":"figure"}`,                    // no fig
		`{"fig":"fig999"}`,                     // unknown figure
		`{"fig":"fig6","scale":"huge"}`,        // unknown scale
		`{"kind":"sweep","scheme":"teleport"}`, // unknown scheme
		`{"kind":"sweep","width":1000}`,        // mesh too large
		`{"kind":"sweep","faults":-1}`,         // negative faults
		`{"kind":"sweep","pattern":"nope"}`,    // unknown pattern
		`{"kind":"sweep","rates":[2.0]}`,       // rate out of range
		`{"kind":"sweep","rates":[0.0]}`,       // rate out of range
		`{"kind":"sweep","warmup":-1}`,         // negative warmup
		`{"kind":"sweep","shards":-1}`,         // negative shards
		`{"kind":"sweep","rng_mode":"fast"}`,   // unknown rng mode
		`{"fig":"fig6","rng_mode":"counter"}`,  // figures are exact-only
		`{"fig":"fig6","rng_mode":"fast"}`,     // unknown rng mode (figure)
		`{"kind":"sweep","scheme":"dor","fault_schedule":[{"cycle":10,"a":1,"b":2,"fail":true}]}`,                        // DoR needs a fault-free mesh
		`{"kind":"sweep","fault_schedule":[{"cycle":-1,"a":1,"b":2,"fail":true}]}`,                                       // negative cycle
		`{"kind":"sweep","fault_schedule":[{"cycle":10,"a":1,"b":3,"fail":true}]}`,                                       // no such mesh link
		`{"kind":"sweep","fault_schedule":[{"cycle":10,"a":1,"b":2,"fail":false}]}`,                                      // recovering an up link
		`{"kind":"sweep","fault_schedule":[{"cycle":20,"a":1,"b":2,"fail":true},{"cycle":10,"a":5,"b":6,"fail":true}]}`,  // unsorted
		`{"kind":"sweep","fault_schedule":[{"cycle":10,"a":1,"b":2,"fail":true},{"cycle":10,"a":2,"b":1,"fail":false}]}`, // duplicate link event
	}
	for _, body := range bad {
		var req Request
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("unmarshal %q: %v", body, err)
		}
		if _, err := req.Canonicalize(); err == nil {
			t.Errorf("Canonicalize(%s) accepted a bad request", body)
		}
	}

	// A rates slice over the limit.
	long := Request{Kind: KindSweep, Rates: make([]float64, maxRates+1)}
	for i := range long.Rates {
		long.Rates[i] = 0.01
	}
	if _, err := long.Canonicalize(); err == nil {
		t.Errorf("Canonicalize accepted %d rates", len(long.Rates))
	}
}
