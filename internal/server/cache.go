package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// resultCache is a bounded LRU of finished response bodies keyed by the
// request's content address. Values are the exact bytes served: because
// every simulation is a pure function of its canonical configuration, a
// hit returns byte-identical output to the original computation.
// Callers must treat returned slices as immutable.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached body for key, marking it most recently used.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry
// when over capacity. Re-putting an existing key refreshes its
// recency; the body is identical by construction (same key ⇒ same
// canonical config ⇒ same deterministic output), so which write wins a
// race is immaterial.
func (c *resultCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits and Misses report lookup counters.
func (c *resultCache) Hits() int64   { return c.hits.Load() }
func (c *resultCache) Misses() int64 { return c.misses.Load() }
