// Package server turns the batch experiment harness into a long-lived
// simulation service: an HTTP JSON API that accepts figure and sweep
// requests, executes them on the experiments worker pool, and caches
// results by a content address of the fully defaulted run
// configuration. Everything the simulator computes is a pure function
// of that configuration, so identical requests are answered with
// byte-identical cached bytes and never recomputed.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"drain/internal/experiments"
	"drain/internal/sim"
	"drain/internal/traffic"
)

// Request job kinds.
const (
	KindFigure = "figure" // re-run one registry experiment (cmd/experiments parity)
	KindSweep  = "sweep"  // custom latency/throughput sweep (cmd/drainsim -sweep parity)
)

// Request is the body of POST /v1/jobs. Exactly the parameters that
// determine a run's output appear here; omitted fields take the same
// defaults the CLIs apply, so an explicit default and an omitted field
// describe — and cache as — the same simulation.
type Request struct {
	// Kind selects the job type. It may be omitted when Fig is set
	// (implying "figure"); otherwise it defaults to "sweep".
	Kind string `json:"kind,omitempty"`

	// Figure jobs: one cmd/experiments registry entry.
	Fig   string `json:"fig,omitempty"`
	Scale string `json:"scale,omitempty"` // "quick" (default) or "full"
	Seed  uint64 `json:"seed,omitempty"`  // base seed, default 1

	// Sweep jobs: scheme/topology/fault/load axes of one load sweep.
	Scheme    string    `json:"scheme,omitempty"`     // sim.ParseScheme vocabulary, default "drain"
	Width     int       `json:"width,omitempty"`      // mesh width, default 8
	Height    int       `json:"height,omitempty"`     // mesh height, default 8
	Faults    int       `json:"faults,omitempty"`     // removed bidirectional links
	FaultSeed uint64    `json:"fault_seed,omitempty"` // fault pattern seed
	VNets     int       `json:"vnets,omitempty"`      // virtual networks (scheme default)
	VCsPerVN  int       `json:"vcs_per_vn,omitempty"` // VCs per VNet, default 2
	Epoch     int64     `json:"epoch,omitempty"`      // DRAIN epoch, default 64K
	Pattern   string    `json:"pattern,omitempty"`    // traffic pattern, default "uniform"
	Rates     []float64 `json:"rates,omitempty"`      // offered loads, default {0.02, 0.10}
	Warmup    int64     `json:"warmup,omitempty"`     // warmup cycles, default 1000
	Measure   int64     `json:"measure,omitempty"`    // measured cycles, default 4000

	// FaultSchedule lists live topology changes (link failures and
	// recoveries) applied mid-run at the scheduled cycles; see
	// sim.FaultEvent. Unlike Shards, a schedule changes what the sweep
	// computes, so it IS part of the cache key (it rides inside the
	// canonical form's embedded sim.Params).
	FaultSchedule []sim.FaultEvent `json:"fault_schedule,omitempty"`

	// Shards runs the sweep's simulations on the sharded parallel engine
	// with that many shards (0 = the server's -shards process default).
	// Results are byte-identical for every value, so shards are NOT part
	// of the cache key: a sweep computed at shards=4 answers the same
	// request at shards=1 from cache, and vice versa. Ignored by figure
	// jobs (those follow the process default only).
	Shards int `json:"shards,omitempty"`

	// RNGMode selects the synthetic generator's draw discipline
	// (traffic.ParseRNGMode vocabulary: "exact", the default, or
	// "counter"). Unlike Shards the mode changes the computed results —
	// counter mode is statistically equivalent but draws different
	// packets — so it IS part of the cache key (it rides inside the
	// canonical form's embedded sim.Params). Sweep-only: figure jobs are
	// the paper's byte-reproducible tables and always run exact; a
	// counter-mode figure request is rejected, not silently ignored.
	RNGMode string `json:"rng_mode,omitempty"`
}

// maxMesh bounds served topologies: a request is user input, and an
// enormous mesh is a denial-of-service, not an experiment.
const maxMesh = 64

// maxRates bounds the number of load points per sweep request.
const maxRates = 64

// maxFaultEvents bounds the fault schedule per sweep request.
const maxFaultEvents = 256

// canonical is a Request with every default resolved — the normal form
// two equivalent requests share. Its JSON encoding (struct-declaration
// field order, fully populated) is the preimage of the cache key, so
// the key depends on exactly the semantic content of the request:
// JSON field order and explicit-vs-defaulted values cannot change it,
// and any semantic change must.
type canonical struct {
	Kind string `json:"kind"`

	// Figure form (zero for sweeps).
	Fig   string `json:"fig"`
	Scale string `json:"scale"`
	Seed  uint64 `json:"seed"`

	// Sweep form (zero for figures). Params is sim.Params.Normalized:
	// the exact effective configuration Build uses, including
	// scheme-dependent defaults like the VNet count.
	Params  sim.Params `json:"params"`
	Pattern string     `json:"pattern"`
	Rates   []float64  `json:"rates"`
	Warmup  int64      `json:"warmup"`
	Measure int64      `json:"measure"`

	// Shards rides along to execution but is excluded from the encoding
	// (and so from the cache key): the shard count changes how fast a
	// sweep computes, never what it computes. sim.Params.Shards carries
	// the same tag, keeping the embedded Params encoding shard-free.
	//
	//drain:cachekey-exempt execution speed knob only; a sweep computed at any shard count answers the same request at every other from cache (TestKeyIgnoresShards)
	Shards int `json:"-"`
}

// Canonicalize validates req and resolves every default, returning the
// canonical form. The error text is safe to return to clients.
func (req Request) Canonicalize() (canonical, error) {
	kind := req.Kind
	if kind == "" {
		if req.Fig != "" {
			kind = KindFigure
		} else {
			kind = KindSweep
		}
	}
	switch kind {
	case KindFigure:
		return req.canonicalFigure()
	case KindSweep:
		return req.canonicalSweep()
	default:
		return canonical{}, fmt.Errorf("unknown kind %q (figure|sweep)", kind)
	}
}

func (req Request) canonicalFigure() (canonical, error) {
	if req.Fig == "" {
		return canonical{}, fmt.Errorf("figure request needs \"fig\" (one of the cmd/experiments -list IDs)")
	}
	if _, ok := experiments.ByID(req.Fig); !ok {
		return canonical{}, fmt.Errorf("unknown figure %q", req.Fig)
	}
	scale := req.Scale
	switch scale {
	case "":
		scale = "quick"
	case "quick", "full":
	default:
		return canonical{}, fmt.Errorf("unknown scale %q (quick|full)", scale)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	// Figures are the paper's committed tables and always run in the
	// byte-reproducible exact mode; accepting rng_mode here would hand
	// back exact-mode (possibly cached) results mislabeled as counter
	// runs. Reject instead of ignoring. An explicit "exact" is the
	// default spelled out, so it stays valid.
	if mode, err := traffic.ParseRNGMode(req.RNGMode); err != nil {
		return canonical{}, err
	} else if mode != traffic.RNGExact {
		return canonical{}, fmt.Errorf("figure jobs always run in exact mode (rng_mode %q applies to sweep jobs only)", req.RNGMode)
	}
	return canonical{Kind: KindFigure, Fig: req.Fig, Scale: scale, Seed: seed}, nil
}

func (req Request) canonicalSweep() (canonical, error) {
	scheme := req.Scheme
	if scheme == "" {
		scheme = "drain"
	}
	sch, err := sim.ParseScheme(scheme)
	if err != nil {
		return canonical{}, err
	}
	if req.Width < 0 || req.Height < 0 || req.Width > maxMesh || req.Height > maxMesh {
		return canonical{}, fmt.Errorf("mesh %dx%d out of range (1..%d per side)", req.Width, req.Height, maxMesh)
	}
	if req.Faults < 0 {
		return canonical{}, fmt.Errorf("faults must be >= 0")
	}
	if req.Warmup < 0 || req.Measure < 0 {
		return canonical{}, fmt.Errorf("warmup and measure must be >= 0")
	}
	if req.Shards < 0 || req.Shards > maxMesh*maxMesh {
		return canonical{}, fmt.Errorf("shards %d out of range (0..%d)", req.Shards, maxMesh*maxMesh)
	}
	if len(req.FaultSchedule) > maxFaultEvents {
		return canonical{}, fmt.Errorf("too many fault events (%d > %d)", len(req.FaultSchedule), maxFaultEvents)
	}
	// Resolved here, never via sim.SetDefaultRNGMode: a process default
	// would change results behind the cache key's back, so the server
	// leaves it untouched and bakes the explicit mode into Params.
	rngMode, err := traffic.ParseRNGMode(req.RNGMode)
	if err != nil {
		return canonical{}, err
	}
	p := sim.Params{
		Width: req.Width, Height: req.Height,
		Faults: req.Faults, FaultSeed: req.FaultSeed,
		Scheme: sch,
		VNets:  req.VNets, VCsPerVN: req.VCsPerVN,
		Epoch:         req.Epoch,
		Seed:          req.Seed,
		FaultSchedule: req.FaultSchedule,
		RNGMode:       rngMode,
	}.Normalized()
	if p.FaultSeed == 0 {
		p.FaultSeed = 1
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if len(p.FaultSchedule) > 0 {
		// Validate the schedule against the concrete topology up front so
		// a bad request fails with 400 now instead of 500 at execution
		// time: sorted unique events, legal link states, connectivity
		// preserved throughout — and no schedule at all under DoR.
		if p.Scheme == sim.SchemeDoR {
			return canonical{}, fmt.Errorf("scheme dor cannot run a fault schedule (needs a fault-free mesh)")
		}
		g, _, err := p.BuildGraph()
		if err != nil {
			return canonical{}, err
		}
		if err := sim.ValidateFaultSchedule(g, p.FaultSchedule); err != nil {
			return canonical{}, err
		}
	}
	pattern := req.Pattern
	if pattern == "" {
		pattern = "uniform"
	}
	// Validate the pattern name up front so a bad request fails with 400
	// now instead of 500 at execution time.
	if _, err := traffic.ByName(pattern, p.Width*p.Height, p.Width); err != nil {
		return canonical{}, err
	}
	rates := req.Rates
	if len(rates) == 0 {
		rates = []float64{0.02, 0.10}
	}
	if len(rates) > maxRates {
		return canonical{}, fmt.Errorf("too many rates (%d > %d)", len(rates), maxRates)
	}
	for _, r := range rates {
		if r <= 0 || r > 1 {
			return canonical{}, fmt.Errorf("rate %v out of range (0, 1]", r)
		}
	}
	warmup, measure := req.Warmup, req.Measure
	if warmup == 0 {
		warmup = 1000
	}
	if measure == 0 {
		measure = 4000
	}
	return canonical{
		Kind: KindSweep, Params: p, Pattern: pattern,
		Rates: rates, Warmup: warmup, Measure: measure,
		Shards: req.Shards,
	}, nil
}

// Key returns the content address of the canonical request: the hex
// SHA-256 of its deterministic JSON encoding.
func (c canonical) Key() string {
	data, err := json.Marshal(c)
	if err != nil {
		// canonical contains only marshalable fields; this cannot fail.
		panic(fmt.Sprintf("server: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Response is the body of a successful job: the regenerated tables and
// their rendered markdown, exactly what cmd/experiments (for figures)
// or cmd/drainsim -sweep (for sweeps) would deterministically print.
type Response struct {
	Key      string              `json:"key"`
	Kind     string              `json:"kind"`
	Tables   []experiments.Table `json:"tables"`
	Markdown string              `json:"markdown"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
