package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Config sizes the service.
type Config struct {
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// get 429 + Retry-After (explicit backpressure). Default 64.
	QueueDepth int
	// Workers is the number of concurrent jobs. Each job may itself fan
	// out across experiments.SetParallelism workers. Default 2.
	Workers int
	// JobTimeout bounds one job's execution; an expired job fails with
	// 504 and stops simulating within noc.CancelCheckEvery cycles.
	// Default 5m.
	JobTimeout time.Duration
	// CacheEntries bounds the content-addressed result cache. Default 1024.
	CacheEntries int
	// Shards is the process-default shard count for the parallel engine
	// (informational here: sim.SetDefaultShards applies it; /metrics
	// reports it as drainserved_sim_parallel_shards). 0 means serial.
	Shards int
}

func (c *Config) setDefaults() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
}

// Errors submit can return.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining means the server is shutting down.
	ErrDraining = errors.New("server: draining")
)

// job is one queued request.
type job struct {
	// ctx is the submitter's context (plus the server's force-stop):
	// cancelling it makes the worker abandon the run within
	// noc.CancelCheckEvery simulated cycles.
	//drain:ctxcarrier queue element carries the submitter's ctx across the worker channel
	ctx  context.Context
	c    canonical
	key  string
	done chan jobResult // buffered: the worker never blocks on delivery
}

type jobResult struct {
	body []byte
	err  error
}

// Server executes simulation jobs from a bounded queue over a fixed
// worker pool, with a content-addressed result cache in front.
type Server struct {
	cfg   Config
	cache *resultCache

	mu       sync.RWMutex // guards queue close vs. submit
	queue    chan *job
	draining bool

	wg sync.WaitGroup
	//drain:ctxcarrier process-lifetime kill switch, not a call-scoped ctx; ForceStop cancels it to abort all in-flight jobs
	forceCtx  context.Context // cancelled by ForceStop: aborts in-flight jobs
	forceStop context.CancelFunc

	metrics serverMetrics
	start   time.Time
}

// New builds and starts a Server (its worker pool runs immediately).
func New(cfg Config) *Server {
	cfg.setDefaults()
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheEntries),
		queue: make(chan *job, cfg.QueueDepth),
		start: time.Now(),
	}
	s.forceCtx, s.forceStop = context.WithCancel(context.Background())
	s.metrics.queueCap = cfg.QueueDepth
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker executes queued jobs until the queue is closed and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.inflight.Add(1)
		started := time.Now()
		var res jobResult
		if err := j.ctx.Err(); err != nil {
			// The submitter vanished while the job sat in the queue:
			// don't burn a worker on a result nobody wants.
			res.err = err
		} else {
			ctx, cancel := context.WithTimeout(j.ctx, s.cfg.JobTimeout)
			res.body, res.err = s.execute(ctx, j.key, j.c)
			cancel()
		}
		if res.err == nil {
			s.cache.Put(j.key, res.body)
		}
		s.metrics.observe(time.Since(started), res.err)
		j.done <- res
		s.metrics.inflight.Add(-1)
	}
}

// submit enqueues a job without blocking. ErrQueueFull is the
// backpressure signal; ErrDraining means shutdown has begun.
func (s *Server) submit(j *job) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Close drains and stops the worker pool: no new submissions are
// accepted, every queued and in-flight job runs to completion, and
// Close returns when the pool is idle. Call ForceStop first (or
// concurrently) to abort in-flight jobs instead of finishing them.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// ForceStop cancels the context of every in-flight and queued job.
// Submitters receive cancellation errors; workers stop within
// noc.CancelCheckEvery simulated cycles.
func (s *Server) ForceStop() { s.forceStop() }

// Handler returns the service's HTTP routes:
//
//	POST /v1/jobs  — submit a figure or sweep job (JSON Request body)
//	GET  /metrics  — queue/cache/latency counters, text format
//	GET  /healthz  — 200 "ok", or 503 "draining" during shutdown
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// maxBody bounds request bodies; every valid Request is tiny.
const maxBody = 1 << 20

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	c, err := req.Canonicalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := c.Key()
	if body, ok := s.cache.Get(key); ok {
		writeBody(w, "hit", body)
		return
	}

	// Two identical requests racing past the cache miss both compute;
	// determinism makes either result correct and both Puts identical,
	// so no single-flight coordination is needed for correctness.
	jctx, jcancel := context.WithCancel(r.Context())
	defer jcancel()
	stop := context.AfterFunc(s.forceCtx, jcancel)
	defer stop()
	j := &job{ctx: jctx, c: c, key: key, done: make(chan jobResult, 1)}
	if err := s.submit(j); err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, "server is draining")
		default:
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, "job queue full; retry later")
		}
		return
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			switch {
			case errors.Is(res.err, context.DeadlineExceeded):
				writeError(w, http.StatusGatewayTimeout, "job timed out: "+res.err.Error())
			case errors.Is(res.err, context.Canceled):
				// Client is gone or the server was force-stopped; the
				// status is best-effort.
				writeError(w, http.StatusServiceUnavailable, "job cancelled: "+res.err.Error())
			default:
				writeError(w, http.StatusInternalServerError, res.err.Error())
			}
			return
		}
		writeBody(w, "miss", res.body)
	case <-r.Context().Done():
		// The client hung up: jcancel (deferred) propagates into the
		// worker, which stops within noc.CancelCheckEvery cycles. The
		// buffered done channel lets it publish the result regardless.
	}
}

// retryAfterSeconds estimates how long a 429'd client should wait: the
// median job latency (rounded up), or 1s before any job has finished.
func (s *Server) retryAfterSeconds() int {
	p50 := s.metrics.latencyP50()
	if p50 <= 0 {
		return 1
	}
	secs := int((p50 + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeBody(w http.ResponseWriter, cacheStatus string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheStatus)
	w.Write(body)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

// QueueDepth returns the number of queued (not yet running) jobs.
func (s *Server) QueueDepth() int { return len(s.queue) }

// InFlight returns the number of jobs currently executing.
func (s *Server) InFlight() int { return int(s.metrics.inflight.Load()) }

// CacheStats returns (hits, misses, entries).
func (s *Server) CacheStats() (hits, misses int64, entries int) {
	return s.cache.Hits(), s.cache.Misses(), s.cache.Len()
}

// JobsExecuted returns how many jobs workers have run (cache hits
// excluded — a hit never reaches the pool).
func (s *Server) JobsExecuted() int64 { return s.metrics.jobsTotal.Load() }

// uptime is split out for the metrics page.
func (s *Server) uptime() time.Duration { return time.Since(s.start) }
