package server

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := newResultCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("body-a"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got, []byte("body-a")) {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	if h, m := c.Hits(), c.Misses(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	// Touch a so b becomes least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("C"))
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
}

func TestCachePutRefreshesRecency(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("A")) // refresh, not duplicate
	if c.Len() != 2 {
		t.Fatalf("Len=%d after re-put, want 2", c.Len())
	}
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted after a was refreshed")
	}
}

func TestCacheCapacityBound(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
		if c.Len() > 8 {
			t.Fatalf("cache grew to %d entries, cap 8", c.Len())
		}
	}
	if c.Len() != 8 {
		t.Fatalf("Len=%d, want 8", c.Len())
	}
}
