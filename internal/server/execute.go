package server

import (
	"context"
	"encoding/json"
	"fmt"

	"drain/internal/experiments"
	"drain/internal/sim"
)

// execute runs one canonical job and encodes its Response body. The
// body is what the cache stores: it must be a deterministic function of
// c, so it contains no timings, hostnames, or other run-local state.
func (s *Server) execute(ctx context.Context, key string, c canonical) ([]byte, error) {
	var (
		tables   []experiments.Table
		markdown string
		err      error
	)
	switch c.Kind {
	case KindFigure:
		tables, markdown, err = executeFigure(ctx, c)
	case KindSweep:
		tables, markdown, err = executeSweep(ctx, c)
	default:
		err = fmt.Errorf("server: unknown canonical kind %q", c.Kind)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(Response{Key: key, Kind: c.Kind, Tables: tables, Markdown: markdown})
}

// executeFigure re-runs one registry experiment; the markdown is
// byte-identical to the deterministic part of cmd/experiments' output
// for the same (fig, scale, seed).
func executeFigure(ctx context.Context, c canonical) ([]experiments.Table, string, error) {
	e, ok := experiments.ByID(c.Fig)
	if !ok {
		return nil, "", fmt.Errorf("unknown figure %q", c.Fig)
	}
	sc := experiments.Quick
	if c.Scale == "full" {
		sc = experiments.Full
	}
	tables, err := e.Run(ctx, sc, c.Seed)
	if err != nil {
		return nil, "", err
	}
	return tables, experiments.RenderFigure(e, tables), nil
}

// executeSweep runs a load sweep (the service form of cmd/drainsim
// -sweep) and renders it as one table. The shard count is applied here,
// after the cache key was taken: it changes only how fast the sweep
// computes, and the rendered bytes stay identical for every value.
func executeSweep(ctx context.Context, c canonical) ([]experiments.Table, string, error) {
	params := c.Params
	if c.Shards > 0 {
		params.Shards = c.Shards
	}
	curve, err := sim.LoadSweepContext(ctx, params, c.Pattern, c.Rates, c.Warmup, c.Measure)
	if err != nil {
		return nil, "", err
	}
	t := experiments.Table{
		ID: "sweep",
		Title: fmt.Sprintf("%v, %dx%d mesh, %d faults, %s traffic",
			c.Params.Scheme, c.Params.Width, c.Params.Height, c.Params.Faults, c.Pattern),
		Columns: []string{"offered", "accepted", "avg latency", "p99"},
	}
	for _, pt := range curve {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", pt.Offered),
			fmt.Sprintf("%.4f", pt.Accepted),
			fmt.Sprintf("%.1f", pt.AvgLat),
			fmt.Sprintf("%d", pt.P99Lat),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("saturation throughput %.4f packets/node/cycle; warmup %d, measure %d cycles, seed %d.",
			curve.Saturation(), c.Warmup, c.Measure, c.Params.Seed))
	tables := []experiments.Table{t}
	return tables, t.Markdown() + "\n", nil
}
