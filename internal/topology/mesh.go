package topology

import (
	"fmt"
	"math/rand/v2"
)

// Mesh is a W×H 2D mesh topology with router r at coordinates
// (r mod W, r div W). It embeds Graph and adds coordinate helpers that
// dimension-order routing needs.
type Mesh struct {
	*Graph
	W, H int
}

// NewMesh builds a W×H 2D mesh.
func NewMesh(w, h int) (*Mesh, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topology: mesh dimensions %dx%d must be positive", w, h)
	}
	var edges []Edge
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, Edge{A: id(x, y), B: id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, Edge{A: id(x, y), B: id(x, y+1)})
			}
		}
	}
	g, err := New(w*h, edges)
	if err != nil {
		return nil, err
	}
	return &Mesh{Graph: g, W: w, H: h}, nil
}

// MustMesh is NewMesh but panics on error.
func MustMesh(w, h int) *Mesh {
	m, err := NewMesh(w, h)
	if err != nil {
		panic(err)
	}
	return m
}

// XY returns the mesh coordinates of router r.
func (m *Mesh) XY(r int) (x, y int) { return r % m.W, r / m.W }

// RouterAt returns the router ID at mesh coordinates (x, y).
func (m *Mesh) RouterAt(x, y int) int { return y*m.W + x }

// NewRing builds an n-router bidirectional ring (n ≥ 3).
func NewRing(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs at least 3 routers, got %d", n)
	}
	edges := make([]Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, Edge{A: i, B: (i + 1) % n})
	}
	return New(n, edges)
}

// NewRandomConnected builds a random connected topology over n routers
// with approximately extra additional edges beyond a random spanning tree.
// Used for property tests and for modelling random/irregular topologies
// (paper §VI "Random Topologies").
func NewRandomConnected(n, extra int, rng *rand.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: router count %d must be positive", n)
	}
	var edges []Edge
	seen := make(map[Edge]bool)
	add := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		e := Edge{A: a, B: b}
		if seen[e] {
			return false
		}
		seen[e] = true
		edges = append(edges, e)
		return true
	}
	// Random spanning tree: attach each router to a random earlier one.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.IntN(i)])
	}
	maxEdges := n * (n - 1) / 2
	for tries := 0; extra > 0 && len(edges) < maxEdges && tries < 50*extra+100; tries++ {
		if add(rng.IntN(n), rng.IntN(n)) {
			extra--
		}
	}
	return New(n, edges)
}

// NewRandomRegular builds a connected random d-regular-ish topology over
// n routers (each router gets degree d where parity permits, via a
// pairing-with-retry construction). Low-radix random topologies of this
// kind (e.g. Dodec's degree-3 graphs) offer low diameter but are hard to
// make deadlock-free with turn restrictions — the paper's §VI argues
// DRAIN suits them. Falls back to adding a spanning tree's edges if the
// pairing leaves the graph disconnected.
func NewRandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if n < 4 || d < 2 || d >= n {
		return nil, fmt.Errorf("topology: bad random-regular parameters n=%d d=%d", n, d)
	}
	for attempt := 0; attempt < 64; attempt++ {
		seen := make(map[Edge]bool)
		deg := make([]int, n)
		var edges []Edge
		// Configuration-model style pairing with rejection.
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for i := 0; i < d; i++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		for i := 0; i+1 < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			e := Edge{A: a, B: b}
			if seen[e] {
				continue
			}
			seen[e] = true
			deg[a]++
			deg[b]++
			edges = append(edges, e)
		}
		g, err := New(n, edges)
		if err != nil {
			continue
		}
		if g.Connected() {
			return g, nil
		}
	}
	// Rare fallback: random connected graph with comparable edge count.
	return NewRandomConnected(n, n*(d-2)/2, rng)
}

// NewChiplet models a chiplet-based system (paper §VI "Heterogeneous
// Systems"): several independently designed chiplet meshes connected
// through a small interposer ring. chiplets is the number of chiplet
// meshes, each of size cw×ch; each chiplet's corner router connects to one
// interposer router.
func NewChiplet(chiplets, cw, ch int) (*Graph, error) {
	if chiplets < 2 {
		return nil, fmt.Errorf("topology: chiplet system needs at least 2 chiplets, got %d", chiplets)
	}
	per := cw * ch
	n := chiplets*per + chiplets // one interposer router per chiplet
	var edges []Edge
	for c := 0; c < chiplets; c++ {
		base := c * per
		id := func(x, y int) int { return base + y*cw + x }
		for y := 0; y < ch; y++ {
			for x := 0; x < cw; x++ {
				if x+1 < cw {
					edges = append(edges, Edge{A: id(x, y), B: id(x+1, y)})
				}
				if y+1 < ch {
					edges = append(edges, Edge{A: id(x, y), B: id(x, y+1)})
				}
			}
		}
		interposer := chiplets*per + c
		edges = append(edges, Edge{A: id(0, 0), B: interposer})
		// Interposer ring; with exactly 2 chiplets the "ring" is one edge.
		if c+1 < chiplets || chiplets > 2 {
			next := chiplets*per + (c+1)%chiplets
			edges = append(edges, Edge{A: interposer, B: next})
		}
	}
	return New(n, edges)
}
