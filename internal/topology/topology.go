// Package topology models arbitrary irregular network topologies as
// undirected graphs of routers joined by bidirectional links, along with
// the derived structures the rest of the simulator needs: unidirectional
// link enumeration, BFS distance tables, spanning trees, diameters and
// fault injection that preserves connectivity.
//
// The DRAIN paper (HPCA 2020, §III-A) assumes topologies that are
// connected, use bidirectional links, and permit all turns including
// U-turns. Graph enforces the first two structurally; turn legality is a
// routing-layer concern.
package topology

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Link is one unidirectional channel of a bidirectional link.
// A bidirectional link between routers a and b contributes two Links:
// a→b and b→a. Links are the vertices of the drain-path dependency graph
// and each owns exactly one escape-VC buffer at the input port of To.
type Link struct {
	ID   int // dense index in Graph.Links()
	From int // tail router
	To   int // head router
}

// String renders the link as "from->to".
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Edge is a bidirectional link between two routers, stored with A < B.
type Edge struct{ A, B int }

// Graph is an undirected multigraph-free topology of N routers.
// The zero value is not usable; construct with New, NewMesh, etc.
type Graph struct {
	n     int
	adj   [][]int      // adjacency lists, each sorted ascending
	edges []Edge       // canonical bidirectional edges, A < B, sorted
	links []Link       // unidirectional links, dense IDs
	lidx  map[Edge]int // (from,to) -> link ID, using Edge as ordered pair
}

// New builds a graph over n routers with the given bidirectional edges.
// Duplicate edges and self-loops are rejected.
func New(n int, edges []Edge) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: router count %d must be positive", n)
	}
	g := &Graph{n: n}
	seen := make(map[Edge]bool, len(edges))
	for _, e := range edges {
		if e.A == e.B {
			return nil, fmt.Errorf("topology: self-loop at router %d", e.A)
		}
		if e.A > e.B {
			e.A, e.B = e.B, e.A
		}
		if e.A < 0 || e.B >= n {
			return nil, fmt.Errorf("topology: edge %d-%d out of range [0,%d)", e.A, e.B, n)
		}
		if seen[e] {
			return nil, fmt.Errorf("topology: duplicate edge %d-%d", e.A, e.B)
		}
		seen[e] = true
		g.edges = append(g.edges, e)
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].A != g.edges[j].A {
			return g.edges[i].A < g.edges[j].A
		}
		return g.edges[i].B < g.edges[j].B
	})
	g.rebuild()
	return g, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(n int, edges []Edge) *Graph {
	g, err := New(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// rebuild derives adjacency lists and unidirectional links from g.edges.
func (g *Graph) rebuild() {
	g.adj = make([][]int, g.n)
	for _, e := range g.edges {
		g.adj[e.A] = append(g.adj[e.A], e.B)
		g.adj[e.B] = append(g.adj[e.B], e.A)
	}
	for _, l := range g.adj {
		sort.Ints(l)
	}
	g.links = g.links[:0]
	g.lidx = make(map[Edge]int, 2*len(g.edges))
	// Unidirectional links ordered: both directions of each edge adjacent,
	// so link ID parity pairs opposing channels (ID^1 is the reverse link).
	for _, e := range g.edges {
		g.addLink(e.A, e.B)
		g.addLink(e.B, e.A)
	}
}

func (g *Graph) addLink(from, to int) {
	id := len(g.links)
	g.links = append(g.links, Link{ID: id, From: from, To: to})
	g.lidx[Edge{A: from, B: to}] = id
}

// N returns the number of routers.
func (g *Graph) N() int { return g.n }

// Edges returns the bidirectional edges in canonical order.
// The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Links returns all unidirectional links; index i has ID i.
// The returned slice must not be modified.
func (g *Graph) Links() []Link { return g.links }

// Link returns the unidirectional link with the given ID.
func (g *Graph) Link(id int) Link { return g.links[id] }

// NumLinks returns the number of unidirectional links (2 × edges).
func (g *Graph) NumLinks() int { return len(g.links) }

// Neighbors returns the sorted neighbor list of router r.
// The returned slice must not be modified.
func (g *Graph) Neighbors(r int) []int { return g.adj[r] }

// Degree returns the number of neighbors of router r.
func (g *Graph) Degree(r int) int { return len(g.adj[r]) }

// LinkID returns the ID of the unidirectional link from→to and whether it
// exists.
func (g *Graph) LinkID(from, to int) (int, bool) {
	id, ok := g.lidx[Edge{A: from, B: to}]
	return id, ok
}

// Reverse returns the link opposing l (the other channel of the same
// bidirectional link).
func (g *Graph) Reverse(l Link) Link { return g.links[l.ID^1] }

// HasEdge reports whether a bidirectional link joins a and b.
func (g *Graph) HasEdge(a, b int) bool {
	_, ok := g.lidx[Edge{A: a, B: b}]
	return ok
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	edges := make([]Edge, len(g.edges))
	copy(edges, g.edges)
	ng := &Graph{n: g.n, edges: edges}
	ng.rebuild()
	return ng
}

// WithoutEdge returns a copy of g with the bidirectional edge a-b removed.
// Removing an edge drops both of its unidirectional links (paper §III-A
// assumption 2: a faulty unidirectional link disables both directions).
func (g *Graph) WithoutEdge(a, b int) (*Graph, error) {
	if a > b {
		a, b = b, a
	}
	if !g.HasEdge(a, b) {
		return nil, fmt.Errorf("topology: no edge %d-%d to remove", a, b)
	}
	edges := make([]Edge, 0, len(g.edges)-1)
	for _, e := range g.edges {
		if e.A == a && e.B == b {
			continue
		}
		edges = append(edges, e)
	}
	return New(g.n, edges)
}

// WithEdge returns a copy of g with the bidirectional edge a-b restored.
// Because New canonicalizes edge order and rebuild derives every other
// structure from the sorted edge list, removing an edge with WithoutEdge
// and restoring it with WithEdge reproduces the original graph
// byte-for-byte (adjacency, edge order and link IDs included).
func (g *Graph) WithEdge(a, b int) (*Graph, error) {
	if a > b {
		a, b = b, a
	}
	if g.HasEdge(a, b) {
		return nil, fmt.Errorf("topology: edge %d-%d already present", a, b)
	}
	edges := make([]Edge, 0, len(g.edges)+1)
	edges = append(edges, g.edges...)
	edges = append(edges, Edge{A: a, B: b})
	return New(g.n, edges)
}

// Connected reports whether every router can reach every other router.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range g.adj[r] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == g.n
}

// BFSDist returns the hop distance from src to every router (-1 if
// unreachable).
func (g *Graph) BFSDist(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[r] {
			if dist[nb] < 0 {
				dist[nb] = dist[r] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// AllPairsDist returns dist[src][dst] hop distances for all router pairs.
func (g *Graph) AllPairsDist() [][]int {
	all := make([][]int, g.n)
	for r := range all {
		all[r] = g.BFSDist(r)
	}
	return all
}

// Diameter returns the largest hop distance between any connected pair.
func (g *Graph) Diameter() int {
	d := 0
	for r := 0; r < g.n; r++ {
		for _, v := range g.BFSDist(r) {
			if v > d {
				d = v
			}
		}
	}
	return d
}

// SpanningTree returns a BFS spanning tree rooted at root as a parent
// array (parent[root] == -1). The graph must be connected.
func (g *Graph) SpanningTree(root int) ([]int, error) {
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -2
	}
	parent[root] = -1
	queue := []int{root}
	count := 1
	for len(queue) > 0 {
		r := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[r] {
			if parent[nb] == -2 {
				parent[nb] = r
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != g.n {
		return nil, fmt.Errorf("topology: graph is disconnected; spanning tree covers %d of %d routers", count, g.n)
	}
	return parent, nil
}

// RemoveRandomLinks returns a copy of g with k random bidirectional edges
// removed, guaranteeing the result stays connected (the paper's fault
// model: "links are randomly removed ... all nodes remain connected").
// It fails if no connectivity-preserving choice exists for some step.
func RemoveRandomLinks(g *Graph, k int, rng *rand.Rand) (*Graph, error) {
	cur := g.Clone()
	for i := 0; i < k; i++ {
		candidates := removableEdges(cur)
		if len(candidates) == 0 {
			return nil, fmt.Errorf("topology: cannot remove link %d of %d without disconnecting the network", i+1, k)
		}
		e := candidates[rng.IntN(len(candidates))]
		next, err := cur.WithoutEdge(e.A, e.B)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// RemovableEdges lists edges whose removal keeps the graph connected, in
// canonical edge order. Runtime fault schedules use it to pick failure
// candidates that never partition the network.
func RemovableEdges(g *Graph) []Edge { return removableEdges(g) }

// removableEdges lists edges whose removal keeps the graph connected.
func removableEdges(g *Graph) []Edge {
	bridges := g.bridges()
	isBridge := make(map[Edge]bool, len(bridges))
	for _, b := range bridges {
		isBridge[b] = true
	}
	var out []Edge
	for _, e := range g.edges {
		if !isBridge[e] {
			out = append(out, e)
		}
	}
	return out
}

// bridges returns all bridge edges (edges whose removal disconnects the
// graph) via an iterative Tarjan lowlink computation.
func (g *Graph) bridges() []Edge {
	disc := make([]int, g.n)
	low := make([]int, g.n)
	for i := range disc {
		disc[i] = -1
	}
	var out []Edge
	timer := 0

	type frame struct {
		node, parent, idx int
	}
	for start := 0; start < g.n; start++ {
		if disc[start] >= 0 {
			continue
		}
		stack := []frame{{node: start, parent: -1}}
		disc[start], low[start] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.idx < len(g.adj[f.node]) {
				nb := g.adj[f.node][f.idx]
				f.idx++
				if nb == f.parent {
					// Skip one traversal back over the tree edge. With no
					// duplicate edges this is exactly the parent edge.
					f.parent = -1 // consume: parallel edges are impossible
					continue
				}
				if disc[nb] < 0 {
					disc[nb], low[nb] = timer, timer
					timer++
					stack = append(stack, frame{node: nb, parent: f.node})
				} else if disc[nb] < low[f.node] {
					low[f.node] = disc[nb]
				}
				continue
			}
			// Post-visit: propagate lowlink to parent, detect bridge.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				if low[f.node] < low[p.node] {
					low[p.node] = low[f.node]
				}
				if low[f.node] > disc[p.node] {
					a, b := p.node, f.node
					if a > b {
						a, b = b, a
					}
					out = append(out, Edge{A: a, B: b})
				}
			}
		}
	}
	return out
}
