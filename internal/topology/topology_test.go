package topology

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)) }

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(2, []Edge{{A: 0, B: 0}}); err == nil {
		t.Error("self-loop should fail")
	}
	if _, err := New(2, []Edge{{A: 0, B: 1}, {A: 1, B: 0}}); err == nil {
		t.Error("duplicate edge (reversed) should fail")
	}
	if _, err := New(2, []Edge{{A: 0, B: 5}}); err == nil {
		t.Error("out-of-range edge should fail")
	}
}

func TestMeshStructure(t *testing.T) {
	m := MustMesh(4, 4)
	if m.N() != 16 {
		t.Fatalf("N = %d, want 16", m.N())
	}
	// 2D mesh edge count: h*(w-1) + w*(h-1) = 4*3 + 4*3 = 24.
	if got := len(m.Edges()); got != 24 {
		t.Errorf("edges = %d, want 24", got)
	}
	if got := m.NumLinks(); got != 48 {
		t.Errorf("links = %d, want 48", got)
	}
	if !m.Connected() {
		t.Error("mesh must be connected")
	}
	if d := m.Diameter(); d != 6 {
		t.Errorf("diameter = %d, want 6", d)
	}
	// Corner degree 2, edge degree 3, center degree 4.
	wantDeg := map[int]int{0: 2, 1: 3, 5: 4}
	for r, want := range wantDeg {
		if got := m.Degree(r); got != want {
			t.Errorf("degree(%d) = %d, want %d", r, got, want)
		}
	}
	x, y := m.XY(7)
	if x != 3 || y != 1 {
		t.Errorf("XY(7) = (%d,%d), want (3,1)", x, y)
	}
	if m.RouterAt(3, 1) != 7 {
		t.Errorf("RouterAt(3,1) = %d, want 7", m.RouterAt(3, 1))
	}
}

func TestLinkIndexingAndReverse(t *testing.T) {
	g := MustMesh(3, 3).Graph
	for _, l := range g.Links() {
		id, ok := g.LinkID(l.From, l.To)
		if !ok || id != l.ID {
			t.Fatalf("LinkID(%v) = %d,%v, want %d,true", l, id, ok, l.ID)
		}
		r := g.Reverse(l)
		if r.From != l.To || r.To != l.From {
			t.Fatalf("Reverse(%v) = %v", l, r)
		}
		if g.Reverse(r) != l {
			t.Fatalf("Reverse(Reverse(%v)) != %v", l, l)
		}
	}
	if _, ok := g.LinkID(0, 8); ok {
		t.Error("LinkID for non-adjacent pair should not exist")
	}
}

func TestBFSDistMatchesManhattanOnMesh(t *testing.T) {
	m := MustMesh(5, 3)
	for src := 0; src < m.N(); src++ {
		dist := m.BFSDist(src)
		sx, sy := m.XY(src)
		for dst := 0; dst < m.N(); dst++ {
			dx, dy := m.XY(dst)
			man := abs(dx-sx) + abs(dy-sy)
			if dist[dst] != man {
				t.Fatalf("dist(%d,%d) = %d, want %d", src, dst, dist[dst], man)
			}
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestSpanningTree(t *testing.T) {
	g := MustMesh(4, 4).Graph
	parent, err := g.SpanningTree(0)
	if err != nil {
		t.Fatal(err)
	}
	if parent[0] != -1 {
		t.Errorf("root parent = %d, want -1", parent[0])
	}
	for r := 1; r < g.N(); r++ {
		p := parent[r]
		if p < 0 || !g.HasEdge(r, p) {
			t.Errorf("parent[%d] = %d is not a neighbor", r, p)
		}
	}
	// Tree property: walking parents from any node reaches the root.
	for r := 0; r < g.N(); r++ {
		cur, steps := r, 0
		for cur != 0 {
			cur = parent[cur]
			if steps++; steps > g.N() {
				t.Fatalf("parent chain from %d does not terminate", r)
			}
		}
	}
}

func TestSpanningTreeDisconnected(t *testing.T) {
	g := MustNew(4, []Edge{{A: 0, B: 1}, {A: 2, B: 3}})
	if _, err := g.SpanningTree(0); err == nil {
		t.Error("spanning tree of disconnected graph should fail")
	}
	if g.Connected() {
		t.Error("graph should report disconnected")
	}
}

func TestWithoutEdge(t *testing.T) {
	g := MustMesh(3, 3).Graph
	before := len(g.Edges())
	h, err := g.WithoutEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Edges()) != before-1 {
		t.Errorf("edges after removal = %d, want %d", len(h.Edges()), before-1)
	}
	if h.HasEdge(0, 1) {
		t.Error("edge 0-1 still present")
	}
	if len(g.Edges()) != before {
		t.Error("original graph mutated")
	}
	if _, err := h.WithoutEdge(0, 1); err == nil {
		t.Error("removing a missing edge should fail")
	}
}

func TestRemoveRandomLinksPreservesConnectivity(t *testing.T) {
	rng := testRNG(1)
	base := MustMesh(8, 8).Graph
	for k := 0; k <= 12; k += 4 {
		g, err := RemoveRandomLinks(base, k, rng)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !g.Connected() {
			t.Fatalf("k=%d: result disconnected", k)
		}
		if got, want := len(g.Edges()), len(base.Edges())-k; got != want {
			t.Fatalf("k=%d: edges = %d, want %d", k, got, want)
		}
	}
}

func TestRemoveRandomLinksRefusesDisconnection(t *testing.T) {
	ring, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	// A 4-ring tolerates exactly 1 removal; the 2nd would need a bridge cut.
	if _, err := RemoveRandomLinks(ring, 2, testRNG(2)); err == nil {
		t.Error("expected failure removing 2 links from a 4-ring")
	}
	g, err := RemoveRandomLinks(ring, 1, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("1-removal result disconnected")
	}
}

func TestBridgesOnKnownGraphs(t *testing.T) {
	// Path graph: every edge is a bridge → nothing is removable.
	path := MustNew(4, []Edge{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}})
	if got := removableEdges(path); len(got) != 0 {
		t.Errorf("path graph removable edges = %v, want none", got)
	}
	// Ring: no bridges → all removable.
	ring, _ := NewRing(5)
	if got := removableEdges(ring); len(got) != 5 {
		t.Errorf("ring removable edges = %d, want 5", len(got))
	}
	// Two triangles joined by one bridge.
	barbell := MustNew(6, []Edge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2},
		{A: 3, B: 4}, {A: 4, B: 5}, {A: 3, B: 5},
		{A: 2, B: 3},
	})
	if got := removableEdges(barbell); len(got) != 6 {
		t.Errorf("barbell removable edges = %d, want 6", len(got))
	}
}

func TestRingAndChiplet(t *testing.T) {
	if _, err := NewRing(2); err == nil {
		t.Error("ring of 2 should fail")
	}
	for _, chiplets := range []int{2, 3, 4} {
		g, err := NewChiplet(chiplets, 2, 2)
		if err != nil {
			t.Fatalf("chiplets=%d: %v", chiplets, err)
		}
		if !g.Connected() {
			t.Fatalf("chiplets=%d: disconnected", chiplets)
		}
		if got, want := g.N(), chiplets*4+chiplets; got != want {
			t.Fatalf("chiplets=%d: N=%d, want %d", chiplets, got, want)
		}
	}
	if _, err := NewChiplet(1, 2, 2); err == nil {
		t.Error("single chiplet should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := MustMesh(3, 3).Graph
	c := g.Clone()
	h, err := c.WithoutEdge(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = h
	if !g.HasEdge(0, 1) {
		t.Error("WithoutEdge on clone affected original")
	}
}

// Property: random connected graphs are connected, have valid links, and
// every BFS distance is symmetric.
func TestRandomConnectedProperties(t *testing.T) {
	f := func(seed uint64, nRaw, extraRaw uint8) bool {
		n := int(nRaw%30) + 2
		extra := int(extraRaw % 20)
		g, err := NewRandomConnected(n, extra, testRNG(seed))
		if err != nil {
			return false
		}
		if !g.Connected() {
			return false
		}
		all := g.AllPairsDist()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if all[a][b] != all[b][a] || all[a][b] < 0 {
					return false
				}
			}
		}
		// Link IDs are dense and pair opposing channels via ID^1.
		for _, l := range g.Links() {
			r := g.Link(l.ID ^ 1)
			if r.From != l.To || r.To != l.From {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: removing random links from a mesh never disconnects it and
// never increases path diversity (diameter can only grow or stay equal).
func TestFaultInjectionProperties(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw % 10)
		base := MustMesh(6, 6).Graph
		g, err := RemoveRandomLinks(base, k, testRNG(seed))
		if err != nil {
			return false
		}
		return g.Connected() && g.Diameter() >= base.Diameter()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
