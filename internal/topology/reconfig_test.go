package topology

import (
	"reflect"
	"testing"
)

// graphsIdentical compares every derived structure, not just the edge
// set: runtime reconfiguration depends on remove/restore round-trips
// reproducing adjacency order and dense link IDs byte-for-byte.
func graphsIdentical(a, b *Graph) bool {
	return a.n == b.n &&
		reflect.DeepEqual(a.edges, b.edges) &&
		reflect.DeepEqual(a.links, b.links) &&
		reflect.DeepEqual(a.adj, b.adj) &&
		reflect.DeepEqual(a.lidx, b.lidx)
}

// testGraphs returns the topology classes the round-trip properties run
// over: meshes, a chiplet composition, and random regular graphs.
func testGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	chiplet, err := NewChiplet(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRandomRegular(16, 3, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"mesh4x4":    MustMesh(4, 4).Graph,
		"mesh8x3":    MustMesh(8, 3).Graph,
		"chiplet":    chiplet,
		"random3reg": rr,
	}
}

// A single remove/restore round-trip must reproduce the original graph
// byte-for-byte, for every removable edge.
func TestWithEdgeRoundTripIdentity(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			for _, e := range RemovableEdges(g) {
				removed, err := g.WithoutEdge(e.A, e.B)
				if err != nil {
					t.Fatalf("remove %v: %v", e, err)
				}
				if !removed.Connected() {
					t.Fatalf("removing removable edge %v disconnected the graph", e)
				}
				restored, err := removed.WithEdge(e.A, e.B)
				if err != nil {
					t.Fatalf("restore %v: %v", e, err)
				}
				if !graphsIdentical(g, restored) {
					t.Fatalf("round-trip over %v did not reproduce the graph", e)
				}
			}
		})
	}
}

// Repeated random remove/restore sequences — with several edges down at
// once and restores interleaved in arbitrary order — must keep every
// intermediate graph connected and end byte-identical to the start.
func TestRemoveRestoreSequencesPreserveGraph(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := testRNG(uint64(trial)*2654435761 + 17)
				cur := g.Clone()
				var down []Edge
				for step := 0; step < 24; step++ {
					// Bias toward removal while few edges are down, so the
					// walk actually reaches multi-fault states.
					if len(down) == 0 || (len(down) < 4 && rng.IntN(2) == 0) {
						cands := RemovableEdges(cur)
						if len(cands) == 0 {
							continue
						}
						e := cands[rng.IntN(len(cands))]
						next, err := cur.WithoutEdge(e.A, e.B)
						if err != nil {
							t.Fatalf("trial %d step %d remove %v: %v", trial, step, e, err)
						}
						cur = next
						down = append(down, e)
					} else {
						i := rng.IntN(len(down))
						e := down[i]
						down = append(down[:i], down[i+1:]...)
						next, err := cur.WithEdge(e.A, e.B)
						if err != nil {
							t.Fatalf("trial %d step %d restore %v: %v", trial, step, e, err)
						}
						cur = next
					}
					if !cur.Connected() {
						t.Fatalf("trial %d step %d: graph disconnected with %d edges down", trial, step, len(down))
					}
				}
				// Restore the stragglers in random order.
				rng.Shuffle(len(down), func(i, j int) { down[i], down[j] = down[j], down[i] })
				for _, e := range down {
					next, err := cur.WithEdge(e.A, e.B)
					if err != nil {
						t.Fatalf("trial %d final restore %v: %v", trial, e, err)
					}
					cur = next
				}
				if !graphsIdentical(g, cur) {
					t.Fatalf("trial %d: remove/restore sequence did not reproduce the graph", trial)
				}
			}
		})
	}
}

// WithEdge must reject edges that are already present and ranges New
// would reject.
func TestWithEdgeRejects(t *testing.T) {
	g := MustMesh(3, 3)
	if _, err := g.WithEdge(0, 1); err == nil {
		t.Error("WithEdge accepted an existing edge")
	}
	if _, err := g.WithEdge(1, 0); err == nil {
		t.Error("WithEdge accepted an existing edge (reversed)")
	}
	if _, err := g.WithEdge(0, 99); err == nil {
		t.Error("WithEdge accepted an out-of-range router")
	}
	if _, err := g.WithEdge(4, 4); err == nil {
		t.Error("WithEdge accepted a self-loop")
	}
}
