// Package coherence implements a MESI directory cache-coherence engine
// over the NoC: private L1 caches, address-interleaved directory slices,
// bounded MSHRs, and the three message classes (request, forward,
// response) whose dependency chains produce protocol-level deadlocks on
// networks without per-class virtual networks (paper §I-A, Fig. 2).
//
// The protocol is deliberately complete enough to exhibit the real
// hazard structure: requests consumed at a directory *inject* dependent
// forwards and responses, forwards consumed at an owner inject
// responses, and responses are a pure sink — exactly the assumptions the
// paper's protocol-deadlock-freedom proof relies on (§III-D2).
package coherence

import "fmt"

// Message classes, mapped onto network classes 0..2. With VNets=3 each
// class gets its own virtual network (the proactive baseline); with
// VNets=1 they share one (DRAIN's configuration).
const (
	ClassReq  = 0 // GetS, GetM, PutM
	ClassFwd  = 1 // Inv, FwdGetS, FwdGetM
	ClassResp = 2 // Data, InvAck, DirAck, WBAck, Unblock — pure sink
	// NumClasses is the number of coherence message classes.
	NumClasses = 3
)

// MsgType enumerates coherence messages.
type MsgType int

// Message types.
const (
	GetS MsgType = iota // read miss request (core → home)
	GetM                // write miss / upgrade request (core → home)
	PutM                // modified writeback (core → home)

	Inv     // invalidate a sharer (home → sharer)
	FwdGetS // forward read to owner (home → owner)
	FwdGetM // forward write to owner (home → owner)

	Data    // data response (home/owner → requester)
	InvAck  // invalidation ack (sharer → requester)
	DirAck  // owner's ack to the directory (owner → home)
	WBAck   // writeback ack (home → writer)
	Unblock // transaction completion (requester → home)
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case GetS:
		return "GetS"
	case GetM:
		return "GetM"
	case PutM:
		return "PutM"
	case Inv:
		return "Inv"
	case FwdGetS:
		return "FwdGetS"
	case FwdGetM:
		return "FwdGetM"
	case Data:
		return "Data"
	case InvAck:
		return "InvAck"
	case DirAck:
		return "DirAck"
	case WBAck:
		return "WBAck"
	case Unblock:
		return "Unblock"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Class returns the message class of a type.
func (t MsgType) Class() int {
	switch t {
	case GetS, GetM, PutM:
		return ClassReq
	case Inv, FwdGetS, FwdGetM:
		return ClassFwd
	default:
		return ClassResp
	}
}

// Flits returns the packet size: data-bearing messages are 5 flits
// (64B line + header over 128-bit links, Table II), control is 1 flit.
func (t MsgType) Flits() int {
	if t == Data || t == PutM {
		return 5
	}
	return 1
}

// Msg is a coherence message (carried as noc.Packet payload).
type Msg struct {
	Type      MsgType
	Addr      int64
	Requester int  // original requester (for forwards and acks)
	Acks      int  // expected InvAck count (Data for GetM)
	Excl      bool // Data grants Exclusive (directory had no sharers)
}

// String renders the message compactly.
func (m Msg) String() string {
	return fmt.Sprintf("%v@%d(req=%d,acks=%d)", m.Type, m.Addr, m.Requester, m.Acks)
}
