package coherence

import (
	"math/rand/v2"
	"testing"

	"drain/internal/topology"
)

// warmGen exercises prewarming: private-region accesses should hit after
// install.
type warmGen struct {
	testGen
	lines int64
}

func (g warmGen) PrewarmLines(core int) []int64 {
	out := make([]int64, 0, g.lines)
	for i := int64(0); i < g.lines; i++ {
		out = append(out, int64(core)<<20+i)
	}
	return out
}

func TestPrewarmInstallsLines(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 1)
	g := warmGen{testGen: testGen{issue: 0, private: 64, shared: 16}, lines: 32}
	sys, err := New(n, Config{Gen: g, L1Lines: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c, nd := range sys.nodes {
		if nd.lines.Len() != 32 {
			t.Fatalf("core %d has %d lines after prewarm, want 32", c, nd.lines.Len())
		}
		nd.lines.Each(func(addr int64, st LineState) bool {
			if st != Exclusive {
				t.Fatalf("prewarmed line %d in state %d, want Exclusive", addr, st)
			}
			dl, ok := sys.nodes[sys.home(addr)].dir.Get(addr)
			if !ok || dl.owner != c || dl.state != Modified {
				t.Fatalf("directory does not track core %d as owner of %d", c, addr)
			}
			return true
		})
	}
}

func TestPrewarmRespectsCapacity(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 2)
	g := warmGen{testGen: testGen{issue: 0, private: 64, shared: 16}, lines: 1000}
	sys, err := New(n, Config{Gen: g, L1Lines: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Prewarm caps at 3/4 of L1 capacity.
	for c, nd := range sys.nodes {
		if nd.lines.Len() > 48 {
			t.Fatalf("core %d prewarmed %d lines; cap is 48", c, nd.lines.Len())
		}
	}
}

func TestPrewarmedAccessesHit(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 3)
	// All-private accesses over a prewarmed region: every access hits.
	g := warmGen{testGen: testGen{issue: 0.5, private: 32, shared: 16, sharedFrac: 0}, lines: 32}
	sys, err := New(n, Config{Gen: g, L1Lines: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		n.Step()
		sys.Tick()
	}
	st := sys.Stats()
	if st.Misses != 0 {
		t.Errorf("prewarmed private stream missed %d times", st.Misses)
	}
	if st.Hits == 0 {
		t.Error("no hits recorded")
	}
	if st.MsgsSent != 0 {
		t.Errorf("hit-only stream sent %d messages", st.MsgsSent)
	}
}

func TestDebugSnapshot(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 4)
	sys, err := New(n, Config{
		Gen:  testGen{issue: 0.5, sharedFrac: 0.5, writeFrac: 0.5, shared: 8, private: 64},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := sys.DebugSnapshot()
	if empty.PendingMSHRs != 0 || empty.NetPackets != 0 {
		t.Errorf("fresh system not empty: %+v", empty)
	}
	for i := 0; i < 50; i++ {
		n.Step()
		sys.Tick()
	}
	busy := sys.DebugSnapshot()
	if busy.PendingMSHRs == 0 && busy.NetPackets == 0 {
		t.Error("active system shows no in-flight state")
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	// Two readers share a line, then one writes: the upgrade must
	// invalidate the other sharer and end with Modified at the writer.
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 6)
	sys, err := New(n, Config{Gen: testGen{issue: 0, private: 4, shared: 4}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	addr := int64(2) // homed at node 2
	lineAt := func(c int) LineState {
		st, _ := sys.nodes[c].lines.Get(addr)
		return st
	}
	readAt := func(c int) {
		nd := sys.nodes[c]
		nd.mshrs.Put(addr, &mshr{addr: addr})
		nd.opsIssued++
		sys.send(c, sys.home(addr), Msg{Type: GetS, Addr: addr, Requester: c})
		for i := 0; i < 1000 && lineAt(c) == Invalid; i++ {
			n.Step()
			sys.Tick()
		}
	}
	readAt(0)
	settle(t, n, sys)
	readAt(1)
	settle(t, n, sys)
	if lineAt(0) != Shared || lineAt(1) != Shared {
		t.Fatalf("states after two reads: %d, %d (want Shared, Shared)",
			lineAt(0), lineAt(1))
	}
	// Writer at node 1: S→M upgrade via GetM.
	nd1 := sys.nodes[1]
	nd1.lines.Delete(addr)
	nd1.mshrs.Put(addr, &mshr{addr: addr, write: true})
	nd1.opsIssued++
	sys.send(1, sys.home(addr), Msg{Type: GetM, Addr: addr, Requester: 1})
	for i := 0; i < 1000 && lineAt(1) != Modified; i++ {
		n.Step()
		sys.Tick()
	}
	settle(t, n, sys)
	if lineAt(1) != Modified {
		t.Fatal("writer did not reach Modified")
	}
	if _, has := sys.nodes[0].lines.Get(addr); has {
		t.Error("old sharer not invalidated")
	}
	if sys.stats.MsgsByType[Inv] == 0 {
		t.Error("no invalidation sent for the upgrade")
	}
}

func TestStalePutMAfterForward(t *testing.T) {
	// An owner can evict (PutM) while a FwdGetS races toward it; the
	// protocol must absorb the stale writeback without wedging.
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 7)
	sys, err := New(n, Config{Gen: testGen{issue: 0, private: 4, shared: 4}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	addr := int64(3)
	// Owner at node 0 (simulate established state).
	sys.nodes[0].lines.Put(addr, Modified)
	sys.nodes[sys.home(addr)].dir.Put(addr, &dirLine{state: Modified, owner: 0, sharers: newSharerSet(len(sys.nodes))})
	// Owner writes back at the same time a reader requests.
	sys.nodes[0].lines.Delete(addr)
	sys.send(0, sys.home(addr), Msg{Type: PutM, Addr: addr, Requester: 0})
	nd1 := sys.nodes[1]
	nd1.mshrs.Put(addr, &mshr{addr: addr})
	nd1.opsIssued++
	sys.send(1, sys.home(addr), Msg{Type: GetS, Addr: addr, Requester: 1})
	for i := 0; i < 2000 && nd1.opsCompleted == 0; i++ {
		n.Step()
		sys.Tick()
	}
	if nd1.opsCompleted != 1 {
		t.Fatal("read racing a writeback never completed")
	}
	settle(t, n, sys)
}

func TestMsgClassAndSize(t *testing.T) {
	classes := map[MsgType]int{
		GetS: ClassReq, GetM: ClassReq, PutM: ClassReq,
		Inv: ClassFwd, FwdGetS: ClassFwd, FwdGetM: ClassFwd,
		Data: ClassResp, InvAck: ClassResp, DirAck: ClassResp,
		WBAck: ClassResp, Unblock: ClassResp,
	}
	for mt, want := range classes {
		if mt.Class() != want {
			t.Errorf("%v class = %d, want %d", mt, mt.Class(), want)
		}
		if mt.String() == "" {
			t.Errorf("%v has empty name", mt)
		}
	}
	if Data.Flits() != 5 || PutM.Flits() != 5 {
		t.Error("data-bearing messages must be 5 flits")
	}
	if GetS.Flits() != 1 || Inv.Flits() != 1 || Unblock.Flits() != 1 {
		t.Error("control messages must be 1 flit")
	}
}

func TestHomeDistribution(t *testing.T) {
	m := topology.MustMesh(4, 4)
	n := protoNet(t, m.Graph, m, 3, 8)
	sys, err := New(n, Config{Gen: testGen{issue: 0, private: 4, shared: 4}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 16)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 16000; i++ {
		counts[sys.home(rng.Int64N(1<<40))]++
	}
	for r, c := range counts {
		if c < 600 || c > 1400 {
			t.Errorf("home %d receives %d of 16000 addresses; interleaving skewed", r, c)
		}
	}
}
