package coherence

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"drain/internal/noc"
)

// LineState is an L1 MESI state.
type LineState byte

// L1 line states.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// AccessGen produces the memory reference stream for one core.
type AccessGen interface {
	// Next returns the line address and whether the access is a write.
	Next(core int, rng *rand.Rand) (addr int64, write bool)
	// IssueProb is the per-cycle probability that the core issues a
	// memory access (models compute/memory intensity).
	IssueProb() float64
}

// Prewarmer is an optional AccessGen extension: PrewarmLines lists line
// addresses to install in a core's cache before simulation starts,
// suppressing the cold-start miss burst that full-system simulators
// avoid with checkpoint warm-up.
type Prewarmer interface {
	PrewarmLines(core int) []int64
}

// Config parameterizes the coherence system.
type Config struct {
	// Gen drives each core's reference stream.
	Gen AccessGen
	// MSHRs bounds outstanding misses per core (paper §III-A: MSHRs
	// bound per-class packet counts, a protocol-deadlock assumption).
	MSHRs int
	// L1Lines is the private cache capacity in lines.
	L1Lines int
	// OpsTarget ends the run after every core completes this many memory
	// accesses (0 = run forever; the harness then measures throughput).
	OpsTarget int64
	// Seed drives the per-core reference streams.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.MSHRs <= 0 {
		c.MSHRs = 4
	}
	if c.L1Lines <= 0 {
		c.L1Lines = 256
	}
}

// mshr tracks one outstanding miss.
type mshr struct {
	addr      int64
	write     bool
	needAcks  int
	gotAcks   int
	gotData   bool
	dataExcl  bool
	issuedAt  int64
	completed bool // waiting only to send Unblock / perform fill
}

// dirLine is the directory's view of one cache line.
type dirLine struct {
	state   LineState // Invalid, Shared or Modified (dir-level)
	owner   int
	sharers map[int]bool
	// busy: a transaction is in flight; new requests for the line stall.
	busy       bool
	needDirAck bool
	gotDirAck  bool
	gotUnblock bool
}

// node is one core+L1+directory-slice tile.
type node struct {
	lines map[int64]LineState
	mshrs map[int64]*mshr
	dir   map[int64]*dirLine

	opsIssued    int64
	opsCompleted int64
	hits         int64
	misses       int64
	blockedCyc   int64 // cycles the core wanted to issue but could not
}

// Stats aggregates system-level protocol statistics.
type Stats struct {
	OpsIssued    int64
	OpsCompleted int64
	Hits         int64
	Misses       int64
	TxCompleted  int64 // coherence transactions finished (MSHR retired)
	BlockedCyc   int64
	MsgsSent     int64
	MsgsByType   [Unblock + 1]int64
}

// System couples cores, caches and directories to a network.
type System struct {
	cfg   Config
	net   *noc.Network
	nodes []*node
	rng   *rand.Rand
	stats Stats

	// Scratch for sorting map keys before order-sensitive operations
	// (Go map iteration order is randomized per run; anything that sends
	// messages or consumes RNG draws in map order would make runs with
	// the same seed diverge).
	scrAddrs   []int64
	scrSharers []int
}

// New builds a coherence system over net; the network must be configured
// with Classes ≥ 3.
func New(net *noc.Network, cfg Config) (*System, error) {
	cfg.setDefaults()
	if net.Config().Classes < NumClasses {
		return nil, fmt.Errorf("coherence: network has %d classes, need %d", net.Config().Classes, NumClasses)
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("coherence: Config.Gen is required")
	}
	s := &System{
		cfg: cfg,
		net: net,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5bd1e995)),
	}
	for i := 0; i < net.Graph().N(); i++ {
		s.nodes = append(s.nodes, &node{
			lines: make(map[int64]LineState),
			mshrs: make(map[int64]*mshr),
			dir:   make(map[int64]*dirLine),
		})
	}
	if pw, ok := cfg.Gen.(Prewarmer); ok {
		s.prewarm(pw)
	}
	return s, nil
}

// prewarm installs lines directly into caches and directories (zero
// network traffic), leaving a quarter of the L1 free for shared lines.
func (s *System) prewarm(pw Prewarmer) {
	limit := s.cfg.L1Lines * 3 / 4
	for c, nd := range s.nodes {
		for i, addr := range pw.PrewarmLines(c) {
			if i >= limit {
				break
			}
			nd.lines[addr] = Exclusive
			home := s.nodes[s.home(addr)]
			home.dir[addr] = &dirLine{state: Modified, owner: c, sharers: make(map[int]bool)}
		}
	}
}

// Stats returns a snapshot of system statistics.
func (s *System) Stats() Stats {
	st := s.stats
	for _, nd := range s.nodes {
		st.OpsIssued += nd.opsIssued
		st.OpsCompleted += nd.opsCompleted
		st.Hits += nd.hits
		st.Misses += nd.misses
		st.BlockedCyc += nd.blockedCyc
	}
	return st
}

// Done reports whether every core reached OpsTarget.
func (s *System) Done() bool {
	if s.cfg.OpsTarget <= 0 {
		return false
	}
	for _, nd := range s.nodes {
		if nd.opsCompleted < s.cfg.OpsTarget {
			return false
		}
	}
	return true
}

// Snapshot is a diagnostic view of protocol state, for debugging stalls.
type Snapshot struct {
	PendingMSHRs   int // outstanding misses across all cores
	CompletedWait  int // MSHRs finished but waiting for injection capacity
	BusyDirLines   int // directory lines blocked on Unblock/DirAck
	InjQueued      int // messages waiting in injection queues
	EjQueued       int // messages waiting in ejection queues
	NetPackets     int // everything the network still holds
	SampleBusyAddr int64 // highest blocked directory address, -1 if none
	SampleMSHRAddr int64 // highest outstanding miss address, -1 if none
}

// DebugSnapshot summarizes where in-flight protocol state is stuck.
func (s *System) DebugSnapshot() Snapshot {
	var snap Snapshot
	snap.SampleBusyAddr, snap.SampleMSHRAddr = -1, -1
	for r, nd := range s.nodes {
		snap.PendingMSHRs += len(nd.mshrs)
		// The sample fields take the maximum address rather than the
		// last one visited, so the snapshot is identical across runs
		// despite Go's randomized map iteration order.
		//drain:orderfree count and max-reduce only; both are commutative
		for _, ms := range nd.mshrs {
			if ms.completed {
				snap.CompletedWait++
			}
			snap.SampleMSHRAddr = max(snap.SampleMSHRAddr, ms.addr)
		}
		//drain:orderfree count and max-reduce only; both are commutative
		for addr, dl := range nd.dir {
			if dl.busy {
				snap.BusyDirLines++
				snap.SampleBusyAddr = max(snap.SampleBusyAddr, addr)
			}
		}
		for c := 0; c < NumClasses; c++ {
			snap.InjQueued += s.net.InjQueueLen(r, c)
			snap.EjQueued += s.net.EjectedLen(r, c)
		}
	}
	snap.NetPackets = s.net.InFlightPackets()
	return snap
}

// home returns the directory slice for an address.
func (s *System) home(addr int64) int {
	h := int(addr % int64(len(s.nodes)))
	if h < 0 {
		h += len(s.nodes)
	}
	return h
}

// send injects a coherence message; the caller must have verified
// capacity with canSend.
func (s *System) send(from int, to int, m Msg) {
	p := s.net.NewPacket(from, to, m.Type.Class(), m.Type.Flits())
	p.Payload = m
	if !s.net.Inject(p) {
		panic(fmt.Sprintf("coherence: injection failed after capacity check (%v)", m))
	}
	s.stats.MsgsSent++
	s.stats.MsgsByType[m.Type]++
}

// canSend reports whether n more messages of the class fit in node r's
// injection queue.
func (s *System) canSend(r, class, n int) bool {
	cap := s.net.Config().InjectCap
	if cap == 0 {
		return true
	}
	return s.net.InjQueueLen(r, class)+n <= cap
}

// Tick advances the protocol by one cycle: consume deliverable messages,
// then let cores issue. Call once per network cycle (before or after
// Network.Step; the order only shifts latencies by one cycle).
func (s *System) Tick() {
	for r := range s.nodes {
		s.consumeResponses(r)
		s.consumeForwards(r)
		s.consumeRequests(r)
		s.retryCompletions(r)
	}
	for r := range s.nodes {
		s.coreIssue(r)
	}
}

// ---- response handling (pure sink: never needs injection capacity) ----

func (s *System) consumeResponses(r int) {
	// Responses are always consumable; drain the whole queue (sink class,
	// paper §III-D2: "the ejection queue of a sink message class can
	// always be consumed").
	for {
		p := s.net.PopEjected(r, ClassResp)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		switch m.Type {
		case Data:
			s.onData(r, m)
		case InvAck:
			s.onInvAck(r, m)
		case DirAck:
			s.onDirAck(r, m)
		case Unblock:
			s.onUnblock(r, m)
		case WBAck:
			// Writeback complete; nothing held.
		default:
			panic("coherence: unexpected response " + m.Type.String())
		}
	}
}

func (s *System) onData(r int, m Msg) {
	nd := s.nodes[r]
	ms := nd.mshrs[m.Addr]
	if ms == nil {
		return // stale (transaction raced with writeback); drop
	}
	ms.gotData = true
	ms.dataExcl = m.Excl
	ms.needAcks = m.Acks
	s.maybeComplete(r, ms)
}

func (s *System) onInvAck(r int, m Msg) {
	nd := s.nodes[r]
	ms := nd.mshrs[m.Addr]
	if ms == nil {
		return
	}
	ms.gotAcks++
	s.maybeComplete(r, ms)
}

func (s *System) onDirAck(r int, m Msg) {
	if dl := s.nodes[r].dir[m.Addr]; dl != nil {
		dl.gotDirAck = true
		maybeUnblockDir(dl)
	}
}

func (s *System) onUnblock(r int, m Msg) {
	if dl := s.nodes[r].dir[m.Addr]; dl != nil {
		dl.gotUnblock = true
		maybeUnblockDir(dl)
	}
}

func maybeUnblockDir(dl *dirLine) {
	if dl.busy && dl.gotUnblock && (!dl.needDirAck || dl.gotDirAck) {
		dl.busy = false
		dl.needDirAck = false
		dl.gotDirAck = false
		dl.gotUnblock = false
	}
}

// maybeComplete retires an MSHR whose data and acks have all arrived.
// Completion needs injection capacity for the Unblock and possibly a
// writeback; if unavailable it retries next cycle (retryCompletions).
func (s *System) maybeComplete(r int, ms *mshr) {
	if !ms.gotData || ms.gotAcks < ms.needAcks {
		return
	}
	ms.completed = true
	s.tryFinish(r, ms)
}

// tryFinish performs the fill + Unblock once capacity allows.
func (s *System) tryFinish(r int, ms *mshr) bool {
	nd := s.nodes[r]
	// Count needed injections: Unblock (resp) always; PutM (req) if the
	// fill must evict a Modified line.
	victim, needWB := s.pickVictim(r)
	respNeeded, reqNeeded := 1, 0
	if needWB {
		reqNeeded = 1
	}
	if !s.canSend(r, ClassResp, respNeeded) || (reqNeeded > 0 && !s.canSend(r, ClassReq, reqNeeded)) {
		return false
	}
	if needWB {
		delete(nd.lines, victim)
		s.send(r, s.home(victim), Msg{Type: PutM, Addr: victim, Requester: r})
	} else if victim >= 0 {
		delete(nd.lines, victim) // silent S/E eviction
	}
	if ms.write {
		nd.lines[ms.addr] = Modified
	} else if ms.dataExcl {
		nd.lines[ms.addr] = Exclusive
	} else {
		nd.lines[ms.addr] = Shared
	}
	s.send(r, s.home(ms.addr), Msg{Type: Unblock, Addr: ms.addr, Requester: r})
	delete(nd.mshrs, ms.addr)
	nd.opsCompleted++
	s.stats.TxCompleted++
	return true
}

// pickVictim chooses an eviction victim if the L1 is full; returns
// (-1,false) when no eviction is needed.
func (s *System) pickVictim(r int) (int64, bool) {
	nd := s.nodes[r]
	if len(nd.lines) < s.cfg.L1Lines {
		return -1, false
	}
	// Random replacement, independent of map iteration order: one RNG
	// draw salts an integer hash and the line with the smallest hash is
	// evicted. (Reservoir sampling over the map is not reproducible —
	// the draw count is fixed but which element survives follows Go's
	// per-run-randomized iteration order.)
	salt := s.rng.Uint64()
	victim, best, found := int64(0), uint64(0), false
	//drain:orderfree min-hash reduction with address tie-break selects the same victim under any visit order
	for a := range nd.lines {
		h := mix64(uint64(a) ^ salt)
		if !found || h < best || (h == best && a < victim) {
			victim, best, found = a, h, true
		}
	}
	return victim, nd.lines[victim] == Modified
}

// mix64 is the splitmix64 finalizer, used as the victim-selection hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// retryCompletions re-attempts fills blocked on injection capacity, in
// address order: when capacity admits only some of them, every run with
// the same seed must finish the same ones first.
func (s *System) retryCompletions(r int) {
	nd := s.nodes[r]
	addrs := s.scrAddrs[:0]
	for a, ms := range nd.mshrs {
		if ms.completed {
			addrs = append(addrs, a)
		}
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		s.tryFinish(r, nd.mshrs[a])
	}
	s.scrAddrs = addrs[:0]
}

// ---- forward handling (consuming injects responses) ----

func (s *System) consumeForwards(r int) {
	nd := s.nodes[r]
	for {
		p := s.net.PeekEjected(r, ClassFwd)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		switch m.Type {
		case Inv:
			if !s.canSend(r, ClassResp, 1) {
				return // stall: ack does not fit
			}
			s.net.PopEjected(r, ClassFwd)
			delete(nd.lines, m.Addr)
			s.send(r, m.Requester, Msg{Type: InvAck, Addr: m.Addr, Requester: m.Requester})
		case FwdGetS, FwdGetM:
			// Owner supplies Data to the requester and acknowledges the
			// directory: two responses.
			if !s.canSend(r, ClassResp, 2) {
				return
			}
			s.net.PopEjected(r, ClassFwd)
			if m.Type == FwdGetS {
				nd.lines[m.Addr] = Shared
			} else {
				delete(nd.lines, m.Addr)
			}
			s.send(r, m.Requester, Msg{Type: Data, Addr: m.Addr, Requester: m.Requester})
			s.send(r, s.home(m.Addr), Msg{Type: DirAck, Addr: m.Addr, Requester: m.Requester})
		default:
			panic("coherence: unexpected forward " + m.Type.String())
		}
	}
}

// ---- request handling at the directory ----

func (s *System) consumeRequests(r int) {
	nd := s.nodes[r]
	for {
		p := s.net.PeekEjected(r, ClassReq)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		dl := nd.dir[m.Addr]
		if dl == nil {
			dl = &dirLine{state: Invalid, sharers: make(map[int]bool)}
			nd.dir[m.Addr] = dl
		}
		if m.Type != PutM && dl.busy {
			return // head-of-line stall until Unblock arrives
		}
		if !s.processRequest(r, m, dl) {
			return // injection capacity stall
		}
		s.net.PopEjected(r, ClassReq)
	}
}

// processRequest applies one directory request; returns false when
// injection capacity is insufficient (leave the message queued).
func (s *System) processRequest(r int, m Msg, dl *dirLine) bool {
	c := m.Requester
	switch m.Type {
	case GetS:
		switch dl.state {
		case Invalid, Shared:
			if !s.canSend(r, ClassResp, 1) {
				return false
			}
			excl := dl.state == Invalid
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: excl})
			if excl {
				dl.state = Modified // E at the core: dir tracks as owned
				dl.owner = c
			} else {
				dl.sharers[c] = true
			}
			dl.busy, dl.gotUnblock = true, false
		case Modified:
			if dl.owner == c {
				// Requester already owns it (stale request after silent
				// upgrade); just complete it.
				if !s.canSend(r, ClassResp, 1) {
					return false
				}
				s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
				dl.busy, dl.gotUnblock = true, false
				return true
			}
			if !s.canSend(r, ClassFwd, 1) {
				return false
			}
			s.send(r, dl.owner, Msg{Type: FwdGetS, Addr: m.Addr, Requester: c})
			dl.state = Shared
			dl.sharers[dl.owner] = true
			dl.sharers[c] = true
			dl.owner = -1
			dl.busy, dl.needDirAck, dl.gotDirAck, dl.gotUnblock = true, true, false, false
		}
	case GetM:
		switch dl.state {
		case Invalid:
			if !s.canSend(r, ClassResp, 1) {
				return false
			}
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
			dl.state, dl.owner = Modified, c
			dl.busy, dl.gotUnblock = true, false
		case Shared:
			// Collect and sort the sharers: sending the invalidations in
			// map order would vary the injection order between runs.
			sharers := s.scrSharers[:0]
			for sh := range dl.sharers {
				if sh != c {
					sharers = append(sharers, sh)
				}
			}
			slices.Sort(sharers)
			invs := len(sharers)
			if !s.canSend(r, ClassResp, 1) || !s.canSend(r, ClassFwd, invs) {
				s.scrSharers = sharers[:0]
				return false
			}
			for _, sh := range sharers {
				s.send(r, sh, Msg{Type: Inv, Addr: m.Addr, Requester: c})
			}
			s.scrSharers = sharers[:0]
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Acks: invs, Excl: true})
			dl.sharers = make(map[int]bool)
			dl.state, dl.owner = Modified, c
			dl.busy, dl.gotUnblock = true, false
		case Modified:
			if dl.owner == c {
				if !s.canSend(r, ClassResp, 1) {
					return false
				}
				s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
				dl.busy, dl.gotUnblock = true, false
				return true
			}
			if !s.canSend(r, ClassFwd, 1) {
				return false
			}
			s.send(r, dl.owner, Msg{Type: FwdGetM, Addr: m.Addr, Requester: c})
			dl.owner = c
			dl.busy, dl.needDirAck, dl.gotDirAck, dl.gotUnblock = true, true, false, false
		}
	case PutM:
		if !s.canSend(r, ClassResp, 1) {
			return false
		}
		if dl.state == Modified && dl.owner == c && !dl.busy {
			dl.state = Invalid
			dl.owner = -1
		}
		s.send(r, c, Msg{Type: WBAck, Addr: m.Addr, Requester: c})
	default:
		panic("coherence: unexpected request " + m.Type.String())
	}
	return true
}

// ---- core issue ----

func (s *System) coreIssue(r int) {
	nd := s.nodes[r]
	if s.cfg.OpsTarget > 0 && nd.opsIssued >= s.cfg.OpsTarget {
		return
	}
	if s.rng.Float64() >= s.cfg.Gen.IssueProb() {
		return
	}
	addr, write := s.cfg.Gen.Next(r, s.rng)
	st, ok := nd.lines[addr]
	if ok && (!write && st != Invalid || write && (st == Exclusive || st == Modified)) {
		// Hit. E→M upgrade on write is silent at the L1.
		if write {
			nd.lines[addr] = Modified
		}
		nd.hits++
		nd.opsIssued++
		nd.opsCompleted++
		return
	}
	if write && st == Shared {
		delete(nd.lines, addr) // upgrade handled as a fresh GetM below
	}
	// Miss: need an MSHR and request injection capacity.
	if _, pending := nd.mshrs[addr]; pending {
		nd.blockedCyc++
		return
	}
	if len(nd.mshrs) >= s.cfg.MSHRs || !s.canSend(r, ClassReq, 1) {
		nd.blockedCyc++
		return
	}
	ms := &mshr{addr: addr, write: write, issuedAt: s.net.Cycle()}
	nd.mshrs[addr] = ms
	nd.opsIssued++
	nd.misses++
	t := GetS
	if write {
		t = GetM
	}
	s.send(r, s.home(addr), Msg{Type: t, Addr: addr, Requester: r})
}
