package coherence

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"slices"

	"drain/internal/dense"
	"drain/internal/noc"
)

// LineState is an L1 MESI state.
type LineState byte

// L1 line states.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// AccessGen produces the memory reference stream for one core.
type AccessGen interface {
	// Next returns the line address and whether the access is a write.
	Next(core int, rng *rand.Rand) (addr int64, write bool)
	// IssueProb is the per-cycle probability that the core issues a
	// memory access (models compute/memory intensity).
	IssueProb() float64
}

// Prewarmer is an optional AccessGen extension: PrewarmLines lists line
// addresses to install in a core's cache before simulation starts,
// suppressing the cold-start miss burst that full-system simulators
// avoid with checkpoint warm-up.
type Prewarmer interface {
	PrewarmLines(core int) []int64
}

// Config parameterizes the coherence system.
type Config struct {
	// Gen drives each core's reference stream.
	Gen AccessGen
	// MSHRs bounds outstanding misses per core (paper §III-A: MSHRs
	// bound per-class packet counts, a protocol-deadlock assumption).
	MSHRs int
	// L1Lines is the private cache capacity in lines.
	L1Lines int
	// OpsTarget ends the run after every core completes this many memory
	// accesses (0 = run forever; the harness then measures throughput).
	OpsTarget int64
	// Seed drives the per-core reference streams.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.MSHRs <= 0 {
		c.MSHRs = 4
	}
	if c.L1Lines <= 0 {
		c.L1Lines = 256
	}
}

// mshr tracks one outstanding miss.
type mshr struct {
	addr      int64
	write     bool
	needAcks  int
	gotAcks   int
	gotData   bool
	dataExcl  bool
	issuedAt  int64
	completed bool // waiting only to send Unblock / perform fill
}

// sharerSet is a core-index bitset: the directory's sharer list.
// Iteration ascends by core index, which is exactly the order the old
// map representation produced after its collect-and-sort pass — so the
// invalidation send order (and every RNG-visible effect downstream) is
// unchanged.
type sharerSet []uint64

func newSharerSet(cores int) sharerSet { return make(sharerSet, (cores+63)/64) }

func (ss sharerSet) add(c int) { ss[c>>6] |= 1 << (c & 63) }

func (ss sharerSet) reset() {
	for i := range ss {
		ss[i] = 0
	}
}

// dirLine is the directory's view of one cache line.
type dirLine struct {
	state   LineState // Invalid, Shared or Modified (dir-level)
	owner   int
	sharers sharerSet
	// busy: a transaction is in flight; new requests for the line stall.
	busy       bool
	needDirAck bool
	gotDirAck  bool
	gotUnblock bool
}

// node is one core+L1+directory-slice tile. The three per-address
// structures are open-addressed dense tables (internal/dense), not maps:
// the L1 lookup, MSHR check and directory fetch run on every consumed
// message and every issued access, and the dense tables keep that path
// free of mapaccess/aeshash work and of per-run iteration nondeterminism.
type node struct {
	lines dense.Table[LineState]
	mshrs dense.Table[*mshr]
	dir   dense.Table[*dirLine]

	opsIssued    int64
	opsCompleted int64
	hits         int64
	misses       int64
	blockedCyc   int64 // cycles the core wanted to issue but could not
}

// Stats aggregates system-level protocol statistics.
type Stats struct {
	OpsIssued    int64
	OpsCompleted int64
	Hits         int64
	Misses       int64
	TxCompleted  int64 // coherence transactions finished (MSHR retired)
	BlockedCyc   int64
	MsgsSent     int64
	MsgsByType   [Unblock + 1]int64
}

// System couples cores, caches and directories to a network.
type System struct {
	cfg   Config
	net   *noc.Network
	nodes []*node
	rng   *rand.Rand
	stats Stats

	// Scratch buffers for order-sensitive collection passes: completed
	// MSHR addresses (sorted — retry priority is address order) and the
	// sharer list walked off a dirLine's bitset (already ascending).
	scrAddrs   []int64
	scrSharers []int
}

// New builds a coherence system over net; the network must be configured
// with Classes ≥ 3.
func New(net *noc.Network, cfg Config) (*System, error) {
	cfg.setDefaults()
	if net.Config().Classes < NumClasses {
		return nil, fmt.Errorf("coherence: network has %d classes, need %d", net.Config().Classes, NumClasses)
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("coherence: Config.Gen is required")
	}
	s := &System{
		cfg: cfg,
		net: net,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5bd1e995)),
	}
	for i := 0; i < net.Graph().N(); i++ {
		s.nodes = append(s.nodes, &node{})
	}
	if pw, ok := cfg.Gen.(Prewarmer); ok {
		s.prewarm(pw)
	}
	return s, nil
}

// prewarm installs lines directly into caches and directories (zero
// network traffic), leaving a quarter of the L1 free for shared lines.
func (s *System) prewarm(pw Prewarmer) {
	limit := s.cfg.L1Lines * 3 / 4
	for c, nd := range s.nodes {
		for i, addr := range pw.PrewarmLines(c) {
			if i >= limit {
				break
			}
			nd.lines.Put(addr, Exclusive)
			home := s.nodes[s.home(addr)]
			home.dir.Put(addr, &dirLine{state: Modified, owner: c, sharers: newSharerSet(len(s.nodes))})
		}
	}
}

// Stats returns a snapshot of system statistics.
func (s *System) Stats() Stats {
	st := s.stats
	for _, nd := range s.nodes {
		st.OpsIssued += nd.opsIssued
		st.OpsCompleted += nd.opsCompleted
		st.Hits += nd.hits
		st.Misses += nd.misses
		st.BlockedCyc += nd.blockedCyc
	}
	return st
}

// Done reports whether every core reached OpsTarget.
func (s *System) Done() bool {
	if s.cfg.OpsTarget <= 0 {
		return false
	}
	for _, nd := range s.nodes {
		if nd.opsCompleted < s.cfg.OpsTarget {
			return false
		}
	}
	return true
}

// Snapshot is a diagnostic view of protocol state, for debugging stalls.
type Snapshot struct {
	PendingMSHRs   int   // outstanding misses across all cores
	CompletedWait  int   // MSHRs finished but waiting for injection capacity
	BusyDirLines   int   // directory lines blocked on Unblock/DirAck
	InjQueued      int   // messages waiting in injection queues
	EjQueued       int   // messages waiting in ejection queues
	NetPackets     int   // everything the network still holds
	SampleBusyAddr int64 // highest blocked directory address, -1 if none
	SampleMSHRAddr int64 // highest outstanding miss address, -1 if none
}

// DebugSnapshot summarizes where in-flight protocol state is stuck.
func (s *System) DebugSnapshot() Snapshot {
	var snap Snapshot
	snap.SampleBusyAddr, snap.SampleMSHRAddr = -1, -1
	for r, nd := range s.nodes {
		snap.PendingMSHRs += nd.mshrs.Len()
		// The sample fields take the maximum address rather than the last
		// one visited; combined with dense.Table's deterministic walk the
		// snapshot is identical across runs by construction.
		nd.mshrs.Each(func(_ int64, ms *mshr) bool {
			if ms.completed {
				snap.CompletedWait++
			}
			snap.SampleMSHRAddr = max(snap.SampleMSHRAddr, ms.addr)
			return true
		})
		nd.dir.Each(func(addr int64, dl *dirLine) bool {
			if dl.busy {
				snap.BusyDirLines++
				snap.SampleBusyAddr = max(snap.SampleBusyAddr, addr)
			}
			return true
		})
		for c := 0; c < NumClasses; c++ {
			snap.InjQueued += s.net.InjQueueLen(r, c)
			snap.EjQueued += s.net.EjectedLen(r, c)
		}
	}
	snap.NetPackets = s.net.InFlightPackets()
	return snap
}

// home returns the directory slice for an address.
func (s *System) home(addr int64) int {
	h := int(addr % int64(len(s.nodes)))
	if h < 0 {
		h += len(s.nodes)
	}
	return h
}

// send injects a coherence message; the caller must have verified
// capacity with canSend.
func (s *System) send(from int, to int, m Msg) {
	p := s.net.NewPacket(from, to, m.Type.Class(), m.Type.Flits())
	p.Payload = m
	if !s.net.Inject(p) {
		panic(fmt.Sprintf("coherence: injection failed after capacity check (%v)", m))
	}
	s.stats.MsgsSent++
	s.stats.MsgsByType[m.Type]++
}

// canSend reports whether n more messages of the class fit in node r's
// injection queue.
func (s *System) canSend(r, class, n int) bool {
	cap := s.net.Config().InjectCap
	if cap == 0 {
		return true
	}
	return s.net.InjQueueLen(r, class)+n <= cap
}

// Tick advances the protocol by one cycle: consume deliverable messages,
// then let cores issue. Call once per network cycle (before or after
// Network.Step; the order only shifts latencies by one cycle).
func (s *System) Tick() {
	for r := range s.nodes {
		s.consumeResponses(r)
		s.consumeForwards(r)
		s.consumeRequests(r)
		s.retryCompletions(r)
	}
	for r := range s.nodes {
		s.coreIssue(r)
	}
}

// ---- response handling (pure sink: never needs injection capacity) ----

func (s *System) consumeResponses(r int) {
	// Responses are always consumable; drain the whole queue (sink class,
	// paper §III-D2: "the ejection queue of a sink message class can
	// always be consumed").
	for {
		p := s.net.PopEjected(r, ClassResp)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		// The message is fully copied out; the carrier packet's life ends
		// here, so hand it back to the network's free-list.
		s.net.ReleasePacket(p)
		switch m.Type {
		case Data:
			s.onData(r, m)
		case InvAck:
			s.onInvAck(r, m)
		case DirAck:
			s.onDirAck(r, m)
		case Unblock:
			s.onUnblock(r, m)
		case WBAck:
			// Writeback complete; nothing held.
		default:
			panic("coherence: unexpected response " + m.Type.String())
		}
	}
}

func (s *System) onData(r int, m Msg) {
	nd := s.nodes[r]
	ms, ok := nd.mshrs.Get(m.Addr)
	if !ok {
		return // stale (transaction raced with writeback); drop
	}
	ms.gotData = true
	ms.dataExcl = m.Excl
	ms.needAcks = m.Acks
	s.maybeComplete(r, ms)
}

func (s *System) onInvAck(r int, m Msg) {
	nd := s.nodes[r]
	ms, ok := nd.mshrs.Get(m.Addr)
	if !ok {
		return
	}
	ms.gotAcks++
	s.maybeComplete(r, ms)
}

func (s *System) onDirAck(r int, m Msg) {
	if dl, ok := s.nodes[r].dir.Get(m.Addr); ok {
		dl.gotDirAck = true
		maybeUnblockDir(dl)
	}
}

func (s *System) onUnblock(r int, m Msg) {
	if dl, ok := s.nodes[r].dir.Get(m.Addr); ok {
		dl.gotUnblock = true
		maybeUnblockDir(dl)
	}
}

func maybeUnblockDir(dl *dirLine) {
	if dl.busy && dl.gotUnblock && (!dl.needDirAck || dl.gotDirAck) {
		dl.busy = false
		dl.needDirAck = false
		dl.gotDirAck = false
		dl.gotUnblock = false
	}
}

// maybeComplete retires an MSHR whose data and acks have all arrived.
// Completion needs injection capacity for the Unblock and possibly a
// writeback; if unavailable it retries next cycle (retryCompletions).
func (s *System) maybeComplete(r int, ms *mshr) {
	if !ms.gotData || ms.gotAcks < ms.needAcks {
		return
	}
	ms.completed = true
	s.tryFinish(r, ms)
}

// tryFinish performs the fill + Unblock once capacity allows.
func (s *System) tryFinish(r int, ms *mshr) bool {
	nd := s.nodes[r]
	// Count needed injections: Unblock (resp) always; PutM (req) if the
	// fill must evict a Modified line.
	victim, needWB := s.pickVictim(r)
	respNeeded, reqNeeded := 1, 0
	if needWB {
		reqNeeded = 1
	}
	if !s.canSend(r, ClassResp, respNeeded) || (reqNeeded > 0 && !s.canSend(r, ClassReq, reqNeeded)) {
		return false
	}
	if needWB {
		nd.lines.Delete(victim)
		s.send(r, s.home(victim), Msg{Type: PutM, Addr: victim, Requester: r})
	} else if victim >= 0 {
		nd.lines.Delete(victim) // silent S/E eviction
	}
	if ms.write {
		nd.lines.Put(ms.addr, Modified)
	} else if ms.dataExcl {
		nd.lines.Put(ms.addr, Exclusive)
	} else {
		nd.lines.Put(ms.addr, Shared)
	}
	s.send(r, s.home(ms.addr), Msg{Type: Unblock, Addr: ms.addr, Requester: r})
	nd.mshrs.Delete(ms.addr)
	nd.opsCompleted++
	s.stats.TxCompleted++
	return true
}

// pickVictim chooses an eviction victim if the L1 is full; returns
// (-1,false) when no eviction is needed.
func (s *System) pickVictim(r int) (int64, bool) {
	nd := s.nodes[r]
	if nd.lines.Len() < s.cfg.L1Lines {
		return -1, false
	}
	// Random replacement: one RNG draw salts an integer hash and the
	// line with the smallest hash (address tie-break) is evicted — a
	// commutative reduction, so it selects the same victim under any
	// visit order, and dense.Table's walk is deterministic anyway.
	salt := s.rng.Uint64()
	victim, best, found := int64(0), uint64(0), false
	nd.lines.Each(func(a int64, _ LineState) bool {
		h := mix64(uint64(a) ^ salt)
		if !found || h < best || (h == best && a < victim) {
			victim, best, found = a, h, true
		}
		return true
	})
	st, _ := nd.lines.Get(victim)
	return victim, st == Modified
}

// mix64 is the splitmix64 finalizer, used as the victim-selection hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// retryCompletions re-attempts fills blocked on injection capacity, in
// address order: when capacity admits only some of them, every run with
// the same seed must finish the same ones first.
func (s *System) retryCompletions(r int) {
	nd := s.nodes[r]
	addrs := s.scrAddrs[:0]
	nd.mshrs.Each(func(a int64, ms *mshr) bool {
		if ms.completed {
			addrs = append(addrs, a)
		}
		return true
	})
	// The sort stays: address order is the protocol's retry priority
	// (dense.Table walks in slot order, which is not sorted).
	slices.Sort(addrs)
	for _, a := range addrs {
		if ms, ok := nd.mshrs.Get(a); ok {
			s.tryFinish(r, ms)
		}
	}
	s.scrAddrs = addrs[:0]
}

// ---- forward handling (consuming injects responses) ----

func (s *System) consumeForwards(r int) {
	nd := s.nodes[r]
	for {
		p := s.net.PeekEjected(r, ClassFwd)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		switch m.Type {
		case Inv:
			if !s.canSend(r, ClassResp, 1) {
				return // stall: ack does not fit
			}
			s.net.ReleasePacket(s.net.PopEjected(r, ClassFwd))
			nd.lines.Delete(m.Addr)
			s.send(r, m.Requester, Msg{Type: InvAck, Addr: m.Addr, Requester: m.Requester})
		case FwdGetS, FwdGetM:
			// Owner supplies Data to the requester and acknowledges the
			// directory: two responses.
			if !s.canSend(r, ClassResp, 2) {
				return
			}
			s.net.ReleasePacket(s.net.PopEjected(r, ClassFwd))
			if m.Type == FwdGetS {
				nd.lines.Put(m.Addr, Shared)
			} else {
				nd.lines.Delete(m.Addr)
			}
			s.send(r, m.Requester, Msg{Type: Data, Addr: m.Addr, Requester: m.Requester})
			s.send(r, s.home(m.Addr), Msg{Type: DirAck, Addr: m.Addr, Requester: m.Requester})
		default:
			panic("coherence: unexpected forward " + m.Type.String())
		}
	}
}

// ---- request handling at the directory ----

func (s *System) consumeRequests(r int) {
	nd := s.nodes[r]
	for {
		p := s.net.PeekEjected(r, ClassReq)
		if p == nil {
			return
		}
		m := p.Payload.(Msg)
		dl, ok := nd.dir.Get(m.Addr)
		if !ok {
			dl = &dirLine{state: Invalid, sharers: newSharerSet(len(s.nodes))}
			nd.dir.Put(m.Addr, dl)
		}
		if m.Type != PutM && dl.busy {
			return // head-of-line stall until Unblock arrives
		}
		if !s.processRequest(r, m, dl) {
			return // injection capacity stall
		}
		s.net.ReleasePacket(s.net.PopEjected(r, ClassReq))
	}
}

// processRequest applies one directory request; returns false when
// injection capacity is insufficient (leave the message queued).
func (s *System) processRequest(r int, m Msg, dl *dirLine) bool {
	c := m.Requester
	switch m.Type {
	case GetS:
		switch dl.state {
		case Invalid, Shared:
			if !s.canSend(r, ClassResp, 1) {
				return false
			}
			excl := dl.state == Invalid
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: excl})
			if excl {
				dl.state = Modified // E at the core: dir tracks as owned
				dl.owner = c
			} else {
				dl.sharers.add(c)
			}
			dl.busy, dl.gotUnblock = true, false
		case Modified:
			if dl.owner == c {
				// Requester already owns it (stale request after silent
				// upgrade); just complete it.
				if !s.canSend(r, ClassResp, 1) {
					return false
				}
				s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
				dl.busy, dl.gotUnblock = true, false
				return true
			}
			if !s.canSend(r, ClassFwd, 1) {
				return false
			}
			s.send(r, dl.owner, Msg{Type: FwdGetS, Addr: m.Addr, Requester: c})
			dl.state = Shared
			dl.sharers.add(dl.owner)
			dl.sharers.add(c)
			dl.owner = -1
			dl.busy, dl.needDirAck, dl.gotDirAck, dl.gotUnblock = true, true, false, false
		}
	case GetM:
		switch dl.state {
		case Invalid:
			if !s.canSend(r, ClassResp, 1) {
				return false
			}
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
			dl.state, dl.owner = Modified, c
			dl.busy, dl.gotUnblock = true, false
		case Shared:
			// Walk the sharer bitset in ascending core order — the same
			// order the old collect-and-sort pass produced, so the
			// invalidation injection sequence is unchanged.
			sharers := s.scrSharers[:0]
			for w, word := range dl.sharers {
				for word != 0 {
					sh := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					if sh != c {
						sharers = append(sharers, sh)
					}
				}
			}
			invs := len(sharers)
			if !s.canSend(r, ClassResp, 1) || !s.canSend(r, ClassFwd, invs) {
				s.scrSharers = sharers[:0]
				return false
			}
			for _, sh := range sharers {
				s.send(r, sh, Msg{Type: Inv, Addr: m.Addr, Requester: c})
			}
			s.scrSharers = sharers[:0]
			s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Acks: invs, Excl: true})
			dl.sharers.reset()
			dl.state, dl.owner = Modified, c
			dl.busy, dl.gotUnblock = true, false
		case Modified:
			if dl.owner == c {
				if !s.canSend(r, ClassResp, 1) {
					return false
				}
				s.send(r, c, Msg{Type: Data, Addr: m.Addr, Requester: c, Excl: true})
				dl.busy, dl.gotUnblock = true, false
				return true
			}
			if !s.canSend(r, ClassFwd, 1) {
				return false
			}
			s.send(r, dl.owner, Msg{Type: FwdGetM, Addr: m.Addr, Requester: c})
			dl.owner = c
			dl.busy, dl.needDirAck, dl.gotDirAck, dl.gotUnblock = true, true, false, false
		}
	case PutM:
		if !s.canSend(r, ClassResp, 1) {
			return false
		}
		if dl.state == Modified && dl.owner == c && !dl.busy {
			dl.state = Invalid
			dl.owner = -1
		}
		s.send(r, c, Msg{Type: WBAck, Addr: m.Addr, Requester: c})
	default:
		panic("coherence: unexpected request " + m.Type.String())
	}
	return true
}

// ---- core issue ----

func (s *System) coreIssue(r int) {
	nd := s.nodes[r]
	if s.cfg.OpsTarget > 0 && nd.opsIssued >= s.cfg.OpsTarget {
		return
	}
	if s.rng.Float64() >= s.cfg.Gen.IssueProb() {
		return
	}
	addr, write := s.cfg.Gen.Next(r, s.rng)
	st, ok := nd.lines.Get(addr)
	if ok && (!write && st != Invalid || write && (st == Exclusive || st == Modified)) {
		// Hit. E→M upgrade on write is silent at the L1.
		if write {
			nd.lines.Put(addr, Modified)
		}
		nd.hits++
		nd.opsIssued++
		nd.opsCompleted++
		return
	}
	if write && st == Shared {
		nd.lines.Delete(addr) // upgrade handled as a fresh GetM below
	}
	// Miss: need an MSHR and request injection capacity.
	if _, pending := nd.mshrs.Get(addr); pending {
		nd.blockedCyc++
		return
	}
	if nd.mshrs.Len() >= s.cfg.MSHRs || !s.canSend(r, ClassReq, 1) {
		nd.blockedCyc++
		return
	}
	ms := &mshr{addr: addr, write: write, issuedAt: s.net.Cycle()}
	nd.mshrs.Put(addr, ms)
	nd.opsIssued++
	nd.misses++
	t := GetS
	if write {
		t = GetM
	}
	s.send(r, s.home(addr), Msg{Type: t, Addr: addr, Requester: r})
}
