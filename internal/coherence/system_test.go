package coherence

import (
	"math/rand/v2"
	"testing"

	"drain/internal/core"
	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/topology"
)

// testGen is a deterministic-ish access generator with tunable sharing.
type testGen struct {
	issue      float64
	sharedFrac float64
	writeFrac  float64
	shared     int64
	private    int64
}

func (g testGen) Next(c int, rng *rand.Rand) (int64, bool) {
	w := rng.Float64() < g.writeFrac
	if rng.Float64() < g.sharedFrac {
		return 1<<40 + rng.Int64N(g.shared), w
	}
	return int64(c)<<20 + rng.Int64N(g.private), w
}

func (g testGen) IssueProb() float64 { return g.issue }

// protoNet builds a network for coherence runs. vnets=3 is the proactive
// per-class configuration; vnets=1 shares one VN (DRAIN's setup).
func protoNet(t *testing.T, g *topology.Graph, m *topology.Mesh, vnets int, seed uint64) *noc.Network {
	t.Helper()
	kind := routing.AdaptiveMinimal
	esc := routing.AdaptiveMinimal
	n, err := noc.New(noc.Config{
		Graph: g, Mesh: m,
		VNets: vnets, VCsPerVN: 2, Classes: NumClasses,
		PolicyEscape:  true,
		Routing:       kind,
		EscapeRouting: esc,
		InjectCap:     16,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runSystem drives net+sys (and optionally a DRAIN controller) until the
// system completes its ops target or maxCycles pass.
func runSystem(t *testing.T, n *noc.Network, s *System, ctrl *core.Controller, maxCycles int) bool {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		n.Step()
		if ctrl != nil {
			if err := ctrl.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		s.Tick()
		if s.Done() {
			return true
		}
	}
	return false
}

// settle runs the network until it holds no packets (all in-flight
// protocol messages delivered and consumed).
func settle(t *testing.T, n *noc.Network, sys *System) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		n.Step()
		sys.Tick()
		if n.InFlightPackets() == 0 {
			return
		}
	}
	t.Fatalf("network did not settle; %d packets in flight", n.InFlightPackets())
}

func TestSingleTransactionFlows(t *testing.T) {
	m := topology.MustMesh(4, 4)
	n := protoNet(t, m.Graph, m, 3, 1)
	sys, err := New(n, Config{
		Gen:       testGen{issue: 0, shared: 16, private: 64},
		OpsTarget: 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive transactions by hand through the same paths coreIssue uses.
	// Read miss at node 3 for an address homed at node 7.
	addr := int64(7)
	nd := sys.nodes[3]
	nd.mshrs.Put(addr, &mshr{addr: addr})
	nd.opsIssued++
	sys.send(3, sys.home(addr), Msg{Type: GetS, Addr: addr, Requester: 3})
	for i := 0; i < 500 && nd.opsCompleted == 0; i++ {
		n.Step()
		sys.Tick()
	}
	if nd.opsCompleted != 1 {
		t.Fatal("read miss transaction never completed")
	}
	settle(t, n, sys) // let the Unblock reach the directory
	if st, _ := nd.lines.Get(addr); st != Exclusive {
		t.Errorf("line state after exclusive read = %d, want Exclusive", st)
	}
	// Directory must be unblocked and track node 3 as owner.
	dl, ok := sys.nodes[7].dir.Get(addr)
	if !ok || dl.busy {
		t.Fatalf("directory line busy after unblock: %+v", dl)
	}
	if dl.state != Modified || dl.owner != 3 {
		t.Errorf("dir state = %d owner %d, want Modified/3", dl.state, dl.owner)
	}

	// Now a second reader: must trigger FwdGetS to node 3.
	nd5 := sys.nodes[5]
	nd5.mshrs.Put(addr, &mshr{addr: addr})
	nd5.opsIssued++
	sys.send(5, sys.home(addr), Msg{Type: GetS, Addr: addr, Requester: 5})
	for i := 0; i < 500 && nd5.opsCompleted == 0; i++ {
		n.Step()
		sys.Tick()
	}
	if nd5.opsCompleted != 1 {
		t.Fatal("forwarded read never completed")
	}
	settle(t, n, sys)
	if sys.stats.MsgsByType[FwdGetS] == 0 {
		t.Error("FwdGetS never sent")
	}
	stA, _ := nd.lines.Get(addr)
	stB, _ := nd5.lines.Get(addr)
	if stA != Shared || stB != Shared {
		t.Error("both caches should hold the line Shared")
	}

	// Writer at node 9: invalidates both sharers, collects 2 acks.
	nd9 := sys.nodes[9]
	nd9.mshrs.Put(addr, &mshr{addr: addr, write: true})
	nd9.opsIssued++
	sys.send(9, sys.home(addr), Msg{Type: GetM, Addr: addr, Requester: 9})
	for i := 0; i < 500 && nd9.opsCompleted == 0; i++ {
		n.Step()
		sys.Tick()
	}
	if nd9.opsCompleted != 1 {
		t.Fatal("write transaction never completed")
	}
	settle(t, n, sys)
	if sys.stats.MsgsByType[Inv] != 2 || sys.stats.MsgsByType[InvAck] != 2 {
		t.Errorf("Inv/InvAck = %d/%d, want 2/2",
			sys.stats.MsgsByType[Inv], sys.stats.MsgsByType[InvAck])
	}
	if st, _ := nd9.lines.Get(addr); st != Modified {
		t.Error("writer should hold Modified")
	}
	if _, has := nd.lines.Get(addr); has {
		t.Error("old sharer still holds the line")
	}
}

func TestWorkloadCompletesWith3VNs(t *testing.T) {
	// The proactive configuration: 3 VNs, no drains needed for protocol
	// deadlock; escape VC (XY) prevents routing deadlock.
	m := topology.MustMesh(4, 4)
	n, err := noc.New(noc.Config{
		Graph: m.Graph, Mesh: m,
		VNets: 3, VCsPerVN: 2, Classes: NumClasses,
		PolicyEscape:  true,
		Routing:       routing.AdaptiveMinimal,
		EscapeRouting: routing.XY,
		InjectCap:     16,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(n, Config{
		Gen:       testGen{issue: 0.2, sharedFrac: 0.3, writeFrac: 0.3, shared: 128, private: 512},
		OpsTarget: 300,
		MSHRs:     4,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !runSystem(t, n, sys, nil, 300000) {
		st := sys.Stats()
		t.Fatalf("3-VN run did not complete: %+v (in net: %d)", st, n.InFlightPackets())
	}
	st := sys.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("degenerate run: %+v", st)
	}
}

func TestWorkloadCompletesWith1VNUnderDrain(t *testing.T) {
	// DRAIN's headline claim: a single virtual network suffices because
	// drains remove protocol-level deadlocks.
	m := topology.MustMesh(4, 4)
	n := protoNet(t, m.Graph, m, 1, 4)
	sys, err := New(n, Config{
		Gen:       testGen{issue: 0.25, sharedFrac: 0.4, writeFrac: 0.35, shared: 64, private: 256},
		OpsTarget: 300,
		MSHRs:     4,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sticky escape VCs can park packets until a full drain flushes them
	// (the paper's livelock guard), so schedule full drains frequently
	// enough for the test budget.
	ctrl, err := core.New(n, core.Config{Epoch: 2000, FullDrainEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !runSystem(t, n, sys, ctrl, 400000) {
		st := sys.Stats()
		t.Fatalf("1-VN DRAIN run did not complete: %+v (in net: %d, drains: %d)",
			st, n.InFlightPackets(), ctrl.Stats().Drains)
	}
}

func TestMSHRBoundRespected(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 6)
	sys, err := New(n, Config{
		Gen:   testGen{issue: 1.0, sharedFrac: 0.5, writeFrac: 0.5, shared: 1 << 20, private: 1 << 20},
		MSHRs: 2,
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		n.Step()
		sys.Tick()
		for _, nd := range sys.nodes {
			if nd.mshrs.Len() > 2 {
				t.Fatalf("MSHR bound violated: %d", nd.mshrs.Len())
			}
		}
	}
	if sys.Stats().BlockedCyc == 0 {
		t.Error("miss-every-access stream never blocked on MSHRs")
	}
}

func TestL1CapacityAndWritebacks(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n := protoNet(t, m.Graph, m, 3, 8)
	sys, err := New(n, Config{
		Gen:     testGen{issue: 0.5, sharedFrac: 0, writeFrac: 1.0, shared: 16, private: 4096},
		MSHRs:   4,
		L1Lines: 16,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		n.Step()
		sys.Tick()
		for _, nd := range sys.nodes {
			if nd.lines.Len() > 16 {
				t.Fatalf("L1 capacity violated: %d lines", nd.lines.Len())
			}
		}
	}
	if sys.stats.MsgsByType[PutM] == 0 || sys.stats.MsgsByType[WBAck] == 0 {
		t.Errorf("write-heavy run produced no writebacks: PutM=%d WBAck=%d",
			sys.stats.MsgsByType[PutM], sys.stats.MsgsByType[WBAck])
	}
}

func TestRejectsTooFewClasses(t *testing.T) {
	m := topology.MustMesh(2, 2)
	n, err := noc.New(noc.Config{
		Graph: m.Graph, Mesh: m, Routing: routing.XY,
		VNets: 1, VCsPerVN: 2, Classes: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(n, Config{Gen: testGen{}}); err == nil {
		t.Error("1-class network should be rejected")
	}
	n2 := protoNet(t, m.Graph, m, 3, 1)
	if _, err := New(n2, Config{}); err == nil {
		t.Error("nil Gen should be rejected")
	}
}

func TestSharedContentionGeneratesForwards(t *testing.T) {
	// Heavy read-write sharing on few lines must exercise every message
	// type, including FwdGetM.
	m := topology.MustMesh(4, 4)
	n := protoNet(t, m.Graph, m, 3, 10)
	sys, err := New(n, Config{
		Gen:   testGen{issue: 0.3, sharedFrac: 0.9, writeFrac: 0.5, shared: 8, private: 64},
		MSHRs: 2,
		Seed:  11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30000; i++ {
		n.Step()
		sys.Tick()
	}
	for _, mt := range []MsgType{GetS, GetM, Inv, FwdGetS, FwdGetM, Data, InvAck, DirAck, Unblock} {
		if sys.stats.MsgsByType[mt] == 0 {
			t.Errorf("message type %v never sent under contention", mt)
		}
	}
	if sys.Stats().TxCompleted == 0 {
		t.Error("no transactions completed")
	}
}
