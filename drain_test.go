package drain

import "testing"

func TestRunSynthetic(t *testing.T) {
	res, err := Run(Config{
		Width: 4, Height: 4,
		Scheme:  DRAIN,
		Pattern: "uniform", Rate: 0.05,
		Warmup: 1000, Measure: 4000,
		Epoch: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted < 0.04 || res.Accepted > 0.06 {
		t.Errorf("accepted = %v", res.Accepted)
	}
	if res.AvgLatency <= 0 || res.Deadlocked {
		t.Errorf("bad result: %+v", res)
	}
}

func TestRunWorkload(t *testing.T) {
	res, err := Run(Config{
		Width: 4, Height: 4,
		Scheme:    DRAIN,
		Workload:  "blackscholes",
		OpsTarget: 200, MaxCycles: 500_000,
		Epoch: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("workload did not complete")
	}
	if res.Runtime <= 0 || res.AvgLatency <= 0 {
		t.Errorf("bad result: %+v", res)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{Width: 4, Height: 4, Pattern: "nope"}); err == nil {
		t.Error("unknown pattern should fail")
	}
	if _, err := Run(Config{Width: 4, Height: 4, Workload: "nope"}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestComputeDrainPath(t *testing.T) {
	p, err := ComputeDrainPath(4, 4, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 4x4 mesh: 24 edges − 2 faults = 22 edges → 44 unidirectional links.
	if len(p.Hops) != 44 {
		t.Errorf("path length %d, want 44", len(p.Hops))
	}
	for i, hop := range p.Hops {
		next := p.Hops[(i+1)%len(p.Hops)]
		if hop[1] != next[0] {
			t.Fatalf("hop %d ends at %d but next starts at %d", i, hop[1], next[0])
		}
	}
}

func TestComputeDrainPathOn(t *testing.T) {
	// A triangle.
	p, err := ComputeDrainPathOn(3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 6 {
		t.Errorf("triangle path length %d, want 6", len(p.Hops))
	}
	if _, err := ComputeDrainPathOn(4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected topology should fail")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 15 {
		t.Errorf("workloads = %d, want 15", len(ws))
	}
}
