//go:build !race

package drain

// raceEnabled reports whether the race detector is instrumenting this
// build (it adds bookkeeping allocations that would trip the Step
// allocation guard).
const raceEnabled = false
