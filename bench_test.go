package drain

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, driving the same experiment runners the
// cmd/experiments tool uses (Quick scale), plus ablation benchmarks for
// the design choices DESIGN.md calls out. Custom metrics are reported
// through b.ReportMetric so `go test -bench` output carries the
// reproduced numbers alongside wall-clock cost.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/experiments -fig all -scale full   # paper-scale sweep

import (
	"context"
	"runtime"
	"strconv"
	"testing"

	"drain/internal/drainpath"
	"drain/internal/experiments"
	"drain/internal/noc"
	"drain/internal/routing"
	"drain/internal/sim"
	"drain/internal/topology"
	"drain/internal/traffic"
	"drain/internal/workload"
)

// runExperiment executes a registered experiment once per benchmark
// iteration and fails the benchmark if it errors or produces no data.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(context.Background(), experiments.Quick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for _, t := range tables {
			rows += len(t.Rows)
		}
		if rows == 0 {
			b.Fatal("experiment produced no rows")
		}
		b.ReportMetric(float64(rows), "rows")
	}
}

func BenchmarkFig03DeadlockLikelihood(b *testing.B) { runExperiment(b, "fig3") }
func BenchmarkFig04VNPower(b *testing.B)            { runExperiment(b, "fig4") }
func BenchmarkFig05UpDownGap(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig06DrainPath(b *testing.B)          { runExperiment(b, "fig6") }
func BenchmarkFig08Walkthrough(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig09AreaPower(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkFig10Saturation(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkFig11LowLoadLatency(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12Ligra(b *testing.B)              { runExperiment(b, "fig12") }
func BenchmarkFig13Parsec(b *testing.B)             { runExperiment(b, "fig13") }
func BenchmarkFig14Epoch(b *testing.B)              { runExperiment(b, "fig14") }
func BenchmarkFig15TailLatency(b *testing.B)        { runExperiment(b, "fig15") }
func BenchmarkHeadline(b *testing.B)                { runExperiment(b, "headline") }
func BenchmarkDiscussionTopologies(b *testing.B)    { runExperiment(b, "disc") }

// BenchmarkFig10SaturationParallel is BenchmarkFig10Saturation with the
// experiment harness fanning its independent runs across GOMAXPROCS
// workers (the cmd/experiments -parallel default). Comparing the two
// shows the sweep-level speedup on multi-core hosts; the result tables
// are identical either way.
func BenchmarkFig10SaturationParallel(b *testing.B) {
	prev := experiments.Parallelism()
	experiments.SetParallelism(runtime.GOMAXPROCS(0))
	defer experiments.SetParallelism(prev)
	runExperiment(b, "fig10")
}

// BenchmarkStep measures the steady-state cycle loop at three load
// points of the paper's evaluation regime — the fig11 low-load point
// (0.02 packets/node/cycle), a mid-load point, and the fig10 saturation
// point (0.45) — on the 8x8 DRAIN configuration, once per engine.
// The event/dense pairs are byte-identical runs (FuzzDenseVsEvent
// enforces it), so the ratio is pure engine speedup; `make bench`
// records the numbers in BENCH_noc.json.
func BenchmarkStep(b *testing.B) {
	loads := []struct {
		name string
		rate float64
	}{
		{"LowLoad", 0.02},
		{"MidLoad", 0.10},
		{"Saturation", 0.45},
	}
	for _, load := range loads {
		for _, eng := range []noc.EngineKind{noc.EngineEvent, noc.EngineDense} {
			b.Run(load.name+"/"+eng.String(), func(b *testing.B) {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1, Engine: eng,
				})
				if err != nil {
					b.Fatal(err)
				}
				pat := traffic.UniformRandom{N: 64}
				// Prime to steady state so b.N windows measure the loop,
				// not the fill transient.
				if _, err := r.RunSynthetic(pat, load.rate, 0, 2000); err != nil {
					b.Fatal(err)
				}
				const window = 5000
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.RunSynthetic(pat, load.rate, 0, window); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / window
				b.ReportMetric(ns, "ns/cycle")
				if ns > 0 {
					b.ReportMetric(1e9/ns, "cycles/sec")
				}
			})
		}
	}
}

// BenchmarkStepRNG measures what the counter-based RNG mode buys at
// the three standard load points plus an idle-dominated one, on the
// event engine only (the mode is engine-independent;
// TestCounterModeByteIdenticalAcrossEngines pins that). The
// rng=exact/rng=counter pairs are same-binary interleaved runs, so the
// ratio is pure generator speedup. The win is concentrated at
// IdleLoad, where the network is empty most cycles and fast-forward
// windows actually open: counter mode jumps them for free while exact
// mode must replay 64 rate draws per skipped cycle. From LowLoad
// (fig11's 0.02) upward the network always holds in-flight packets —
// no window ever opens — and exact mode's one-integer-compare rate
// draw is already a small fraction of the cycle, so the pair
// converges; see DESIGN.md §"Counter-based RNG mode" for the dividing
// line. cmd/benchjson derives the fast_vs_exact section from this
// group.
func BenchmarkStepRNG(b *testing.B) {
	loads := []struct {
		name string
		rate float64
	}{
		{"IdleLoad", 0.001},
		{"LowLoad", 0.02},
		{"MidLoad", 0.10},
		{"Saturation", 0.45},
	}
	for _, load := range loads {
		for _, mode := range []traffic.RNGMode{traffic.RNGExact, traffic.RNGCounter} {
			b.Run(load.name+"/rng="+mode.String(), func(b *testing.B) {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1,
					Engine: noc.EngineEvent, RNGMode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				pat := traffic.UniformRandom{N: 64}
				if _, err := r.RunSynthetic(pat, load.rate, 0, 2000); err != nil {
					b.Fatal(err)
				}
				const window = 5000
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.RunSynthetic(pat, load.rate, 0, window); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / window
				b.ReportMetric(ns, "ns/cycle")
				if ns > 0 {
					b.ReportMetric(1e9/ns, "cycles/sec")
				}
			})
		}
	}
}

// BenchmarkFig11RNG runs the fig11 low-load latency experiment — the
// workload the counter mode exists for — end to end in both RNG modes.
// This is the ISSUE acceptance measurement: same binary, interleaved
// runs, whole-experiment wall clock (build + warmup + measure), so the
// ns/op ratio is the speedup a user of cmd/experiments -rng-mode
// counter actually sees. Result tables differ between the modes (the
// draw sequences differ); TestRNGModeStatisticalEquivalence bounds how
// much.
func BenchmarkFig11RNG(b *testing.B) {
	for _, mode := range []traffic.RNGMode{traffic.RNGExact, traffic.RNGCounter} {
		b.Run("rng="+mode.String(), func(b *testing.B) {
			sim.SetDefaultRNGMode(mode)
			defer sim.SetDefaultRNGMode(traffic.RNGExact)
			runExperiment(b, "fig11")
		})
	}
}

// BenchmarkStepSharded measures the parallel engine's intra-run scaling
// on the one-big-network case it exists for: a 64x64 mesh (4096
// routers) under mid load, at 1, 2, 4 and 8 shards. The shards=1 point
// doubles as the zero-overhead check against the serial engines (the
// inline fast path makes it the event algorithm verbatim), and
// cmd/benchjson derives speedup-vs-shards=1 from the group. Results are
// byte-identical at every shard count, so the ratio is pure engine
// speedup; scaling beyond 1 requires a multi-core host.
func BenchmarkStepSharded(b *testing.B) {
	// One routing table serves all four networks: at 4096 routers its
	// construction dwarfs everything else in Build, and tables are
	// immutable (sim.Params.RoutingTable).
	mesh := topology.MustMesh(64, 64)
	tab, err := routing.NewTable(mesh.Graph, mesh)
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("MidLoad/shards="+strconv.Itoa(shards), func(b *testing.B) {
			r, err := sim.BuildOn(mesh.Graph, mesh, sim.Params{
				Width: 64, Height: 64, Scheme: sim.SchemeDRAIN, Seed: 1,
				InjectCap: 16, // bound queue growth; identical dynamics at every K
				Shards:    shards, RoutingTable: tab,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer r.Close()
			pat := traffic.UniformRandom{N: 64 * 64}
			if _, err := r.RunSynthetic(pat, 0.10, 0, 500); err != nil {
				b.Fatal(err)
			}
			const window = 400
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.RunSynthetic(pat, 0.10, 0, window); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / window
			b.ReportMetric(ns, "ns/cycle")
			if ns > 0 {
				b.ReportMetric(1e9/ns, "cycles/sec")
			}
		})
	}
}

// BenchmarkSimulatorCycles measures raw simulator speed: router-cycles
// per second on a loaded 8x8 DRAIN network (substrate cost, Table II
// configuration).
func BenchmarkSimulatorCycles(b *testing.B) {
	r, err := sim.Build(sim.Params{Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.NewGenerator(traffic.UniformRandom{N: 64}, 0.10, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Net.Frozen() {
			gen.Tick(r.Net)
		}
		r.Net.Step()
		if err := r.TickScheme(); err != nil {
			b.Fatal(err)
		}
		for n := 0; n < 64; n++ {
			for p := r.Net.PopEjected(n, 0); p != nil; p = r.Net.PopEjected(n, 0) {
			}
		}
	}
	b.ReportMetric(64, "router-cycles/op")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationDrainHops: the paper's footnote 3 claims one forced
// hop per drain window always beats multiple hops.
func BenchmarkAblationDrainHops(b *testing.B) {
	for _, hops := range []int{1, 2, 4} {
		b.Run("hops="+strconv.Itoa(hops), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN,
					Epoch: 512, DrainHops: hops, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.10, 1000, 4000)
				if err != nil {
					b.Fatal(err)
				}
				lat = res.AvgLatency
			}
			b.ReportMetric(lat, "avg-latency")
		})
	}
}

// BenchmarkAblationPathAlgorithms compares the offline constructions:
// Hierholzer vs the paper's early-terminating search.
func BenchmarkAblationPathAlgorithms(b *testing.B) {
	g := topology.MustMesh(8, 8).Graph
	b.Run("hierholzer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drainpath.FindEulerian(g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := drainpath.FindCoveringCycle(g, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationStickyEscape compares DRAIN with the classic sticky
// escape-VC discipline against the default non-sticky escape.
func BenchmarkAblationStickyEscape(b *testing.B) {
	for _, sticky := range []bool{false, true} {
		name := "nonsticky"
		if sticky {
			name = "sticky"
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN,
					Epoch: 4096, StickyEscape: sticky, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.45, 1000, 4000)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accepted
			}
			b.ReportMetric(acc, "saturation")
		})
	}
}

// BenchmarkAblationDeroute compares the strictly minimal substrate (the
// paper's deadlock-prone baseline) with stall-triggered derouting.
func BenchmarkAblationDeroute(b *testing.B) {
	for _, da := range []int{-1, 8} {
		name := "strict"
		if da > 0 {
			name = "deroute" + strconv.Itoa(da)
		}
		b.Run(name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN,
					DerouteAfter: da, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.45, 1000, 4000)
				if err != nil {
					b.Fatal(err)
				}
				acc = res.Accepted
			}
			b.ReportMetric(acc, "saturation")
		})
	}
}

// BenchmarkAblationFullDrain measures the cost of frequent full drains
// (the livelock guard) on packet latency.
func BenchmarkAblationFullDrain(b *testing.B) {
	for _, every := range []int{4, 64, 1024} {
		b.Run("every="+strconv.Itoa(every), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Build(sim.Params{
					Width: 8, Height: 8, Scheme: sim.SchemeDRAIN,
					Epoch: 512, FullDrainEvery: every, Seed: uint64(i) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := r.RunSynthetic(traffic.UniformRandom{N: 64}, 0.10, 1000, 4000)
				if err != nil {
					b.Fatal(err)
				}
				lat = res.AvgLatency
			}
			b.ReportMetric(lat, "avg-latency")
		})
	}
}

// BenchmarkCoherenceWorkload measures end-to-end coherent-system
// simulation speed for the default DRAIN configuration.
func BenchmarkCoherenceWorkload(b *testing.B) {
	prof := workload.MustGet("bodytrack")
	for i := 0; i < b.N; i++ {
		r, err := sim.Build(sim.Params{
			Width: 4, Height: 4, Scheme: sim.SchemeDRAIN, Classes: 3,
			Epoch: 4096, InjectCap: 16, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.RunApp(prof, 200, 600_000)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("workload did not complete")
		}
		b.ReportMetric(float64(res.Runtime), "cycles")
	}
}
