package drain

// Steady-state allocation guard for the simulator hot path. The per-cycle
// core (Network.Step: arrival completion, switch/VC allocation, injection)
// must not heap-allocate once warm: routing candidates are precomputed
// immutable tables, arbitration uses Network-owned scratch arenas, and the
// injection/ejection queues are pre-sized rings. Packet *creation* is the
// workload's allocation and happens outside Step.

import (
	"runtime"
	"testing"

	"drain/internal/sim"
	"drain/internal/traffic"
)

// stepAllocsPerCycle measures amortized heap allocations per Network.Step
// on a warmed-up, loaded 8x8 DRAIN network whose injection queues were
// pre-filled so the measured cycles keep injecting without creating
// packets.
func stepAllocsPerCycle(tb testing.TB) float64 {
	tb.Helper()
	r, err := sim.Build(sim.Params{Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	gen := traffic.NewGenerator(traffic.UniformRandom{N: 64}, 0.20, 7)
	sink := func() {
		for n := 0; n < 64; n++ {
			for p := r.Net.PopEjected(n, 0); p != nil; p = r.Net.PopEjected(n, 0) {
			}
		}
	}
	// Warm up: real traffic grows every scratch arena, ring and the
	// in-flight slice to its working size.
	for cyc := 0; cyc < 2000; cyc++ {
		gen.Tick(r.Net)
		r.Net.Step()
		if err := r.TickScheme(); err != nil {
			tb.Fatal(err)
		}
		sink()
	}
	// Stock the injection queues up front (packet allocation happens
	// here, outside the measured region) so injectFromQueues stays busy
	// for the whole measurement.
	for i := 0; i < 20; i++ {
		gen.Tick(r.Net)
	}
	return testing.AllocsPerRun(400, func() {
		r.Net.Step()
		sink()
	})
}

// TestStepAllocs fails when the steady-state hot path regresses to
// allocating: the budget is ≤ 2 amortized allocations per cycle (the
// target is 0; the slack absorbs one-off growth of a scratch buffer that
// crosses its previous high-water mark mid-measurement).
func TestStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	if allocs := stepAllocsPerCycle(t); allocs > 2 {
		t.Errorf("Network.Step allocates %.2f times per steady-state cycle, budget is 2", allocs)
	}
}

// BenchmarkStepAllocs reports the amortized allocation count alongside
// the figure benchmarks (0 in steady state; see TestStepAllocs for the
// enforced budget).
func BenchmarkStepAllocs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(stepAllocsPerCycle(b), "allocs/cycle")
	}
}

// runAllocsPerDelivered measures heap allocations per delivered packet
// over a whole warmed-up run — packet creation INCLUDED, unlike
// stepAllocsPerCycle, which stocks its queues outside the measured
// region. With the packet free-list this must stay near zero: consumers
// recycle ejected packets, so steady-state NewPacket is a pool pop and
// the total allocation count is O(peak in-flight), not O(injected).
func runAllocsPerDelivered(tb testing.TB) float64 {
	tb.Helper()
	r, err := sim.Build(sim.Params{Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	gen := traffic.NewGenerator(traffic.UniformRandom{N: 64}, 0.20, 7)
	delivered := 0
	tick := func() {
		gen.Tick(r.Net)
		r.Net.Step()
		if err := r.TickScheme(); err != nil {
			tb.Fatal(err)
		}
		for n := 0; n < 64; n++ {
			for p := r.Net.PopEjected(n, 0); p != nil; p = r.Net.PopEjected(n, 0) {
				delivered++
				r.Net.ReleasePacket(p)
			}
		}
	}
	// Warm up: grow every arena and the free list to working size.
	for cyc := 0; cyc < 2000; cyc++ {
		tick()
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	delivered = 0
	for cyc := 0; cyc < 2000; cyc++ {
		tick()
	}
	runtime.ReadMemStats(&m1)
	if delivered == 0 {
		tb.Fatal("measured window delivered no packets")
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(delivered)
}

// TestRunAllocsPerDeliveredPacket enforces the whole-run budget: at most
// 0.1 amortized allocations per delivered packet (the target is 0; the
// slack absorbs a scratch structure crossing its high-water mark and the
// runtime's own background allocations during the window).
func TestRunAllocsPerDeliveredPacket(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	if allocs := runAllocsPerDelivered(t); allocs > 0.1 {
		t.Errorf("whole run allocates %.3f times per delivered packet, budget is 0.1", allocs)
	}
}

// BenchmarkRunAllocs reports the whole-run amortized figure next to
// BenchmarkStepAllocs.
func BenchmarkRunAllocs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(runAllocsPerDelivered(b), "allocs/pkt")
	}
}
