package drain

// Steady-state allocation guard for the simulator hot path. The per-cycle
// core (Network.Step: arrival completion, switch/VC allocation, injection)
// must not heap-allocate once warm: routing candidates are precomputed
// immutable tables, arbitration uses Network-owned scratch arenas, and the
// injection/ejection queues are pre-sized rings. Packet *creation* is the
// workload's allocation and happens outside Step.

import (
	"testing"

	"drain/internal/sim"
	"drain/internal/traffic"
)

// stepAllocsPerCycle measures amortized heap allocations per Network.Step
// on a warmed-up, loaded 8x8 DRAIN network whose injection queues were
// pre-filled so the measured cycles keep injecting without creating
// packets.
func stepAllocsPerCycle(tb testing.TB) float64 {
	tb.Helper()
	r, err := sim.Build(sim.Params{Width: 8, Height: 8, Scheme: sim.SchemeDRAIN, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	gen := traffic.NewGenerator(traffic.UniformRandom{N: 64}, 0.20, 7)
	sink := func() {
		for n := 0; n < 64; n++ {
			for p := r.Net.PopEjected(n, 0); p != nil; p = r.Net.PopEjected(n, 0) {
			}
		}
	}
	// Warm up: real traffic grows every scratch arena, ring and the
	// in-flight slice to its working size.
	for cyc := 0; cyc < 2000; cyc++ {
		gen.Tick(r.Net)
		r.Net.Step()
		if err := r.TickScheme(); err != nil {
			tb.Fatal(err)
		}
		sink()
	}
	// Stock the injection queues up front (packet allocation happens
	// here, outside the measured region) so injectFromQueues stays busy
	// for the whole measurement.
	for i := 0; i < 20; i++ {
		gen.Tick(r.Net)
	}
	return testing.AllocsPerRun(400, func() {
		r.Net.Step()
		sink()
	})
}

// TestStepAllocs fails when the steady-state hot path regresses to
// allocating: the budget is ≤ 2 amortized allocations per cycle (the
// target is 0; the slack absorbs one-off growth of a scratch buffer that
// crosses its previous high-water mark mid-measurement).
func TestStepAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector adds bookkeeping allocations")
	}
	if allocs := stepAllocsPerCycle(t); allocs > 2 {
		t.Errorf("Network.Step allocates %.2f times per steady-state cycle, budget is 2", allocs)
	}
}

// BenchmarkStepAllocs reports the amortized allocation count alongside
// the figure benchmarks (0 in steady state; see TestStepAllocs for the
// enforced budget).
func BenchmarkStepAllocs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(stepAllocsPerCycle(b), "allocs/cycle")
	}
}
