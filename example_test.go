package drain_test

import (
	"fmt"
	"log"

	"drain"
)

// ExampleComputeDrainPath shows the offline algorithm (paper §III-B):
// a 4x4 mesh has 48 unidirectional links, and the drain path is a single
// cycle covering each exactly once.
func ExampleComputeDrainPath() {
	path, err := drain.ComputeDrainPath(4, 4, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("links covered:", len(path.Hops))
	// Every hop chains to the next (a single closed cycle).
	closed := true
	for i, h := range path.Hops {
		if h[1] != path.Hops[(i+1)%len(path.Hops)][0] {
			closed = false
		}
	}
	fmt.Println("single closed cycle:", closed)
	// Output:
	// links covered: 48
	// single closed cycle: true
}

// ExampleComputeDrainPathOn runs the offline algorithm on a custom
// irregular topology given as an edge list.
func ExampleComputeDrainPathOn() {
	// A 4-router diamond: 0-1, 1-2, 2-3, 3-0, plus the chord 0-2.
	path, err := drain.ComputeDrainPathOn(4, [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("links covered:", len(path.Hops))
	// Output:
	// links covered: 10
}

// ExampleRun simulates DRAIN on a faulty mesh under uniform traffic.
func ExampleRun() {
	res, err := drain.Run(drain.Config{
		Width: 4, Height: 4,
		Faults: 2, FaultSeed: 7,
		Scheme:  drain.DRAIN,
		Pattern: "uniform", Rate: 0.05,
		Warmup: 1000, Measure: 4000,
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("delivered traffic:", res.Accepted > 0.04)
	fmt.Println("deadlocked:", res.Deadlocked)
	// Output:
	// delivered traffic: true
	// deadlocked: false
}
